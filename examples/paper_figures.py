"""Reproduce the paper's worked IR examples (Figures 1, 5 and 8, §IV-B).

The script builds the exact programs from the figures, prints the IR before
and after each region optimisation, and shows the lp → rgn → CFG lowering of
the join-point example.

Run with::

    python examples/paper_figures.py
"""

from repro.backend import MlirCompiler, PipelineOptions
from repro.backend.lp_codegen import generate_lp_module
from repro.backend.lp_to_rgn import lower_lp_to_rgn
from repro.backend.pipeline import Frontend
from repro.dialects import arith, lp, rgn
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp
from repro.ir import Builder, FunctionType, InsertionPoint, box, i1, print_module
from repro.lambda_rc import insert_rc
from repro.rewrite import PassManager
from repro.transforms import (
    CaseEliminationPass,
    CommonBranchEliminationPass,
    DeadCodeEliminationPass,
    RegionGVNPass,
)


def figure1_common_branch() -> None:
    """§IV-B.2 / Figure 1 C: case b of True -> 7 | False -> 7."""
    module = ModuleOp()
    func = FuncOp("common_branch", FunctionType([i1], [box]))
    module.append(func)
    builder = Builder(InsertionPoint.at_end(func.entry_block))
    left = builder.create(rgn.ValOp)
    b = Builder(InsertionPoint.at_end(left.body_block))
    c7 = b.create(lp.IntOp, 7)
    b.create(lp.ReturnOp, c7.result())
    right = builder.create(rgn.ValOp)
    b = Builder(InsertionPoint.at_end(right.body_block))
    c7b = b.create(lp.IntOp, 7)
    b.create(lp.ReturnOp, c7b.result())
    chosen = builder.create(
        arith.SelectOp, func.arguments[0], left.result(), right.result()
    )
    builder.create(rgn.RunOp, chosen.result())

    print("=== Figure 1 C / §IV-B.2: before region optimisation ===")
    print(print_module(module))
    PassManager(
        [
            RegionGVNPass(),
            CommonBranchEliminationPass(),
            CaseEliminationPass(),
            DeadCodeEliminationPass(),
        ]
    ).run(module)
    print("=== after region GVN + common-branch + case elimination + DCE ===")
    print(print_module(module))


EVAL_SOURCE = """
def eval (x : Nat) (y : Nat) (z : Nat) : Nat :=
  match x, y, z with
  | 0, 2, _ => 40
  | 0, _, 2 => 50
  | _, _, _ => 60
def main : Nat := eval 0 1 2
"""


def figure5_and_8_joinpoints() -> None:
    """Figure 5 (join-point deduplication) and Figure 8 (lowering to rgn)."""
    rc = insert_rc(Frontend.to_pure(EVAL_SOURCE))
    module = generate_lp_module(rc)
    print("=== Figure 5: lp dialect with lp.joinpoint / lp.jump ===")
    print(print_module(module))
    lower_lp_to_rgn(module)
    print("=== Figure 8: after lowering lp control flow to rgn ===")
    print(print_module(module))
    artifacts = MlirCompiler(PipelineOptions()).compile(EVAL_SOURCE)
    print("=== §IV-C: final flat CFG (cf dialect) ===")
    print(print_module(artifacts.cfg_module))


def main() -> None:
    figure1_common_branch()
    figure5_and_8_joinpoints()


if __name__ == "__main__":
    main()
