"""Walk through the rgn optimisation pipeline on a realistic workload.

Compiles the ``rbmap_checkpoint`` benchmark with and without the region
optimisations, reports the per-pass statistics and the resulting cost
difference.

Run with::

    python examples/region_optimizations.py
"""

from repro.backend import MlirCompiler, PipelineOptions
from repro.eval.benchmarks import benchmark_sources
from repro.interp.cfg_interp import CfgInterpreter


def compile_and_measure(source: str, options: PipelineOptions):
    artifacts = MlirCompiler(options).compile(source)
    result = CfgInterpreter(artifacts.cfg_module).run_main()
    return artifacts, result


def main() -> None:
    source = benchmark_sources()["rbmap_checkpoint"]

    optimised_opts = PipelineOptions(verify_each=False)
    unoptimised_opts = PipelineOptions(
        run_rgn_optimizations=False, verify_each=False
    )

    optimised_artifacts, optimised = compile_and_measure(source, optimised_opts)
    _, unoptimised = compile_and_measure(source, unoptimised_opts)

    assert optimised.value == unoptimised.value
    print("benchmark: rbmap_checkpoint")
    print(f"result value: {optimised.value}")
    print()
    print("rgn optimisation pass statistics:")
    for pass_name, counters in optimised_artifacts.pass_statistics.items():
        print(f"  {pass_name:28s} {counters}")
    print()
    print(f"cost without rgn optimisations: {unoptimised.metrics.total_cost()}")
    print(f"cost with rgn optimisations:    {optimised.metrics.total_cost()}")
    ratio = unoptimised.metrics.total_cost() / optimised.metrics.total_cost()
    print(f"speedup from rgn optimisations: {ratio:.3f}x")
    print()
    print("dynamic operation mix (optimised pipeline):")
    for category, count in sorted(optimised.metrics.counts.items()):
        print(f"  {category:14s} {count}")


if __name__ == "__main__":
    main()
