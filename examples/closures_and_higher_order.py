"""Closures, partial application and lambda lifting through the full pipeline
(the workload class that motivates lp.pap / lp.papextend, Figure 7).

Run with::

    python examples/closures_and_higher_order.py
"""

from repro.backend import MlirCompiler, run_baseline, run_mlir, run_reference
from repro.ir import print_module

SOURCE = """
inductive List where
| nil
| cons (head : Nat) (tail : List)

def upto (n : Nat) : List :=
  if n == 0 then List.nil else List.cons n (upto (n - 1))

def map (f : Nat -> Nat) (xs : List) : List :=
  match xs with
  | List.nil => List.nil
  | List.cons h t => List.cons (f h) (map f t)

def foldl (f : Nat -> Nat -> Nat) (acc : Nat) (xs : List) : Nat :=
  match xs with
  | List.nil => acc
  | List.cons h t => foldl f (f acc h) t

def add (x : Nat) (y : Nat) : Nat := x + y

def main : Nat :=
  let scale := 3;
  let xs := map (fun (v : Nat) => v * scale) (upto 15);
  foldl add 0 xs
"""


def main() -> None:
    expected = run_reference(SOURCE)
    baseline = run_baseline(SOURCE)
    mlir = run_mlir(SOURCE)
    print(f"reference = {expected}, baseline = {baseline.value}, lp+rgn = {mlir.value}")
    print(
        f"closure applications (apply): baseline={baseline.metrics.counts.get('apply', 0)}, "
        f"lp+rgn={mlir.metrics.counts.get('apply', 0)}"
    )
    print(
        f"closure allocations: baseline={baseline.metrics.counts.get('alloc_closure', 0)}, "
        f"lp+rgn={mlir.metrics.counts.get('alloc_closure', 0)}"
    )

    artifacts = MlirCompiler().compile(SOURCE)
    print("\n=== lifted lambda in the lp dialect (look for lp.pap) ===")
    text = print_module(artifacts.lp_module)
    lines = text.splitlines()
    pap_lines = [i for i, line in enumerate(lines) if "lp.pap" in line]
    for index in pap_lines[:3]:
        start = max(0, index - 2)
        print("\n".join(lines[start : index + 2]))
        print("  ...")


if __name__ == "__main__":
    main()
