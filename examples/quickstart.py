"""Quickstart: compile a mini-LEAN program with both backends and compare.

Run with::

    python examples/quickstart.py
"""

from repro.backend import (
    BaselineCompiler,
    MlirCompiler,
    run_baseline,
    run_mlir,
    run_reference,
)
from repro.ir import print_module

SOURCE = """
inductive List where
| nil
| cons (head : Nat) (tail : List)

def upto (n : Nat) : List :=
  if n == 0 then List.nil else List.cons n (upto (n - 1))

def sum (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons h t => h + sum t

def main : Nat := sum (upto 25)
"""


def main() -> None:
    print("=== source program ===")
    print(SOURCE)

    expected = run_reference(SOURCE)
    print(f"reference interpreter result: {expected}")

    baseline = run_baseline(SOURCE)
    print(
        f"baseline (leanc-style) result: {baseline.value}, "
        f"cost={baseline.metrics.total_cost()}, "
        f"allocations={baseline.heap_stats['allocations']}"
    )

    mlir = run_mlir(SOURCE)
    print(
        f"lp+rgn backend result:         {mlir.value}, "
        f"cost={mlir.metrics.total_cost()}, "
        f"allocations={mlir.heap_stats['allocations']}"
    )
    print(f"speedup (cost ratio): {baseline.metrics.total_cost() / mlir.metrics.total_cost():.3f}x")

    # Peek at the intermediate artifacts.
    artifacts = MlirCompiler().compile(SOURCE)
    print("\n=== lp-dialect module for `sum` (excerpt) ===")
    lp_text = print_module(artifacts.lp_module)
    print("\n".join(lp_text.splitlines()[:30]))

    c_source = BaselineCompiler().compile(SOURCE).c_source
    print("\n=== baseline C emission (excerpt) ===")
    print("\n".join(c_source.splitlines()[:25]))


if __name__ == "__main__":
    main()
