"""Tests for the interpreters' cost model and the evaluation harness."""

import pytest

from repro.backend import run_baseline, run_mlir, run_reference
from repro.eval import (
    DEFAULT_SIZES,
    EvaluationHarness,
    benchmark_sources,
    geometric_mean,
    regression_programs,
)
from repro.eval.figures import (
    PAPER_FIGURE9,
    correctness_report,
    figure11_table,
    format_speedup_figure,
)
from repro.interp import DEFAULT_COSTS, ExecutionMetrics

SMALL_SIZES = {
    "binarytrees": {"depth": 4},
    "binarytrees-int": {"depth": 4},
    "const_fold": {"depth": 3, "reps": 2},
    "deriv": {"reps": 2},
    "digits": {"reps": 3, "span": 6},
    "filter": {"length": 15},
    "qsort": {"size": 8},
    "rbmap_checkpoint": {"inserts": 8},
    "unionfind": {"elements": 10, "unions": 8},
}


class TestMetrics:
    def test_charge_and_totals(self):
        metrics = ExecutionMetrics()
        metrics.charge("call", 2)
        metrics.charge("rc", 3)
        assert metrics.total_operations() == 5
        assert metrics.total_cost() == 2 * DEFAULT_COSTS["call"] + 3 * DEFAULT_COSTS["rc"]

    def test_merge(self):
        a = ExecutionMetrics()
        a.charge("call")
        b = ExecutionMetrics()
        b.charge("call")
        b.charge("rc")
        merged = a.merged_with(b)
        assert merged.counts["call"] == 2 and merged.counts["rc"] == 1

    def test_constants_are_free(self):
        assert DEFAULT_COSTS["const"] == 0

    def test_as_dict(self):
        metrics = ExecutionMetrics()
        metrics.charge("branch")
        d = metrics.as_dict()
        assert d["total_operations"] == 1 and "counts" in d


class TestCostComparability:
    def test_backends_report_same_allocations(self):
        source = benchmark_sources(SMALL_SIZES)["binarytrees"]
        baseline = run_baseline(source)
        mlir = run_mlir(source)
        assert baseline.heap_stats["allocations"] == mlir.heap_stats["allocations"]

    def test_backends_report_same_calls(self):
        source = benchmark_sources(SMALL_SIZES)["filter"]
        baseline = run_baseline(source)
        mlir = run_mlir(source)
        assert baseline.metrics.counts["call"] == mlir.metrics.counts["call"]

    def test_wall_time_recorded(self):
        result = run_baseline("def main : Nat := 1 + 1")
        assert result.metrics.wall_time_seconds >= 0


class TestHarness:
    @pytest.fixture(scope="class")
    def harness(self):
        return EvaluationHarness(SMALL_SIZES)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_correctness_report(self, harness):
        report = harness.verify_correctness()
        assert set(report) == set(DEFAULT_SIZES)
        assert all(report.values())

    def test_figure9_shape(self, harness):
        data = harness.figure9()
        assert len(data.rows) == len(DEFAULT_SIZES)
        assert all(row.speedup > 0 for row in data.rows)
        # Performance parity: the geomean is close to 1.0 (paper: 1.09x).
        assert 0.8 <= data.geomean <= 1.3

    def test_figure10_shape(self, harness):
        data = harness.figure10()
        assert len(data.rows) == len(DEFAULT_SIZES)
        assert "none" in data.extra_series
        assert 0.8 <= data.geomean <= 1.3
        # rgn optimisations never hurt relative to no optimisations.
        for rgn_row, none_row in zip(data.rows, data.extra_series["none"]):
            assert rgn_row.speedup >= none_row.speedup - 1e-9

    def test_figure_formatting(self, harness):
        data = harness.figure9()
        text = format_speedup_figure(data, "Figure 9", paper=PAPER_FIGURE9)
        assert "geomean" in text
        for name in DEFAULT_SIZES:
            assert name in text

    def test_figure11_table(self):
        table = figure11_table()
        assert "Tail call optimization" in table
        assert "CSE" in table


class TestBenchmarkPrograms:
    def test_every_benchmark_typechecks_and_runs(self):
        sources = benchmark_sources(SMALL_SIZES)
        assert set(sources) == set(DEFAULT_SIZES)
        for source in sources.values():
            assert run_reference(source) is not None

    def test_regression_programs_have_unique_names(self):
        programs = regression_programs()
        names = [p.name for p in programs]
        assert len(names) == len(set(names))
