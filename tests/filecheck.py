"""FileCheck-lite: ordered CHECK / CHECK-NOT assertions over textual IR.

The subset of LLVM FileCheck the per-pass regression tests need:

* ``CHECK: <pattern>`` — some line at or after the current position must
  contain the pattern; matching advances the position past that line.
* ``CHECK-NOT: <pattern>`` — no line between the current position and the
  next ``CHECK`` match (or end of input, for trailing ``CHECK-NOT``\\ s)
  may contain the pattern.

Patterns are literal substrings, except ``{{...}}`` spans, which hold
Python regular expressions::

    filecheck(ir_text, '''
        CHECK: "func.func"
        CHECK-NOT: "rgn.val"
        CHECK: %{{[a-z0-9_$]+}} = "arith.constant"
    ''')

Failures raise :class:`FileCheckError` with the unmatched directive and
the remaining input, so a failing test reads like FileCheck output.
"""

from __future__ import annotations

import re
from typing import List, Tuple


class FileCheckError(AssertionError):
    """A CHECK directive failed to match."""


def _compile_pattern(pattern: str) -> re.Pattern:
    """Literal text with ``{{regex}}`` escapes, as one compiled regex."""
    parts: List[str] = []
    pos = 0
    for span in re.finditer(r"\{\{(.*?)\}\}", pattern):
        parts.append(re.escape(pattern[pos:span.start()]))
        parts.append(span.group(1))
        pos = span.end()
    parts.append(re.escape(pattern[pos:]))
    return re.compile("".join(parts))


def parse_checks(check_text: str) -> List[Tuple[str, str]]:
    """Extract (directive, pattern) pairs from a CHECK script."""
    checks: List[Tuple[str, str]] = []
    for line in check_text.splitlines():
        match = re.match(r"\s*(CHECK(?:-NOT)?):\s?(.*\S)\s*$", line)
        if match:
            checks.append((match.group(1), match.group(2)))
    if not checks:
        raise ValueError("no CHECK/CHECK-NOT directives in check script")
    return checks


def filecheck(input_text: str, check_text: str) -> None:
    """Assert ``input_text`` satisfies the directives of ``check_text``."""
    lines = input_text.splitlines()
    position = 0
    pending_not: List[Tuple[str, re.Pattern]] = []

    def scan_not(until: int) -> None:
        for pattern_text, pattern in pending_not:
            for index in range(position, until):
                if pattern.search(lines[index]):
                    raise FileCheckError(
                        f"CHECK-NOT: {pattern_text!r} matched line "
                        f"{index + 1}: {lines[index].strip()!r}"
                    )
        pending_not.clear()

    for directive, pattern_text in parse_checks(check_text):
        pattern = _compile_pattern(pattern_text)
        if directive == "CHECK-NOT":
            pending_not.append((pattern_text, pattern))
            continue
        for index in range(position, len(lines)):
            if pattern.search(lines[index]):
                scan_not(index)
                position = index + 1
                break
        else:
            remaining = "\n".join(lines[position:position + 8])
            raise FileCheckError(
                f"CHECK: {pattern_text!r} not found after line {position}; "
                f"remaining input starts:\n{remaining}"
            )
    scan_not(len(lines))
