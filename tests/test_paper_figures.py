"""Tests that reproduce the paper's worked IR examples (Figures 1, 4-8 and
the §IV-B illustrations) and check the claimed before/after shapes."""

from repro.backend import MlirCompiler, PipelineOptions, run_mlir, run_reference
from repro.backend.pipeline import Frontend
from repro.backend.lp_codegen import generate_lp_module
from repro.backend.lp_to_rgn import lower_lp_to_rgn
from repro.dialects import arith, lp, rgn
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp
from repro.ir import Builder, FunctionType, InsertionPoint, box, i1, verify
from repro.lambda_rc import insert_rc
from repro.rewrite import PassManager
from repro.transforms import (
    CaseEliminationPass,
    CommonBranchEliminationPass,
    DeadCodeEliminationPass,
    DeadRegionEliminationPass,
    RegionGVNPass,
)


def _region_returning(builder, value):
    val = builder.create(rgn.ValOp)
    inner = Builder(InsertionPoint.at_end(val.body_block))
    c = inner.create(lp.IntOp, value)
    inner.create(lp.ReturnOp, c.result())
    return val


def op_names(root):
    return [op.name for op in root.walk() if op is not root]


class TestFigure1:
    """Figure 1: the three functional optimisations as SSA rewrites."""

    def test_dead_expression_elimination(self):
        # out = let x = e in y  ==>  out = y, when x is unused.
        module = ModuleOp()
        func = FuncOp("f", FunctionType([box], [box]))
        module.append(func)
        builder = Builder(InsertionPoint.at_end(func.entry_block))
        _region_returning(builder, 1)  # %x = rgn.val { e }, never run
        builder.create(lp.ReturnOp, func.arguments[0])
        DeadRegionEliminationPass().run(module)
        assert "rgn.val" not in op_names(func)

    def test_case_elimination(self):
        # out = case True of True -> e | False -> f  ==>  out = e
        module = ModuleOp()
        func = FuncOp("f", FunctionType([], [box]))
        module.append(func)
        builder = Builder(InsertionPoint.at_end(func.entry_block))
        e = _region_returning(builder, 3)
        f = _region_returning(builder, 5)
        true = builder.create(arith.ConstantOp, 1, i1)
        selected = builder.create(arith.SelectOp, true.result(), e.result(), f.result())
        builder.create(rgn.RunOp, selected.result())
        PassManager([CaseEliminationPass(), DeadCodeEliminationPass()]).run(module)
        ints = [op.value for op in func.walk() if isinstance(op, lp.IntOp)]
        assert ints == [3]

    def test_common_branch_elimination(self):
        # out = case x of True -> e | False -> e  ==>  out = e
        module = ModuleOp()
        func = FuncOp("f", FunctionType([i1], [box]))
        module.append(func)
        builder = Builder(InsertionPoint.at_end(func.entry_block))
        e1 = _region_returning(builder, 7)
        e2 = _region_returning(builder, 7)
        selected = builder.create(
            arith.SelectOp, func.arguments[0], e1.result(), e2.result()
        )
        builder.create(rgn.RunOp, selected.result())
        PassManager(
            [
                RegionGVNPass(),
                CommonBranchEliminationPass(),
                CaseEliminationPass(),
                DeadCodeEliminationPass(),
            ]
        ).run(module)
        assert op_names(func) == ["lp.int", "lp.return"]


class TestFigure4:
    INT_USAGE = """
def intUsage (n : Nat) : Nat :=
  match n with
  | 42 => 43
  | _ => 99999999
def main : Nat := intUsage 42 + intUsage 5
"""

    def test_literal_match_uses_runtime_equality(self):
        module = generate_lp_module(insert_rc(Frontend.to_pure(self.INT_USAGE)))
        int_usage = module.lookup_symbol("intUsage")
        callees = [
            op.callee
            for op in int_usage.walk()
            if op.name == "func.call"
        ]
        assert "lean_nat_dec_eq" in callees
        assert "lp.switch" in op_names(int_usage)

    def test_program_result(self):
        assert run_reference(self.INT_USAGE) == 43 + 99999999
        assert run_mlir(self.INT_USAGE).value == 43 + 99999999


class TestFigure5And8:
    EVAL = """
def eval (x : Nat) (y : Nat) (z : Nat) : Nat :=
  match x, y, z with
  | 0, 2, _ => 40
  | 0, _, 2 => 50
  | _, _, _ => 60
def main : Nat := eval 0 2 1 + eval 0 1 2 + eval 1 1 1
"""

    def test_joinpoints_deduplicate_default_arm(self):
        module = generate_lp_module(insert_rc(Frontend.to_pure(self.EVAL)))
        eval_fn = module.lookup_symbol("eval")
        names = op_names(eval_fn)
        assert names.count("lp.joinpoint") >= 1
        assert names.count("lp.jump") >= 2
        # The 60-returning right-hand side exists exactly once (Figure 5 C).
        sixties = [
            op for op in eval_fn.walk()
            if isinstance(op, lp.IntOp) and op.value == 60
        ]
        assert len(sixties) == 1

    def test_lowering_to_rgn_shapes(self):
        module = generate_lp_module(insert_rc(Frontend.to_pure(self.EVAL)))
        lower_lp_to_rgn(module)
        verify(module)
        eval_fn = module.lookup_symbol("eval")
        names = op_names(eval_fn)
        # Figure 8: switches become select/rgn.switch over rgn.val + rgn.run;
        # join points become rgn.val run from several places.
        assert "rgn.val" in names
        assert "rgn.run" in names
        assert "lp.joinpoint" not in names and "lp.switch" not in names

    def test_results_unchanged(self):
        expected = run_reference(self.EVAL)
        assert run_mlir(self.EVAL).value == expected
        assert run_mlir(self.EVAL, PipelineOptions.variant("rgn")).value == expected


class TestFigure6And7:
    def test_singleton_and_length(self):
        src = """
inductive List where
| nil
| cons (i : Nat) (l : List)
def singleton (n : Nat) : List := List.cons n List.nil
def length (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons _ l => 1 + length l
def main : Nat := length (singleton 42)
"""
        module = generate_lp_module(insert_rc(Frontend.to_pure(src)))
        singleton = module.lookup_symbol("singleton")
        names = op_names(singleton)
        assert names.count("lp.construct") >= 1
        length = module.lookup_symbol("length")
        lnames = op_names(length)
        assert "lp.getlabel" in lnames and "lp.project" in lnames
        assert run_mlir(src).value == 1

    def test_closures_pap_and_papextend(self):
        src = """
def k (x : Nat) (y : Nat) : Nat := x
def k10 : Nat -> Nat := k 10
def ap42 (f : Nat -> Nat -> Nat) : Nat -> Nat := f 42
def k42 : Nat -> Nat := ap42 k
def main : Nat := k10 1 + k42 2
"""
        module = generate_lp_module(insert_rc(Frontend.to_pure(src)))
        names = op_names(module)
        assert "lp.pap" in names and "lp.papextend" in names
        assert run_mlir(src).value == 10 + 42
        assert run_reference(src) == 52


class TestPassStatisticsReporting:
    def test_rgn_pipeline_reports_statistics(self):
        artifacts = MlirCompiler().compile(TestFigure5And8.EVAL)
        assert "region-gvn" in artifacts.pass_statistics
        # Dead region elimination now rides inside the unified
        # canonicalisation drain (one worklist seed per function).
        assert "canonicalize" in artifacts.pass_statistics
        assert artifacts.pass_statistics["canonicalize"]["match-attempts"] > 0
