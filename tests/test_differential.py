"""Differential correctness suite (the analogue of §V-A's 648-test run).

Every regression program and every benchmark is executed through:

* the λpure reference interpreter (golden semantics),
* the baseline ("leanc") pipeline,
* the lp+rgn pipeline in all three Figure-10 variants,

and all answers must agree.  Heap balance (no leaks, no double frees) is
asserted implicitly: the interpreters raise if the reference counts do not
balance at exit.
"""

import pytest

from repro.backend import (
    FIGURE10_VARIANTS,
    PipelineOptions,
    run_baseline,
    run_mlir,
    run_reference,
)
from repro.eval import benchmark_sources, regression_programs

REGRESSION = regression_programs()


@pytest.mark.parametrize(
    "program", REGRESSION, ids=[p.name for p in REGRESSION]
)
def test_regression_program_baseline_matches_reference(program):
    expected = run_reference(program.source)
    result = run_baseline(program.source)
    assert result.value == expected
    assert result.heap_stats["allocations"] == result.heap_stats["frees"]


@pytest.mark.parametrize(
    "program", REGRESSION, ids=[p.name for p in REGRESSION]
)
def test_regression_program_mlir_matches_reference(program):
    expected = run_reference(program.source)
    result = run_mlir(program.source)
    assert result.value == expected
    assert result.heap_stats["allocations"] == result.heap_stats["frees"]


@pytest.mark.parametrize("variant", FIGURE10_VARIANTS)
@pytest.mark.parametrize(
    "program",
    [p for p in REGRESSION if p.category in ("pattern-matching", "closures", "paper-figures")],
    ids=[
        p.name
        for p in REGRESSION
        if p.category in ("pattern-matching", "closures", "paper-figures")
    ],
)
def test_regression_program_variants_match_reference(program, variant):
    expected = run_reference(program.source)
    result = run_mlir(program.source, PipelineOptions.variant(variant))
    assert result.value == expected


BENCHMARKS = benchmark_sources()


@pytest.mark.parametrize("name", sorted(BENCHMARKS), ids=sorted(BENCHMARKS))
def test_benchmark_all_backends_agree(name):
    source = BENCHMARKS[name]
    expected = run_reference(source)
    baseline = run_baseline(source)
    mlir = run_mlir(source)
    assert baseline.value == expected
    assert mlir.value == expected
    assert baseline.heap_stats["allocations"] == baseline.heap_stats["frees"]
    assert mlir.heap_stats["allocations"] == mlir.heap_stats["frees"]


def test_suite_summary_counts():
    """The regression suite is large enough to be meaningful."""
    assert len(REGRESSION) >= 50
    categories = {p.category for p in REGRESSION}
    assert {
        "arithmetic",
        "booleans",
        "pattern-matching",
        "closures",
        "recursion",
        "arrays",
        "paper-figures",
    } <= categories
