"""Unit tests for the IR core: values, operations, blocks, regions."""

import pytest

from repro.dialects import arith, lp
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import CallOp, FuncOp, ReturnOp
from repro.ir import (
    Block,
    Builder,
    InsertionPoint,
    IRMapping,
    Operation,
    Region,
    box,
    i1,
    i64,
    FunctionType,
)


def make_simple_func(name="f", n_args=1):
    func = FuncOp(name, FunctionType([i64] * n_args, [i64]))
    return func


class TestValuesAndUses:
    def test_op_result_types(self):
        c = arith.ConstantOp(7)
        assert c.result().type == i64
        assert c.num_results == 1

    def test_use_tracking(self):
        c = arith.ConstantOp(1)
        add = arith.AddIOp(c.result(), c.result())
        assert c.result().num_uses == 2
        assert add in c.result().users()

    def test_replace_all_uses_with(self):
        a = arith.ConstantOp(1)
        b = arith.ConstantOp(2)
        add = arith.AddIOp(a.result(), a.result())
        a.result().replace_all_uses_with(b.result())
        assert a.result().num_uses == 0
        assert b.result().num_uses == 2
        assert add.operands[0] is b.result()

    def test_set_operand_updates_uses(self):
        a = arith.ConstantOp(1)
        b = arith.ConstantOp(2)
        add = arith.AddIOp(a.result(), a.result())
        add.set_operand(0, b.result())
        assert a.result().num_uses == 1
        assert b.result().num_uses == 1

    def test_erase_operand(self):
        a = arith.ConstantOp(1)
        call = CallOp("g", [a.result(), a.result()], [i64])
        call.erase_operand(0)
        assert len(call.operands) == 1
        assert a.result().num_uses == 1

    def test_users_distinct(self):
        a = arith.ConstantOp(1)
        add = arith.AddIOp(a.result(), a.result())
        assert a.result().users() == [add]


class TestOperationStructure:
    def test_erase_requires_no_uses(self):
        a = arith.ConstantOp(1)
        arith.AddIOp(a.result(), a.result())
        with pytest.raises(ValueError):
            a.erase()

    def test_erase_drops_operand_uses(self):
        block = Block()
        a = block.append(arith.ConstantOp(1))
        add = block.append(arith.AddIOp(a.result(), a.result()))
        add.erase()
        assert a.result().num_uses == 0
        assert len(block.operations) == 1

    def test_move_before_and_after(self):
        block = Block()
        a = block.append(arith.ConstantOp(1))
        b = block.append(arith.ConstantOp(2))
        b.move_before(a)
        assert block.operations == [b, a]
        b.move_after(a)
        assert block.operations == [a, b]

    def test_is_before_in_block(self):
        block = Block()
        a = block.append(arith.ConstantOp(1))
        b = block.append(arith.ConstantOp(2))
        assert a.is_before_in_block(b)
        assert not b.is_before_in_block(a)

    def test_parent_op_chain(self):
        module = ModuleOp()
        func = make_simple_func()
        module.append(func)
        builder = Builder(InsertionPoint.at_end(func.entry_block))
        c = builder.create(arith.ConstantOp, 3)
        assert c.parent_op() is func
        assert func.parent_op() is module
        assert list(c.ancestors()) == [func, module]
        assert module.is_ancestor_of(c)

    def test_attributes_helpers(self):
        c = arith.ConstantOp(1)
        from repro.ir import StringAttr

        c.set_attr("note", StringAttr("hello"))
        assert c.get_attr("note").value == "hello"
        c.remove_attr("note")
        assert c.get_attr("note") is None

    def test_walk_nested(self):
        module = ModuleOp()
        func = make_simple_func()
        module.append(func)
        builder = Builder(InsertionPoint.at_end(func.entry_block))
        c = builder.create(arith.ConstantOp, 3)
        builder.create(ReturnOp, [c.result()])
        names = [op.name for op in module.walk()]
        assert names == ["builtin.module", "func.func", "arith.constant", "func.return"]


class TestClone:
    def test_clone_simple_op(self):
        c = arith.ConstantOp(5)
        clone = c.clone()
        assert clone is not c
        assert clone.value == 5
        assert clone.name == "arith.constant"

    def test_clone_with_mapping(self):
        a = arith.ConstantOp(1)
        b = arith.ConstantOp(2)
        add = arith.AddIOp(a.result(), a.result())
        mapping = IRMapping()
        mapping.map_value(a.result(), b.result())
        clone = add.clone(mapping)
        assert clone.operands[0] is b.result()
        assert clone.operands[1] is b.result()

    def test_clone_nested_region(self):
        from repro.dialects import rgn

        val = rgn.ValOp()
        inner = Builder(InsertionPoint.at_end(val.body_block))
        c = inner.create(lp.IntOp, 3)
        inner.create(lp.ReturnOp, c.result())
        clone = val.clone()
        assert len(clone.body_block.operations) == 2
        # Cloned ops reference cloned values, not the originals.
        cloned_ret = clone.body_block.operations[1]
        assert cloned_ret.operands[0] is clone.body_block.operations[0].result()

    def test_clone_function(self):
        func = make_simple_func()
        builder = Builder(InsertionPoint.at_end(func.entry_block))
        builder.create(ReturnOp, [func.arguments[0]])
        clone = func.clone()
        assert clone.sym_name == "f"
        assert len(clone.entry_block.operations) == 1
        assert clone.entry_block.operations[0].operands[0] is clone.arguments[0]


class TestBlocksAndRegions:
    def test_block_arguments(self):
        block = Block([i64, box])
        assert len(block.arguments) == 2
        assert block.arguments[0].index == 0
        assert block.arguments[1].type == box

    def test_split_before(self):
        func = make_simple_func()
        block = func.entry_block
        a = block.append(arith.ConstantOp(1))
        b = block.append(arith.ConstantOp(2))
        c = block.append(arith.ConstantOp(3))
        new_block = block.split_before(b)
        assert block.operations == [a]
        assert new_block.operations == [b, c]
        assert b.parent is new_block

    def test_predecessors_successors(self):
        from repro.dialects import cf

        func = make_simple_func()
        entry = func.entry_block
        target = Block()
        func.body.add_block(target)
        entry.append(cf.BranchOp(target))
        target.append(ReturnOp([func.arguments[0]]))
        assert entry.successors() == [target]
        assert target.predecessors() == [entry]

    def test_region_single_block_helper(self):
        region = Region()
        region.add_block(Block())
        assert region.single_block() is region.blocks[0]
        region.add_block(Block())
        with pytest.raises(ValueError):
            region.single_block()

    def test_block_erase(self):
        func = make_simple_func()
        extra = Block()
        func.body.add_block(extra)
        extra.append(arith.ConstantOp(1))
        extra.erase()
        assert len(func.body.blocks) == 1

    def test_region_op_count(self):
        func = make_simple_func()
        builder = Builder(InsertionPoint.at_end(func.entry_block))
        builder.create(arith.ConstantOp, 1)
        builder.create(ReturnOp, [func.arguments[0]])
        assert func.body.op_count() == 2


class TestBuilder:
    def test_insertion_before_after(self):
        block = Block()
        a = block.append(arith.ConstantOp(1))
        builder = Builder(InsertionPoint.before(a))
        b = builder.create(arith.ConstantOp, 2)
        assert block.operations == [b, a]
        builder.set_insertion_point_after(a)
        c = builder.create(arith.ConstantOp, 3)
        assert block.operations == [b, a, c]

    def test_create_block(self):
        func = make_simple_func()
        builder = Builder()
        new_block = builder.create_block(func.body, [i1])
        assert new_block in func.body.blocks
        assert builder.insertion_point.block is new_block

    def test_builder_requires_insertion_point(self):
        builder = Builder()
        with pytest.raises(ValueError):
            builder.insert(arith.ConstantOp(1))
