"""Tests for the memoised region fingerprints (PR 4).

Covers the invalidation contract of
:class:`repro.transforms.region_gvn.RegionFingerprinter` — mutating an op
drops exactly the memo of the enclosing region chain — and checks the
memoised fingerprints against the uncached :func:`region_value_number`
oracle over random mutation interleavings.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialects import arith, lp, rgn
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp
from repro.ir.attributes import IntegerAttr
from repro.ir.builder import Builder, InsertionPoint
from repro.ir.types import FunctionType, i1
from repro.rewrite.pass_manager import PassManager
from repro.transforms.region_gvn import (
    RegionFingerprinter,
    RegionGVNPass,
    ValueNumbering,
    region_value_number,
)


def new_func(module, name, arg_types):
    func = FuncOp(name, FunctionType(arg_types, []))
    module.append(func)
    return func, Builder(InsertionPoint.at_end(func.entry_block))


def val_with_ints(builder, values):
    """A ``rgn.val`` returning the last of ``values`` (as ``lp.int``s)."""
    val = builder.create(rgn.ValOp)
    inner = Builder(InsertionPoint.at_end(val.body_block))
    result = None
    for v in values:
        result = inner.create(lp.IntOp, v)
    inner.create(lp.ReturnOp, result.result())
    return val


def nested_tower(builder, depth, payload=2):
    """``depth`` nested rgn.vals: each level's body holds the next level."""
    def build(b, remaining):
        val = b.create(rgn.ValOp)
        inner = Builder(InsertionPoint.at_end(val.body_block))
        for v in range(payload):
            inner.create(lp.IntOp, v)
        if remaining > 1:
            build(inner, remaining - 1)
        inner.create(lp.UnreachableOp)
        return val

    return build(builder, depth)


class TestFingerprintMemo:
    def test_repeated_queries_hit_the_cache(self):
        module = ModuleOp()
        _, builder = new_func(module, "f", [i1])
        val = val_with_ints(builder, [1, 2, 3])
        fp = RegionFingerprinter()
        first = fp.fingerprint(val.body_region)
        assert fp.computed == 1 and fp.hits == 0
        second = fp.fingerprint(val.body_region)
        assert second == first
        assert fp.computed == 1 and fp.hits == 1

    def test_nested_regions_hashed_once(self):
        module = ModuleOp()
        _, builder = new_func(module, "f", [i1])
        outer = nested_tower(builder, depth=4)
        fp = RegionFingerprinter()
        fp.fingerprint(outer.body_region)
        # 4 regions in the tower, each computed exactly once.
        assert fp.computed == 4
        # Re-query every nested region: all hits, nothing recomputed.
        op = outer
        while True:
            assert fp.fingerprint(op.body_region) is not None
            inner = [o for o in op.body_block if isinstance(o, rgn.ValOp)]
            if not inner:
                break
            op = inner[0]
        assert fp.computed == 4

    def test_uncached_equivalent_counts_subtree_per_request(self):
        module = ModuleOp()
        _, builder = new_func(module, "f", [i1])
        outer = nested_tower(builder, depth=3)
        fp = RegionFingerprinter()
        fp.fingerprint(outer.body_region)
        assert fp.uncached_equivalent == 3  # whole subtree on first request
        fp.fingerprint(outer.body_region)
        assert fp.uncached_equivalent == 6  # and again per repeated request

    def test_multi_block_region_fingerprints_none(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [i1])
        val = builder.create(rgn.ValOp)
        val.body_region.add_block()  # second block: not straight-line
        fp = RegionFingerprinter()
        assert fp.fingerprint(val.body_region) is None
        assert fp.fingerprint(val.body_region) is None
        assert fp.computed == 1  # the None verdict is memoised too


class TestInvalidation:
    def test_mutating_nested_op_drops_exactly_the_enclosing_chain(self):
        module = ModuleOp()
        _, builder = new_func(module, "f", [i1])
        tower = nested_tower(builder, depth=4)
        sibling = val_with_ints(builder, [7, 8])
        fp = RegionFingerprinter()
        fp.fingerprint(tower.body_region)
        fp.fingerprint(sibling.body_region)
        assert fp.computed == 5

        # Find the innermost rgn.val and mutate an op inside its body.
        op = tower
        chain = [op]
        while True:
            inner = [o for o in op.body_block if isinstance(o, rgn.ValOp)]
            if not inner:
                break
            op = inner[0]
            chain.append(op)
        victim = op.body_block.first_op  # an lp.int in the innermost body
        fp.invalidate(victim)
        # Exactly the chain of enclosing regions was dropped (4 levels).
        assert fp.invalidations == len(chain)

        # The sibling still hits; the chain recomputes.
        before = fp.computed
        fp.fingerprint(sibling.body_region)
        assert fp.computed == before
        fp.fingerprint(tower.body_region)
        assert fp.computed == before + len(chain)

    def test_invalidation_reflects_the_mutation(self):
        module = ModuleOp()
        _, builder = new_func(module, "f", [i1])
        a = val_with_ints(builder, [1, 2])
        b = val_with_ints(builder, [9, 1, 2])
        fp = RegionFingerprinter()
        assert fp.fingerprint(a.body_region) != fp.fingerprint(b.body_region)
        # Erase the (unused) leading lp.int of b: the bodies become identical.
        leading = b.body_block.first_op
        fp.invalidate(leading)
        leading.erase()
        assert fp.fingerprint(a.body_region) == fp.fingerprint(b.body_region)

    def test_attribute_key_dropped_with_the_chain(self):
        module = ModuleOp()
        _, builder = new_func(module, "f", [i1])
        a = val_with_ints(builder, [5])
        fp = RegionFingerprinter()
        first = fp.fingerprint(a.body_region)
        # Mutate the constant's attribute; the cached attr key must go too.
        const = a.body_block.first_op
        fp.invalidate(const)
        const.set_attr("value", IntegerAttr(6))
        changed = fp.fingerprint(a.body_region)
        assert changed != first


class TestPassUsesCache:
    def test_pass_merges_and_reports_cache_meters(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [i1])
        a = val_with_ints(builder, [7])
        b = val_with_ints(builder, [7])
        sel = builder.create(
            arith.SelectOp,
            func.entry_block.arguments[0],
            a.result(),
            b.result(),
        )
        builder.create(rgn.RunOp, sel.result())
        pm = PassManager([RegionGVNPass()])
        pm.run(module)
        stats = pm.statistics["region-gvn"]
        assert stats.get("regions-merged") == 1
        assert stats.get("fingerprints-computed") >= 2
        # The merge notified the enclosing chains; nothing above the merged
        # vals was memoised, so no cached entry needed dropping.
        assert stats.get("fingerprint-invalidations") == 0
        vals = [op for op in func.walk() if isinstance(op, rgn.ValOp)]
        assert len(vals) == 1


# -- hypothesis: memoised fingerprints vs the uncached oracle ----------------


@st.composite
def tower_specs(draw):
    """A list of (depth, payload-values) specs for sibling towers."""
    n = draw(st.integers(min_value=2, max_value=4))
    specs = []
    for _ in range(n):
        depth = draw(st.integers(min_value=1, max_value=3))
        payload = draw(
            st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=3)
        )
        specs.append((depth, tuple(payload)))
    return specs


def build_suite(specs):
    module = ModuleOp()
    func, builder = new_func(module, "f", [i1])
    tops = []
    for depth, payload in specs:
        def build(b, remaining):
            val = b.create(rgn.ValOp)
            inner = Builder(InsertionPoint.at_end(val.body_block))
            for v in payload:
                inner.create(lp.IntOp, v)
            if remaining > 1:
                build(inner, remaining - 1)
            inner.create(lp.UnreachableOp)
            return val

        tops.append(build(builder, depth))
    builder.create(lp.UnreachableOp)
    return module, func, tops


def all_val_ops(func):
    return [op for op in func.walk() if isinstance(op, rgn.ValOp)]


@settings(max_examples=60, deadline=None)
@given(
    specs=tower_specs(),
    mutations=st.lists(
        st.tuples(st.integers(min_value=0, max_value=30), st.booleans()),
        max_size=4,
    ),
)
def test_memoised_partition_matches_uncached_oracle(specs, mutations):
    """After arbitrary erase interleavings (each reported via invalidate),
    the equality partition induced by the memoised fingerprints matches the
    partition of the uncached ``region_value_number`` oracle."""
    module, func, _ = build_suite(specs)
    fp = RegionFingerprinter()
    # Warm the memo on everything.
    for op in all_val_ops(func):
        fp.fingerprint(op.body_region)
    # Random mutation interleavings: erase a leaf lp.int somewhere, notify.
    for index, query_between in mutations:
        ints = [
            op
            for op in func.walk()
            if isinstance(op, lp.IntOp) and not op.results_used()
        ]
        if not ints:
            break
        victim = ints[index % len(ints)]
        fp.invalidate(victim)
        victim.erase()
        if query_between:
            for op in all_val_ops(func):
                fp.fingerprint(op.body_region)

    vals = all_val_ops(func)
    memoised = [fp.fingerprint(op.body_region) for op in vals]
    oracle_numbering = ValueNumbering()
    oracle = [
        region_value_number(op.body_region, oracle_numbering) for op in vals
    ]
    for i in range(len(vals)):
        for j in range(len(vals)):
            assert (memoised[i] == memoised[j]) == (oracle[i] == oracle[j]), (
                f"regions {i} and {j}: memoised "
                f"{'equal' if memoised[i] == memoised[j] else 'distinct'}, "
                f"oracle {'equal' if oracle[i] == oracle[j] else 'distinct'}"
            )


@settings(max_examples=40, deadline=None)
@given(specs=tower_specs())
def test_pass_result_matches_prememoisation_semantics(specs):
    """The memoised pass merges exactly the regions the uncached fingerprint
    equality would merge (PR 3 semantics preserved)."""
    module, func, _ = build_suite(specs)
    # Expected merge count: group the *top-level* val fingerprints (the pass
    # only merges within one block; all tops share the entry block).
    numbering = ValueNumbering()
    groups = {}
    tops = [op for op in func.entry_block if isinstance(op, rgn.ValOp)]
    for op in tops:
        key = region_value_number(op.body_region, numbering)
        groups.setdefault(key, []).append(op)
    # Nested vals merge within their own blocks too; count per block.
    expected_top_merges = sum(len(g) - 1 for g in groups.values())

    pm = PassManager([RegionGVNPass()])
    pm.run(module)
    remaining_tops = [op for op in func.entry_block if isinstance(op, rgn.ValOp)]
    assert len(tops) - len(remaining_tops) == expected_top_merges
