"""Tests for the backend lowerings: λrc → lp, lp → rgn, rgn → CFG, C emission."""

import pytest

from repro.backend import (
    BaselineCompiler,
    MlirCompiler,
    PipelineOptions,
    emit_c_source,
    generate_lp_module,
    lower_lp_to_rgn,
    lower_rgn_to_cf,
)
from repro.backend.pipeline import Frontend
from repro.dialects import cf, lp, rgn
from repro.dialects.func import FuncOp, ReturnOp
from repro.ir import verify
from repro.lambda_rc import insert_rc

EVAL_SRC = """
def eval (x : Nat) (y : Nat) (z : Nat) : Nat :=
  match x, y, z with
  | 0, 2, _ => 40
  | 0, _, 2 => 50
  | _, _, _ => 60
def main : Nat := eval 0 1 2
"""

LIST_SRC = """
inductive List where
| nil
| cons (h : Nat) (t : List)
def length (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons _ t => 1 + length t
def main : Nat := length (List.cons 1 (List.cons 2 List.nil))
"""

CLOSURE_SRC = """
def k (x : Nat) (y : Nat) : Nat := x
def ap42 (f : Nat -> Nat -> Nat) : Nat -> Nat := f 42
def main : Nat := (ap42 k) 7
"""


def lp_module_for(src):
    rc = insert_rc(Frontend.to_pure(src))
    return generate_lp_module(rc)


def op_names(root):
    return [op.name for op in root.walk()]


class TestLpCodegen:
    def test_module_has_all_functions(self):
        module = lp_module_for(LIST_SRC)
        names = {f.sym_name for f in module.functions()}
        assert {"length", "main"} <= names
        verify(module)

    def test_case_becomes_getlabel_and_switch(self):
        module = lp_module_for(LIST_SRC)
        length = module.lookup_symbol("length")
        names = op_names(length)
        assert "lp.getlabel" in names and "lp.switch" in names

    def test_join_points_emitted(self):
        module = lp_module_for(EVAL_SRC)
        eval_fn = module.lookup_symbol("eval")
        names = op_names(eval_fn)
        assert "lp.joinpoint" in names and "lp.jump" in names

    def test_closures_emitted(self):
        module = lp_module_for(CLOSURE_SRC)
        names = op_names(module)
        assert "lp.pap" in names and "lp.papextend" in names

    def test_refcount_ops_emitted(self):
        module = lp_module_for(LIST_SRC)
        names = op_names(module)
        assert "lp.inc" in names or "lp.dec" in names

    def test_function_signature_uses_box_type(self):
        module = lp_module_for(LIST_SRC)
        length = module.lookup_symbol("length")
        assert str(length.function_type) == "(!lp.t) -> !lp.t"

    def test_jump_verifies_against_joinpoint(self):
        module = lp_module_for(EVAL_SRC)
        verify(module)  # lp.jump's verifier resolves the enclosing joinpoint


class TestLpToRgn:
    def test_switches_become_region_values(self):
        module = lp_module_for(LIST_SRC)
        lower_lp_to_rgn(module)
        verify(module)
        names = op_names(module)
        assert "rgn.val" in names and "rgn.run" in names
        assert "lp.switch" not in names and "lp.joinpoint" not in names

    def test_two_way_switch_uses_select(self):
        module = lp_module_for(LIST_SRC)
        lower_lp_to_rgn(module)
        names = op_names(module.lookup_symbol("length"))
        assert "arith.select" in names and "arith.cmpi" in names

    def test_joinpoints_become_named_regions(self):
        module = lp_module_for(EVAL_SRC)
        lower_lp_to_rgn(module)
        verify(module)
        names = op_names(module.lookup_symbol("eval"))
        assert "lp.jump" not in names
        assert names.count("rgn.run") >= 2

    def test_region_value_uses_are_legal(self):
        from repro.dialects.rgn import verify_region_value_uses

        module = lp_module_for(EVAL_SRC)
        lower_lp_to_rgn(module)
        assert verify_region_value_uses(module) == []

    def test_data_ops_untouched(self):
        module = lp_module_for(LIST_SRC)
        before = [n for n in op_names(module) if n in ("lp.construct", "lp.project")]
        lower_lp_to_rgn(module)
        after = [n for n in op_names(module) if n in ("lp.construct", "lp.project")]
        assert sorted(before) == sorted(after)


class TestRgnToCf:
    def lowered(self, src):
        module = lp_module_for(src)
        lower_lp_to_rgn(module)
        lower_rgn_to_cf(module)
        verify(module)
        return module

    def test_no_structured_ops_remain(self):
        module = self.lowered(EVAL_SRC)
        names = op_names(module)
        assert "rgn.val" not in names and "rgn.run" not in names
        assert "rgn.switch" not in names
        assert "lp.return" not in names

    def test_cfg_terminators_present(self):
        module = self.lowered(LIST_SRC)
        names = op_names(module.lookup_symbol("length"))
        assert "cf.cond_br" in names or "cf.switch" in names
        assert "func.return" in names

    def test_functions_have_multiple_blocks(self):
        module = self.lowered(LIST_SRC)
        length = module.lookup_symbol("length")
        assert len(length.body.blocks) >= 3

    def test_shared_join_block_has_multiple_predecessors(self):
        module = self.lowered(EVAL_SRC)
        eval_fn = module.lookup_symbol("eval")
        shared = [
            block
            for block in eval_fn.body.blocks
            if len(block.predecessors()) >= 2
        ]
        assert shared, "the join point should become a block with >= 2 predecessors"


class TestCBackend:
    def test_emits_c_for_every_function(self):
        rc = insert_rc(Frontend.to_pure(LIST_SRC))
        source = emit_c_source(rc)
        assert "lean_object* l_length(lean_object*" in source
        assert "#include <lean/lean.h>" in source

    def test_switch_and_goto_shapes(self):
        rc = insert_rc(Frontend.to_pure(EVAL_SRC))
        source = emit_c_source(rc)
        assert "switch (lean_obj_tag(" in source
        assert "goto " in source

    def test_refcounting_calls_present(self):
        rc = insert_rc(Frontend.to_pure(LIST_SRC))
        source = emit_c_source(rc)
        assert "lean_dec_n(" in source or "lean_inc_n(" in source

    def test_baseline_compiler_produces_artifacts(self):
        artifacts = BaselineCompiler().compile(LIST_SRC)
        assert artifacts.c_source and artifacts.rc_program.functions


class TestPipelines:
    def test_mlir_compiler_produces_cfg_module(self):
        artifacts = MlirCompiler().compile(LIST_SRC)
        assert artifacts.cfg_module is not None
        verify(artifacts.cfg_module)
        assert artifacts.pass_statistics  # rgn optimisations ran

    def test_variant_matrix(self):
        simplifier = PipelineOptions.variant("simplifier")
        assert simplifier.run_lambda_simplifier and not simplifier.run_rgn_optimizations
        rgn_variant = PipelineOptions.variant("rgn")
        assert not rgn_variant.run_lambda_simplifier and rgn_variant.run_rgn_optimizations
        none_variant = PipelineOptions.variant("none")
        assert not none_variant.run_lambda_simplifier
        assert not none_variant.run_rgn_optimizations
        with pytest.raises(ValueError):
            PipelineOptions.variant("bogus")

    def test_no_rgn_opts_variant_still_correct(self):
        from repro.backend import run_mlir, run_reference

        expected = run_reference(EVAL_SRC)
        result = run_mlir(EVAL_SRC, PipelineOptions.variant("none"))
        assert result.value == expected
