"""Pipeline-spec parsing, validation, canonicalisation and fingerprints.

The textual pipeline grammar is the contract between ``repro.opt``, the
compiler's declarative phase specs (``rgn_pipeline_spec``) and the
incremental-recompilation cache keys, so each side gets direct coverage:

* syntax — valid specs, option payloads, whitespace tolerance, and the
  exact error for every malformed shape,
* registry resolution — unknown passes / options, repeatability, choice
  sets, and pass-constructor validation (``inline{max-callee-ops=...}``),
* canonical form + fingerprint stability (equivalent specs share one
  fingerprint, different pipelines never do),
* a docs drift guard: every registered pass name appears in
  ``docs/PASSES.md``.
"""

import re
from pathlib import Path

import pytest

from repro.backend.pipeline import PipelineOptions, rgn_pipeline_spec
from repro.rewrite import PassManager
from repro.rewrite.registry import (
    PipelineSpecError,
    build_passes,
    build_pipeline,
    canonical_pipeline_spec,
    parse_pipeline_spec,
    pipeline_fingerprint,
    registered_passes,
)
from repro.transforms import CanonicalizePass, CSEPass
from repro.transforms.inliner import InlinerPass

REPO_ROOT = Path(__file__).resolve().parent.parent
PASSES_MD = REPO_ROOT / "docs" / "PASSES.md"

#: Every pass the registry must expose — the compiler's optimisation
#: surface.  Extending the registry means extending this list (and
#: docs/PASSES.md, per the drift test below).
EXPECTED_PASSES = [
    "canonicalize",
    "case-elimination",
    "common-branch-elimination",
    "constant-fold",
    "cse",
    "dce",
    "dead-region-elimination",
    "inline",
    "lp-rc-fusion",
    "region-gvn",
]


class TestParsing:
    def test_single_pass(self):
        (inv,) = parse_pipeline_spec("cse")
        assert inv.name == "cse"
        assert inv.options == {}

    def test_comma_separated_passes_in_order(self):
        invocations = parse_pipeline_spec("cse,region-gvn,canonicalize,dce")
        assert [i.name for i in invocations] == [
            "cse", "region-gvn", "canonicalize", "dce",
        ]

    def test_whitespace_is_insignificant(self):
        spec = "  cse , region-gvn ,\n canonicalize{ ablate = case-elim } "
        invocations = parse_pipeline_spec(spec)
        assert [i.name for i in invocations] == [
            "cse", "region-gvn", "canonicalize",
        ]
        assert invocations[2].options == {"ablate": ["case-elim"]}

    def test_option_payloads(self):
        (inv,) = parse_pipeline_spec(
            "canonicalize{ablate=case-elim,ablate=dead-region,engine=rescan}"
        )
        assert inv.options == {
            "ablate": ["case-elim", "dead-region"],
            "engine": ["rescan"],
        }

    def test_bare_option_is_a_true_flag(self):
        (inv,) = parse_pipeline_spec("canonicalize{dce}")
        assert inv.options == {"dce": ["true"]}

    def test_empty_option_braces(self):
        (inv,) = parse_pipeline_spec("cse{}")
        assert inv.options == {}

    @pytest.mark.parametrize(
        "spec, message",
        [
            ("", "empty pipeline spec"),
            ("   ", "empty pipeline spec"),
            ("cse,,dce", "expected a pass name"),
            ("cse,", "trailing ','"),
            ("cse dce", "expected ',' between passes"),
            ("canonicalize{ablate=case-elim", "unterminated '{'"),
            ("canonicalize{=x}", "malformed option"),
            ("canonicalize{ablate=}", "malformed option"),
            ("canonicalize{ablate=a,,engine=b}", "empty option"),
            ("{x}", "expected a pass name"),
        ],
    )
    def test_malformed_specs(self, spec, message):
        with pytest.raises(PipelineSpecError, match=re.escape(message)):
            parse_pipeline_spec(spec)

    @pytest.mark.parametrize(
        "spec, message",
        [
            ("cse dce", "expected ',' between passes at offset 4 in 'cse dce'"),
            ("cse,,dce", "expected a pass name at offset 4 in 'cse,,dce'"),
            ("9cse", "expected a pass name at offset 0 in '9cse'"),
            (
                "cse,region-gvn;dce",
                "expected ',' between passes at offset 14 in 'cse,region-gvn;dce'",
            ),
        ],
    )
    def test_diagnostics_carry_exact_offsets(self, spec, message):
        # The offset is part of the contract: repro.opt surfaces it
        # verbatim, and tooling points at the offending spec character.
        with pytest.raises(PipelineSpecError, match=re.escape(message)):
            parse_pipeline_spec(spec)


class TestResolution:
    def test_registry_contents(self):
        assert sorted(registered_passes()) == EXPECTED_PASSES

    def test_build_passes_constructs_registered_classes(self):
        passes = build_passes("cse,canonicalize")
        assert isinstance(passes[0], CSEPass)
        assert isinstance(passes[1], CanonicalizePass)

    def test_build_pipeline_returns_pass_manager(self):
        pipeline = build_pipeline("cse,dce", verify_each=False)
        assert isinstance(pipeline, PassManager)
        assert [p.name for p in pipeline.passes] == ["cse", "dce"]

    def test_inline_option_reaches_constructor(self):
        (inline,) = build_passes("inline{max-callee-ops=3}")
        assert isinstance(inline, InlinerPass)
        assert inline.max_callee_ops == 3

    def test_canonicalize_ablation_drops_family(self):
        (full,) = build_passes("canonicalize")
        (ablated,) = build_passes("canonicalize{ablate=case-elim}")
        assert len(ablated.patterns()) < len(full.patterns())

    def test_unknown_pass(self):
        with pytest.raises(PipelineSpecError, match="unknown pass 'nope'"):
            build_passes("cse,nope,dce")

    def test_unknown_option(self):
        with pytest.raises(
            PipelineSpecError,
            match=re.escape("pass 'cse' accepts no option 'x' (known options: none)"),
        ):
            build_passes("cse{x=1}")

    def test_out_of_choice_value(self):
        with pytest.raises(
            PipelineSpecError, match="option ablate='zzz' of pass 'canonicalize'"
        ):
            build_passes("canonicalize{ablate=zzz}")

    def test_non_repeatable_option_duplicated(self):
        with pytest.raises(
            PipelineSpecError,
            match="option 'engine' of pass 'canonicalize' given 2 times",
        ):
            build_passes("canonicalize{engine=worklist,engine=rescan}")

    def test_constructor_validation_is_a_spec_error(self):
        with pytest.raises(
            PipelineSpecError,
            match=re.escape("pass 'inline': max-callee-ops='zz' is not an integer"),
        ):
            build_passes("inline{max-callee-ops=zz}")


class TestCanonicalisation:
    def test_whitespace_and_option_order_normalise(self):
        spec = " cse, region-gvn ,canonicalize{engine=worklist,ablate=case-elim},dce"
        assert canonical_pipeline_spec(spec) == (
            "cse,region-gvn,canonicalize{ablate=case-elim,engine=worklist},dce"
        )

    def test_canonical_form_is_a_fixpoint(self):
        spec = "canonicalize{engine=rescan,ablate=dead-region,ablate=case-elim}"
        canonical = canonical_pipeline_spec(spec)
        assert canonical_pipeline_spec(canonical) == canonical

    def test_fingerprint_ignores_spelling(self):
        a = pipeline_fingerprint("cse,canonicalize{engine=worklist,ablate=case-elim}")
        b = pipeline_fingerprint(" cse ,canonicalize{ablate=case-elim,engine=worklist}")
        assert a == b

    def test_fingerprint_separates_pipelines(self):
        fingerprints = {
            pipeline_fingerprint(spec)
            for spec in (
                "cse",
                "cse,dce",
                "dce,cse",
                "canonicalize",
                "canonicalize{ablate=case-elim}",
                "canonicalize{engine=rescan}",
            )
        }
        assert len(fingerprints) == 6

    def test_fingerprint_shape(self):
        fingerprint = pipeline_fingerprint("cse")
        assert re.fullmatch(r"[0-9a-f]{16}", fingerprint)


class TestCompilerSpecs:
    def test_default_rgn_spec(self):
        assert rgn_pipeline_spec(PipelineOptions()) == (
            "cse,region-gvn,canonicalize,dce"
        )

    def test_ablations_surface_as_canonicalize_options(self):
        options = PipelineOptions(enable_case_elimination=False)
        assert rgn_pipeline_spec(options) == (
            "cse,region-gvn,canonicalize{ablate=case-elim},dce"
        )

    def test_engine_surfaces_as_canonicalize_option(self):
        options = PipelineOptions(rewrite_engine="rescan")
        assert rgn_pipeline_spec(options) == (
            "cse,region-gvn,canonicalize{engine=rescan},dce"
        )

    def test_fully_ablated_spec_drops_canonicalize(self):
        options = PipelineOptions(
            enable_constant_fold=False,
            enable_case_elimination=False,
            enable_common_branch_elimination=False,
            enable_dead_region_elimination=False,
        )
        assert "canonicalize" not in rgn_pipeline_spec(options)

    def test_every_variant_spec_builds(self):
        for options in (
            PipelineOptions(),
            PipelineOptions(enable_dead_region_elimination=False),
            PipelineOptions(rewrite_engine="rescan"),
        ):
            build_pipeline(rgn_pipeline_spec(options), verify_each=False)


class TestDocsDrift:
    def test_passes_md_exists(self):
        assert PASSES_MD.is_file(), "docs/PASSES.md is missing"

    def test_every_registered_pass_documented(self):
        text = PASSES_MD.read_text(encoding="utf-8")
        documented = set(re.findall(r"`([A-Za-z][A-Za-z0-9+_.\-]*)`", text))
        missing = sorted(set(registered_passes()) - documented)
        assert not missing, (
            "passes registered in the pass registry but absent from "
            f"docs/PASSES.md: {missing}"
        )
