"""Tests for the ``python -m repro.opt`` textual pipeline tool.

Three layers:

* CLI surface — ``--list-passes`` / ``--show-pipeline`` / telemetry flags,
  exit codes for spec errors (2), input errors (2) and IR errors (1),
* the acceptance contract: running the default pipeline over ``--emit
  rgn`` output reproduces the compiler's rgn-opt phase **byte-identically**,
* focused per-pass regression tests written against :mod:`filecheck`
  (FileCheck-lite CHECK / CHECK-NOT scripts over the tool's output) —
  the textual-IR counterpart of the whole-pipeline assertions in
  ``tests/test_transforms.py``.
"""

import io
import json

import pytest

from filecheck import FileCheckError, filecheck
from repro.backend.pipeline import MlirCompiler, PipelineOptions
from repro.dialects import arith, lp, rgn
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.ir import Builder, FunctionType, InsertionPoint, box, i1, i64, verify
from repro.ir.printer import print_module
from repro.opt import default_pipeline_spec, main as opt_main
from repro.rewrite.registry import registered_passes

SOURCE = """
def add (a b : Nat) : Nat := a + b

def double (n : Nat) : Nat := add n n

def main : Nat := double (add 4 17)
"""


def run_opt(capsys, *args):
    code = opt_main(list(args))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture(scope="module")
def compiled():
    """The compiler's own rgn / rgn-opt snapshots of SOURCE."""
    options = PipelineOptions(capture_ir=("rgn", "rgn-opt"))
    artifacts = MlirCompiler(options).compile(SOURCE)
    return artifacts.captured_ir


@pytest.fixture
def rgn_file(tmp_path, compiled):
    path = tmp_path / "input.mlir"
    path.write_text(compiled["rgn"], encoding="utf-8")
    return str(path)


def build_ir(build) -> str:
    """Textual IR of a module assembled by ``build(module)``."""
    module = ModuleOp()
    build(module)
    verify(module)
    return print_module(module)


def new_func(module, name, inputs, results):
    func = FuncOp(name, FunctionType(inputs, results))
    module.append(func)
    return func, Builder(InsertionPoint.at_end(func.entry_block))


def region_returning_int(builder, value):
    val = builder.create(rgn.ValOp)
    inner = Builder(InsertionPoint.at_end(val.body_block))
    c = inner.create(lp.IntOp, value)
    inner.create(lp.ReturnOp, c.result())
    return val


class TestCliSurface:
    def test_list_passes_names_every_registered_pass(self, capsys):
        code, out, _ = run_opt(capsys, "--list-passes")
        assert code == 0
        for name in registered_passes():
            assert name in out

    def test_show_pipeline_default(self, capsys):
        code, out, _ = run_opt(capsys, "--show-pipeline")
        assert code == 0
        lines = out.splitlines()
        assert lines[0] == default_pipeline_spec() == (
            "cse,region-gvn,canonicalize,dce"
        )
        assert lines[1].startswith("fingerprint: ")
        assert len(lines[1].split(": ")[1]) == 16

    def test_show_pipeline_canonicalises(self, capsys):
        code, out, _ = run_opt(
            capsys,
            "--show-pipeline",
            "--pipeline", " cse ,canonicalize{engine=worklist,ablate=case-elim}",
        )
        assert code == 0
        assert out.splitlines()[0] == (
            "cse,canonicalize{ablate=case-elim,engine=worklist}"
        )

    def test_show_pipeline_rejects_bad_spec(self, capsys):
        code, _, err = run_opt(capsys, "--show-pipeline", "--pipeline", "nope")
        assert code == 2
        assert "unknown pass 'nope'" in err

    def test_unknown_pass_is_a_spec_error(self, rgn_file, capsys):
        code, _, err = run_opt(capsys, rgn_file, "--pipeline", "nope")
        assert code == 2
        assert "unknown pass 'nope'" in err

    def test_input_file_required(self, capsys):
        with pytest.raises(SystemExit):
            opt_main([])
        assert "input file is required" in capsys.readouterr().err

    def test_missing_input_file(self, capsys):
        code, _, err = run_opt(capsys, "/nonexistent/input.mlir")
        assert code == 2
        assert "error:" in err

    def test_unparsable_input(self, tmp_path, capsys):
        path = tmp_path / "broken.mlir"
        path.write_text("this is not IR\n", encoding="utf-8")
        code, _, err = run_opt(capsys, str(path))
        assert code == 1
        assert "error:" in err

    def test_stdin_input(self, compiled, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO(compiled["rgn"]))
        code, out, _ = run_opt(capsys, "-")
        assert code == 0
        assert out == compiled["rgn-opt"]

    def test_output_file(self, rgn_file, compiled, tmp_path, capsys):
        out_path = tmp_path / "result.mlir"
        code, out, _ = run_opt(capsys, rgn_file, "-o", str(out_path))
        assert code == 0
        assert out == ""
        assert out_path.read_text(encoding="utf-8") == compiled["rgn-opt"]

    def test_print_ir_after(self, rgn_file, capsys):
        code, _, err = run_opt(capsys, rgn_file, "--print-ir-after", "cse")
        assert code == 0
        assert "IR Dump After cse" in err

    def test_telemetry_outputs(self, rgn_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        code, _, _ = run_opt(
            capsys, rgn_file,
            "--trace-out", str(trace), "--metrics-json", str(metrics),
        )
        assert code == 0
        events = json.loads(trace.read_text(encoding="utf-8"))["traceEvents"]
        assert any(e["name"] == "pass:cse" for e in events)
        snapshot = json.loads(metrics.read_text(encoding="utf-8"))["metrics"]
        assert any(key.startswith("rewrite.") for key in snapshot)


class TestReproducesCompiler:
    def test_default_pipeline_matches_rgn_opt_byte_identically(
        self, rgn_file, compiled, capsys
    ):
        code, out, _ = run_opt(capsys, rgn_file)
        assert code == 0
        assert out == compiled["rgn-opt"]

    def test_verify_roundtrip_passes_on_real_ir(self, rgn_file, capsys):
        code, _, err = run_opt(capsys, rgn_file, "--verify-roundtrip")
        assert code == 0
        assert err == ""

    def test_every_registered_pass_runs_alone(self, rgn_file, capsys):
        # The CI smoke matrix in miniature: each registered pass must be
        # able to run by itself over real rgn-level IR.
        for name in registered_passes():
            code, _, err = run_opt(capsys, rgn_file, "--pipeline", name)
            assert code == 0, f"pass {name!r} failed: {err}"


class TestPerPassFileCheck:
    def test_constant_fold_folds_addition(self, tmp_path, capsys):
        # tests/test_transforms.py::TestConstantFolding::test_folds_addition,
        # as a textual per-pass regression.
        def build(module):
            _, builder = new_func(module, "f", [], [i64])
            a = builder.create(arith.ConstantOp, 20)
            b = builder.create(arith.ConstantOp, 22)
            s = builder.create(arith.AddIOp, a.result(), b.result())
            builder.create(ReturnOp, [s.result()])

        path = tmp_path / "fold.mlir"
        path.write_text(build_ir(build), encoding="utf-8")
        code, out, _ = run_opt(
            capsys, str(path), "--pipeline", "constant-fold,dce"
        )
        assert code == 0
        filecheck(out, """
            CHECK: "func.func"
            CHECK: value = 42
            CHECK-NOT: "arith.addi"
            CHECK: "func.return"
        """)

    def test_case_elimination_takes_known_branch(self, tmp_path, capsys):
        # ...::TestCaseElimination::test_select_of_constant_true: a select
        # on a constant condition collapses to the matching region's body.
        def build(module):
            _, builder = new_func(module, "f", [], [box])
            a = region_returning_int(builder, 3)
            b = region_returning_int(builder, 5)
            t = builder.create(arith.ConstantOp, 1, i1)
            sel = builder.create(arith.SelectOp, t.result(), a.result(), b.result())
            builder.create(rgn.RunOp, sel.result())

        path = tmp_path / "case.mlir"
        path.write_text(build_ir(build), encoding="utf-8")
        code, out, _ = run_opt(
            capsys, str(path), "--pipeline", "case-elimination,dce"
        )
        assert code == 0
        filecheck(out, """
            CHECK: "func.func"
            CHECK-NOT: "arith.select"
            CHECK-NOT: "rgn.run"
            CHECK: "lp.int"{{.*}}value = 3
            CHECK: "lp.return"
            CHECK-NOT: value = 5
        """)

    def test_region_gvn_merges_identical_branches(self, tmp_path, capsys):
        # ...::TestRegionGVN::test_gvn_merges_identical_regions: both arms
        # return 7, so gvn + common-branch + case-elim leave a straight line.
        def build(module):
            func, builder = new_func(module, "f", [i1], [box])
            a = region_returning_int(builder, 7)
            b = region_returning_int(builder, 7)
            sel = builder.create(
                arith.SelectOp, func.arguments[0], a.result(), b.result()
            )
            builder.create(rgn.RunOp, sel.result())

        path = tmp_path / "gvn.mlir"
        path.write_text(build_ir(build), encoding="utf-8")
        code, out, _ = run_opt(
            capsys, str(path), "--pipeline",
            "region-gvn,common-branch-elimination,case-elimination,dce",
        )
        assert code == 0
        filecheck(out, """
            CHECK: "func.func"
            CHECK-NOT: "arith.select"
            CHECK-NOT: "rgn.val"
            CHECK: "lp.int"{{.*}}value = 7
            CHECK: "lp.return"
        """)

    def test_cse_merges_identical_constants(self, tmp_path, capsys):
        def build(module):
            _, builder = new_func(module, "f", [], [i64])
            a = builder.create(arith.ConstantOp, 7)
            b = builder.create(arith.ConstantOp, 7)
            s = builder.create(arith.AddIOp, a.result(), b.result())
            builder.create(ReturnOp, [s.result()])

        path = tmp_path / "cse.mlir"
        path.write_text(build_ir(build), encoding="utf-8")
        code, out, _ = run_opt(capsys, str(path), "--pipeline", "cse,dce")
        assert code == 0
        filecheck(out, """
            CHECK: value = 7
            CHECK-NOT: value = 7
        """)


class TestFileCheckHelper:
    def test_check_not_catches_violation(self):
        with pytest.raises(FileCheckError, match="CHECK-NOT"):
            filecheck("alpha\nforbidden\nomega\n", """
                CHECK: alpha
                CHECK-NOT: forbidden
                CHECK: omega
            """)

    def test_missing_check_reports_remaining_input(self):
        with pytest.raises(FileCheckError, match="not found"):
            filecheck("only this\n", "CHECK: something else")

    def test_regex_spans(self):
        filecheck("%x_7 = op\n", "CHECK: %{{[a-z0-9_$]+}} = op")


class TestMalformedInput:
    """Exit-code contract on bad inputs: IR errors are 1, spec errors 2,
    and every diagnostic names where in the text things went wrong."""

    def test_truncated_ir_exits_1_with_offset(self, tmp_path, compiled, capsys):
        text = compiled["rgn"]
        path = tmp_path / "truncated.mlir"
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        code, _, err = run_opt(capsys, str(path))
        assert code == 1
        assert "error:" in err
        assert "at offset" in err

    def test_undefined_value_exits_1(self, tmp_path, compiled, capsys):
        broken = compiled["rgn"].replace("%r_", "%undef_", 1)
        path = tmp_path / "undef.mlir"
        path.write_text(broken, encoding="utf-8")
        code, _, err = run_opt(capsys, str(path))
        assert code == 1
        assert "undefined value" in err

    def test_unknown_dialect_op_rides_through_generically(
        self, tmp_path, compiled, capsys
    ):
        # Unregistered op names parse into generic operations (the MLIR
        # convention) and must survive the pipeline untouched rather than
        # erroring or being silently dropped.
        exotic = compiled["rgn"].replace('"lp.int"', '"exotic.op"', 1)
        path = tmp_path / "exotic.mlir"
        path.write_text(exotic, encoding="utf-8")
        code, out, _ = run_opt(capsys, str(path), "--pipeline", "cse")
        assert code == 0
        assert '"exotic.op"' in out

    def test_spec_syntax_error_exits_2_with_offset(self, rgn_file, capsys):
        code, _, err = run_opt(capsys, rgn_file, "--pipeline", "cse dce")
        assert code == 2
        assert "expected ',' between passes at offset 4 in 'cse dce'" in err

    def test_spec_missing_pass_name_offset(self, rgn_file, capsys):
        code, _, err = run_opt(capsys, rgn_file, "--pipeline", "cse,,dce")
        assert code == 2
        assert "expected a pass name at offset 4 in 'cse,,dce'" in err

    def test_empty_spec_exits_2(self, rgn_file, capsys):
        code, _, err = run_opt(capsys, rgn_file, "--pipeline", "")
        assert code == 2
        assert "empty pipeline spec" in err

    def test_unterminated_options_exit_2(self, rgn_file, capsys):
        code, _, err = run_opt(capsys, rgn_file, "--pipeline", "canonicalize{engine=rescan")
        assert code == 2
        assert "unterminated '{'" in err

    def test_bad_option_value_exits_2(self, rgn_file, capsys):
        code, _, err = run_opt(capsys, rgn_file, "--pipeline", "inline{max-callee-ops=zz}")
        assert code == 2
        assert "is not an integer" in err
