"""Tests for the ``python -m repro`` CLI and pass-manager timing/statistics."""

import pytest

from repro.__main__ import main as cli_main
from repro.backend.pipeline import MlirCompiler, PipelineOptions
from repro.dialects.builtin import ModuleOp
from repro.rewrite.pass_manager import PassManager
from repro.transforms.dce import DeadCodeEliminationPass

SOURCE = """
inductive List where
| nil
| cons (head : Nat) (tail : List)

def upto (n : Nat) : List :=
  if n == 0 then List.nil else List.cons n (upto (n - 1))

def sum (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons h t => h + sum t

def main : Nat := sum (upto 10)
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "program.lean"
    path.write_text(SOURCE)
    return str(path)


class TestCli:
    def test_runs_default_pipeline(self, source_file, capsys):
        assert cli_main([source_file]) == 0
        out = capsys.readouterr().out
        assert "result: 55" in out

    @pytest.mark.parametrize(
        "variant",
        ("baseline", "simplifier", "rgn", "none", "rc-naive", "rc-opt", "rc-opt+reuse"),
    )
    def test_variants_agree(self, source_file, capsys, variant):
        assert cli_main([source_file, "--variant", variant]) == 0
        assert "result: 55" in capsys.readouterr().out

    def test_metrics_flag(self, source_file, capsys):
        assert cli_main([source_file, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "[metrics]" in out and "[heap]" in out and "[rc]" in out

    def test_verbose_prints_pass_lines(self, source_file, capsys):
        assert cli_main([source_file, "--variant", "rc-opt", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "[pass]" in out
        assert "[rc_opt] mode=opt" in out

    def test_emit_lp_and_cfg(self, source_file, capsys):
        assert cli_main([source_file, "--emit", "lp"]) == 0
        assert "lp.construct" in capsys.readouterr().out
        assert cli_main([source_file, "--emit", "cfg"]) == 0
        assert "func.func" in capsys.readouterr().out

    def test_emit_c_requires_baseline(self, source_file, capsys):
        assert cli_main([source_file, "--emit", "c"]) == 2
        assert cli_main([source_file, "--variant", "baseline", "--emit", "c"]) == 0
        assert "lean_object*" in capsys.readouterr().out

    def test_missing_file_is_an_error(self, capsys):
        assert cli_main(["/nonexistent/path.lean"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_stdin_input(self, source_file, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(SOURCE))
        assert cli_main(["-"]) == 0
        assert "result: 55" in capsys.readouterr().out


class TestPassTiming:
    def test_timings_and_statistics_populated(self):
        artifacts = MlirCompiler(PipelineOptions()).compile(SOURCE)
        module = artifacts.lp_module
        assert isinstance(module, ModuleOp)

        manager = PassManager([DeadCodeEliminationPass()])
        manager.run(module)
        assert "dce" in manager.timings
        assert manager.timings["dce"] >= 0.0
        assert manager.total_time >= 0.0
        assert manager.total_rewrites() >= 0

    def test_report_contains_every_ran_pass(self):
        artifacts = MlirCompiler(PipelineOptions()).compile(SOURCE)
        manager = PassManager([DeadCodeEliminationPass()])
        manager.run(artifacts.lp_module)
        report = manager.report()
        assert "Pass pipeline statistics" in report
        assert "dce" in report
        assert "total:" in report

    def test_verbose_prints_per_pass_lines(self, capsys):
        artifacts = MlirCompiler(PipelineOptions()).compile(SOURCE)
        manager = PassManager([DeadCodeEliminationPass()], verbose=True)
        manager.run(artifacts.lp_module)
        out = capsys.readouterr().out
        assert "[pass] dce" in out
