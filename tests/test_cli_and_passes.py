"""Tests for the ``python -m repro`` CLI and pass-manager timing/statistics."""

import pytest

from repro.__main__ import main as cli_main
from repro.backend.pipeline import MlirCompiler, PipelineOptions
from repro.dialects.builtin import ModuleOp
from repro.rewrite.pass_manager import PassManager
from repro.transforms.dce import DeadCodeEliminationPass

SOURCE = """
inductive List where
| nil
| cons (head : Nat) (tail : List)

def upto (n : Nat) : List :=
  if n == 0 then List.nil else List.cons n (upto (n - 1))

def sum (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons h t => h + sum t

def main : Nat := sum (upto 10)
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "program.lean"
    path.write_text(SOURCE)
    return str(path)


class TestCli:
    def test_runs_default_pipeline(self, source_file, capsys):
        assert cli_main([source_file]) == 0
        out = capsys.readouterr().out
        assert "result: 55" in out

    @pytest.mark.parametrize(
        "variant",
        ("baseline", "simplifier", "rgn", "none", "rc-naive", "rc-opt", "rc-opt+reuse"),
    )
    def test_variants_agree(self, source_file, capsys, variant):
        assert cli_main([source_file, "--variant", variant]) == 0
        assert "result: 55" in capsys.readouterr().out

    def test_metrics_flag(self, source_file, capsys):
        assert cli_main([source_file, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "[metrics]" in out and "[heap]" in out and "[rc]" in out

    def test_verbose_prints_pass_lines(self, source_file, capsys):
        assert cli_main([source_file, "--variant", "rc-opt", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "[pass]" in out
        assert "[rc_opt] mode=opt" in out

    def test_emit_lp_and_cfg(self, source_file, capsys):
        assert cli_main([source_file, "--emit", "lp"]) == 0
        assert "lp.construct" in capsys.readouterr().out
        assert cli_main([source_file, "--emit", "cfg"]) == 0
        assert "func.func" in capsys.readouterr().out

    def test_emit_c_requires_baseline(self, source_file, capsys):
        assert cli_main([source_file, "--emit", "c"]) == 2
        assert cli_main([source_file, "--variant", "baseline", "--emit", "c"]) == 0
        assert "lean_object*" in capsys.readouterr().out

    def test_missing_file_is_an_error(self, capsys):
        assert cli_main(["/nonexistent/path.lean"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_stdin_input(self, source_file, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(SOURCE))
        assert cli_main(["-"]) == 0
        assert "result: 55" in capsys.readouterr().out


ALL_VARIANTS = (
    "default", "baseline", "simplifier", "rgn", "none",
    "rc-naive", "rc-opt", "rc-opt+reuse",
)

#: The value the reference interpreter computes for SOURCE.
EXPECTED = 55


class TestCliEdgeCases:
    """Edge cases: stdin, the --emit matrix and --rc-mode overrides."""

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_stdin_agrees_with_reference_on_every_variant(
        self, capsys, monkeypatch, variant
    ):
        import io

        from repro.backend.pipeline import run_reference

        assert run_reference(SOURCE) == EXPECTED
        monkeypatch.setattr("sys.stdin", io.StringIO(SOURCE))
        assert cli_main(["-", "--variant", variant]) == 0
        assert f"result: {EXPECTED}" in capsys.readouterr().out

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    @pytest.mark.parametrize("emit", ("c", "lp", "cfg"))
    def test_emit_matrix(self, source_file, capsys, variant, emit):
        """Every variant × --emit combination: baseline emits only C, the
        lp+rgn variants emit only lp/cfg; emitted artifacts are non-empty."""
        code = cli_main([source_file, "--variant", variant, "--emit", emit])
        out, err = capsys.readouterr()
        baseline = variant == "baseline"
        if (baseline and emit == "c") or (not baseline and emit != "c"):
            assert code == 0
            assert len(out.strip()) > 100  # a real artifact, not a stub
            marker = {"c": "lean_object*", "lp": "lp.", "cfg": "func.func"}[emit]
            assert marker in out
        else:
            assert code == 2
            assert "error:" in err

    @pytest.mark.parametrize("rc_mode", ("naive", "opt", "opt+reuse"))
    def test_rc_mode_overrides_variant(self, source_file, capsys, rc_mode):
        """--rc-mode wins over the level implied by --variant."""
        code = cli_main(
            [source_file, "--variant", "rc-naive", "--rc-mode", rc_mode,
             "--verbose"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"result: {EXPECTED}" in out
        if rc_mode == "naive":
            assert "[rc_opt]" not in out
        else:
            assert f"[rc_opt] mode={rc_mode}" in out

    def test_rc_mode_overrides_baseline_variant(self, source_file, capsys):
        code = cli_main(
            [source_file, "--variant", "baseline", "--rc-mode", "opt",
             "--verbose"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"result: {EXPECTED}" in out
        assert "[rc_opt] mode=opt" in out

    def test_rc_mode_changes_emitted_artifact(self, source_file, capsys):
        """The override must reach codegen: optimized RC emits fewer
        lp.inc/lp.dec ops than naive."""

        def emitted_rc_ops(rc_mode):
            assert cli_main(
                [source_file, "--emit", "lp", "--rc-mode", rc_mode]
            ) == 0
            out = capsys.readouterr().out
            return out.count("lp.inc") + out.count("lp.dec")

        assert emitted_rc_ops("opt") < emitted_rc_ops("naive")


class TestPassTiming:
    def test_timings_and_statistics_populated(self):
        artifacts = MlirCompiler(PipelineOptions()).compile(SOURCE)
        module = artifacts.lp_module
        assert isinstance(module, ModuleOp)

        manager = PassManager([DeadCodeEliminationPass()])
        manager.run(module)
        assert "dce" in manager.timings
        assert manager.timings["dce"] >= 0.0
        assert manager.total_time >= 0.0
        assert manager.total_rewrites() >= 0

    def test_report_contains_every_ran_pass(self):
        artifacts = MlirCompiler(PipelineOptions()).compile(SOURCE)
        manager = PassManager([DeadCodeEliminationPass()])
        manager.run(artifacts.lp_module)
        report = manager.report()
        assert "Pass pipeline statistics" in report
        assert "dce" in report
        assert "total:" in report

    def test_verbose_prints_per_pass_lines(self, capsys):
        artifacts = MlirCompiler(PipelineOptions()).compile(SOURCE)
        manager = PassManager([DeadCodeEliminationPass()], verbose=True)
        manager.run(artifacts.lp_module)
        out = capsys.readouterr().out
        assert "[pass] dce" in out
