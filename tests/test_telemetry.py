"""Tests for the unified telemetry subsystem.

Covers the span tracer (nesting, Chrome trace-event export, text report),
the central metrics registry, the null-object disabled path, the pass
manager's instrumentation hooks (including both failure modes: a raising
pass and a ``verify_each`` rejection), the print-IR instrumentation, the
CLI flags (``--trace-out`` / ``--metrics-json`` / ``--exec-stats`` /
``--print-ir-after``) and two drift guards: span well-nestedness across
the regression-suite × variant matrix (hypothesis), and the metric
namespace set against ``docs/OBSERVABILITY.md``.
"""

import io
import json
import re
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.pipeline import (
    CompilationSession,
    MlirCompiler,
    PipelineOptions,
    run_mlir,
)
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.dialects import lp
from repro.eval.harness import _measure
from repro.eval.testsuite import regression_programs
from repro.ir import Builder, FunctionType, InsertionPoint
from repro.ir.core import Block
from repro.ir.types import box
from repro.ir.verifier import VerificationError
from repro.rewrite.pass_manager import Pass, PassManager
from repro.telemetry import (
    NAMESPACES,
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    PassInstrumentation,
    PrintIRInstrumentation,
    Tracer,
    active_session,
    get_metrics,
    get_tracer,
    measured_metrics,
    metric_component,
    namespace_of,
    snapshot_delta,
    telemetry_session,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OBSERVABILITY_MD = REPO_ROOT / "docs" / "OBSERVABILITY.md"

REGRESSION_BY_NAME = {p.name: p for p in regression_programs()}


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nesting_and_args(self):
        tracer = Tracer()
        with tracer.span("outer", category="phase", variant="rgn") as outer:
            with tracer.span("inner") as inner:
                inner.set("count", 3)
        assert [s.name for s in tracer.roots] == ["outer"]
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.args == {"variant": "rgn"}
        assert inner.args == {"count": 3}
        assert inner.duration_seconds <= outer.duration_seconds

    def test_siblings_stay_siblings(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        (parent,) = tracer.roots
        assert [c.name for c in parent.children] == ["a", "b"]
        assert all(not c.children for c in parent.children)

    def test_exception_annotates_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        (span,) = tracer.roots
        assert span.args["error"] == "ValueError"
        assert span.end is not None  # clock stopped despite the raise

    def test_all_spans_depth_first_start_order(self):
        tracer = Tracer()
        with tracer.span("r1"):
            with tracer.span("c1"):
                pass
            with tracer.span("c2"):
                pass
        with tracer.span("r2"):
            pass
        assert [s.name for s in tracer.all_spans()] == ["r1", "c1", "c2", "r2"]
        assert [s.name for s in tracer.find("c2")] == ["c2"]

    def test_report_tree(self):
        tracer = Tracer()
        with tracer.span("compile", pipeline="lp+rgn"):
            with tracer.span("phase:frontend"):
                pass
        report = tracer.report()
        assert "Telemetry trace" in report
        assert "compile" in report and "pipeline=lp+rgn" in report
        # The child is indented under its parent.
        assert re.search(r"^  phase:frontend", report, re.MULTILINE)


class TestChromeTraceExport:
    def test_schema(self):
        tracer = Tracer()
        with tracer.span("outer", category="phase"):
            with tracer.span("inner", category="pass", n=1):
                pass
        trace = tracer.to_chrome_trace()
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        assert len(events) == 2
        for event in events:
            # The complete-event shape Perfetto / chrome://tracing load.
            assert event["ph"] == "X"
            assert isinstance(event["name"], str)
            assert isinstance(event["cat"], str)
            assert isinstance(event["ts"], float) and event["ts"] >= 0.0
            assert isinstance(event["dur"], float) and event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["args"], dict)
        outer, inner = events
        # The child event nests inside the parent's interval.
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6

    def test_write_chrome_trace_round_trips(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s", obj=object()):  # non-JSON arg must not break it
            pass
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["traceEvents"][0]["name"] == "s"


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_bump_observe_get_snapshot(self):
        registry = MetricsRegistry()
        registry.bump("rewrite.cse.applications")
        registry.bump("rewrite.cse.applications", 4)
        registry.observe("pipeline.phase.frontend.seconds", 0.25)
        registry.observe("pipeline.phase.frontend.seconds", 0.25)
        assert registry.get("rewrite.cse.applications") == 5
        assert registry.get("pipeline.phase.frontend.seconds") == 0.5
        assert registry.get("absent", default=7) == 7
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        assert len(registry) == 2

    def test_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.bump("vm.instr.freq.inc", 3)
        path = tmp_path / "metrics.json"
        registry.write_json(str(path))
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro/metrics/v1"
        assert payload["metrics"] == {"vm.instr.freq.inc": 3}

    def test_metric_component_sanitises(self):
        assert metric_component("region-gvn") == "region_gvn"
        assert metric_component("match-attempts") == "match_attempts"
        assert metric_component("rc-opt+reuse") == "rc_opt_reuse"

    def test_namespace_of(self):
        assert namespace_of("vm.instr.freq.inc") == "vm"
        assert namespace_of("harness.measurements") == "harness"

    def test_snapshot_delta(self):
        before = {"a": 1, "b": 2.0}
        after = {"a": 4, "b": 2.0, "c": 1}
        assert snapshot_delta(after, before) == {"a": 3, "c": 1}


class TestDisabledPath:
    def test_null_singletons_outside_session(self):
        assert active_session() is None
        assert get_tracer() is NULL_TRACER
        assert get_metrics() is NULL_REGISTRY
        assert not NULL_TRACER.enabled
        assert not NULL_REGISTRY.enabled

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("anything", category="x", k=1) as span:
            span.set("more", 2)
        # Same shared no-op object every time; no state anywhere.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_null_registry_stores_nothing(self):
        NULL_REGISTRY.bump("x")
        NULL_REGISTRY.observe("y", 1.0)
        assert NULL_REGISTRY.snapshot() == {}
        assert len(NULL_REGISTRY) == 0

    def test_session_scoping_restores_previous(self):
        with telemetry_session() as outer:
            assert get_tracer() is outer.tracer
            with telemetry_session() as inner:
                assert get_tracer() is inner.tracer
            assert get_tracer() is outer.tracer
        assert get_tracer() is NULL_TRACER

    def test_measured_metrics_with_active_session(self):
        with telemetry_session() as session:
            session.metrics.bump("harness.measurements", 10)
            with measured_metrics() as delta:
                session.metrics.bump("harness.measurements", 2)
            assert delta == {"harness.measurements": 2}
            # The outer registry still sees everything.
            assert session.metrics.get("harness.measurements") == 12

    def test_measured_metrics_without_session(self):
        with measured_metrics() as delta:
            get_metrics().bump("vm.instr.freq.inc", 5)
        assert delta == {"vm.instr.freq.inc": 5}
        assert get_metrics() is NULL_REGISTRY


# ---------------------------------------------------------------------------
# Pass-manager instrumentation hooks
# ---------------------------------------------------------------------------


class RecordingInstrumentation(PassInstrumentation):
    def __init__(self):
        self.events = []

    def run_before_pass(self, pass_, module):
        self.events.append(("before", pass_.name))

    def run_after_pass(self, pass_, module):
        self.events.append(("after", pass_.name))

    def run_after_pass_failed(self, pass_, module, error):
        self.events.append(("failed", pass_.name, type(error).__name__))


class NopPass(Pass):
    name = "nop"

    def run(self, module):
        pass


class RaisingPass(Pass):
    name = "raising"

    def run(self, module):
        raise RuntimeError("pass exploded")


class CorruptingPass(Pass):
    """Appends a function whose entry block lacks a terminator."""

    name = "corrupting"

    def run(self, module):
        bad = FuncOp("bad", FunctionType([], [box]))
        module.append(bad)


def valid_module() -> ModuleOp:
    module = ModuleOp()
    func = FuncOp("f", FunctionType([], [box]))
    module.append(func)
    builder = Builder(InsertionPoint.at_end(func.entry_block))
    value = builder.create(lp.IntOp, 7)
    builder.create(ReturnOp, [value.result()])
    return module


class TestPassInstrumentation:
    def test_hooks_bracket_every_pass_in_order(self):
        recorder = RecordingInstrumentation()
        pm = PassManager(
            [NopPass(), NopPass()], instrumentations=[recorder]
        )
        pm.run(valid_module())
        assert recorder.events == [
            ("before", "nop"), ("after", "nop"),
            ("before", "nop"), ("after", "nop"),
        ]

    def test_add_instrumentation_chains(self):
        recorder = RecordingInstrumentation()
        pm = PassManager([NopPass()])
        assert pm.add_instrumentation(recorder) is pm
        pm.run(valid_module())
        assert recorder.events == [("before", "nop"), ("after", "nop")]

    def test_raising_pass_fires_failure_hook(self):
        recorder = RecordingInstrumentation()
        pm = PassManager([RaisingPass()], instrumentations=[recorder])
        with pytest.raises(RuntimeError, match="pass exploded"):
            pm.run(valid_module())
        assert recorder.events == [
            ("before", "raising"), ("failed", "raising", "RuntimeError"),
        ]

    def test_verify_each_rejection_fires_failure_hook(self):
        recorder = RecordingInstrumentation()
        pm = PassManager(
            [CorruptingPass()], verify_each=True, instrumentations=[recorder]
        )
        with pytest.raises(VerificationError):
            pm.run(valid_module())
        assert recorder.events == [
            ("before", "corrupting"),
            ("failed", "corrupting", "VerificationError"),
        ]

    def test_pass_spans_and_metrics_publish(self):
        with telemetry_session() as session:
            pm = PassManager([NopPass()])
            pm.run(valid_module())
        assert [s.name for s in session.tracer.find("pass:nop")] == ["pass:nop"]
        assert [s.name for s in session.tracer.find("verify:nop")] == [
            "verify:nop"
        ]
        assert session.metrics.get("rewrite.nop.seconds") > 0.0


class TestPrintIRInstrumentation:
    def test_print_after_named_pass(self):
        stream = io.StringIO()
        instr = PrintIRInstrumentation(print_after=("nop",), stream=stream)
        PassManager([NopPass()], instrumentations=[instr]).run(valid_module())
        text = stream.getvalue()
        assert "// -----// IR Dump After nop //----- //" in text
        assert 'sym_name = "f"' in text

    def test_print_after_all(self):
        stream = io.StringIO()
        instr = PrintIRInstrumentation(print_after_all=True, stream=stream)
        PassManager(
            [NopPass(), NopPass()], instrumentations=[instr]
        ).run(valid_module())
        assert stream.getvalue().count("IR Dump After nop") == 2

    def test_silent_when_not_requested(self):
        stream = io.StringIO()
        instr = PrintIRInstrumentation(stream=stream)
        PassManager([NopPass()], instrumentations=[instr]).run(valid_module())
        assert stream.getvalue() == ""

    def test_failure_dump_names_pass_and_failing_function(self):
        stream = io.StringIO()
        instr = PrintIRInstrumentation(stream=stream)
        pm = PassManager([CorruptingPass()], instrumentations=[instr])
        with pytest.raises(VerificationError):
            pm.run(valid_module())
        text = stream.getvalue()
        assert (
            "// -----// IR Dump After corrupting Failed (VerificationError)"
            in text
        )
        # The failing *function* is located and printed, not the whole module.
        assert "// function @bad failed verification after pass 'corrupting':"\
            in text
        assert 'sym_name = "bad"' in text
        assert 'sym_name = "f"' not in text

    def test_failure_dump_can_be_disabled(self):
        stream = io.StringIO()
        instr = PrintIRInstrumentation(print_on_failure=False, stream=stream)
        pm = PassManager([RaisingPass()], instrumentations=[instr])
        with pytest.raises(RuntimeError):
            pm.run(valid_module())
        assert stream.getvalue() == ""

    def test_pipeline_option_wires_print_ir_after(self, capsys):
        options = PipelineOptions()
        options.print_ir_after = ("dce",)
        source = REGRESSION_BY_NAME["arith_add"].source
        MlirCompiler(options).compile(source)
        captured = capsys.readouterr()
        assert "// -----// IR Dump After dce //----- //" in captured.err


# ---------------------------------------------------------------------------
# End-to-end: pipeline, VM, session, harness
# ---------------------------------------------------------------------------


class TestEndToEndTelemetry:
    def test_compile_and_run_span_tree(self):
        source = REGRESSION_BY_NAME["arith_add"].source
        with telemetry_session() as session:
            run_mlir(source)
        names = [s.name for s in session.tracer.all_spans()]
        (compile_span,) = session.tracer.find("compile")
        assert compile_span.args["pipeline"] == "lp+rgn"
        phase_children = [
            c.name for c in compile_span.children if c.name.startswith("phase:")
        ]
        assert phase_children[0] == "phase:frontend"
        assert "phase:rgn-opt" in phase_children
        # Passes nest under the rgn-opt phase, the VM run is its own root.
        (rgn_opt,) = session.tracer.find("phase:rgn-opt")
        assert any(c.name.startswith("pass:") for c in rgn_opt.children)
        assert "vm:run" in names

    def test_metrics_cover_all_five_stat_surfaces(self):
        source = REGRESSION_BY_NAME["arith_add"].source
        with telemetry_session() as session:
            session_obj = CompilationSession()
            _measure("arith_add", "default", source, session_obj)
        snapshot = session.metrics.snapshot()
        # pass counters / meters
        assert any(k.startswith("rewrite.") for k in snapshot)
        # phase timings
        assert "pipeline.phase.frontend.seconds" in snapshot
        # session cache traffic
        assert "session.frontend.misses" in snapshot
        # VM instruction frequencies
        assert any(k.startswith("vm.instr.freq.") for k in snapshot)
        # harness bookkeeping
        assert snapshot["harness.measurements"] == 1

    def test_harness_measurement_carries_metrics_delta(self):
        source = REGRESSION_BY_NAME["arith_add"].source
        with telemetry_session():
            measurement = _measure("arith_add", "default", source, CompilationSession())
        assert measurement.metrics  # non-empty delta travelled back
        assert measurement.metrics["harness.measurements"] == 1
        assert any(
            k.startswith("vm.instr.freq.") for k in measurement.metrics
        )

    def test_measurements_off_session_have_empty_metrics(self):
        source = REGRESSION_BY_NAME["arith_add"].source
        measurement = _measure("arith_add", "default", source, CompilationSession())
        assert measurement.metrics == {}

    def test_session_cache_hit_flag_in_spans(self):
        source = REGRESSION_BY_NAME["arith_add"].source
        with telemetry_session() as session:
            compilation = CompilationSession()
            compilation.frontend(source)
            compilation.frontend(source)
        lookups = session.tracer.find("session:frontend")
        assert [s.args["hit"] for s in lookups] == [False, True]
        assert session.metrics.get("session.frontend.hits") == 1
        assert session.metrics.get("session.frontend.misses") == 1

    def test_vm_instruction_frequencies_always_on(self):
        source = REGRESSION_BY_NAME["arith_add"].source
        artifacts = MlirCompiler().compile(source)
        from repro.interp.bytecode import VirtualMachine, compile_cfg_module

        vm = VirtualMachine(compile_cfg_module(artifacts.cfg_module))
        vm.run_main()
        frequencies = vm.instruction_frequencies()
        assert frequencies  # counted without any telemetry session
        assert all(count > 0 for count in frequencies.values())
        counts = list(frequencies.values())
        assert counts == sorted(counts, reverse=True)


# ---------------------------------------------------------------------------
# Hypothesis: well-nestedness across the regression × variant matrix
# ---------------------------------------------------------------------------


def assert_well_nested(span):
    assert span.start is not None and span.end is not None
    assert span.start <= span.end
    for child in span.children:
        # Children lie within the parent's interval and don't overlap
        # each other (spans close in LIFO order on one thread).
        assert span.start <= child.start
        assert child.end <= span.end + 1e-9
        assert_well_nested(child)
    for first, second in zip(span.children, span.children[1:]):
        assert first.end <= second.start + 1e-9


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(sorted(REGRESSION_BY_NAME)),
    variant=st.sampled_from(["default", "rgn", "none", "rc-opt+reuse"]),
)
def test_span_forest_is_well_nested(name, variant):
    source = REGRESSION_BY_NAME[name].source
    options = (
        PipelineOptions()
        if variant == "default"
        else PipelineOptions.variant(variant)
    )
    with telemetry_session() as session:
        run_mlir(source, options)
    assert session.tracer.roots
    for root in session.tracer.roots:
        assert_well_nested(root)
    # Every recorded span made it into the Chrome export.
    events = session.tracer.to_chrome_trace()["traceEvents"]
    assert len(events) == len(session.tracer.all_spans())


# ---------------------------------------------------------------------------
# CLI flags
# ---------------------------------------------------------------------------


class TestCliTelemetry:
    def _write_benchmark(self, tmp_path) -> str:
        from repro.eval.benchmarks import benchmark_sources

        source = benchmark_sources()["rbmap_checkpoint"]
        path = tmp_path / "rbmap.lean"
        path.write_text(source, encoding="utf-8")
        return str(path)

    def test_acceptance_trace_and_metrics(self, tmp_path, capsys):
        """The PR's acceptance flow: one compile of the largest benchmark
        produces a Perfetto-loadable trace covering frontend → passes →
        lowering → execution, and a metrics snapshot from all five stat
        surfaces."""
        from repro.__main__ import main

        program = self._write_benchmark(tmp_path)
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = main([
            program,
            "--trace-out", str(trace_path),
            "--metrics-json", str(metrics_path),
        ])
        assert code == 0
        capsys.readouterr()

        trace = json.loads(trace_path.read_text(encoding="utf-8"))
        events = trace["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        names = {e["name"] for e in events}
        assert {"compile", "phase:frontend", "phase:rgn-opt",
                "phase:rgn-to-cf", "vm:run"} <= names
        # Every pass of the rgn pipeline shows up.
        assert {"pass:cse", "pass:region-gvn", "pass:canonicalize",
                "pass:dce"} <= names

        payload = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro/metrics/v1"
        metrics = payload["metrics"]
        assert namespace_of(next(iter(metrics))) in NAMESPACES
        assert any(k.startswith("rewrite.") for k in metrics)
        assert "rewrite.region_gvn.fingerprints_computed" in metrics
        assert "pipeline.phase.frontend.seconds" in metrics
        assert "session.frontend.misses" in metrics
        assert any(k.startswith("vm.instr.freq.") for k in metrics)

    def test_exec_stats_table(self, tmp_path, capsys):
        from repro.__main__ import main

        program = self._write_benchmark(tmp_path)
        assert main([program, "--exec-stats"]) == 0
        out = capsys.readouterr().out
        assert "[exec-stats]" in out
        match = re.search(r"\[exec-stats\] (\d+) instructions", out)
        assert match and int(match.group(1)) > 0
        # Rows are count-sorted, shares are percentages.
        rows = re.findall(r"^  (\w+) +(\d+) +([\d.]+)%$", out, re.MULTILINE)
        assert rows
        counts = [int(count) for _, count, _ in rows]
        assert counts == sorted(counts, reverse=True)

    def test_exec_stats_rejects_tree_engine(self, tmp_path, capsys):
        from repro.__main__ import main

        program = self._write_benchmark(tmp_path)
        assert main(
            [program, "--exec-stats", "--execution-engine", "tree"]
        ) == 2
        assert "--exec-stats" in capsys.readouterr().err

    def test_trace_written_even_when_compile_fails(self, tmp_path, capsys):
        from repro.__main__ import main

        bad = tmp_path / "bad.lean"
        bad.write_text("def main : Nat := undefined_name\n", encoding="utf-8")
        trace_path = tmp_path / "trace.json"
        # Exit 3: the frontend layer rejected the program (docs/RESILIENCE.md).
        assert main([str(bad), "--trace-out", str(trace_path)]) == 3
        capsys.readouterr()
        trace = json.loads(trace_path.read_text(encoding="utf-8"))
        assert "traceEvents" in trace

    def test_print_ir_after_flag(self, tmp_path, capsys):
        from repro.__main__ import main

        program = tmp_path / "p.lean"
        program.write_text(
            REGRESSION_BY_NAME["arith_add"].source, encoding="utf-8"
        )
        assert main([str(program), "--print-ir-after", "dce"]) == 0
        assert "IR Dump After dce" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Drift guards: docs/OBSERVABILITY.md vs the code
# ---------------------------------------------------------------------------

_NAMESPACE_TOKEN = re.compile(r"`([a-z]+)\.`")


def documented_namespaces() -> set:
    """Backticked ```ns.``` tokens in the 'Metric namespaces' section."""
    text = OBSERVABILITY_MD.read_text(encoding="utf-8")
    section = text.split("## Metric namespaces", 1)[1].split("\n## ", 1)[0]
    return set(_NAMESPACE_TOKEN.findall(section))


class TestNamespaceDrift:
    def test_observability_md_exists(self):
        assert OBSERVABILITY_MD.is_file(), "docs/OBSERVABILITY.md is missing"

    def test_every_namespace_is_documented(self):
        missing = sorted(set(NAMESPACES) - documented_namespaces())
        assert not missing, (
            "metric namespaces missing from docs/OBSERVABILITY.md's "
            f"'Metric namespaces' section: {missing}"
        )

    def test_every_documented_namespace_exists(self):
        stale = sorted(documented_namespaces() - set(NAMESPACES))
        assert not stale, (
            f"docs/OBSERVABILITY.md documents unknown namespaces: {stale}"
        )

    def test_real_snapshot_stays_inside_namespaces(self):
        source = REGRESSION_BY_NAME["arith_add"].source
        with telemetry_session() as session:
            _measure("arith_add", "default", source, CompilationSession())
        observed = {namespace_of(key) for key in session.metrics.snapshot()}
        assert observed <= set(NAMESPACES)
        # ... and a clean compile+run exercises every namespace except the
        # failure-path `resilience.` one, so a new surface cannot be added
        # without being classified here.
        assert observed == set(NAMESPACES) - {"resilience"}

    def test_fault_injected_run_publishes_resilience_metrics(self):
        from repro.backend.pipeline import run_mlir
        from repro.resilience import FaultPlan, fault_plan

        source = REGRESSION_BY_NAME["arith_add"].source
        with telemetry_session() as session:
            with fault_plan(FaultPlan.parse(["vm.dispatch:1"])):
                run_mlir(source)
        snapshot = session.metrics.snapshot()
        assert snapshot.get("resilience.faults.injected") == 1
        assert snapshot.get("resilience.fallback.vm_to_tree") == 1
        observed = {namespace_of(key) for key in snapshot}
        assert "resilience" in observed
        assert observed <= set(NAMESPACES)
