"""Tests for the resilience layer (``repro.resilience``).

Five layers, mirroring ``docs/RESILIENCE.md``:

* **fault-injection sweep** — every known site, injected, either recovers
  gracefully (caches, VM dispatch, worklist driver) or produces a crash
  bundle that replays byte-identically and bisects to the injected pass
  (pattern-level for pattern-driver passes),
* **budgets** — all four execution engines trip
  ``ExecutionBudgetExceeded`` on a diverging program instead of hanging,
  and rewrite fixpoints trip ``RewriteBudgetExceeded``,
* **graceful degradation** — the VM→tree fallback is figure-identical,
  cache corruption recovers, the worklist driver retries via rescan,
* **CLI contracts** — ``python -m repro`` exit codes name the failing
  layer; ``python -m repro.opt`` writes and replays bundles,
* **drift guards** — the site catalogue in ``docs/RESILIENCE.md`` matches
  :func:`repro.resilience.faults.known_sites`.
"""

import json
import re
import sys
from pathlib import Path

import pytest

from repro.__main__ import main as cli_main
from repro.backend.pipeline import (
    CompilationSession,
    MlirCompiler,
    PipelineOptions,
    run_baseline,
    run_mlir,
    run_reference,
)
from repro.opt import main as opt_main
from repro.resilience import (
    CrashBundleWriter,
    ExecutionBudget,
    ExecutionBudgetExceeded,
    FaultPlan,
    InjectedFault,
    RewriteBudgetExceeded,
    fault_plan,
    known_sites,
    load_bundle,
)
from repro.resilience.faults import STATIC_SITES
from repro.interp.limits import DEFAULT_RECURSION_LIMIT, recursion_limit
from repro.rewrite.registry import build_pipeline, registered_passes
from repro.telemetry import telemetry_session

REPO_ROOT = Path(__file__).resolve().parent.parent
RESILIENCE_MD = REPO_ROOT / "docs" / "RESILIENCE.md"

#: Small program whose compile exercises cse, region-gvn, canonicalize and
#: dce, and whose run terminates.  The single-constructor match is what
#: gives canonicalize a real pattern application (the run-of-known-region
#: inlining), which the pattern-level fault test depends on.
SOURCE = """
inductive Pair where
| mk (a : Nat) (b : Nat)

def add (a b : Nat) : Nat := a + b

def swapSum (p : Pair) : Nat :=
  match p with
  | Pair.mk a b => add b a

def main : Nat := add (swapSum (Pair.mk 4 17)) (add 4 17)
"""

#: A diverging program: only budgets make executing it terminate.
DIVERGENT = """
def spin (n : Nat) : Nat := spin n

def main : Nat := spin 1
"""


@pytest.fixture(scope="module")
def rgn_ir():
    """Textual rgn IR of SOURCE, entering the rgn optimisations."""
    options = PipelineOptions(capture_ir=("rgn",))
    return MlirCompiler(options).compile(SOURCE).captured_ir["rgn"]


@pytest.fixture
def rgn_file(tmp_path, rgn_ir):
    path = tmp_path / "input.mlir"
    path.write_text(rgn_ir, encoding="utf-8")
    return str(path)


@pytest.fixture
def lean_file(tmp_path):
    path = tmp_path / "program.lean"
    path.write_text(SOURCE, encoding="utf-8")
    return str(path)


# ---------------------------------------------------------------------------
# FaultPlan mechanics
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_known_sites_cover_statics_and_every_registered_pass(self):
        sites = known_sites()
        for site in STATIC_SITES:
            assert site in sites
        for name in registered_passes():
            assert f"pass.{name}" in sites

    def test_parse_rejects_unknown_site_and_bad_count(self):
        with pytest.raises(ValueError):
            FaultPlan.parse(["no.such.site:1"])
        with pytest.raises(ValueError):
            FaultPlan.parse(["verify:zero"])
        with pytest.raises(ValueError):
            FaultPlan.parse(["verify:0"])

    def test_bare_site_means_first_hit(self):
        plan = FaultPlan.parse(["verify"])
        assert plan.triggers == {"verify": 1}

    def test_fires_exactly_once_at_the_nth_hit(self):
        plan = FaultPlan.parse(["verify:3"])
        with fault_plan(plan):
            from repro.resilience import fault_hit

            fault_hit("verify")
            fault_hit("verify")
            with pytest.raises(InjectedFault) as excinfo:
                fault_hit("verify")
            assert excinfo.value.occurrence == 3
            # Never again: the site is spent.
            fault_hit("verify")
        assert plan.hits == {"verify": 4}

    def test_remaining_specs_rebase_onto_a_baseline(self):
        plan = FaultPlan.parse(["verify:5", "pass.cse:1"])
        # Sites whose trigger is already consumed by the baseline drop out;
        # the rest count down only the hits still to come.
        assert plan.remaining_specs({"verify": 3, "pass.cse": 1}) == [
            "verify:2"
        ]
        assert plan.remaining_specs({}) == ["pass.cse:1", "verify:5"]

    def test_plan_is_scoped_by_the_context_manager(self):
        from repro.resilience import active_plan

        assert active_plan() is None
        with fault_plan(FaultPlan.parse(["verify"])):
            assert active_plan() is not None
        assert active_plan() is None


# ---------------------------------------------------------------------------
# Fault-injection sweep: every pass site produces a bisectable bundle that
# replays byte-identically through repro.opt
# ---------------------------------------------------------------------------


def run_opt(capsys, *args):
    code = opt_main(list(args))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def bundle_path_from(stderr: str) -> str:
    match = re.search(r"crash bundle: (\S+)", stderr)
    assert match, f"no crash-bundle path in stderr:\n{stderr}"
    return match.group(1)


class TestPassSiteSweep:
    @pytest.mark.parametrize("name", sorted(registered_passes()))
    def test_injected_pass_fault_bundles_replays_and_bisects(
        self, name, tmp_path, rgn_file, capsys
    ):
        crash_dir = tmp_path / "crashes"
        code, _, err = run_opt(
            capsys,
            rgn_file,
            "--pipeline", name,
            "--inject-fault", f"pass.{name}:1",
            "--crash-dir", str(crash_dir),
        )
        assert code == 1
        path = Path(bundle_path_from(err))
        bundle = load_bundle(path)
        assert bundle.failing_pass == name
        assert bundle.error_type == "InjectedFault"
        assert bundle.faults == [f"pass.{name}:1"]
        # Bisection narrowed the failure to the injected pass.
        assert bundle.bisect is not None
        assert bundle.bisect["failing_pass"] == name
        assert bundle.minimal_pipeline_spec is not None

        # Replay: same error, and — because bundles are content-addressed —
        # the re-written bundle has the identical name iff the failure
        # reproduced byte-identically.
        replay_dir = tmp_path / "replay"
        code, _, err = run_opt(
            capsys,
            "--pipeline-from-bundle", str(path),
            "--crash-dir", str(replay_dir),
        )
        assert code == 1
        assert bundle.error_message in err
        replayed = Path(bundle_path_from(err))
        assert replayed.name == path.name
        assert (
            (replayed / "error.txt").read_text(encoding="utf-8")
            == (path / "error.txt").read_text(encoding="utf-8")
        )
        assert (
            (replayed / "input.mlir").read_text(encoding="utf-8")
            == (path / "input.mlir").read_text(encoding="utf-8")
        )

    def test_pattern_level_fault_blames_the_applied_pattern(self, tmp_path):
        """Hit 2 of a ``pass.<name>`` site is the first pattern application
        (hit 1 is the pass entry), so the fault and the bisect record carry
        pattern-level blame."""
        options = PipelineOptions(crash_bundle_dir=str(tmp_path))
        plan = FaultPlan.parse(["pass.canonicalize:2"])
        with fault_plan(plan):
            with pytest.raises(InjectedFault) as excinfo:
                MlirCompiler(options).compile(SOURCE)
        error = excinfo.value
        assert error.failing_pattern is not None
        bundle = load_bundle(error.crash_bundle)
        assert bundle.failing_pass == "canonicalize"
        assert bundle.bisect["failing_pass"] == "canonicalize"
        assert bundle.bisect["failing_pattern"] == error.failing_pattern

    def test_verify_fault_produces_a_bundle(self, tmp_path, rgn_file, capsys):
        code, _, err = run_opt(
            capsys,
            rgn_file,
            "--inject-fault", "verify:1",
            "--crash-dir", str(tmp_path),
        )
        assert code == 1
        bundle = load_bundle(bundle_path_from(err))
        assert bundle.error_type == "InjectedFault"
        assert bundle.faults == ["verify:1"]

    def test_bundle_manifest_round_trips(self, tmp_path):
        writer = CrashBundleWriter(str(tmp_path), bisect=False)
        error = ValueError("boom")
        path = writer.on_crash(
            pre_pass_ir="ir-text",
            remaining_spec="cse,dce",
            failing_pass="cse",
            error=error,
            fault_specs=["pass.cse:1"],
            verify_each=False,
        )
        bundle = load_bundle(path)
        assert bundle.input_ir == "ir-text"
        assert bundle.pipeline_spec == "cse,dce"
        assert bundle.failing_pass == "cse"
        assert bundle.error_type == "ValueError"
        assert bundle.error_message == "boom"
        assert bundle.faults == ["pass.cse:1"]
        assert bundle.verify_each is False
        assert writer.written == [path]
        # Same content -> same directory: the writer is idempotent.
        assert writer.on_crash(
            pre_pass_ir="ir-text",
            remaining_spec="cse,dce",
            failing_pass="cse",
            error=error,
            fault_specs=["pass.cse:1"],
            verify_each=False,
        ) == path


# ---------------------------------------------------------------------------
# Graceful degradation: caches, VM fallback, worklist retry
# ---------------------------------------------------------------------------


class TestDegradationLadders:
    def test_frontend_cache_fault_recovers_with_clean_reparse(self):
        session = CompilationSession()
        clean = run_reference(SOURCE, session=session)
        with telemetry_session() as t:
            with fault_plan(FaultPlan.parse(["cache.frontend:1"])):
                recovered = run_reference(SOURCE, session=session)
            snapshot = t.metrics.snapshot()
        assert recovered == clean
        assert snapshot["resilience.recovered.frontend_cache"] == 1

    def test_bytecode_cache_fault_recovers_with_clean_recompile(self):
        # The bytecode cache keys on module identity, so the hit path needs
        # the *same* compiled module executed twice in one session.
        compiler = MlirCompiler(PipelineOptions(), session=CompilationSession())
        artifacts = compiler.compile(SOURCE)
        clean = compiler.execute(artifacts.cfg_module)
        with telemetry_session() as t:
            with fault_plan(FaultPlan.parse(["cache.bytecode:1"])):
                recovered = compiler.execute(artifacts.cfg_module)
            snapshot = t.metrics.snapshot()
        assert recovered.value == clean.value
        assert snapshot["resilience.recovered.bytecode_cache"] == 1

    def test_incremental_cache_fault_quarantines_and_recompiles(self):
        options = PipelineOptions()
        options.incremental_rgn_opt = True
        session = CompilationSession()
        clean = run_mlir(SOURCE, options, session=session)
        with telemetry_session() as t:
            with fault_plan(FaultPlan.parse(["cache.incremental:1"])):
                recovered = run_mlir(SOURCE, options, session=session)
            snapshot = t.metrics.snapshot()
        assert recovered.value == clean.value
        assert snapshot["resilience.quarantine.incremental"] == 1

    def test_vm_fault_falls_back_to_tree_with_identical_figures(self):
        tree_options = PipelineOptions()
        tree_options.execution_engine = "tree"
        tree = run_mlir(SOURCE, tree_options)

        with telemetry_session() as t:
            with fault_plan(FaultPlan.parse(["vm.dispatch:1"])):
                fallen_back = run_mlir(SOURCE)
            snapshot = t.metrics.snapshot()
        assert snapshot["resilience.fallback.vm_to_tree"] == 1
        # Figure-identical: value, cost-model counts, heap statistics and
        # printed output all match the tree engine exactly.
        assert fallen_back.value == tree.value
        assert fallen_back.metrics.counts == tree.metrics.counts
        assert fallen_back.metrics.total_cost() == tree.metrics.total_cost()
        assert fallen_back.heap_stats == tree.heap_stats
        assert fallen_back.output == tree.output

    def test_vm_fault_propagates_with_fallbacks_disabled(self):
        options = PipelineOptions()
        options.enable_fallbacks = False
        with fault_plan(FaultPlan.parse(["vm.dispatch:1"])):
            with pytest.raises(InjectedFault):
                run_mlir(SOURCE, options)

    def test_worklist_fault_retries_with_rescan(self):
        with telemetry_session() as t:
            with fault_plan(FaultPlan.parse(["driver.worklist:1"])):
                result = run_mlir(SOURCE)
            snapshot = t.metrics.snapshot()
        assert snapshot["resilience.retry.rescan"] == 1
        assert result.value == run_mlir(SOURCE).value


# ---------------------------------------------------------------------------
# Budgets
# ---------------------------------------------------------------------------


class TestExecutionBudgets:
    def test_budget_requires_a_bound(self):
        with pytest.raises(ValueError):
            ExecutionBudget()

    def test_step_budget_trips_at_the_boundary(self):
        budget = ExecutionBudget(max_steps=3)
        budget.start()
        for _ in range(3):
            budget.charge()
        with pytest.raises(ExecutionBudgetExceeded):
            budget.charge()

    def test_wall_clock_budget_trips(self):
        budget = ExecutionBudget(max_seconds=0.0)
        budget.start()
        with pytest.raises(ExecutionBudgetExceeded):
            for _ in range(4096):
                budget.charge()

    def test_reference_interpreter_trips(self):
        with pytest.raises(ExecutionBudgetExceeded):
            run_reference(DIVERGENT, budget_steps=1000)

    def test_rc_interpreter_trips(self):
        with pytest.raises(ExecutionBudgetExceeded):
            run_baseline(
                DIVERGENT, execution_engine="tree", budget_steps=1000
            )

    def test_vm_trips(self):
        options = PipelineOptions()
        options.execution_budget_steps = 1000
        with pytest.raises(ExecutionBudgetExceeded):
            run_mlir(DIVERGENT, options)

    def test_cfg_interpreter_trips(self):
        options = PipelineOptions()
        options.execution_engine = "tree"
        options.execution_budget_steps = 1000
        with pytest.raises(ExecutionBudgetExceeded):
            run_mlir(DIVERGENT, options)

    def test_bounded_programs_run_unaffected_under_budget(self):
        options = PipelineOptions()
        options.execution_budget_steps = 1_000_000
        assert run_mlir(SOURCE, options).value == run_mlir(SOURCE).value

    def test_rewrite_budget_trips_and_counts(self):
        from repro.transforms.canonicalize import CanonicalizePass
        from repro.ir.parser import parse_module

        options = PipelineOptions(capture_ir=("rgn",))
        rgn_ir = MlirCompiler(options).compile(SOURCE).captured_ir["rgn"]
        pass_ = CanonicalizePass()
        pass_.budget_seconds = 0.0
        pass_.allow_rescan_retry = False
        with telemetry_session() as t:
            with pytest.raises(RewriteBudgetExceeded):
                pass_.run(parse_module(rgn_ir))
            snapshot = t.metrics.snapshot()
        assert snapshot["resilience.budget.trips"] >= 1

    def test_rewrite_budget_trip_recovers_via_rescan_retry(self):
        from repro.transforms.canonicalize import CanonicalizePass
        from repro.ir.parser import parse_module

        options = PipelineOptions(capture_ir=("rgn",))
        rgn_ir = MlirCompiler(options).compile(SOURCE).captured_ir["rgn"]
        pass_ = CanonicalizePass()
        pass_.budget_seconds = 0.0
        with telemetry_session() as t:
            # The worklist engine trips right after its first application;
            # the rescan retry then finds a fixpoint on the already-rewritten
            # function before its own deadline check fires, so the ladder
            # recovers instead of propagating the trip.
            pass_.run(parse_module(rgn_ir))
            snapshot = t.metrics.snapshot()
        assert snapshot["resilience.budget.trips"] >= 1
        assert snapshot["resilience.retry.rescan"] == 1

    def test_diverging_program_is_a_differential_finding(self):
        from repro.fuzz.differential import DifferentialFailure, run_matrix

        with pytest.raises(DifferentialFailure) as excinfo:
            run_matrix(DIVERGENT, budget_steps=5000)
        assert "ExecutionBudgetExceeded" in excinfo.value.reason


# ---------------------------------------------------------------------------
# Recursion-limit hygiene
# ---------------------------------------------------------------------------


class TestRecursionLimit:
    def test_context_manager_restores_the_previous_limit(self):
        before = sys.getrecursionlimit()
        with recursion_limit(before + 1000):
            assert sys.getrecursionlimit() == before + 1000
        assert sys.getrecursionlimit() == before

    def test_never_lowers_the_limit(self):
        before = sys.getrecursionlimit()
        with recursion_limit(10):
            assert sys.getrecursionlimit() == before
        assert sys.getrecursionlimit() == before

    def test_engines_leave_the_process_limit_unchanged(self):
        before = sys.getrecursionlimit()
        run_reference(SOURCE)
        run_baseline(SOURCE, execution_engine="tree")
        run_baseline(SOURCE, execution_engine="vm")
        run_mlir(SOURCE)
        tree_options = PipelineOptions()
        tree_options.execution_engine = "tree"
        run_mlir(SOURCE, tree_options)
        assert sys.getrecursionlimit() == before

    def test_default_limit_is_generous(self):
        assert DEFAULT_RECURSION_LIMIT >= 100_000


# ---------------------------------------------------------------------------
# CLI contracts
# ---------------------------------------------------------------------------


class TestCliExitCodes:
    def test_success_is_0(self, lean_file, capsys):
        assert cli_main([lean_file]) == 0
        capsys.readouterr()

    def test_frontend_parse_error_is_3(self, tmp_path, capsys):
        bad = tmp_path / "bad.lean"
        bad.write_text("def main : Nat :=", encoding="utf-8")
        assert cli_main([str(bad)]) == 3
        assert "error:" in capsys.readouterr().err

    def test_frontend_type_error_is_3(self, tmp_path, capsys):
        bad = tmp_path / "bad.lean"
        bad.write_text("def main : Nat := true", encoding="utf-8")
        assert cli_main([str(bad)]) == 3
        capsys.readouterr()

    def test_unreadable_input_is_2(self, capsys):
        assert cli_main(["/nonexistent/path.lean"]) == 2
        capsys.readouterr()

    def test_bad_fault_spec_is_2(self, lean_file, capsys):
        assert cli_main([lean_file, "--inject-fault", "no.such.site"]) == 2
        capsys.readouterr()

    def test_pipeline_crash_is_4_and_prints_bundle(
        self, lean_file, tmp_path, capsys
    ):
        crash_dir = tmp_path / "crashes"
        code = cli_main([
            lean_file,
            "--inject-fault", "pass.dce:1",
            "--crash-dir", str(crash_dir),
        ])
        err = capsys.readouterr().err
        assert code == 4
        bundle = load_bundle(bundle_path_from(err))
        assert bundle.failing_pass == "dce"

    def test_execution_budget_trip_is_5(self, tmp_path, capsys):
        program = tmp_path / "spin.lean"
        program.write_text(DIVERGENT, encoding="utf-8")
        assert cli_main([str(program), "--budget-steps", "1000"]) == 5
        assert "budget" in capsys.readouterr().err

    def test_vm_fault_recovers_to_0(self, lean_file, capsys):
        assert cli_main([lean_file, "--inject-fault", "vm.dispatch:1"]) == 0
        capsys.readouterr()

    def test_opt_lists_fault_sites(self, capsys):
        code, out, _ = run_opt(capsys, "--list-fault-sites")
        assert code == 0
        for site in STATIC_SITES:
            assert site in out

    def test_opt_rejects_bundle_with_file_or_pipeline(
        self, tmp_path, rgn_file, capsys
    ):
        with pytest.raises(SystemExit):
            opt_main([
                rgn_file, "--pipeline-from-bundle", str(tmp_path)
            ])
        capsys.readouterr()

    def test_opt_missing_bundle_is_2(self, tmp_path, capsys):
        code, _, err = run_opt(
            capsys, "--pipeline-from-bundle", str(tmp_path / "nope")
        )
        assert code == 2
        assert "cannot load bundle" in err


# ---------------------------------------------------------------------------
# Drift guards: docs/RESILIENCE.md vs the code
# ---------------------------------------------------------------------------

_SITE_TOKEN = re.compile(
    r"`((?:pass|cache|vm|driver)\.[a-z.\-]+|verify)`"
)


def documented_sites() -> set:
    """Backticked site-shaped tokens in the fault-injection section."""
    text = RESILIENCE_MD.read_text(encoding="utf-8")
    section = text.split("## Fault-injection sites", 1)[1].split("\n## ", 1)[0]
    return set(_SITE_TOKEN.findall(section))


class TestSiteCatalogueDrift:
    def test_resilience_md_exists(self):
        assert RESILIENCE_MD.is_file(), "docs/RESILIENCE.md is missing"

    def test_every_site_is_documented(self):
        missing = sorted(set(known_sites()) - documented_sites())
        assert not missing, (
            "fault sites missing from docs/RESILIENCE.md's "
            f"'Fault-injection sites' section: {missing}"
        )

    def test_every_documented_site_exists(self):
        # `pass.<name>` is the generic placeholder row, not a site.
        stale = sorted(
            documented_sites() - set(known_sites()) - {"pass.<name>"}
        )
        assert not stale, (
            f"docs/RESILIENCE.md documents unknown fault sites: {stale}"
        )
