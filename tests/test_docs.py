"""Documentation drift guards.

* Every operation registered in ``repro.dialects`` must be documented in
  ``docs/DIALECTS.md``, and every op-shaped name documented there must be
  registered — the reference page cannot drift from the code in either
  direction.
* Every relative (intra-repo) markdown link in ``docs/``,
  ``ARCHITECTURE.md``, ``ROADMAP.md``, ``README``-style pages and
  ``examples/README.md`` must resolve to an existing file.

CI runs this module as its dedicated docs job.
"""

import re
from pathlib import Path

import pytest

import repro.dialects  # noqa: F401 - registers every dialect
from repro.ir.dialect import registered_dialects, registered_ops

REPO_ROOT = Path(__file__).resolve().parent.parent
DIALECTS_MD = REPO_ROOT / "docs" / "DIALECTS.md"

#: Markdown files whose intra-repo links the docs CI job guards.
LINKED_DOCS = sorted(
    [
        *(REPO_ROOT / "docs").glob("*.md"),
        REPO_ROOT / "ARCHITECTURE.md",
        REPO_ROOT / "ROADMAP.md",
        REPO_ROOT / "examples" / "README.md",
    ]
)

_OP_TOKEN = re.compile(r"`([a-z_][a-z_0-9]*\.[a-z_0-9]+)`")
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def documented_op_names() -> set:
    """Op-shaped backticked tokens in DIALECTS.md whose namespace is a
    registered dialect (so prose mentions of file paths etc. don't count)."""
    text = DIALECTS_MD.read_text(encoding="utf-8")
    dialect_names = set(registered_dialects())
    return {
        token
        for token in _OP_TOKEN.findall(text)
        if token.split(".", 1)[0] in dialect_names
    }


class TestDialectReferenceDrift:
    def test_dialects_md_exists(self):
        assert DIALECTS_MD.is_file(), "docs/DIALECTS.md is missing"

    def test_every_registered_op_is_documented(self):
        documented = documented_op_names()
        missing = sorted(set(registered_ops()) - documented)
        assert not missing, (
            "ops registered in dialects/ but absent from docs/DIALECTS.md: "
            f"{missing}"
        )

    def test_every_documented_op_is_registered(self):
        registered = set(registered_ops())
        stale = sorted(documented_op_names() - registered)
        assert not stale, (
            f"docs/DIALECTS.md documents unregistered ops: {stale}"
        )

    def test_every_dialect_has_a_section_heading(self):
        text = DIALECTS_MD.read_text(encoding="utf-8")
        for dialect in registered_dialects():
            assert f"`{dialect}`" in text, (
                f"dialect {dialect!r} has no mention in docs/DIALECTS.md"
            )


EXECUTION_MD = REPO_ROOT / "docs" / "EXECUTION.md"

_TABLE_ROW_OPCODES = re.compile(r"^\| (`[^|]+`) \|", re.MULTILINE)
_BACKTICKED = re.compile(r"`([^`]+)`")


def documented_opcode_names() -> set:
    """First-column backticked names from EXECUTION.md's instruction-set
    and superinstruction tables (combined rows like ```inc` / `dec```
    contribute every name)."""
    text = EXECUTION_MD.read_text(encoding="utf-8")
    names = set()
    for section in ("## Superinstruction fusion", "## Instruction set"):
        start = text.index(section)
        end = text.index("\n## ", start + 1)
        for cell in _TABLE_ROW_OPCODES.findall(text[start:end]):
            names.update(_BACKTICKED.findall(cell))
    return names


class TestExecutionReferenceDrift:
    """docs/EXECUTION.md cannot drift from the VM's opcode set — in
    either direction, fused opcodes included."""

    def test_execution_md_exists(self):
        assert EXECUTION_MD.is_file(), "docs/EXECUTION.md is missing"

    def test_every_opcode_is_documented(self):
        from repro.interp.bytecode import OPCODE_NAMES

        missing = sorted(set(OPCODE_NAMES.values()) - documented_opcode_names())
        assert not missing, (
            "opcodes defined in interp/bytecode.py but absent from "
            f"docs/EXECUTION.md: {missing}"
        )

    def test_every_documented_opcode_exists(self):
        from repro.interp.bytecode import OPCODE_NAMES

        stale = sorted(documented_opcode_names() - set(OPCODE_NAMES.values()))
        assert not stale, (
            f"docs/EXECUTION.md documents unknown opcodes: {stale}"
        )

    def test_every_fused_opcode_documents_its_expansion(self):
        from repro.interp.bytecode import FUSED_OPCODE_BASES

        text = EXECUTION_MD.read_text(encoding="utf-8")
        for fused in FUSED_OPCODE_BASES:
            assert f"`{fused}`" in text, (
                f"fused opcode {fused!r} missing from docs/EXECUTION.md"
            )


class TestIntraRepoLinks:
    @pytest.mark.parametrize(
        "doc", LINKED_DOCS, ids=[str(p.relative_to(REPO_ROOT)) for p in LINKED_DOCS]
    )
    def test_relative_links_resolve(self, doc):
        text = doc.read_text(encoding="utf-8")
        broken = []
        for target in _MD_LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, (
            f"{doc.relative_to(REPO_ROOT)} has broken intra-repo links: {broken}"
        )
