"""Property-based tests (hypothesis) on core invariants.

* randomly generated arithmetic/conditional programs evaluate identically in
  the reference interpreter, the baseline pipeline and the lp+rgn pipeline,
* heap reference counting stays balanced for randomly generated list
  programs,
* region value numbering is a congruence (equal fingerprints ⇔ structurally
  identical straight-line regions),
* the printer/parser round trip is the identity on generated lp modules.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.backend import run_baseline, run_mlir, run_reference
from repro.backend.pipeline import Frontend
from repro.backend.lp_codegen import generate_lp_module
from repro.dialects import lp, rgn
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp
from repro.ir import Builder, FunctionType, InsertionPoint, box, parse_module, print_module, verify
from repro.lambda_rc import insert_rc
from repro.transforms import region_value_number

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# Random expression programs
# ---------------------------------------------------------------------------


@st.composite
def nat_expressions(draw, depth=3):
    """Generate a mini-LEAN Nat expression over variables a and b."""
    if depth == 0:
        return draw(
            st.sampled_from(["a", "b", "0", "1", "2", "7", "41"])
        )
    kind = draw(st.sampled_from(["binop", "if", "leaf", "let"]))
    if kind == "leaf":
        return draw(nat_expressions(depth=0))
    if kind == "binop":
        op = draw(st.sampled_from(["+", "*", "-", "%"]))
        lhs = draw(nat_expressions(depth=depth - 1))
        rhs = draw(nat_expressions(depth=depth - 1))
        if op == "%":
            rhs = f"({rhs} + 1)"
        return f"({lhs} {op} {rhs})"
    if kind == "if":
        cmp = draw(st.sampled_from(["<", "<=", "==", "!="]))
        lhs = draw(nat_expressions(depth=depth - 1))
        rhs = draw(nat_expressions(depth=depth - 1))
        then = draw(nat_expressions(depth=depth - 1))
        other = draw(nat_expressions(depth=depth - 1))
        return f"(if {lhs} {cmp} {rhs} then {then} else {other})"
    value = draw(nat_expressions(depth=depth - 1))
    body = draw(nat_expressions(depth=depth - 1))
    return f"(let c := {value}; {body} + c)"


@given(expr=nat_expressions(), a=st.integers(0, 50), b=st.integers(0, 50))
@SLOW
def test_random_expression_backends_agree(expr, a, b):
    source = f"""
def compute (a : Nat) (b : Nat) : Nat := {expr}
def main : Nat := compute {a} {b}
"""
    expected = run_reference(source)
    assert run_baseline(source).value == expected
    assert run_mlir(source).value == expected


@given(
    values=st.lists(st.integers(0, 200), min_size=0, max_size=12),
    pivot=st.integers(0, 200),
)
@SLOW
def test_random_list_programs_balance_heap(values, pivot):
    conses = "List.nil"
    for v in reversed(values):
        conses = f"(List.cons {v} {conses})"
    source = f"""
inductive List where
| nil
| cons (h : Nat) (t : List)
def countBelow (p : Nat) (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons h t => (if h < p then 1 else 0) + countBelow p t
def main : Nat := countBelow {pivot} {conses}
"""
    expected = sum(1 for v in values if v < pivot)
    baseline = run_baseline(source)
    mlir = run_mlir(source)
    assert baseline.value == expected == mlir.value
    assert baseline.heap_stats["allocations"] == baseline.heap_stats["frees"]
    assert mlir.heap_stats["allocations"] == mlir.heap_stats["frees"]


# ---------------------------------------------------------------------------
# Region value numbering
# ---------------------------------------------------------------------------


def _make_region(values):
    """Build ``rgn.val { lp.int v0; ...; lp.return last }``."""
    val = rgn.ValOp()
    builder = Builder(InsertionPoint.at_end(val.body_block))
    last = None
    for v in values:
        last = builder.create(lp.IntOp, v)
    if last is None:
        last = builder.create(lp.IntOp, 0)
    builder.create(lp.ReturnOp, last.result())
    return val


@given(values=st.lists(st.integers(0, 5), min_size=1, max_size=5))
@SLOW
def test_region_fingerprint_reflexive(values):
    a = _make_region(values)
    b = _make_region(values)
    assert region_value_number(a.body_region) == region_value_number(b.body_region)


@given(
    left=st.lists(st.integers(0, 5), min_size=1, max_size=5),
    right=st.lists(st.integers(0, 5), min_size=1, max_size=5),
)
@SLOW
def test_region_fingerprint_distinguishes_different_bodies(left, right):
    a = _make_region(left)
    b = _make_region(right)
    same = region_value_number(a.body_region) == region_value_number(b.body_region)
    assert same == (left == right)


# ---------------------------------------------------------------------------
# Printer / parser round trip
# ---------------------------------------------------------------------------

_ROUNDTRIP_SOURCES = [
    "def main : Nat := 1 + 2",
    """
inductive List where
| nil
| cons (h : Nat) (t : List)
def length (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons _ t => 1 + length t
def main : Nat := length List.nil
""",
    """
def eval (x : Nat) (y : Nat) : Nat :=
  match x, y with
  | 0, 2 => 40
  | 0, _ => 50
  | _, _ => 60
def main : Nat := eval 0 1
""",
]


@given(index=st.integers(0, len(_ROUNDTRIP_SOURCES) - 1))
@settings(max_examples=len(_ROUNDTRIP_SOURCES), deadline=None)
def test_lp_module_print_parse_roundtrip(index):
    source = _ROUNDTRIP_SOURCES[index]
    module = generate_lp_module(insert_rc(Frontend.to_pure(source)))
    verify(module)
    text = print_module(module)
    reparsed = parse_module(text)
    verify(reparsed)
    assert print_module(reparsed) == text
