"""Parser/printer roundtrip guard over the whole regression suite.

For every testsuite program, the textual IR at each pipeline level (lp
after codegen, rgn entering the optimisations, rgn-opt leaving them, and
the final CFG) must satisfy ``print(parse(text)) == text`` byte-for-byte.
This is what makes ``python -m repro.opt`` trustworthy: IR can leave the
compiler as text, travel through files and pipelines, and come back
without drifting.

Byte-identity leans on two properties fixed alongside this test:

* colliding name hints print with a ``$N`` suffix (``x`` → ``x$1``), which
  the parser strips when recovering the hint — a reprint regenerates the
  same names instead of snowballing (``x_1`` → ``x_1_1``),
* purely numeric SSA names stay anonymous through parsing, so reprints
  renumber them identically.
"""

import pytest

from repro.backend.pipeline import MlirCompiler, PipelineOptions
from repro.eval.testsuite import regression_programs
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.verifier import verify

PROGRAMS = regression_programs()


def _roundtrip(text: str, label: str) -> None:
    module = parse_module(text)
    verify(module)
    reprint = print_module(module)
    assert reprint == text, f"{label}: parse→print not byte-identical"


@pytest.fixture(scope="module")
def captured():
    """program name -> {level: ir_text} for every pipeline level."""
    options = PipelineOptions(capture_ir=("lp", "rgn", "rgn-opt"))
    snapshots = {}
    for program in PROGRAMS:
        artifacts = MlirCompiler(options).compile(program.source)
        texts = dict(artifacts.captured_ir)
        texts["cfg"] = print_module(artifacts.cfg_module)
        snapshots[program.name] = texts
    return snapshots


@pytest.mark.parametrize("program", PROGRAMS, ids=lambda p: p.name)
def test_roundtrip_all_levels(program, captured):
    texts = captured[program.name]
    assert set(texts) == {"lp", "rgn", "rgn-opt", "cfg"}
    for level, text in texts.items():
        _roundtrip(text, f"{program.name}/{level}")


def test_hint_collision_suffix_roundtrips():
    # Two values sharing the hint "x" print as %x and %x$1; a parse →
    # print cycle must reproduce exactly those names (the parser strips
    # the $-suffix, the reprint re-derives it from the same collision).
    text = (
        '"builtin.module"() ({\n'
        "^bb0:\n"
        '  %x = "arith.constant"() {value = 1 : i64} : () -> i64\n'
        '  %x$1 = "arith.constant"() {value = 2 : i64} : () -> i64\n'
        '  %0 = "arith.addi"(%x, %x$1) : (i64, i64) -> i64\n'
        "}) : () -> ()\n"
    )
    module = parse_module(text)
    values = [op.results[0] for op in module.body if op.results]
    assert [v.name_hint for v in values] == ["x", "x", None]
    assert print_module(module) == text


def test_anonymous_names_stay_anonymous():
    text = (
        '"builtin.module"() ({\n'
        "^bb0:\n"
        '  %7 = "arith.constant"() {value = 1 : i64} : () -> i64\n'
        "}) : () -> ()\n"
    )
    module = parse_module(text)
    (op,) = list(module.body)
    assert op.results[0].name_hint is None
    # The reprint renumbers compactly from %0.
    assert '%0 = "arith.constant"' in print_module(module)
