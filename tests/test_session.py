"""Tests for the compilation session layer (PR 4).

Covers :class:`repro.backend.pipeline.CompilationSession` (content-keyed
frontend cache with hit/miss accounting, byte-identical IR vs uncached
compiles), the shared :func:`repro.eval.harness.measurement_options`
helper, the reusable :class:`repro.backend.lowering_context.LoweringContext`
and the process-sharded evaluation harness (``jobs > 1`` must produce
byte-identical figure output).
"""

import pytest

from repro.backend.lowering_context import LabelScope, LoweringContext
from repro.backend.pipeline import (
    CompilationSession,
    MlirCompiler,
    run_baseline,
    run_mlir,
    run_reference,
)
from repro.eval.benchmarks import benchmark_sources
from repro.eval.figures import figure9_report, figure10_report, rc_report
from repro.eval.harness import EvaluationHarness, measurement_options
from repro.ir.printer import print_module

SOURCES = benchmark_sources(
    {
        "binarytrees": {"depth": 3},
        "digits": {"reps": 2, "span": 5},
        "filter": {"length": 8},
    }
)

TINY = "def main : Nat := 1 + 2"


class TestCompilationSession:
    @staticmethod
    def _frontend_stats(session):
        return {
            key: session.stats[key] for key in ("hits", "misses", "entries")
        }

    def test_hit_miss_accounting(self):
        session = CompilationSession()
        assert self._frontend_stats(session) == {
            "hits": 0, "misses": 0, "entries": 0,
        }
        session.frontend(TINY)
        assert self._frontend_stats(session) == {
            "hits": 0, "misses": 1, "entries": 1,
        }
        session.frontend(TINY)
        assert self._frontend_stats(session) == {
            "hits": 1, "misses": 1, "entries": 1,
        }
        session.frontend("def main : Nat := 3")
        assert self._frontend_stats(session) == {
            "hits": 1, "misses": 2, "entries": 2,
        }

    def test_frontend_returns_fresh_copies(self):
        session = CompilationSession()
        first = session.frontend(TINY)
        second = session.frontend(TINY)
        assert first is not second
        # Mutating one copy must not poison the cache.
        first.functions.clear()
        third = session.frontend(TINY)
        assert third.functions

    def test_cached_compile_ir_is_byte_identical(self):
        session = CompilationSession()
        source = SOURCES["digits"]
        options = measurement_options("rgn")
        uncached = MlirCompiler(options).compile(source)
        warm_miss = MlirCompiler(options, session=session).compile(source)
        warm_hit = MlirCompiler(options, session=session).compile(source)
        assert session.hits == 1 and session.misses == 1
        assert (
            print_module(uncached.cfg_module)
            == print_module(warm_miss.cfg_module)
            == print_module(warm_hit.cfg_module)
        )

    def test_session_shared_across_pipeline_entry_points(self):
        session = CompilationSession()
        source = SOURCES["binarytrees"]
        expected = run_reference(source, session=session)
        baseline = run_baseline(source, session=session)
        mlir = run_mlir(source, session=session)
        assert baseline.value == expected and mlir.value == expected
        # One frontend miss, two hits: all three runs shared the parse.
        assert self._frontend_stats(session) == {
            "hits": 2, "misses": 1, "entries": 1,
        }
        # Both pipeline runs compiled their program to bytecode once.
        assert session.stats["bytecode_misses"] == 2

    def test_session_owns_one_lowering_context(self):
        session = CompilationSession()
        context = session.lowering_context
        for name in ("binarytrees", "filter"):
            MlirCompiler(measurement_options("rgn"), session=session).compile(
                SOURCES[name]
            )
        assert session.lowering_context is context
        assert context.modules_lowered == 2


class TestMeasurementOptions:
    def test_default_variant(self):
        options = measurement_options("default")
        assert options.verify_each is False
        assert options.rewrite_engine == "worklist"
        assert options.run_rgn_optimizations is True

    def test_named_variant_and_engine(self):
        options = measurement_options("rgn", rewrite_engine="rescan")
        assert options.run_lambda_simplifier is False
        assert options.run_rgn_optimizations is True
        assert options.rewrite_engine == "rescan"
        assert options.verify_each is False

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError):
            measurement_options("no-such-variant")


class TestLoweringContext:
    def test_function_types_are_interned(self):
        context = LoweringContext()
        assert context.boxed_fn_type(2) is context.boxed_fn_type(2)
        assert context.boxed_fn_type(2) is not context.boxed_fn_type(3)
        assert context.box_arg_types(4) is context.box_arg_types(4)
        assert len(context.box_arg_types(4)) == 4

    def test_symbol_table_resets_per_module(self):
        session = CompilationSession()
        context = session.lowering_context
        MlirCompiler(measurement_options("rgn"), session=session).compile(
            SOURCES["filter"]
        )
        assert "main" in context.symbols
        first_symbols = dict(context.symbols)
        MlirCompiler(measurement_options("rgn"), session=session).compile(TINY)
        assert "main" in context.symbols
        assert context.symbols["main"] is not first_symbols["main"]

    def test_label_scope_chains_without_leaking(self):
        outer = LabelScope()
        sentinel_a, sentinel_b = object(), object()
        outer.define("j1", sentinel_a)
        child = outer.child()
        child.define("j2", sentinel_b)
        sibling = outer.child()
        assert child.lookup("j1") is sentinel_a
        assert child.lookup("j2") is sentinel_b
        assert sibling.lookup("j2") is None  # no leak across siblings
        assert outer.lookup("j2") is None  # no leak upward
        # Shadowing: a child binding wins over the parent's.
        shadow = outer.child()
        shadow.define("j1", sentinel_b)
        assert shadow.lookup("j1") is sentinel_b
        assert outer.lookup("j1") is sentinel_a


class TestShardedHarness:
    def test_jobs2_figures_byte_identical_to_jobs1(self):
        sizes = {
            "binarytrees": {"depth": 3},
            "digits": {"reps": 2, "span": 5},
            "filter": {"length": 8},
        }
        sequential = EvaluationHarness(sizes, jobs=1)
        sharded = EvaluationHarness(sizes, jobs=2)
        assert figure9_report(sequential) == figure9_report(sharded)
        assert figure10_report(sequential) == figure10_report(sharded)
        assert rc_report(sequential) == rc_report(sharded)

    def test_sequential_runs_share_one_session(self):
        sizes = {"binarytrees": {"depth": 3}}
        harness = EvaluationHarness(sizes, jobs=1)
        harness.figure9()
        # baseline + default of the same source: one miss, one hit.
        assert harness.session.stats["misses"] == 1
        assert harness.session.stats["hits"] >= 1
