"""Tests for the RC optimisation subsystem (:mod:`repro.rc_opt`).

* borrow-signature fixpoint: convergence and precision, including mutually
  recursive functions,
* dup/drop fusion: cancellation/merging unit tests and soundness,
* constructor reuse: reset/reuse pairing, runtime token semantics,
* heap-balance property tests over the whole benchmark suite for every new
  pipeline variant (both the λrc interpreter and the lp+rgn CFG pipeline),
* the pipeline-level acceptance criteria: ``rc-opt`` reduces RC traffic and
  ``rc-opt+reuse`` reduces allocations on constructor-heavy benchmarks.
"""

import pytest

from repro.backend.pipeline import (
    RC_VARIANTS,
    BaselineCompiler,
    Frontend,
    run_baseline,
    run_rc_variant,
    run_reference,
)
from repro.eval.benchmarks import benchmark_sources
from repro.interp.rc_interp import RcInterpreter, run_rc_program
from repro.lambda_pure.ir import (
    Call,
    Case,
    CaseAlt,
    Ctor,
    Dec,
    Function,
    Inc,
    Let,
    Lit,
    Program,
    Proj,
    Reset,
    Ret,
    Reuse,
)
from repro.lambda_pure.simplifier import simplify_program
from repro.lambda_rc import insert_rc
from repro.rc_opt import (
    apply_reuse,
    fuse_rc,
    infer_borrow_signatures,
    insert_optimized_rc,
    reuse_critical_params,
)
from repro.runtime import Heap, NullToken, RuntimeError_, Scalar

SMALL_SIZES = {
    "binarytrees": {"depth": 4},
    "binarytrees-int": {"depth": 4},
    "const_fold": {"depth": 3, "reps": 2},
    "deriv": {"reps": 2},
    "filter": {"length": 15},
    "qsort": {"size": 8},
    "rbmap_checkpoint": {"inserts": 8},
    "unionfind": {"elements": 10, "unions": 8},
}

BENCHMARKS = benchmark_sources(SMALL_SIZES)


def to_pure(source):
    return simplify_program(Frontend.to_pure(source))


# ---------------------------------------------------------------------------
# Borrow inference
# ---------------------------------------------------------------------------


class TestBorrowInference:
    def test_inspect_only_param_is_borrowed(self):
        source = """
inductive List where
| nil
| cons (head : Nat) (tail : List)

def length (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons h t => 1 + length t

def main : Nat := length (List.cons 1 (List.cons 2 List.nil))
"""
        pure = to_pure(source)
        signatures = infer_borrow_signatures(pure)
        assert signatures.get("length") == frozenset({0})

    def test_returned_param_stays_owned(self):
        source = """
def identity (x : Nat) : Nat := x

def main : Nat := identity 7
"""
        pure = to_pure(source)
        signatures = infer_borrow_signatures(pure)
        assert "identity" not in signatures

    def test_ctor_stored_param_stays_owned(self):
        source = """
inductive Pair where
| mk (a : Nat) (b : Nat)

def box (x : Nat) : Pair := Pair.mk x x

def main : Nat :=
  match box 3 with
  | Pair.mk a b => a + b
"""
        pure = to_pure(source)
        signatures = infer_borrow_signatures(pure)
        assert "box" not in signatures

    def test_mutually_recursive_fixpoint_converges(self):
        """Mutually recursive inspectors keep their parameter borrowed; a
        mutually recursive pair where one side has an owning use demotes the
        parameter on both sides of the cycle."""
        pure = Program()
        # evenLen/oddLen only case on the list and recurse on the tail
        # through each other -> xs stays borrowed through the cycle.
        # tail is produced by proj (owned local), consumed by the recursive
        # call -- which is what keeps the *parameter* borrow-eligible.
        def inspector(name, other):
            tail_call = Let(
                "t",
                Proj(1, "xs"),
                Let("r", Call(other, ["t"]), Ret("r")),
            )
            base = Let("z", Lit(0), Ret("z"))
            return Function(
                name,
                ["xs"],
                Case("xs", [CaseAlt(0, "nil", base), CaseAlt(1, "cons", tail_call)], None, "List"),
            )

        pure.add_function(inspector("evenLen", "oddLen"))
        pure.add_function(inspector("oddLen", "evenLen"))
        # retEven/retOdd form a cycle in which retOdd *returns* the value:
        # the owning use must propagate around the cycle to retEven.
        pure.add_function(
            Function("retEven", ["v"], Let("r", Call("retOdd", ["v"]), Ret("r")))
        )
        pure.add_function(Function("retOdd", ["v"], Ret("v")))
        pure.add_function(Function("main", [], Let("z", Lit(0), Ret("z"))))
        pure.main = "main"

        signatures = infer_borrow_signatures(pure)
        assert signatures.get("evenLen") == frozenset({0})
        assert signatures.get("oddLen") == frozenset({0})
        assert "retOdd" not in signatures
        assert "retEven" not in signatures

    def test_borrowed_call_argument_does_not_force_ownership(self):
        """Passing a param to a *borrowed* position of a callee keeps it
        borrow-eligible (transitivity through the call graph)."""
        source = """
inductive List where
| nil
| cons (head : Nat) (tail : List)

def length (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons h t => 1 + length t

def lengthTwice (xs : List) : Nat := length xs + length xs

def main : Nat := lengthTwice (List.cons 1 List.nil)
"""
        pure = to_pure(source)
        signatures = infer_borrow_signatures(pure)
        assert signatures.get("lengthTwice") == frozenset({0})

    def test_keep_owned_pins_parameters(self):
        source = """
inductive List where
| nil
| cons (head : Nat) (tail : List)

def length (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons h t => 1 + length t

def main : Nat := length (List.cons 1 List.nil)
"""
        pure = to_pure(source)
        signatures = infer_borrow_signatures(pure, {"length": {0}})
        assert "length" not in signatures

    def test_reuse_critical_param_detection(self):
        source = """
inductive List where
| nil
| cons (head : Nat) (tail : List)

def mapDouble (xs : List) : List :=
  match xs with
  | List.nil => List.nil
  | List.cons h t => List.cons (2 * h) (mapDouble t)

def length (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons h t => 1 + length t

def main : Nat := length (mapDouble (List.cons 1 List.nil))
"""
        pure = to_pure(source)
        critical = reuse_critical_params(pure)
        assert critical.get("mapDouble") == {0}
        assert "length" not in critical

    def test_borrowed_insertion_reduces_rc_traffic(self):
        """A param that stays live across repeated borrowed calls saves an
        inc/dec pair per call."""
        source = """
inductive List where
| nil
| cons (head : Nat) (tail : List)

def length (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons h t => 1 + length t

def lengths (n : Nat) (xs : List) (acc : Nat) : Nat :=
  if n == 0 then acc
  else lengths (n - 1) xs (acc + length xs)

def main : Nat := lengths 10 (List.cons 1 (List.cons 2 List.nil)) 0
"""
        pure = to_pure(source)
        naive, _ = insert_optimized_rc(pure, "naive")
        opt, report = insert_optimized_rc(pure, "opt")
        assert report.borrowed_parameters >= 1
        naive_result = run_rc_program(naive)
        opt_result = run_rc_program(opt)
        assert naive_result.value == opt_result.value
        assert opt_result.metrics.counts["rc"] < naive_result.metrics.counts["rc"]


# ---------------------------------------------------------------------------
# Dup/drop fusion
# ---------------------------------------------------------------------------


def _count_nodes(body, node_type):
    found = 0
    stack = [body]
    while stack:
        node = stack.pop()
        if isinstance(node, node_type):
            found += 1
        if isinstance(node, Let):
            stack.append(node.body)
        elif isinstance(node, Case):
            stack.extend(alt.body for alt in node.alts)
            if node.default is not None:
                stack.append(node.default)
        elif isinstance(node, (Inc, Dec)):
            stack.append(node.body)
    return found


class TestFusion:
    def test_inc_before_dec_cancels(self):
        program = Program()
        body = Inc("x", Dec("x", Let("r", Lit(1), Ret("r"))))
        program.add_function(Function("main", ["x"], body))
        fused, stats = fuse_rc(program)
        assert stats.cancelled_pairs == 1
        main = fused.functions["main"]
        assert _count_nodes(main.body, Inc) == 0
        assert _count_nodes(main.body, Dec) == 0

    def test_dec_before_inc_does_not_cancel(self):
        program = Program()
        body = Dec("x", Inc("x", Ret("x")))
        program.add_function(Function("main", ["x"], body))
        fused, stats = fuse_rc(program)
        assert stats.cancelled_pairs == 0
        main = fused.functions["main"]
        assert _count_nodes(main.body, Inc) == 1
        assert _count_nodes(main.body, Dec) == 1

    def test_adjacent_incs_merge_counts(self):
        program = Program()
        body = Inc("x", Inc("x", Ret("x")))
        program.add_function(Function("main", ["x"], body))
        fused, stats = fuse_rc(program)
        assert stats.merged_ops == 1
        main = fused.functions["main"]
        incs = []
        node = main.body
        while isinstance(node, (Inc, Dec)):
            incs.append(node)
            node = node.body
        assert len(incs) == 1 and incs[0].count == 2

    def test_fusion_does_not_cross_instructions(self):
        program = Program()
        body = Inc("x", Let("y", Lit(1), Dec("x", Ret("y"))))
        program.add_function(Function("main", ["x"], body))
        fused, stats = fuse_rc(program)
        assert stats.cancelled_pairs == 0

    def test_fusion_preserves_semantics_on_benchmarks(self):
        source = BENCHMARKS["deriv"]
        pure = to_pure(source)
        rc = insert_rc(pure)
        fused, _ = fuse_rc(rc)
        base = RcInterpreter(rc).run_main()
        opt = RcInterpreter(fused).run_main()
        assert base.value == opt.value
        assert opt.heap_stats["allocations"] == opt.heap_stats["frees"]


# ---------------------------------------------------------------------------
# Constructor reuse
# ---------------------------------------------------------------------------


class TestReuse:
    def test_heap_reset_unique_cell_yields_live_token(self):
        heap = Heap()
        cell = heap.alloc_ctor(1, [Scalar(1), Scalar(2)])
        token = heap.reset(cell)
        assert token is cell
        reused = heap.reuse(token, 3, [Scalar(4), Scalar(5)])
        assert reused is cell and reused.tag == 3
        assert heap.stats.reuses == 1
        assert heap.stats.allocations == 1  # no second allocation
        heap.dec(reused)
        heap.check_balanced()

    def test_heap_reset_shared_cell_yields_null_token(self):
        heap = Heap()
        cell = heap.alloc_ctor(1, [Scalar(1)])
        heap.inc(cell)
        token = heap.reset(cell)
        assert isinstance(token, NullToken)
        fresh = heap.reuse(token, 2, [Scalar(9)])
        assert fresh is not cell
        assert heap.stats.allocations == 2
        heap.dec(cell)
        heap.dec(fresh)
        heap.check_balanced()

    def test_heap_reuse_rejects_bad_token(self):
        heap = Heap()
        with pytest.raises(RuntimeError_):
            heap.reuse(Scalar(1), 0, [])

    def test_reuse_transform_pairs_dec_with_ctor(self):
        source = """
inductive List where
| nil
| cons (head : Nat) (tail : List)

def mapDouble (xs : List) : List :=
  match xs with
  | List.nil => List.nil
  | List.cons h t => List.cons (2 * h) (mapDouble t)

def upto (n : Nat) : List :=
  if n == 0 then List.nil else List.cons n (upto (n - 1))

def sum (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons h t => h + sum t

def main : Nat := sum (mapDouble (upto 10))
"""
        pure = to_pure(source)
        rc = insert_rc(pure)
        reused, stats = apply_reuse(rc)
        assert stats.reuse_pairs >= 1
        assert _count_nodes(reused.functions["mapDouble"].body, type(None)) == 0
        baseline = RcInterpreter(rc).run_main()
        with_reuse = RcInterpreter(reused).run_main()
        assert baseline.value == with_reuse.value
        assert with_reuse.heap_stats["reuses"] > 0
        assert (
            with_reuse.heap_stats["allocations"]
            < baseline.heap_stats["allocations"]
        )

    def test_reuse_never_crosses_control_flow(self):
        """A dec whose continuation branches before any ctor stays a dec."""
        program = Program()
        case = Case(
            "y",
            [CaseAlt(0, "a", Let("r", Lit(0), Ret("r")))],
            Let("c", Ctor(1, ["z"], "T", "mk"), Ret("c")),
            "T",
        )
        body = Let(
            "y",
            Ctor(1, ["x"], "T", "mk"),
            Dec("w", case),
        )
        program.add_function(Function("f", ["x", "z", "w"], body))
        # w has no known shape here, but even with one there is no linear
        # path from the dec to the ctor -- nothing may be rewritten.
        reused, stats = apply_reuse(program)
        assert stats.reuse_pairs == 0
        assert _count_nodes(reused.functions["f"].body, Reset) == 0
        assert _count_nodes(reused.functions["f"].body, Reuse) == 0


# ---------------------------------------------------------------------------
# Pipeline variants: heap-balance property + acceptance criteria
# ---------------------------------------------------------------------------


class TestRcVariantsOnBenchmarkSuite:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS), ids=sorted(BENCHMARKS))
    @pytest.mark.parametrize("variant", RC_VARIANTS)
    def test_mlir_pipeline_heap_balanced_and_correct(self, name, variant):
        source = BENCHMARKS[name]
        expected = run_reference(source)
        # check_heap=True raises on leaks; double frees raise eagerly.
        result = run_rc_variant(source, variant, check_heap=True)
        assert result.value == expected
        assert result.heap_stats["allocations"] == result.heap_stats["frees"]

    @pytest.mark.parametrize("name", sorted(BENCHMARKS), ids=sorted(BENCHMARKS))
    @pytest.mark.parametrize("mode", ("opt", "opt+reuse"))
    def test_rc_interpreter_heap_balanced_and_correct(self, name, mode):
        source = BENCHMARKS[name]
        expected = run_reference(source)
        result = run_baseline(source, rc_mode=mode, check_heap=True)
        assert result.value == expected
        assert result.heap_stats["allocations"] == result.heap_stats["frees"]

    def test_rc_opt_reduces_total_rc_traffic(self):
        naive_total = 0
        opt_total = 0
        for source in BENCHMARKS.values():
            naive_total += run_rc_variant(source, "rc-naive").metrics.counts["rc"]
            opt_total += run_rc_variant(source, "rc-opt").metrics.counts["rc"]
        assert opt_total < naive_total

    def test_rc_opt_reuse_reduces_allocations_on_ctor_heavy_benchmarks(self):
        reduced = []
        for name in ("const_fold", "deriv", "rbmap_checkpoint"):
            source = BENCHMARKS[name]
            naive = run_rc_variant(source, "rc-naive").heap_stats
            reuse = run_rc_variant(source, "rc-opt+reuse").heap_stats
            assert reuse["allocations"] <= naive["allocations"]
            if reuse["allocations"] < naive["allocations"]:
                assert reuse["reuses"] > 0
                reduced.append(name)
        assert reduced, "no constructor-heavy benchmark saw allocation reuse"

    def test_baseline_artifacts_include_reuse_markers(self):
        artifacts = BaselineCompiler(rc_mode="opt+reuse").compile(
            BENCHMARKS["const_fold"]
        )
        assert artifacts.rc_report is not None
        assert artifacts.rc_report.reuse.reuse_pairs > 0
        assert "lean_reset(" in artifacts.c_source
        assert "lean_reuse_ctor(" in artifacts.c_source
