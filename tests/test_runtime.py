"""Tests for the simulated LEAN runtime: heap, closures, builtins."""

import pytest

from repro.runtime import (
    ArrayObject,
    CtorObject,
    Enum,
    Heap,
    RuntimeContext,
    RuntimeError_,
    Scalar,
    call_builtin,
    extend_closure,
    int_value,
    is_builtin,
    make_closure,
    python_value,
    tag_of,
)


class TestHeapAndValues:
    def test_small_ints_are_scalars(self):
        heap = Heap()
        v = heap.alloc_int(42)
        assert isinstance(v, Scalar)
        assert heap.live_count == 0

    def test_large_ints_are_heap_objects(self):
        heap = Heap()
        v = heap.alloc_int(10**30)
        assert heap.live_count == 1
        heap.dec(v)
        assert heap.live_count == 0

    def test_nullary_constructors_are_enums(self):
        heap = Heap()
        v = heap.alloc_ctor(3, [])
        assert isinstance(v, Enum)
        assert tag_of(v) == 3
        assert heap.live_count == 0

    def test_ctor_free_releases_fields(self):
        heap = Heap()
        inner = heap.alloc_ctor(1, [heap.alloc_int(10**30)])
        outer = heap.alloc_ctor(2, [inner])
        assert heap.live_count == 3
        heap.dec(outer)
        assert heap.live_count == 0
        assert heap.stats.frees == 3

    def test_inc_keeps_object_alive(self):
        heap = Heap()
        obj = heap.alloc_ctor(0, [Scalar(1)])
        heap.inc(obj)
        heap.dec(obj)
        assert heap.live_count == 1
        heap.dec(obj)
        assert heap.live_count == 0

    def test_double_free_detected(self):
        heap = Heap()
        obj = heap.alloc_ctor(0, [Scalar(1)])
        heap.dec(obj)
        with pytest.raises(RuntimeError_):
            heap.dec(obj)

    def test_leak_detected(self):
        heap = Heap()
        heap.alloc_ctor(0, [Scalar(1)])
        with pytest.raises(RuntimeError_):
            heap.check_balanced()

    def test_scalar_rc_is_noop(self):
        heap = Heap()
        heap.inc(Scalar(5))
        heap.dec(Scalar(5))
        heap.check_balanced()

    def test_python_value_conversion(self):
        heap = Heap()
        ctor = heap.alloc_ctor(1, [Scalar(3), Enum(0)])
        assert python_value(ctor) == (1, (3, 0))
        assert python_value(Scalar(7)) == 7

    def test_statistics(self):
        heap = Heap()
        a = heap.alloc_ctor(0, [Scalar(1)])
        heap.inc(a)
        heap.dec(a)
        heap.dec(a)
        stats = heap.stats.as_dict()
        assert stats["allocations"] == 1
        assert stats["frees"] == 1
        assert stats["peak_live"] == 1


class TestClosures:
    def test_unsaturated_extension_returns_new_closure(self):
        heap = Heap()
        closure = make_closure(heap, "f", 3, [Scalar(1)])
        outcome = extend_closure(heap, closure, [Scalar(2)])
        assert not outcome.is_call
        assert outcome.closure.args and len(outcome.closure.args) == 2
        heap.dec(outcome.closure)
        heap.check_balanced()

    def test_saturating_extension_requests_call(self):
        heap = Heap()
        closure = make_closure(heap, "f", 2, [Scalar(1)])
        outcome = extend_closure(heap, closure, [Scalar(2)])
        assert outcome.is_call
        assert outcome.call_fn == "f"
        assert [int_value(v) for v in outcome.call_args] == [1, 2]
        heap.check_balanced()

    def test_over_saturating_extension_reports_extra_args(self):
        heap = Heap()
        closure = make_closure(heap, "f", 1, [])
        outcome = extend_closure(heap, closure, [Scalar(1), Scalar(2)])
        assert outcome.is_call
        assert outcome.extra_args and int_value(outcome.extra_args[0]) == 2

    def test_shared_closure_extension_keeps_original(self):
        heap = Heap()
        closure = make_closure(heap, "f", 3, [Scalar(1)])
        heap.inc(closure)  # two owners
        outcome = extend_closure(heap, closure, [Scalar(2)])
        assert heap.live_count == 2  # original + extended copy
        heap.dec(closure)
        heap.dec(outcome.closure)
        heap.check_balanced()

    def test_pap_arity_check(self):
        heap = Heap()
        with pytest.raises(RuntimeError_):
            make_closure(heap, "f", 1, [Scalar(1), Scalar(2)])


class TestBuiltins:
    def setup_method(self):
        self.ctx = RuntimeContext()

    def call(self, name, *args):
        return call_builtin(self.ctx, name, list(args))

    def test_nat_arithmetic(self):
        assert int_value(self.call("lean_nat_add", Scalar(2), Scalar(3))) == 5
        assert int_value(self.call("lean_nat_sub", Scalar(2), Scalar(5))) == 0
        assert int_value(self.call("lean_nat_mul", Scalar(6), Scalar(7))) == 42
        assert int_value(self.call("lean_nat_div", Scalar(7), Scalar(2))) == 3
        assert int_value(self.call("lean_nat_mod", Scalar(7), Scalar(2))) == 1

    def test_int_division_truncates_towards_zero(self):
        assert int_value(self.call("lean_int_div", Scalar(-7), Scalar(2))) == -3
        assert int_value(self.call("lean_int_mod", Scalar(-7), Scalar(2))) == -1

    def test_comparisons_return_bool_enums(self):
        result = self.call("lean_nat_dec_lt", Scalar(1), Scalar(2))
        assert isinstance(result, Enum) and result.tag == 1
        result = self.call("lean_nat_dec_eq", Scalar(1), Scalar(2))
        assert result.tag == 0

    def test_bigint_arguments_released(self):
        big = self.ctx.heap.alloc_int(10**30)
        result = self.call("lean_nat_add", big, Scalar(1))
        self.ctx.release(result)
        self.ctx.heap.check_balanced()

    def test_unknown_builtin_rejected(self):
        assert not is_builtin("lean_does_not_exist")
        with pytest.raises(RuntimeError_):
            self.call("lean_does_not_exist")

    def test_array_push_get_set_size(self):
        array = self.call("lean_array_mk")
        array = self.call("lean_array_push", array, Scalar(10))
        array = self.call("lean_array_push", array, Scalar(20))
        assert int_value(self.call("lean_array_size", self._share(array))) == 2
        value = self.call("lean_array_get", self._share(array), Scalar(1))
        assert int_value(value) == 20
        array = self.call("lean_array_set", array, Scalar(0), Scalar(99))
        value = self.call("lean_array_get", self._share(array), Scalar(0))
        assert int_value(value) == 99
        self.ctx.release(array)
        self.ctx.heap.check_balanced()

    def _share(self, value):
        """Model an ``inc`` before a consuming use of a still-needed value."""
        self.ctx.heap.inc(value)
        return value

    def test_unique_array_updates_in_place(self):
        array = self.call("lean_array_mk")
        array = self.call("lean_array_push", array, Scalar(1))
        before = id(array)
        array = self.call("lean_array_push", array, Scalar(2))
        assert id(array) == before  # rc == 1, reused in place
        self.ctx.release(array)

    def test_shared_array_copied_on_write(self):
        array = self.call("lean_array_mk")
        array = self.call("lean_array_push", array, Scalar(1))
        self.ctx.heap.inc(array)
        updated = self.call("lean_array_set", array, Scalar(0), Scalar(5))
        assert updated is not array
        assert int_value(array.items[0]) == 1
        assert int_value(updated.items[0]) == 5
        self.ctx.release(array)
        self.ctx.release(updated)
        self.ctx.heap.check_balanced()

    def test_array_bounds_checked(self):
        array = self.call("lean_array_mk")
        with pytest.raises(RuntimeError_):
            self.call("lean_array_get", array, Scalar(3))

    def test_array_swap(self):
        array = self.call("lean_array_mk")
        for v in (1, 2, 3):
            array = self.call("lean_array_push", array, Scalar(v))
        array = self.call("lean_array_swap", array, Scalar(0), Scalar(2))
        assert [int_value(v) for v in array.items] == [3, 2, 1]
        self.ctx.release(array)

    def test_io_println_captures_output(self):
        self.call("lean_io_println", Scalar(42))
        assert self.ctx.output == ["42"]

    def test_nat_to_int_and_back(self):
        assert int_value(self.call("lean_nat_to_int", Scalar(5))) == 5
        assert int_value(self.call("lean_int_to_nat", Scalar(-5))) == 0
