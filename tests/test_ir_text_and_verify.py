"""Tests for types, attributes, the printer/parser round trip and the verifier."""

import pytest

from repro.dialects import arith, cf, lp, rgn
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.ir import (
    ArrayAttr,
    Block,
    BoolAttr,
    Builder,
    FunctionType,
    InsertionPoint,
    IntegerAttr,
    IntegerType,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    VerificationError,
    box,
    collect_errors,
    i1,
    i8,
    i64,
    parse_module,
    parse_type,
    print_module,
    print_op,
    verify,
)


class TestTypes:
    def test_integer_type_equality(self):
        assert IntegerType(32) == IntegerType(32)
        assert IntegerType(32) != IntegerType(64)
        assert hash(IntegerType(8)) == hash(i8)

    def test_type_printing(self):
        assert str(i64) == "i64"
        assert str(box) == "!lp.t"
        assert str(FunctionType([i64, box], [box])) == "(i64, !lp.t) -> !lp.t"

    def test_parse_simple_types(self):
        assert parse_type("i32") == IntegerType(32)
        assert parse_type("!lp.t") == box
        assert parse_type("index").__class__.__name__ == "IndexType"

    def test_parse_function_type(self):
        t = parse_type("(i64, !lp.t) -> !lp.t")
        assert isinstance(t, FunctionType)
        assert t.inputs == (i64, box)
        assert t.results == (box,)

    def test_parse_invalid_type(self):
        with pytest.raises(ValueError):
            parse_type("notatype!")

    def test_integer_width_validation(self):
        with pytest.raises(ValueError):
            IntegerType(0)


class TestAttributes:
    def test_integer_attr(self):
        attr = IntegerAttr(42)
        assert str(attr) == "42 : i64"
        assert attr == IntegerAttr(42)
        assert attr != IntegerAttr(43)

    def test_string_attr_escaping(self):
        attr = StringAttr('say "hi"')
        assert '\\"' in str(attr)

    def test_array_attr(self):
        attr = ArrayAttr([IntegerAttr(1), IntegerAttr(2)])
        assert len(attr) == 2
        assert attr[0] == IntegerAttr(1)
        assert str(attr) == "[1 : i64, 2 : i64]"

    def test_bool_and_symbol(self):
        assert str(BoolAttr(True)) == "true"
        assert str(SymbolRefAttr("foo")) == "@foo"
        assert str(TypeAttr(i64)) == "i64"


def _length_module():
    from repro.dialects.func import CallOp

    module = ModuleOp()
    func = FuncOp("length", FunctionType([box], [box]))
    module.append(func)
    builder = Builder(InsertionPoint.at_end(func.entry_block))
    arg = func.arguments[0]
    label = builder.create(lp.GetLabelOp, arg)
    switch = builder.create(lp.SwitchOp, label.result(), [0], with_default=True)
    zero_builder = Builder(InsertionPoint.at_end(switch.case_block(0)))
    zero = zero_builder.create(lp.IntOp, 0)
    zero_builder.create(lp.ReturnOp, zero.result())
    default_builder = Builder(InsertionPoint.at_end(switch.default_block))
    tail = default_builder.create(lp.ProjectOp, arg, 1)
    rec = default_builder.create(CallOp, "length", [tail.result()], [box])
    one = default_builder.create(lp.IntOp, 1)
    total = default_builder.create(
        CallOp, "lean_nat_add", [one.result(), rec.result()], [box]
    )
    default_builder.create(lp.ReturnOp, total.result())
    return module


class TestPrinterParser:
    def test_roundtrip_length_module(self):
        module = _length_module()
        text = print_module(module)
        reparsed = parse_module(text)
        assert print_module(reparsed) == text

    def test_parse_produces_registered_ops(self):
        module = _length_module()
        reparsed = parse_module(print_module(module))
        ops = {op.name for op in reparsed.walk()}
        assert "lp.switch" in ops and "lp.construct" not in ops
        switches = [op for op in reparsed.walk() if isinstance(op, lp.SwitchOp)]
        assert switches and switches[0].case_values == [0]

    def test_print_contains_attributes_and_types(self):
        module = _length_module()
        text = print_module(module)
        assert '"lp.switch"' in text
        assert "case_values = [0 : i64]" in text
        assert "(!lp.t) -> !lp.t" in text

    def test_roundtrip_cfg_constructs(self):
        module = ModuleOp()
        func = FuncOp("choose", FunctionType([i1, i64, i64], [i64]))
        module.append(func)
        entry = func.entry_block
        left = Block([i64])
        right = Block([i64])
        func.body.add_block(left)
        func.body.add_block(right)
        entry.append(
            cf.CondBranchOp(
                func.arguments[0],
                left,
                right,
                [func.arguments[1]],
                [func.arguments[2]],
            )
        )
        left.append(ReturnOp([left.arguments[0]]))
        right.append(ReturnOp([right.arguments[0]]))
        verify(module)
        text = print_module(module)
        reparsed = parse_module(text)
        verify(reparsed)
        assert print_module(reparsed) == text

    def test_parse_error_on_garbage(self):
        from repro.ir import ParseError

        with pytest.raises(ParseError):
            parse_module('"func.func" garbage')


class TestVerifier:
    def test_valid_module_verifies(self):
        verify(_length_module())

    def test_missing_terminator_detected(self):
        module = ModuleOp()
        func = FuncOp("f", FunctionType([i64], [i64]))
        module.append(func)
        func.entry_block.append(arith.ConstantOp(1))
        errors = collect_errors(module)
        assert any("terminator" in e for e in errors)

    def test_terminator_not_last_detected(self):
        module = ModuleOp()
        func = FuncOp("f", FunctionType([i64], [i64]))
        module.append(func)
        block = func.entry_block
        block.append(ReturnOp([func.arguments[0]]))
        block.append(arith.ConstantOp(1))
        errors = collect_errors(module)
        assert any("not the last" in e for e in errors)

    def test_dominance_violation_detected(self):
        module = ModuleOp()
        func = FuncOp("f", FunctionType([], [i64]))
        module.append(func)
        block = func.entry_block
        c = arith.ConstantOp(1)
        add = arith.AddIOp(c.result(), c.result())
        # Insert the use before the definition.
        block.append(add)
        block.append(c)
        block.append(ReturnOp([add.result()]))
        errors = collect_errors(module)
        assert any("dominate" in e for e in errors)

    def test_verify_raises(self):
        module = ModuleOp()
        func = FuncOp("f", FunctionType([i64], [i64]))
        module.append(func)
        func.entry_block.append(arith.ConstantOp(1))
        with pytest.raises(VerificationError):
            verify(module)

    def test_op_specific_verifier(self):
        bad_select = arith.SelectOp.__new__(arith.SelectOp)
        from repro.ir.core import Operation

        a = arith.ConstantOp(1)
        Operation.__init__(
            bad_select,
            operands=[a.result(), a.result(), a.result()],
            result_types=[i64],
        )
        with pytest.raises(ValueError):
            bad_select.verify_()

    def test_region_value_use_restriction(self):
        from repro.dialects.rgn import verify_region_value_uses
        from repro.dialects.func import CallOp

        module = ModuleOp()
        func = FuncOp("f", FunctionType([], [box]))
        module.append(func)
        builder = Builder(InsertionPoint.at_end(func.entry_block))
        val = builder.create(rgn.ValOp)
        inner = Builder(InsertionPoint.at_end(val.body_block))
        c = inner.create(lp.IntOp, 1)
        inner.create(lp.ReturnOp, c.result())
        # Illegally pass the region value to a call.
        builder.create(CallOp, "g", [val.result()], [box])
        builder.create(lp.UnreachableOp)
        errors = verify_region_value_uses(module)
        assert errors and "not select" in errors[0]


class TestDominanceInfo:
    def test_block_dominance(self):
        from repro.ir import DominanceAnalysis

        module = ModuleOp()
        func = FuncOp("f", FunctionType([i1], [i64]))
        module.append(func)
        entry = func.entry_block
        left = Block()
        right = Block()
        join = Block([i64])
        for b in (left, right, join):
            func.body.add_block(b)
        entry.append(cf.CondBranchOp(func.arguments[0], left, right))
        c1 = arith.ConstantOp(1)
        left.append(c1)
        left.append(cf.BranchOp(join, [c1.result()]))
        c2 = arith.ConstantOp(2)
        right.append(c2)
        right.append(cf.BranchOp(join, [c2.result()]))
        join.append(ReturnOp([join.arguments[0]]))
        verify(module)
        analysis = DominanceAnalysis()
        info = analysis.info(func.body)
        assert info.dominates_block(entry, join)
        assert not info.dominates_block(left, join)
        assert info.properly_dominates_block(entry, left)
