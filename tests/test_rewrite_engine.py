"""Tests for the worklist rewrite engine, its notification hooks and the
pass-manager statistics fixes."""

import pytest

from repro.dialects import arith, lp, rgn
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp, ReturnOp
from repro.ir import Builder, FunctionType, InsertionPoint, i64
from repro.ir.core import Operation
from repro.rewrite import (
    NonConvergenceError,
    PassManager,
    PatternRewriter,
    PatternSet,
    RewritePattern,
    Worklist,
    apply_patterns_greedily,
)
from repro.rewrite.pass_manager import Pass
from repro.transforms.constant_fold import constant_fold_patterns


def new_func(module, name="f", inputs=(i64,), results=(i64,)):
    func = FuncOp(name, FunctionType(list(inputs), list(results)))
    module.append(func)
    return func, Builder(InsertionPoint.at_end(func.entry_block))


def fold_chain_func(depth=6):
    """((1 + 2) + 3) + ... — a constant-fold cascade."""
    module = ModuleOp()
    func, builder = new_func(module)
    acc = builder.create(arith.ConstantOp, 1)
    for i in range(2, depth + 2):
        rhs = builder.create(arith.ConstantOp, i)
        acc = builder.create(arith.AddIOp, acc.result(), rhs.result())
    builder.create(ReturnOp, [acc.result()])
    return module, func


class TestEraseTracking:
    def test_erase_sets_flag(self):
        module = ModuleOp()
        func, builder = new_func(module)
        c = builder.create(arith.ConstantOp, 1)
        assert c.attached and not c.erased
        c.erase()
        assert c.erased and not c.attached

    def test_erasing_parent_marks_nested_ops(self):
        module = ModuleOp()
        func, builder = new_func(module, inputs=(), results=())
        val = builder.create(rgn.ValOp)
        inner = Builder(InsertionPoint.at_end(val.body_block))
        payload = inner.create(lp.IntOp, 7)
        val.erase()
        assert val.erased
        assert payload.erased and not payload.attached

    def test_detach_clears_attached_without_erasing(self):
        module = ModuleOp()
        func, builder = new_func(module)
        c = builder.create(arith.ConstantOp, 1)
        c.detach()
        assert not c.attached and not c.erased

    def test_walk_postorder_yields_children_first(self):
        module = ModuleOp()
        func, builder = new_func(module, inputs=(), results=())
        val = builder.create(rgn.ValOp)
        inner = Builder(InsertionPoint.at_end(val.body_block))
        payload = inner.create(lp.IntOp, 7)
        order = list(val.walk_postorder())
        assert order.index(payload) < order.index(val)


class TestWorklist:
    def test_membership_deduplicates_pushes(self):
        module = ModuleOp()
        func, builder = new_func(module)
        c = builder.create(arith.ConstantOp, 1)
        worklist = Worklist()
        assert worklist.push(c)
        assert not worklist.push(c)
        assert len(worklist) == 1
        assert worklist.pop() is c
        assert worklist.push(c)  # re-queueable after popping

    def test_duplicate_touches_matched_once(self):
        """Satellite regression: a pattern reporting the same op many times
        must not cause repeated re-matching within one driver run."""

        class NoisyFold(RewritePattern):
            op_name = arith.AddIOp.OP_NAME
            benefit = 2

            def match_and_rewrite(self, op, rewriter):
                lhs = op.operands[0].owner_op()
                rhs = op.operands[1].owner_op()
                if not isinstance(lhs, arith.ConstantOp):
                    return False
                if not isinstance(rhs, arith.ConstantOp):
                    return False
                folded = rewriter.create(
                    arith.ConstantOp, lhs.value + rhs.value, op.results[0].type
                )
                # Report the replacement op many times over.
                for _ in range(10):
                    rewriter.notify_changed(folded)
                rewriter.replace_op(op, folded.results)
                return True

        module, func = fold_chain_func(depth=5)
        result = apply_patterns_greedily(func, [NoisyFold()])
        assert result.converged and result.applications == 5
        assert result.requeues_deduped >= 5 * 9
        # ~one attempt per live op plus a few requeues — nowhere near the
        # 10-notifications-per-application blow-up.
        assert result.match_attempts < 60

    def test_worklist_and_rescan_reach_same_ir(self):
        results = {}
        for engine in ("worklist", "rescan"):
            module, func = fold_chain_func(depth=8)
            result = apply_patterns_greedily(
                func, constant_fold_patterns(), engine=engine
            )
            assert result.converged
            results[engine] = (str(module), result.applications)
        assert results["worklist"][0] == results["rescan"][0]
        assert results["worklist"][1] == results["rescan"][1]

    def test_unknown_engine_rejected(self):
        module, func = fold_chain_func(depth=1)
        with pytest.raises(ValueError, match="unknown rewrite engine"):
            apply_patterns_greedily(func, [], engine="magic")


class TestNotifications:
    def test_replace_op_requeues_users_of_results(self):
        """Folding a producer must requeue its consumer even when the
        consumer was already processed (the consumer is re-enabled)."""
        module, func = fold_chain_func(depth=4)
        result = apply_patterns_greedily(func, constant_fold_patterns())
        constants = [
            op for op in func.walk() if isinstance(op, arith.ConstantOp)
        ]
        adds = [op for op in func.walk() if isinstance(op, arith.AddIOp)]
        assert not adds  # the whole chain folded in one drain
        assert result.iterations == 1

    def test_erase_notifies_single_use_transition(self):
        """Erasing one of two run sites makes the region inlinable; the
        worklist engine must discover this within the same drain."""

        class EraseSecondRun(RewritePattern):
            op_name = rgn.RunOp.OP_NAME
            benefit = 5

            def __init__(self):
                self.fired = False

            def match_and_rewrite(self, op, rewriter):
                if self.fired:
                    return False
                self.fired = True
                rewriter.erase_op(op)
                return True

        from repro.transforms.case_elimination import InlineRunOfKnownRegion

        module = ModuleOp()
        func, builder = new_func(module, inputs=(), results=())
        val = builder.create(rgn.ValOp)
        inner = Builder(InsertionPoint.at_end(val.body_block))
        inner.create(lp.IntOp, 1)
        # Two run sites: the inline pattern is blocked until one is erased.
        builder.create(rgn.RunOp, val.result())
        builder.create(rgn.RunOp, val.result())
        result = apply_patterns_greedily(
            func, [EraseSecondRun(), InlineRunOfKnownRegion()]
        )
        assert result.converged
        names = [op.name for op in func.walk() if op is not func]
        assert "rgn.run" not in names  # remaining run was inlined in-drain
        assert "rgn.val" not in names

    def test_nested_ops_in_cloned_subtrees_are_requeued(self):
        """Inlining clones a subtree whose *nested* ops become matchable
        after operand substitution — the worklist must queue the whole
        cloned subtree, not just its top-level ops."""
        from repro.ir import i1
        from repro.transforms.case_elimination import case_elimination_patterns

        def build():
            module = ModuleOp()
            func, builder = new_func(module, inputs=(), results=())
            a = builder.create(arith.ConstantOp, 10)
            b = builder.create(arith.ConstantOp, 20)
            outer = builder.insert(rgn.ValOp(arg_types=[i1]))
            cond = outer.body_block.arguments[0]
            inner_builder = Builder(InsertionPoint.at_end(outer.body_block))
            inner = inner_builder.create(rgn.ValOp)
            deep = Builder(InsertionPoint.at_end(inner.body_block))
            deep.create(arith.SelectOp, cond, a.result(), b.result())
            inner_builder.create(rgn.RunOp, inner.result())
            flag = builder.create(arith.ConstantOp, 1, i1)
            builder.create(rgn.RunOp, outer.result(), [flag.result()])
            return module, func

        finals = {}
        for engine in ("worklist", "rescan"):
            module, func = build()
            result = apply_patterns_greedily(
                func, case_elimination_patterns(), engine=engine
            )
            assert result.converged
            finals[engine] = str(module)
            names = [op.name for op in func.walk()]
            assert "arith.select" not in names, engine
        assert finals["worklist"] == finals["rescan"]

    def test_erased_worklist_entries_are_skipped(self):
        module, func = fold_chain_func(depth=3)
        result = apply_patterns_greedily(func, constant_fold_patterns())
        assert result.converged
        # Dead intermediate constants remain (no DCE pattern here), but no
        # erased op was ever re-matched: every attempt targets a live op.
        live = sum(1 for op in func.walk() if op is not func)
        # 4 seed constants + 3 folded constants + return; the 3 adds erased.
        assert live == 8
        assert not any(op.name == arith.AddIOp.OP_NAME for op in func.walk())


class TestConvergence:
    class Diverging(RewritePattern):
        """Always applies: flips an attribute back and forth forever."""

        op_name = arith.ConstantOp.OP_NAME

        def match_and_rewrite(self, op, rewriter):
            rewriter.notify_changed(op)
            return True

    def test_nonconvergence_returns_flag_when_not_strict(self):
        module, func = fold_chain_func(depth=1)
        result = apply_patterns_greedily(
            func, [self.Diverging()], max_rewrites=25
        )
        assert not result.converged
        assert result.applications == 25

    def test_nonconvergence_raises_under_strict(self):
        module, func = fold_chain_func(depth=1)
        with pytest.raises(NonConvergenceError, match="did not converge"):
            apply_patterns_greedily(
                func, [self.Diverging()], max_rewrites=25, strict=True
            )

    def test_rescan_nonconvergence_raises_under_strict(self):
        module, func = fold_chain_func(depth=1)
        with pytest.raises(NonConvergenceError):
            apply_patterns_greedily(
                func,
                [self.Diverging()],
                engine="rescan",
                max_iterations=3,
                strict=True,
            )

    def test_pass_manager_threads_strictness(self):
        from repro.transforms.constant_fold import ConstantFoldPass

        module, func = fold_chain_func(depth=2)
        manager = PassManager([ConstantFoldPass()], verify_each=False)
        manager.run(module)
        assert manager.passes[0].strict_convergence is False
        manager = PassManager([ConstantFoldPass()], verify_each=True)
        manager.run(module)
        assert manager.passes[0].strict_convergence is True


class TestPatternSet:
    def test_benefit_orders_candidates(self):
        class Low(RewritePattern):
            benefit = 1

        class High(RewritePattern):
            benefit = 9

        class Named(RewritePattern):
            op_name = arith.ConstantOp.OP_NAME
            benefit = 2

        low, high, named = Low(), High(), Named()
        patterns = PatternSet([low, named, high])
        module = ModuleOp()
        func, builder = new_func(module)
        c = builder.create(arith.ConstantOp, 1)
        assert list(patterns.candidates(c)) == [named, high, low]
        add = builder.create(arith.AddIOp, c.result(), c.result())
        assert list(patterns.candidates(add)) == [high, low]


class TestOperandArityPrefilter:
    """The operand-arity prefilter on the pattern index (drain seeding)."""

    class ExactlyTwo(RewritePattern):
        op_name = arith.ConstantOp.OP_NAME
        num_operands = 2

        def match_and_rewrite(self, op, rewriter):  # pragma: no cover
            raise AssertionError("prefiltered pattern must never be tried")

    class AtLeastOneGeneric(RewritePattern):
        min_num_operands = 1

        def match_and_rewrite(self, op, rewriter):
            return False

    def test_exact_arity_mismatch_is_skipped_and_counted(self):
        from repro.rewrite.driver import GreedyRewriteResult

        patterns = PatternSet([self.ExactlyTwo()])
        module = ModuleOp()
        func, builder = new_func(module)
        constant = builder.create(arith.ConstantOp, 1)  # zero operands
        result = GreedyRewriteResult()
        assert list(patterns.candidates(constant, result)) == []
        assert result.prefilter_skips == 1

    def test_min_arity_applies_to_generic_patterns(self):
        from repro.rewrite.driver import GreedyRewriteResult

        generic = self.AtLeastOneGeneric()
        patterns = PatternSet([generic])
        module = ModuleOp()
        func, builder = new_func(module)
        constant = builder.create(arith.ConstantOp, 1)
        add = builder.create(arith.AddIOp, constant.result(), constant.result())
        result = GreedyRewriteResult()
        assert list(patterns.candidates(constant, result)) == []
        assert list(patterns.candidates(add, result)) == [generic]
        assert result.prefilter_skips == 1

    def test_driver_never_attempts_prefiltered_patterns(self):
        # ExactlyTwo raises if matched; driving it over a module of
        # zero-operand constants must be a no-op with counted skips.
        module, func = fold_chain_func(depth=2)
        result = apply_patterns_greedily(func, [self.ExactlyTwo()])
        assert result.match_attempts == 0
        assert result.prefilter_skips == 3  # one per constant op
        assert result.converged

    def test_canonicalization_drain_reports_skips_in_statistics(self):
        from repro.rewrite.driver import PatternRewritePass

        class TwoOnlyPass(PatternRewritePass):
            name = "two-only"

            def patterns(self):
                return [TestOperandArityPrefilter.ExactlyTwo()]

        module, _ = fold_chain_func(depth=2)
        pass_ = TwoOnlyPass()
        manager = PassManager([pass_], verify_each=False)
        manager.run(module)
        assert pass_.statistics.get("prefilter-skips") == 3


class CountingPass(Pass):
    name = "counting"

    def run(self, module: Operation) -> None:
        self.statistics.bump("runs")
        self.statistics.bump("work", 10)


class TestPassManagerStatistics:
    def test_same_instance_twice_accumulates(self):
        """Satellite regression: statistics used to pair cumulative timings
        with last-run-only counters."""
        module = ModuleOp()
        pass_ = CountingPass()
        manager = PassManager([pass_, pass_], verify_each=False)
        manager.run(module)
        assert manager.statistics["counting"].get("runs") == 2
        assert manager.statistics["counting"].get("work") == 20

    def test_two_instances_sharing_a_name_merge(self):
        module = ModuleOp()
        manager = PassManager([CountingPass(), CountingPass()], verify_each=False)
        manager.run(module)
        assert manager.statistics["counting"].get("runs") == 2
        assert manager.total_rewrites() == 22

    def test_repeated_run_keeps_counters_and_timings_paired(self):
        module = ModuleOp()
        pass_ = CountingPass()
        manager = PassManager([pass_], verify_each=False)
        manager.run(module)
        manager.run(module)
        assert manager.statistics["counting"].get("runs") == 2
        assert manager.timings["counting"] > 0

    def test_report_lists_each_pass_once(self):
        module = ModuleOp()
        pass_ = CountingPass()
        manager = PassManager([pass_, pass_], verify_each=False)
        manager.run(module)
        report = manager.report()
        assert report.count("counting") == 1
        assert "runs=2" in report

    def test_verbose_line_shows_per_run_delta(self, capsys):
        module = ModuleOp()
        pass_ = CountingPass()
        manager = PassManager([pass_, pass_], verify_each=False, verbose=True)
        manager.run(module)
        out = capsys.readouterr().out
        # Each run prints its own delta (runs=1), not the cumulative total.
        assert out.count("runs=1") == 2
