"""Tests for the SSA and region optimisation passes (§IV-B)."""

import pytest

from repro.dialects import arith, lp, rgn
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import CallOp, FuncOp, ReturnOp
from repro.ir import Builder, FunctionType, InsertionPoint, box, i1, i64, verify
from repro.rewrite import PassManager, apply_patterns_greedily
from repro.transforms import (
    CanonicalizePass,
    CaseEliminationPass,
    CommonBranchEliminationPass,
    ConstantFoldPass,
    CSEPass,
    DeadCodeEliminationPass,
    DeadRegionEliminationPass,
    InlinerPass,
    RegionGVNPass,
    region_value_number,
)


def new_func(module, name, inputs, results):
    func = FuncOp(name, FunctionType(inputs, results))
    module.append(func)
    return func, Builder(InsertionPoint.at_end(func.entry_block))


def make_region_returning_int(builder, value):
    """Create ``rgn.val { lp.return (lp.int value) }`` and return the op."""
    val = builder.create(rgn.ValOp)
    inner = Builder(InsertionPoint.at_end(val.body_block))
    c = inner.create(lp.IntOp, value)
    inner.create(lp.ReturnOp, c.result())
    return val


def ops_by_name(func):
    return [op.name for op in func.walk() if op is not func]


class TestDCE:
    def test_removes_dead_pure_ops(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [i64], [i64])
        builder.create(arith.ConstantOp, 1)
        builder.create(arith.ConstantOp, 2)
        builder.create(ReturnOp, [func.arguments[0]])
        DeadCodeEliminationPass().run(module)
        assert ops_by_name(func) == ["func.return"]

    def test_keeps_impure_ops(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [box], [box])
        builder.create(CallOp, "effect", [func.arguments[0]], [box])
        builder.create(lp.ReturnOp, func.arguments[0])
        DeadCodeEliminationPass().run(module)
        assert "func.call" in ops_by_name(func)

    def test_removes_transitively_dead_chain(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [i64], [i64])
        a = builder.create(arith.ConstantOp, 1)
        b = builder.create(arith.AddIOp, a.result(), a.result())
        builder.create(arith.MulIOp, b.result(), b.result())
        builder.create(ReturnOp, [func.arguments[0]])
        DeadCodeEliminationPass().run(module)
        assert ops_by_name(func) == ["func.return"]

    def test_dead_region_value_removed(self):
        """Figure 1 A: dead expression elimination = DCE on region values."""
        module = ModuleOp()
        func, builder = new_func(module, "f", [box], [box])
        make_region_returning_int(builder, 99)  # dead let-bound expression
        builder.create(lp.ReturnOp, func.arguments[0])
        pass_ = DeadRegionEliminationPass()
        pass_.run(module)
        assert "rgn.val" not in ops_by_name(func)
        assert pass_.statistics.get("regions-erased") == 1

    def test_dead_region_pass_ignores_other_ops(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [i64], [i64])
        builder.create(arith.ConstantOp, 1)
        builder.create(ReturnOp, [func.arguments[0]])
        DeadRegionEliminationPass().run(module)
        assert "arith.constant" in ops_by_name(func)


class TestCSE:
    def test_merges_identical_pure_ops(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [i64], [i64])
        a = builder.create(arith.ConstantOp, 5)
        b = builder.create(arith.ConstantOp, 5)
        total = builder.create(arith.AddIOp, a.result(), b.result())
        builder.create(ReturnOp, [total.result()])
        CSEPass().run(module)
        DeadCodeEliminationPass().run(module)
        constants = [op for op in func.walk() if isinstance(op, arith.ConstantOp)]
        assert len(constants) == 1

    def test_does_not_merge_allocating_ops(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [box], [box])
        p1 = builder.create(lp.PapOp, "g", [func.arguments[0]])
        p2 = builder.create(lp.PapOp, "g", [func.arguments[0]])
        merged = builder.create(lp.PapExtendOp, p1.result(), [p2.result()])
        builder.create(lp.ReturnOp, merged.result())
        CSEPass().run(module)
        paps = [op for op in func.walk() if isinstance(op, lp.PapOp)]
        assert len(paps) == 2

    def test_different_attributes_not_merged(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [i64], [i64])
        a = builder.create(arith.ConstantOp, 1)
        b = builder.create(arith.ConstantOp, 2)
        s = builder.create(arith.AddIOp, a.result(), b.result())
        builder.create(ReturnOp, [s.result()])
        CSEPass().run(module)
        constants = [op for op in func.walk() if isinstance(op, arith.ConstantOp)]
        assert len(constants) == 2


class TestConstantFolding:
    def test_folds_addition(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [], [i64])
        a = builder.create(arith.ConstantOp, 20)
        b = builder.create(arith.ConstantOp, 22)
        s = builder.create(arith.AddIOp, a.result(), b.result())
        builder.create(ReturnOp, [s.result()])
        ConstantFoldPass().run(module)
        DeadCodeEliminationPass().run(module)
        constants = [op for op in func.walk() if isinstance(op, arith.ConstantOp)]
        assert any(c.value == 42 for c in constants)
        assert not any(op.name == "arith.addi" for op in func.walk())

    def test_folds_comparison(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [], [i1])
        a = builder.create(arith.ConstantOp, 1)
        b = builder.create(arith.ConstantOp, 2)
        cmp = builder.create(arith.CmpIOp, "slt", a.result(), b.result())
        builder.create(ReturnOp, [cmp.result()])
        ConstantFoldPass().run(module)
        DeadCodeEliminationPass().run(module)
        assert not any(op.name == "arith.cmpi" for op in func.walk())

    def test_identity_simplifications(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [i64], [i64])
        zero = builder.create(arith.ConstantOp, 0)
        s = builder.create(arith.AddIOp, func.arguments[0], zero.result())
        builder.create(ReturnOp, [s.result()])
        ConstantFoldPass().run(module)
        DeadCodeEliminationPass().run(module)
        assert ops_by_name(func) == ["func.return"]
        ret = func.entry_block.operations[-1]
        assert ret.operands[0] is func.arguments[0]

    def test_does_not_fold_division_by_zero(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [], [i64])
        a = builder.create(arith.ConstantOp, 1)
        z = builder.create(arith.ConstantOp, 0)
        d = builder.create(arith.DivSIOp, a.result(), z.result())
        builder.create(ReturnOp, [d.result()])
        ConstantFoldPass().run(module)
        assert any(op.name == "arith.divsi" for op in func.walk())


class TestRegionGVN:
    def test_fingerprint_equal_for_identical_regions(self):
        builder_block = ModuleOp()
        func, builder = new_func(builder_block, "f", [i1], [box])
        a = make_region_returning_int(builder, 7)
        b = make_region_returning_int(builder, 7)
        c = make_region_returning_int(builder, 8)
        builder.create(lp.UnreachableOp)
        fa = region_value_number(a.body_region)
        fb = region_value_number(b.body_region)
        fc = region_value_number(c.body_region)
        assert fa == fb
        assert fa != fc

    def test_fingerprint_distinguishes_outer_values(self):
        from repro.transforms.region_gvn import ValueNumbering

        module = ModuleOp()
        func, builder = new_func(module, "f", [box, box], [box])
        v1 = builder.create(rgn.ValOp)
        Builder(InsertionPoint.at_end(v1.body_block)).create(
            lp.ReturnOp, func.arguments[0]
        )
        v2 = builder.create(rgn.ValOp)
        Builder(InsertionPoint.at_end(v2.body_block)).create(
            lp.ReturnOp, func.arguments[1]
        )
        builder.create(lp.UnreachableOp)
        # Fingerprints are only comparable when they share one value
        # numbering (as the pass does).
        numbering = ValueNumbering()
        assert region_value_number(v1.body_region, numbering) != region_value_number(
            v2.body_region, numbering
        )

    def test_gvn_merges_identical_regions(self):
        """§IV-B.2: case b of True -> 7 | False -> 7 collapses to return 7."""
        module = ModuleOp()
        func, builder = new_func(module, "f", [i1], [box])
        a = make_region_returning_int(builder, 7)
        b = make_region_returning_int(builder, 7)
        sel = builder.create(arith.SelectOp, func.arguments[0], a.result(), b.result())
        builder.create(rgn.RunOp, sel.result())
        pm = PassManager(
            [
                RegionGVNPass(),
                CommonBranchEliminationPass(),
                CaseEliminationPass(),
                DeadCodeEliminationPass(),
            ]
        )
        pm.run(module)
        names = ops_by_name(func)
        assert names == ["lp.int", "lp.return"]
        assert pm.statistics["region-gvn"].get("regions-merged") == 1

    def test_gvn_does_not_merge_different_regions(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [i1], [box])
        a = make_region_returning_int(builder, 3)
        b = make_region_returning_int(builder, 5)
        sel = builder.create(arith.SelectOp, func.arguments[0], a.result(), b.result())
        builder.create(rgn.RunOp, sel.result())
        RegionGVNPass().run(module)
        vals = [op for op in func.walk() if isinstance(op, rgn.ValOp)]
        assert len(vals) == 2


class TestCaseElimination:
    def test_select_of_constant_true(self):
        """Figure 1 B: case of a known value takes the matching branch."""
        module = ModuleOp()
        func, builder = new_func(module, "f", [], [box])
        a = make_region_returning_int(builder, 3)
        b = make_region_returning_int(builder, 5)
        t = builder.create(arith.ConstantOp, 1, i1)
        sel = builder.create(arith.SelectOp, t.result(), a.result(), b.result())
        builder.create(rgn.RunOp, sel.result())
        PassManager(
            [CaseEliminationPass(), DeadCodeEliminationPass()]
        ).run(module)
        names = ops_by_name(func)
        assert names == ["lp.int", "lp.return"]
        only_int = [op for op in func.walk() if isinstance(op, lp.IntOp)]
        assert only_int[0].value == 3

    def test_rgn_switch_of_constant(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [], [box])
        regions = [make_region_returning_int(builder, v) for v in (10, 20, 30)]
        flag = builder.create(arith.ConstantOp, 1, i64)
        switch = builder.create(
            rgn.SwitchOp,
            flag.result(),
            regions[2].result(),
            [0, 1],
            [regions[0].result(), regions[1].result()],
        )
        builder.create(rgn.RunOp, switch.result())
        PassManager([CaseEliminationPass(), DeadCodeEliminationPass()]).run(module)
        ints = [op.value for op in func.walk() if isinstance(op, lp.IntOp)]
        assert ints == [20]

    def test_run_of_multi_use_region_not_inlined(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [i1], [box])
        shared = make_region_returning_int(builder, 7)
        other = make_region_returning_int(builder, 9)
        sel = builder.create(
            arith.SelectOp, func.arguments[0], shared.result(), other.result()
        )
        builder.create(rgn.RunOp, shared.result())
        # The region has two uses (select + run): the run must not inline it.
        CaseEliminationPass().run(module)
        assert any(isinstance(op, rgn.RunOp) for op in func.walk())


class TestCommonBranchElimination:
    def test_select_same_operands(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [i1], [box])
        shared = make_region_returning_int(builder, 7)
        sel = builder.create(
            arith.SelectOp, func.arguments[0], shared.result(), shared.result()
        )
        builder.create(rgn.RunOp, sel.result())
        CommonBranchEliminationPass().run(module)
        selects = [op for op in func.walk() if isinstance(op, arith.SelectOp)]
        assert not selects

    def test_switch_same_operands(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [i64], [box])
        shared = make_region_returning_int(builder, 7)
        switch = builder.create(
            rgn.SwitchOp,
            func.arguments[0],
            shared.result(),
            [0, 1],
            [shared.result(), shared.result()],
        )
        builder.create(rgn.RunOp, switch.result())
        CommonBranchEliminationPass().run(module)
        assert not any(isinstance(op, rgn.SwitchOp) for op in func.walk())


class TestCanonicalizeAndInline:
    def test_canonicalize_combines_patterns(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [], [box])
        a = make_region_returning_int(builder, 7)
        b = make_region_returning_int(builder, 7)
        lhs = builder.create(arith.ConstantOp, 2)
        rhs = builder.create(arith.ConstantOp, 3)
        cmp = builder.create(arith.CmpIOp, "slt", lhs.result(), rhs.result())
        sel = builder.create(arith.SelectOp, cmp.result(), a.result(), b.result())
        builder.create(rgn.RunOp, sel.result())
        CanonicalizePass().run(module)
        names = ops_by_name(func)
        assert names == ["lp.int", "lp.return"]

    def test_inliner_inlines_small_function(self):
        module = ModuleOp()
        callee, cbuilder = new_func(module, "addone", [i64], [i64])
        one = cbuilder.create(arith.ConstantOp, 1)
        s = cbuilder.create(arith.AddIOp, callee.arguments[0], one.result())
        cbuilder.create(ReturnOp, [s.result()])
        caller, builder = new_func(module, "caller", [i64], [i64])
        call = builder.create(CallOp, "addone", [caller.arguments[0]], [i64])
        builder.create(ReturnOp, [call.result()])
        InlinerPass().run(module)
        assert not any(isinstance(op, CallOp) for op in caller.walk())
        verify(module)

    def test_inliner_skips_recursive_function(self):
        module = ModuleOp()
        rec, rbuilder = new_func(module, "rec", [i64], [i64])
        call = rbuilder.create(CallOp, "rec", [rec.arguments[0]], [i64])
        rbuilder.create(ReturnOp, [call.result()])
        caller, builder = new_func(module, "caller", [i64], [i64])
        c = builder.create(CallOp, "rec", [caller.arguments[0]], [i64])
        builder.create(ReturnOp, [c.result()])
        InlinerPass().run(module)
        assert any(isinstance(op, CallOp) for op in caller.walk())


class TestGreedyDriverAndPassManager:
    def test_driver_reaches_fixpoint(self):
        from repro.transforms.constant_fold import constant_fold_patterns

        module = ModuleOp()
        func, builder = new_func(module, "f", [], [i64])
        value = builder.create(arith.ConstantOp, 1)
        for _ in range(5):
            one = builder.create(arith.ConstantOp, 1)
            value = builder.create(arith.AddIOp, value.result(), one.result())
        builder.create(ReturnOp, [value.result()])
        result = apply_patterns_greedily(func, constant_fold_patterns())
        assert result.converged
        assert result.applications >= 5

    def test_pass_manager_statistics_and_verify(self):
        module = ModuleOp()
        func, builder = new_func(module, "f", [i64], [i64])
        builder.create(arith.ConstantOp, 1)
        builder.create(ReturnOp, [func.arguments[0]])
        pm = PassManager([DeadCodeEliminationPass()])
        pm.run(module)
        assert pm.statistics["dce"].get("ops-erased") == 1
        assert pm.describe() == "dce"
