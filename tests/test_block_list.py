"""Property-style tests for the intrusive block layout (ir.core).

A randomly generated interleaving of ``insert_before`` / ``insert_after`` /
``append`` / ``prepend`` / ``erase`` / ``move_before`` / ``move_after`` /
``split_before``+``take_ops_from`` is replayed against a plain Python list
model; after every step the block must

* iterate (forwards and backwards) exactly like the model,
* keep ``first_op``/``last_op``/``len`` consistent,
* keep every linked op ``attached`` and every erased op permanently not,
* satisfy :meth:`Block.check_invariants` (prev/next symmetry, parent
  pointers, cached count, monotone order keys), and
* answer ``is_before_in_block`` exactly like list-index comparison.

A deterministic stress test drives the lazy order-key renumbering by
repeatedly bisecting the same gap, and an end-to-end test checks the
verifier stays clean on IR assembled through interleaved mutations.
"""

from hypothesis import given, settings, strategies as st

from repro.dialects import lp
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp
from repro.ir import FunctionType, verify
from repro.ir.core import Block

COMMANDS = (
    "append",
    "prepend",
    "insert_before",
    "insert_after",
    "erase",
    "move_before",
    "move_after",
    "detach_reappend",
    "split_merge",
)

command_lists = st.lists(
    st.tuples(
        st.sampled_from(COMMANDS),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
    ),
    max_size=60,
)


def _new_op(counter: list) -> lp.IntOp:
    counter[0] += 1
    return lp.IntOp(counter[0])


def _check_against_model(block: Block, model: list) -> None:
    block.check_invariants()
    assert list(block) == model
    assert list(reversed(block)) == list(reversed(model))
    assert len(block) == len(model)
    assert block.first_op is (model[0] if model else None)
    assert block.last_op is (model[-1] if model else None)
    assert block.is_empty == (not model)
    for op in model:
        assert op.attached and op.parent is block
    if len(model) >= 2:
        assert model[0].is_before_in_block(model[-1])
        assert not model[-1].is_before_in_block(model[0])


class TestInterleavedMutations:
    @settings(max_examples=60, deadline=None)
    @given(commands=command_lists)
    def test_block_matches_list_model(self, commands):
        # split_before needs a region parent, so host the block in a
        # function region.
        module = ModuleOp()
        func = FuncOp("f", FunctionType([], []))
        module.append(func)
        block = func.body.add_block(Block())
        model: list = []
        erased: list = []
        counter = [0]

        for command, a, b in commands:
            if command == "append":
                op = _new_op(counter)
                block.append(op)
                model.append(op)
            elif command == "prepend":
                op = _new_op(counter)
                block.prepend(op)
                model.insert(0, op)
            elif command == "insert_before" and model:
                anchor = model[a % len(model)]
                op = _new_op(counter)
                block.insert_before(op, anchor)
                model.insert(model.index(anchor), op)
            elif command == "insert_after" and model:
                anchor = model[a % len(model)]
                op = _new_op(counter)
                block.insert_after(op, anchor)
                model.insert(model.index(anchor) + 1, op)
            elif command == "erase" and model:
                op = model.pop(a % len(model))
                op.erase()
                erased.append(op)
            elif command in ("move_before", "move_after") and len(model) >= 2:
                i, j = a % len(model), b % len(model)
                if i == j:
                    continue
                mover, anchor = model[i], model[j]
                model.remove(mover)
                if command == "move_before":
                    mover.move_before(anchor)
                    model.insert(model.index(anchor), mover)
                else:
                    mover.move_after(anchor)
                    model.insert(model.index(anchor) + 1, mover)
            elif command == "detach_reappend" and model:
                op = model.pop(a % len(model))
                op.detach()
                assert not op.attached and op.prev_op is None and op.next_op is None
                block.append(op)
                model.append(op)
            elif command == "split_merge" and model:
                # Split the suffix into a sibling block, check both halves,
                # then splice the suffix back — net effect is order-neutral.
                split_at = model[a % len(model)]
                idx = model.index(split_at)
                tail = block.split_before(split_at)
                block.check_invariants()
                tail.check_invariants()
                assert list(block) == model[:idx]
                assert list(tail) == model[idx:]
                block.take_ops_from(tail)
                tail.erase()
            _check_against_model(block, model)
            for op in erased:
                assert op.erased and not op.attached
                assert op.prev_op is None and op.next_op is None

        # Pairwise ordering must agree with the model's index order.
        for i, earlier in enumerate(model):
            for later in model[i + 1:]:
                assert earlier.is_before_in_block(later)
                assert not later.is_before_in_block(earlier)


class TestOrderKeyRenumbering:
    def test_repeated_bisection_forces_renumber(self):
        block = Block()
        first = block.append(lp.IntOp(0))
        last = block.append(lp.IntOp(1))
        # Insert always immediately after `first`: every insertion bisects
        # the same gap, exhausting it after a handful of steps and forcing
        # the lazy renumbering path several times over.
        inserted = []
        for i in range(200):
            op = lp.IntOp(i + 2)
            block.insert_after(op, first)
            inserted.append(op)
        assert first.is_before_in_block(last)
        for earlier, later in zip(reversed(inserted), list(reversed(inserted))[1:]):
            assert earlier.is_before_in_block(later)
        block.check_invariants()
        assert list(block) == [first, *reversed(inserted), last]

    def test_erase_during_iteration_is_safe(self):
        block = Block()
        ops = [block.append(lp.IntOp(i)) for i in range(10)]
        for op in block:
            if op.value % 2 == 0:
                op.erase()
        assert [op.value for op in block] == [1, 3, 5, 7, 9]
        block.check_invariants()


class TestVerifierCleanliness:
    def test_interleaved_assembly_verifies(self):
        module = ModuleOp()
        func = FuncOp("f", FunctionType([], []))
        module.append(func)
        entry = func.entry_block
        ret = entry.append(lp.ReturnOp())
        constants = []
        for i in range(8):
            op = lp.IntOp(i)
            entry.insert_before(op, ret)
            constants.append(op)
        # Shuffle by moves, erase a few, then verify the module is clean.
        constants[0].move_before(ret)
        constants[3].move_after(constants[5])
        constants[1].erase()
        entry.check_invariants()
        verify(module)
        assert entry.terminator is ret
