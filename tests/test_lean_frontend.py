"""Tests for the mini-LEAN frontend: lexer, parser, type checker."""

import pytest

from repro.lean import (
    LexError,
    ParseError,
    TypeError_,
    ast,
    check_program,
    parse_expression,
    parse_program,
    tokenize,
)

LIST_SRC = """
inductive List where
| nil
| cons (head : Nat) (tail : List)

def length (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons h t => 1 + length t
"""


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("def f (x : Nat) : Nat := x + 1")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "KEYWORD" and tokens[0].text == "def"
        assert "ARROW" in kinds  # :=
        assert kinds[-1] == "EOF"

    def test_qualified_identifier(self):
        tokens = tokenize("List.cons x xs")
        assert tokens[0].text == "List.cons" and tokens[0].kind == "IDENT"

    def test_comments_skipped(self):
        tokens = tokenize("1 -- a comment\n+ 2 /- block\ncomment -/ + 3")
        texts = [t.text for t in tokens if t.kind != "EOF"]
        assert texts == ["1", "+", "2", "+", "3"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_operators(self):
        texts = [t.text for t in tokenize("a == b && c <= d || e != f")]
        assert "==" in texts and "&&" in texts and "<=" in texts and "||" in texts

    def test_lex_error(self):
        with pytest.raises(LexError):
            tokenize("valid ~ invalid")


class TestParser:
    def test_parse_inductive(self):
        program = parse_program(LIST_SRC)
        ind = program.inductive("List")
        assert ind is not None
        assert [c.name for c in ind.constructors] == ["nil", "cons"]
        assert ind.constructors[1].fields[0][0] == "head"

    def test_parse_def_signature(self):
        program = parse_program(LIST_SRC)
        length = program.definition("length")
        assert length is not None
        assert [t for _, t in length.params] == [ast.DataType("List")]
        assert length.return_type == ast.NatType()

    def test_parse_match_arms(self):
        program = parse_program(LIST_SRC)
        body = program.definition("length").body
        assert isinstance(body, ast.Match)
        assert len(body.arms) == 2
        assert isinstance(body.arms[0].patterns[0], ast.PCtor)

    def test_parse_nested_patterns(self):
        src = LIST_SRC + """
def second (xs : List) : Nat :=
  match xs with
  | List.cons _ (List.cons s _) => s
  | _ => 0
"""
        program = parse_program(src)
        arm = program.definition("second").body.arms[0]
        outer = arm.patterns[0]
        assert isinstance(outer, ast.PCtor)
        assert isinstance(outer.subpatterns[1], ast.PCtor)

    def test_operator_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.BinOp) and expr.op == "+"
        assert isinstance(expr.rhs, ast.BinOp) and expr.rhs.op == "*"

    def test_comparison_and_bool_ops(self):
        expr = parse_expression("a < b && c == d")
        assert expr.op == "&&"
        assert expr.lhs.op == "<" and expr.rhs.op == "=="

    def test_application_binds_tighter_than_operators(self):
        expr = parse_expression("f x + g y")
        assert isinstance(expr, ast.BinOp)
        assert isinstance(expr.lhs, ast.App) and isinstance(expr.rhs, ast.App)

    def test_let_with_semicolon_and_in(self):
        for src in ("let x := 1; x + 1", "let x := 1 in x + 1"):
            expr = parse_expression(src)
            assert isinstance(expr, ast.Let)

    def test_lambda_requires_annotations(self):
        with pytest.raises(ParseError):
            parse_expression("fun x => x")
        lam = parse_expression("fun (x : Nat) => x + 1")
        assert isinstance(lam, ast.Lambda)

    def test_if_then_else(self):
        expr = parse_expression("if a < b then 1 else 2")
        assert isinstance(expr, ast.If)

    def test_negative_literal(self):
        expr = parse_expression("-5")
        assert isinstance(expr, ast.IntLit) and expr.value == -5

    def test_multi_scrutinee_match_arity_check(self):
        with pytest.raises(ParseError):
            parse_program(
                """
def f (x : Nat) (y : Nat) : Nat :=
  match x, y with
  | 0 => 1
"""
            )

    def test_parse_error_reports_line(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("def f (x : Nat : Nat := x")
        assert "line" in str(excinfo.value)

    def test_match_without_arms_rejected(self):
        with pytest.raises(ParseError):
            parse_program("def f (x : Nat) : Nat :=\n  match x with")

    def test_grouped_parameters(self):
        program = parse_program("def add3 (a b c : Nat) : Nat := a + b + c")
        assert len(program.definition("add3").params) == 3


class TestTypeChecker:
    def check(self, src):
        program = parse_program(src)
        return program, check_program(program)

    def test_simple_program_checks(self):
        self.check(LIST_SRC)

    def test_annotates_inferred_types(self):
        program, _ = self.check("def f (x : Nat) : Nat := x + 1")
        body = program.definition("f").body
        assert isinstance(body.inferred_type, ast.NatType)

    def test_literal_adapts_to_int_context(self):
        program, _ = self.check("def f (x : Int) : Int := x + 3")
        body = program.definition("f").body
        assert isinstance(body.rhs.inferred_type, ast.IntType)

    def test_constructor_types(self):
        program, env = self.check(LIST_SRC)
        sig = env.constructor("List.cons")
        assert sig.tag == 1 and sig.arity == 2

    def test_partial_application_types(self):
        self.check(
            """
def k (x : Nat) (y : Nat) : Nat := x
def k10 : Nat -> Nat := k 10
"""
        )

    def test_higher_order_parameter(self):
        self.check(
            """
def twice (f : Nat -> Nat) (x : Nat) : Nat := f (f x)
def main : Nat := twice (fun (v : Nat) => v + 1) 0
"""
        )

    def test_type_mismatch_rejected(self):
        with pytest.raises(TypeError_):
            self.check("def f (x : Nat) : Bool := x + 1")

    def test_unknown_identifier_rejected(self):
        with pytest.raises(TypeError_):
            self.check("def f (x : Nat) : Nat := y")

    def test_wrong_constructor_type_rejected(self):
        with pytest.raises(TypeError_):
            self.check(
                LIST_SRC
                + """
inductive Tree where
| leaf

def bad (t : Tree) : Nat :=
  match t with
  | List.nil => 0
"""
            )

    def test_wrong_pattern_arity_rejected(self):
        with pytest.raises(TypeError_):
            self.check(
                LIST_SRC
                + """
def bad (xs : List) : Nat :=
  match xs with
  | List.cons h => h
  | List.nil => 0
"""
            )

    def test_over_application_rejected(self):
        with pytest.raises(TypeError_):
            self.check("def f (x : Nat) : Nat := x\ndef g : Nat := f 1 2")

    def test_condition_must_be_bool(self):
        with pytest.raises(TypeError_):
            self.check("def f (x : Nat) : Nat := if x then 1 else 2")

    def test_duplicate_definition_rejected(self):
        with pytest.raises(TypeError_):
            self.check("def f : Nat := 1\ndef f : Nat := 2")

    def test_array_builtins_check(self):
        self.check(
            """
def f (a : Array Nat) : Nat := Array.get (Array.push a 1) 0
"""
        )

    def test_comparison_of_non_numeric_rejected(self):
        with pytest.raises(TypeError_):
            self.check(LIST_SRC + "\ndef f (a : List) (b : List) : Bool := a < b")
