"""Tests for the register-based bytecode execution engine.

Covers the bytecode compilers (one unit test per operation kind, for both
the CFG-form MLIR input and the λrc input), the VM's differential
equivalence against the tree-walking oracles (results, execution metrics
and heap statistics must be *identical* — the figure suite is diffed), the
session-level bytecode cache and the engine-selection plumbing.
"""

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.pipeline import (
    BaselineCompiler,
    CompilationSession,
    MlirCompiler,
    PipelineOptions,
    run_baseline,
    run_mlir,
)
from repro.dialects import arith, cf, lp
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import CallOp, FuncOp, GetGlobalOp, ReturnOp, SetGlobalOp
from repro.eval.testsuite import regression_programs
from repro.interp.bytecode import (
    OP_BADCALL,
    OP_BIGINT,
    OP_CALL,
    OP_CASE,
    OP_CAST,
    OP_CMP,
    OP_CONDBR,
    OP_CONST,
    OP_CONSTRUCT,
    OP_DEC,
    OP_GETGLOBAL,
    OP_GETLABEL,
    OP_INC,
    OP_INT,
    OP_JMP,
    OP_PAP,
    OP_PAPEXTEND,
    OP_PROJ,
    OP_RESET,
    OP_RET,
    OP_REUSE,
    OP_RTCALL,
    OP_SELECT,
    OP_SETGLOBAL,
    OP_SWITCH,
    OP_UNREACHABLE,
    OP_BINARITH,
    OP_CMP_CONDBR,
    OP_CONST_BINARITH,
    OP_CONST_CMP,
    OP_CONST_CMP_CONDBR,
    OP_DEC_DEC,
    OP_DEC_INC,
    OP_GETLABEL_CMP_CONDBR,
    OP_GETLABEL_SWITCH,
    OP_INC_RTCALL,
    OP_INT_INC,
    OP_PROJ3,
    OP_PROJ4,
    OP_PROJ_CALL,
    OP_PROJ_PROJ,
    DISPATCH_MODES,
    FUSED_OPCODE_BASES,
    FUSION_RULES,
    OPCODE_NAMES,
    BytecodeFunction,
    BytecodeProgram,
    VirtualMachine,
    compile_cfg_module,
    compile_rc_program,
    fuse_code,
    fuse_program,
)
from repro.interp.bytecode import _BINARY_FNS, _CMP_FNS
from repro.interp.cfg_interp import CfgInterpreter, CfgInterpreterError
from repro.interp.rc_interp import RcInterpreter
from repro.ir import Builder, FunctionType, InsertionPoint
from repro.ir.core import Block
from repro.ir.types import box, i1, i64
from repro.lambda_pure import ir as rc_ir
from repro.runtime import RuntimeError_

REGRESSION = regression_programs()
REGRESSION_BY_NAME = {p.name: p for p in REGRESSION}


def assert_identical_runs(tree, vm):
    """The engine contract: same value, metrics, heap stats and output."""
    assert vm.value == tree.value
    assert vm.metrics.counts == tree.metrics.counts
    assert vm.heap_stats == tree.heap_stats
    assert vm.output == tree.output


# ---------------------------------------------------------------------------
# Bytecode compilation units: the CFG flavour
# ---------------------------------------------------------------------------


def cfg_function(inputs=(), results=(box,), name="f"):
    module = ModuleOp()
    func = FuncOp(name, FunctionType(list(inputs), list(results)))
    module.append(func)
    return module, func, Builder(InsertionPoint.at_end(func.entry_block))


def opcodes(bytecode: BytecodeProgram, name: str = "f"):
    return [ins[0] for ins in bytecode.functions[name].code]


class TestCfgCompilation:
    def test_int_and_return(self):
        module, func, builder = cfg_function()
        value = builder.create(lp.IntOp, 7)
        builder.create(ReturnOp, [value.result()])
        compiled = compile_cfg_module(module)
        assert compiled.functions["f"].code == [(OP_INT, 0, 7), (OP_RET, 0)]

    def test_bigint(self):
        module, func, builder = cfg_function()
        value = builder.create(lp.BigIntOp, str(10**30))
        builder.create(ReturnOp, [value.result()])
        compiled = compile_cfg_module(module)
        assert compiled.functions["f"].code[0] == (OP_BIGINT, 0, 10**30)

    def test_construct_getlabel_project(self):
        module, func, builder = cfg_function()
        field = builder.create(lp.IntOp, 3)
        ctor = builder.create(lp.ConstructOp, 1, [field.result()])
        empty = builder.create(lp.ConstructOp, 2, [])
        label = builder.create(lp.GetLabelOp, ctor.result())
        proj = builder.create(lp.ProjectOp, ctor.result(), 0)
        builder.create(ReturnOp, [proj.result()])
        code = compile_cfg_module(module).functions["f"].code
        assert code[1] == (OP_CONSTRUCT, 1, 1, (0,), "alloc_ctor")
        assert code[2] == (OP_CONSTRUCT, 2, 2, (), "move")
        assert code[3] == (OP_GETLABEL, 3, 1)
        assert code[4] == (OP_PROJ, 4, 1, 0)

    def test_rc_and_reuse_ops(self):
        module, func, builder = cfg_function(inputs=(box,))
        argument = func.entry_block.arguments[0]
        builder.create(lp.IncOp, argument, 2)
        builder.create(lp.DecOp, argument, 1)
        token = builder.create(lp.ResetOp, argument)
        reused = builder.create(lp.ReuseOp, token.result(), 4, [argument])
        builder.create(ReturnOp, [reused.result()])
        code = compile_cfg_module(module).functions["f"].code
        assert code[0] == (OP_INC, 0, 2)
        assert code[1] == (OP_DEC, 0, 1)
        assert code[2] == (OP_RESET, 1, 0)
        assert code[3] == (OP_REUSE, 2, 1, 4, (0,))

    def test_closures(self):
        module, func, builder = cfg_function(inputs=(box,), name="g")
        helper = FuncOp("callee", FunctionType([box, box], [box]))
        inner = Builder(InsertionPoint.at_end(helper.entry_block))
        inner.create(ReturnOp, [helper.entry_block.arguments[0]])
        module.append(helper)
        argument = func.entry_block.arguments[0]
        pap = builder.create(lp.PapOp, "callee", [argument])
        missing = builder.create(lp.PapOp, "nowhere", [])
        extended = builder.create(lp.PapExtendOp, pap.result(), [argument])
        builder.create(ReturnOp, [extended.result()])
        code = compile_cfg_module(module).functions["g"].code
        assert code[0] == (OP_PAP, 1, "callee", 2, (0,))
        assert code[1] == (OP_PAP, 2, "nowhere", None, ())
        assert code[2] == (OP_PAPEXTEND, 3, 1, (0,))

    def test_call_resolution(self):
        module, func, builder = cfg_function(inputs=(box,))
        callee = FuncOp("known", FunctionType([box], [box]))
        inner = Builder(InsertionPoint.at_end(callee.entry_block))
        inner.create(ReturnOp, [callee.entry_block.arguments[0]])
        module.append(callee)
        declaration = FuncOp(
            "lean_nat_add", FunctionType([box, box], [box]),
            create_entry_block=False,
        )
        module.append(declaration)
        argument = func.entry_block.arguments[0]
        direct = builder.create(CallOp, "known", [argument], [box])
        runtime = builder.create(
            CallOp, "lean_nat_add", [argument, argument], [box]
        )
        builder.create(CallOp, "missing_fn", [], [])
        builder.create(ReturnOp, [runtime.result()])
        compiled = compile_cfg_module(module)
        code = compiled.functions["f"].code
        assert code[0] == (OP_CALL, 1, compiled.functions["known"], (0,))
        assert code[1] == (OP_RTCALL, 2, "lean_nat_add", (0, 0))
        assert code[2] == (OP_BADCALL, "missing_fn")
        assert "lean_nat_add" not in compiled.functions  # declarations skipped

    def test_globals(self):
        module, func, builder = cfg_function(inputs=(box,))
        argument = func.entry_block.arguments[0]
        builder.create(SetGlobalOp, "slot", argument)
        loaded = builder.create(GetGlobalOp, "slot", box)
        builder.create(ReturnOp, [loaded.result()])
        code = compile_cfg_module(module).functions["f"].code
        assert code[0] == (OP_SETGLOBAL, "slot", 0)
        assert code[1] == (OP_GETGLOBAL, 1, "slot")

    def test_arith(self):
        module, func, builder = cfg_function(results=(i64,))
        one = builder.create(arith.ConstantOp, 1)
        two = builder.create(arith.ConstantOp, 2)
        added = builder.create(arith.AddIOp, one.result(), two.result())
        compared = builder.create(arith.CmpIOp, "slt", one.result(), two.result())
        chosen = builder.create(
            arith.SelectOp, compared.result(), added.result(), one.result()
        )
        cast = builder.create(arith.TruncIOp, chosen.result(), i64)
        builder.create(ReturnOp, [cast.result()])
        code = compile_cfg_module(module).functions["f"].code
        assert code[0] == (OP_CONST, 0, 1)
        assert code[1] == (OP_CONST, 1, 2)
        assert code[2][0] == OP_BINARITH and code[2][1:2] + code[2][3:] == (2, 0, 1)
        assert code[2][2](4, 5) == 9  # resolved addi callable
        assert code[3][0] == OP_CMP and code[3][2](1, 2) == 1
        assert code[4] == (OP_SELECT, 4, 3, 2, 0)
        assert code[5] == (OP_CAST, 5, 4)

    def test_branches_and_switch(self):
        module, func, builder = cfg_function(inputs=(i1,), results=(i64,))
        condition = func.entry_block.arguments[0]
        then_block = Block([i64])
        exit_block = Block([i64])
        other_block = Block()
        for block in (then_block, exit_block, other_block):
            func.body.add_block(block)
        one = builder.create(arith.ConstantOp, 1)
        builder.create(
            cf.CondBranchOp, condition, then_block, exit_block,
            [one.result()], [one.result()],
        )
        then_builder = Builder(InsertionPoint.at_end(then_block))
        then_builder.create(
            cf.SwitchOp, then_block.arguments[0], other_block,
            [3, 5], [exit_block, exit_block],
        )
        exit_builder = Builder(InsertionPoint.at_end(exit_block))
        exit_builder.create(ReturnOp, [exit_block.arguments[0]])
        other_builder = Builder(InsertionPoint.at_end(other_block))
        other_builder.create(cf.UnreachableOp)
        code = compile_cfg_module(module).functions["f"].code
        condbr = code[1]
        assert condbr[0] == OP_CONDBR and condbr[1] == 0
        switch_pc, ret_pc = condbr[2], condbr[5]
        assert code[switch_pc][0] == OP_SWITCH
        assert code[switch_pc][2] == {3: ret_pc, 5: ret_pc}
        unreachable_pc = code[switch_pc][3]
        assert code[unreachable_pc][0] == OP_UNREACHABLE
        assert code[ret_pc][0] == OP_RET

    def test_unconditional_branch_forwards_arguments(self):
        module, func, builder = cfg_function(results=(i64,))
        target = Block([i64])
        func.body.add_block(target)
        one = builder.create(arith.ConstantOp, 41)
        builder.create(cf.BranchOp, target, [one.result()])
        target_builder = Builder(InsertionPoint.at_end(target))
        target_builder.create(ReturnOp, [target.arguments[0]])
        code = compile_cfg_module(module).functions["f"].code
        constant_reg = code[0][1]
        assert code[1][0] == OP_JMP
        assert code[1][2] == (constant_reg,)  # forwards the constant ...
        assert len(code[1][3]) == 1           # ... into the block argument


# ---------------------------------------------------------------------------
# Bytecode compilation units: the λrc flavour
# ---------------------------------------------------------------------------


def rc_program(body, params=(), name="main", extra=()):
    program = rc_ir.Program()
    program.add_function(rc_ir.Function(name, list(params), body))
    for fn in extra:
        program.add_function(fn)
    return program


class TestRcCompilation:
    def test_let_literal_ret(self):
        body = rc_ir.Let("x", rc_ir.Lit(5), rc_ir.Ret("x"))
        compiled = compile_rc_program(rc_program(body))
        assert compiled.flavor == "rc"
        assert compiled.functions["main"].code == [(OP_INT, 0, 5), (OP_RET, 0)]

    def test_every_expression_kind(self):
        body = rc_ir.Let(
            "x", rc_ir.Lit(1),
            rc_ir.Let(
                "c", rc_ir.Ctor(2, ["x"]),
                rc_ir.Let(
                    "p", rc_ir.Proj(0, "c"),
                    rc_ir.Let(
                        "t", rc_ir.Reset("c"),
                        rc_ir.Let(
                            "r", rc_ir.Reuse("t", 3, ["p"]),
                            rc_ir.Let(
                                "s", rc_ir.Call("lean_nat_add", ["x", "x"]),
                                rc_ir.Let(
                                    "f", rc_ir.PAp("helper", ["s"]),
                                    rc_ir.Let(
                                        "a", rc_ir.App("f", ["r"]),
                                        rc_ir.Ret("a"),
                                    ),
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        )
        helper = rc_ir.Function("helper", ["u", "v"], rc_ir.Ret("u"))
        compiled = compile_rc_program(rc_program(body, extra=[helper]))
        kinds = [ins[0] for ins in compiled.functions["main"].code]
        assert kinds == [
            OP_INT, OP_CONSTRUCT, OP_PROJ, OP_RESET, OP_REUSE,
            OP_RTCALL, OP_PAP, OP_PAPEXTEND, OP_RET,
        ]
        pap = compiled.functions["main"].code[6]
        assert pap[2] == "helper" and pap[3] == 2

    def test_inc_dec_and_case(self):
        body = rc_ir.Inc(
            "n",
            rc_ir.Dec(
                "n",
                rc_ir.Case(
                    "n",
                    alts=[rc_ir.CaseAlt(0, "zero", rc_ir.Ret("n"))],
                    default=rc_ir.Unreachable(),
                ),
                count=1,
            ),
            count=2,
        )
        compiled = compile_rc_program(rc_program(body, params=("n",)))
        code = compiled.functions["main"].code
        assert code[0] == (OP_INC, 0, 2)
        assert code[1] == (OP_DEC, 0, 1)
        assert code[2][0] == OP_CASE and code[2][1] == 0
        assert code[code[2][2][0]][0] == OP_RET
        assert code[code[2][3]][0] == OP_UNREACHABLE

    def test_join_point_becomes_jump(self):
        body = rc_ir.JDecl(
            "j", ["a"], rc_ir.Ret("a"),
            rc_ir.Let("x", rc_ir.Lit(9), rc_ir.Jmp("j", ["x"])),
        )
        compiled = compile_rc_program(rc_program(body))
        code = compiled.functions["main"].code
        jump = next(ins for ins in code if ins[0] == OP_JMP)
        assert code[jump[1]][0] == OP_RET
        assert jump[2] != jump[3]  # argument register copied into the param slot

    def test_shadowing_after_join_declaration(self):
        # let x := 1; jdecl j() := ret x; let x := 2; jmp j()
        # The tree-walker restores the captured environment on the jump; the
        # compiler must alpha-rename the second x onto a fresh register so
        # the join body still reads 1.
        body = rc_ir.Let(
            "x", rc_ir.Lit(1),
            rc_ir.JDecl(
                "j", [], rc_ir.Ret("x"),
                rc_ir.Let("x", rc_ir.Lit(2), rc_ir.Jmp("j", [])),
            ),
        )
        program = rc_program(body)
        tree = RcInterpreter(program).run_main()
        vm = VirtualMachine(compile_rc_program(program)).run_main()
        assert tree.value == vm.value == 1

    def test_self_recursive_join_loop(self):
        # jdecl loop(i, acc) := case i of 0 => ret acc | _ => jmp loop(i-1,…)
        body = rc_ir.JDecl(
            "loop", ["i", "acc"],
            rc_ir.Case(
                "i",
                alts=[rc_ir.CaseAlt(0, "zero", rc_ir.Ret("acc"))],
                default=rc_ir.Let(
                    "one", rc_ir.Lit(1),
                    rc_ir.Let(
                        "i2", rc_ir.Call("lean_nat_sub", ["i", "one"]),
                        rc_ir.Let(
                            "acc2", rc_ir.Call("lean_nat_add", ["acc", "i"]),
                            rc_ir.Jmp("loop", ["i2", "acc2"]),
                        ),
                    ),
                ),
            ),
            rc_ir.Let(
                "n", rc_ir.Lit(10),
                rc_ir.Let("z", rc_ir.Lit(0), rc_ir.Jmp("loop", ["n", "z"])),
            ),
        )
        program = rc_program(body)
        tree = RcInterpreter(program).run_main()
        vm = VirtualMachine(compile_rc_program(program)).run_main()
        assert_identical_runs(tree, vm)
        assert vm.value == 55


# ---------------------------------------------------------------------------
# VM error behaviour
# ---------------------------------------------------------------------------


class TestVmErrors:
    def test_unknown_call_raises_flavor_error(self):
        body = rc_ir.Let("x", rc_ir.Call("nowhere", []), rc_ir.Ret("x"))
        with pytest.raises(RuntimeError_, match="unknown function"):
            VirtualMachine(compile_rc_program(rc_program(body))).run_main()

    def test_pap_of_unknown_function_raises(self):
        body = rc_ir.Let("x", rc_ir.PAp("nowhere", []), rc_ir.Ret("x"))
        with pytest.raises(RuntimeError_, match="pap of unknown function"):
            VirtualMachine(compile_rc_program(rc_program(body))).run_main()

    def test_unreachable_raises(self):
        module, func, builder = cfg_function(name="main")
        builder.create(cf.UnreachableOp)
        with pytest.raises(CfgInterpreterError, match="cf.unreachable"):
            VirtualMachine(compile_cfg_module(module)).run_main()

    def test_case_without_alternative_raises(self):
        body = rc_ir.Case("n", alts=[rc_ir.CaseAlt(7, "seven", rc_ir.Ret("n"))])
        program = rc_program(body, params=("n",))
        vm = VirtualMachine(compile_rc_program(program))
        from repro.runtime import Scalar

        with pytest.raises(RuntimeError_, match="no alternative"):
            vm.run_main([Scalar(3)])

    def test_arity_mismatch_raises(self):
        body = rc_ir.Ret("a")
        vm = VirtualMachine(compile_rc_program(rc_program(body, params=("a",))))
        with pytest.raises(RuntimeError_, match="expected 1"):
            vm.run_main([])


# ---------------------------------------------------------------------------
# Differential: the VM against the tree-walking oracles
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=None)
def _compiled_cfg(name: str, variant: str):
    options = (
        PipelineOptions()
        if variant == "default"
        else PipelineOptions.variant(variant)
    )
    return MlirCompiler(options).compile(REGRESSION_BY_NAME[name].source).cfg_module


@functools.lru_cache(maxsize=None)
def _compiled_rc(name: str, rc_mode: str):
    compiler = BaselineCompiler(rc_mode=rc_mode)
    return compiler.compile(REGRESSION_BY_NAME[name].source).rc_program


@pytest.mark.parametrize(
    "program", REGRESSION, ids=[p.name for p in REGRESSION]
)
def test_every_testsuite_program_cfg_vm_matches_tree(program):
    module = _compiled_cfg(program.name, "default")
    tree = CfgInterpreter(module).run_main()
    vm = VirtualMachine(compile_cfg_module(module)).run_main()
    assert_identical_runs(tree, vm)


@pytest.mark.parametrize(
    "program", REGRESSION, ids=[p.name for p in REGRESSION]
)
def test_every_testsuite_program_rc_vm_matches_tree(program):
    rc = _compiled_rc(program.name, "naive")
    tree = RcInterpreter(rc).run_main()
    vm = VirtualMachine(compile_rc_program(rc)).run_main()
    assert_identical_runs(tree, vm)


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(sorted(REGRESSION_BY_NAME)),
    variant=st.sampled_from(["default", "rgn", "none", "rc-opt+reuse"]),
)
def test_hypothesis_cfg_differential(name, variant):
    module = _compiled_cfg(name, variant)
    tree = CfgInterpreter(module).run_main()
    vm = VirtualMachine(compile_cfg_module(module)).run_main()
    assert_identical_runs(tree, vm)


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(sorted(REGRESSION_BY_NAME)),
    rc_mode=st.sampled_from(["naive", "opt", "opt+reuse"]),
)
def test_hypothesis_rc_differential(name, rc_mode):
    rc = _compiled_rc(name, rc_mode)
    tree = RcInterpreter(rc).run_main()
    vm = VirtualMachine(compile_rc_program(rc)).run_main()
    assert_identical_runs(tree, vm)


# ---------------------------------------------------------------------------
# Engine selection plumbing
# ---------------------------------------------------------------------------

TINY = "def main : Nat := 20 + 22"


class TestEngineSelection:
    def test_run_mlir_engines_agree(self):
        vm = run_mlir(TINY, PipelineOptions(execution_engine="vm"))
        tree = run_mlir(TINY, PipelineOptions(execution_engine="tree"))
        assert_identical_runs(tree, vm)

    def test_run_baseline_engines_agree(self):
        vm = run_baseline(TINY, execution_engine="vm")
        tree = run_baseline(TINY, execution_engine="tree")
        assert_identical_runs(tree, vm)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown execution engine"):
            MlirCompiler(PipelineOptions(execution_engine="jit"))
        with pytest.raises(ValueError, match="unknown execution engine"):
            BaselineCompiler(execution_engine="jit")

    def test_session_caches_bytecode_per_module(self):
        session = CompilationSession()
        compiler = MlirCompiler(PipelineOptions(), session=session)
        module = compiler.compile(TINY).cfg_module
        first = session.bytecode_for(module)
        second = session.bytecode_for(module)
        assert first is second
        assert session.stats["bytecode_hits"] == 1
        assert session.stats["bytecode_misses"] == 1
        other = compiler.compile("def main : Nat := 2").cfg_module
        assert session.bytecode_for(other) is not first
        assert session.stats["bytecode_misses"] == 2

    def test_cli_execution_engine_flag(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "p.lean"
        path.write_text(TINY)
        assert main([str(path), "--execution-engine", "vm"]) == 0
        vm_out = capsys.readouterr().out
        assert main([str(path), "--execution-engine", "tree"]) == 0
        tree_out = capsys.readouterr().out
        assert vm_out == tree_out
        assert "result: 42" in vm_out

    def test_harness_engines_produce_identical_figures(self):
        from repro.eval.figures import figure9_report
        from repro.eval.harness import EvaluationHarness

        sizes = {"filter": {"length": 8}, "digits": {"reps": 2, "span": 5}}
        vm_report = figure9_report(EvaluationHarness(sizes))
        tree_report = figure9_report(
            EvaluationHarness(sizes, execution_engine="tree")
        )
        assert vm_report == tree_report


class TestResolvedArithmeticDrift:
    """The VM's resolved callables must track the shared arith helpers."""

    GRID = [-7, -2, -1, 0, 1, 2, 3, 7, 10]

    def test_binary_fns_match_evaluate_binary(self):
        from repro.interp.bytecode import _BINARY_FNS

        for name, fn in _BINARY_FNS.items():
            for a in self.GRID:
                for b in self.GRID:
                    try:
                        expected = arith.evaluate_binary(name, a, b)
                    except ZeroDivisionError as oracle_error:
                        with pytest.raises(ZeroDivisionError) as info:
                            fn(a, b)
                        assert str(info.value) == str(oracle_error)
                        continue
                    assert fn(a, b) == expected, (name, a, b)

    def test_cmp_fns_match_evaluate_cmpi(self):
        from repro.interp.bytecode import _CMP_FNS

        assert set(_CMP_FNS) == set(arith.CMP_PREDICATES)
        for predicate, fn in _CMP_FNS.items():
            for a in self.GRID:
                for b in self.GRID:
                    assert fn(a, b) == arith.evaluate_cmpi(predicate, a, b)


class TestSwitchDispatchTable:
    def test_tree_walker_builds_dispatch_tables(self):
        source = REGRESSION_BY_NAME["match_multi_scrutinee"].source
        module = MlirCompiler().compile(source).cfg_module
        interpreter = CfgInterpreter(module)
        result = interpreter.run_main()
        assert result.value == 150
        for op, table in interpreter._switch_tables.items():
            assert table == dict(zip(op.case_values, op.case_dests))


# ---------------------------------------------------------------------------
# VM 2.0: superinstruction fusion, dispatch modes, the explicit call stack
# ---------------------------------------------------------------------------


def _vm_program(code, num_regs, *, num_params=0, extras=()):
    """Hand-assemble a one-function cfg-flavour program for fusion units."""
    program = BytecodeProgram("cfg")
    fn = BytecodeFunction("main", num_params)
    fn.num_regs = num_regs
    fn.code = list(code)
    program.functions["main"] = fn
    for extra in extras:
        program.functions[extra.name] = extra
    return program


def _identity_callee():
    callee = BytecodeFunction("callee", 1)
    callee.num_regs = 1
    callee.code = [(OP_RET, 0)]
    return callee


_EQ = _CMP_FNS["eq"]
_LT = _CMP_FNS["slt"]
_ADD = _BINARY_FNS["arith.addi"]


def _superinstruction_cases():
    """(fused opcode, program factory, argument tuples) per fusion rule.

    Every factory builds a program whose peephole-eligible pair (or
    chain) covers one entry of ``FUSION_RULES``; the test below runs each
    fused/unfused x threaded/switch and diffs the observables.
    """
    cases = []
    cases.append((OP_CMP_CONDBR, lambda: _vm_program([
        (OP_CMP, 2, _LT, 0, 1),
        (OP_CONDBR, 2, 2, (), (), 4, (), ()),
        (OP_CONST, 3, 42), (OP_RET, 3),
        (OP_CONST, 3, 7), (OP_RET, 3),
    ], 4, num_params=2), [(1, 2), (2, 1)]))
    cases.append((OP_CONST_BINARITH, lambda: _vm_program([
        (OP_CONST, 1, 5),
        (OP_BINARITH, 2, _ADD, 0, 1),
        (OP_RET, 2),
    ], 3, num_params=1), [(4,)]))
    cases.append((OP_CONST_CMP, lambda: _vm_program([
        (OP_CONST, 1, 5),
        (OP_CMP, 2, _EQ, 0, 1),
        (OP_RET, 2),
    ], 3, num_params=1), [(5,), (4,)]))
    cases.append((OP_GETLABEL_SWITCH, lambda: _vm_program([
        (OP_CONSTRUCT, 0, 1, (), "move"),
        (OP_GETLABEL, 1, 0),
        (OP_SWITCH, 1, {1: 3}, 5),
        (OP_CONST, 2, 10), (OP_RET, 2),
        (OP_CONST, 2, 20), (OP_RET, 2),
    ], 3), [()]))
    cases.append((OP_PROJ_CALL, lambda: _vm_program([
        (OP_INT, 0, 3),
        (OP_CONSTRUCT, 1, 1, (0,), "alloc_ctor"),
        (OP_PROJ, 2, 1, 0),
        (OP_CALL, 3, None, (2,)),  # callee patched below
        (OP_RET, 3),
    ], 4), [()]))
    cases.append((OP_CONST_CMP_CONDBR, lambda: _vm_program([
        (OP_CONST, 1, 5),
        (OP_CMP, 2, _EQ, 0, 1),
        (OP_CONDBR, 2, 3, (), (), 5, (), ()),
        (OP_CONST, 3, 1), (OP_RET, 3),
        (OP_CONST, 3, 0), (OP_RET, 3),
    ], 4, num_params=1), [(5,), (6,)]))
    cases.append((OP_GETLABEL_CMP_CONDBR, lambda: _vm_program([
        (OP_CONSTRUCT, 0, 2, (), "move"),
        (OP_GETLABEL, 1, 0),
        (OP_CONST, 2, 2),
        (OP_CMP, 3, _EQ, 1, 2),
        (OP_CONDBR, 3, 5, (), (), 7, (), ()),
        (OP_CONST, 4, 111), (OP_RET, 4),
        (OP_CONST, 4, 222), (OP_RET, 4),
    ], 5), [()]))
    cases.append((OP_PROJ_PROJ, lambda: _vm_program([
        (OP_INT, 0, 1), (OP_INT, 1, 2),
        (OP_CONSTRUCT, 2, 1, (0, 1), "alloc_ctor"),
        (OP_PROJ, 3, 2, 0),
        (OP_PROJ, 4, 2, 1),
        (OP_RET, 4),
    ], 5), [()]))
    cases.append((OP_PROJ3, lambda: _vm_program([
        (OP_INT, 0, 1), (OP_INT, 1, 2), (OP_INT, 2, 3),
        (OP_CONSTRUCT, 3, 1, (0, 1, 2), "alloc_ctor"),
        (OP_PROJ, 4, 3, 0),
        (OP_PROJ, 5, 3, 1),
        (OP_PROJ, 6, 3, 2),
        (OP_RET, 6),
    ], 7), [()]))
    cases.append((OP_PROJ4, lambda: _vm_program([
        (OP_INT, 0, 1), (OP_INT, 1, 2), (OP_INT, 2, 3), (OP_INT, 3, 4),
        (OP_CONSTRUCT, 4, 1, (0, 1, 2, 3), "alloc_ctor"),
        (OP_PROJ, 5, 4, 0),
        (OP_PROJ, 6, 4, 1),
        (OP_PROJ, 7, 4, 2),
        (OP_PROJ, 8, 4, 3),
        (OP_RET, 8),
    ], 9), [()]))
    cases.append((OP_INT_INC, lambda: _vm_program([
        (OP_INT, 0, 7),
        (OP_INC, 0, 1),
        (OP_RET, 0),
    ], 1), [()]))
    cases.append((OP_DEC_DEC, lambda: _vm_program([
        (OP_INT, 0, 5), (OP_INT, 1, 6),
        (OP_DEC, 0, 1),
        (OP_DEC, 1, 1),
        (OP_CONST, 2, 1), (OP_RET, 2),
    ], 3), [()]))
    cases.append((OP_DEC_INC, lambda: _vm_program([
        (OP_INT, 0, 5), (OP_INT, 1, 6),
        (OP_DEC, 0, 1),
        (OP_INC, 1, 1),
        (OP_RET, 1),
    ], 2), [()]))
    cases.append((OP_INC_RTCALL, lambda: _vm_program([
        (OP_INT, 0, 5),
        (OP_CONST, 1, 0),
        (OP_INC, 0, 1),
        (OP_RTCALL, 2, "lean_int_add", (0, 0)),
        (OP_RET, 2),
    ], 3), [()]))
    return cases


def _patch_callees(program):
    """Bind OP_CALL placeholders to a real callee object."""
    callee = _identity_callee()
    program.functions[callee.name] = callee
    fn = program.functions["main"]
    fn.code = [
        (ins[0], ins[1], callee, ins[3]) if ins[0] == OP_CALL and ins[2] is None
        else ins
        for ins in fn.code
    ]
    return program


def _run_configs(factory, args):
    """Run fused/unfused x threaded/switch and return the four results."""
    results = {}
    for fused in (False, True):
        program = _patch_callees(factory())
        if fused:
            fuse_program(program)
        for dispatch in DISPATCH_MODES:
            vm = VirtualMachine(program, dispatch=dispatch)
            try:
                outcome = vm.run_main(list(args), check_heap=False)
                results[(fused, dispatch)] = (
                    "ok", outcome.value, vm.metrics.counts,
                )
            except Exception as error:
                results[(fused, dispatch)] = (
                    "error", str(error), vm.metrics.counts,
                )
    return results


def _assert_configs_identical(factory, args):
    results = _run_configs(factory, args)
    reference = results[(False, "switch")]
    for key, outcome in results.items():
        assert outcome == reference, (key, outcome, reference)


class TestSuperinstructions:
    """One compilation + execution unit per entry of FUSION_RULES."""

    CASES = _superinstruction_cases()

    def test_every_fusion_rule_has_a_case(self):
        assert {opcode for opcode, _, _ in self.CASES} == {
            rule.opcode for rule in FUSION_RULES
        }

    @pytest.mark.parametrize(
        "opcode,factory,arg_sets", CASES,
        ids=[OPCODE_NAMES[opcode] for opcode, _, _ in CASES],
    )
    def test_pair_fuses_and_charges_identically(self, opcode, factory, arg_sets):
        program = _patch_callees(factory())
        before = [ins[0] for ins in program.functions["main"].code]
        assert opcode not in before
        fuse_program(program)
        after = [ins[0] for ins in program.functions["main"].code]
        assert opcode in after, OPCODE_NAMES[opcode]
        assert program.fused and program.fused_sites > 0
        for args in arg_sets:
            _assert_configs_identical(factory, args)

    def test_fused_opcode_bases_decompose_chains(self):
        assert FUSED_OPCODE_BASES["getlabel_cmp_br"] == (
            "getlabel", "const", "cmp", "cond_br"
        )
        assert FUSED_OPCODE_BASES["const_cmp_br"] == ("const", "cmp", "cond_br")
        assert FUSED_OPCODE_BASES["proj3"] == ("proj",) * 3
        assert FUSED_OPCODE_BASES["proj4"] == ("proj",) * 4
        assert FUSED_OPCODE_BASES["dec_inc"] == ("dec", "inc")
        for bases in FUSED_OPCODE_BASES.values():
            base_names = set(OPCODE_NAMES.values()) - set(FUSED_OPCODE_BASES)
            assert set(bases) <= base_names

    def test_jump_target_blocks_fusion(self):
        code = [
            (OP_CMP, 2, _EQ, 0, 1),
            (OP_CONDBR, 2, 3, (), (), 5, (), ()),
            (OP_JMP, 1, (), ()),  # unreachable, but makes pc 1 a target
            (OP_CONST, 3, 1), (OP_RET, 3),
            (OP_CONST, 3, 0), (OP_RET, 3),
        ]
        fused, sites = fuse_code(code)
        assert sites == 0
        assert fused == code

    def test_fusion_rules_are_declarative_and_unique(self):
        pairs = [(rule.first, rule.second) for rule in FUSION_RULES]
        assert len(pairs) == len(set(pairs))
        for rule in FUSION_RULES:
            assert rule.opcode in OPCODE_NAMES


class TestSuperinstructionErrorPaths:
    """Fused error paths must charge exactly the unfused cost events."""

    def test_proj_proj_fails_at_first_projection(self):
        _assert_configs_identical(lambda: _vm_program([
            (OP_CONST, 0, 9),
            (OP_PROJ, 1, 0, 0),
            (OP_PROJ, 2, 0, 0),
            (OP_RET, 2),
        ], 3), ())

    def test_proj3_fails_at_second_projection(self):
        _assert_configs_identical(lambda: _vm_program([
            (OP_INT, 0, 1),
            (OP_CONSTRUCT, 1, 1, (0,), "alloc_ctor"),
            (OP_PROJ, 2, 1, 0),
            (OP_PROJ, 3, 0, 0),  # reg 0 is a boxed int, not a constructor
            (OP_PROJ, 4, 1, 0),
            (OP_RET, 4),
        ], 5), ())

    def test_proj4_fails_at_last_projection(self):
        _assert_configs_identical(lambda: _vm_program([
            (OP_INT, 0, 1),
            (OP_CONSTRUCT, 1, 1, (0,), "alloc_ctor"),
            (OP_PROJ, 2, 1, 0),
            (OP_PROJ, 3, 1, 0),
            (OP_PROJ, 4, 1, 0),
            (OP_PROJ, 5, 0, 0),  # fails after three successful projections
            (OP_RET, 5),
        ], 6), ())

    def test_getlabel_cmp_br_fails_reading_the_tag(self):
        _assert_configs_identical(lambda: _vm_program([
            (OP_CONST, 0, 9),  # machine int: tag_of raises
            (OP_GETLABEL, 1, 0),
            (OP_CONST, 2, 2),
            (OP_CMP, 3, _EQ, 1, 2),
            (OP_CONDBR, 3, 5, (), (), 7, (), ()),
            (OP_CONST, 4, 1), (OP_RET, 4),
            (OP_CONST, 4, 0), (OP_RET, 4),
        ], 5), ())

    def test_dec_dec_fails_at_first_dec(self):
        _assert_configs_identical(lambda: _vm_program([
            (OP_INT, 0, 5), (OP_INT, 1, 6),
            (OP_DEC, 0, 1), (OP_DEC, 1, 1),
            (OP_DEC, 0, 1), (OP_DEC, 1, 1),  # reg 0 already freed
            (OP_RET, -1),
        ], 2), ())

    def test_dec_inc_fails_at_the_dec(self):
        _assert_configs_identical(lambda: _vm_program([
            (OP_INT, 0, 5), (OP_INT, 1, 6),
            (OP_DEC, 0, 1), (OP_INC, 1, 1),
            (OP_DEC, 0, 1), (OP_INC, 1, 1),  # reg 0 already freed
            (OP_RET, -1),
        ], 2), ())

    def test_inc_rtcall_fails_at_the_inc(self):
        _assert_configs_identical(lambda: _vm_program([
            (OP_INT, 0, 5),
            (OP_DEC, 0, 1),
            (OP_CONST, 1, 0),
            (OP_INC, 0, 1),  # reg 0 freed: inc raises before the builtin
            (OP_RTCALL, 2, "lean_int_add", (0, 0)),
            (OP_RET, 2),
        ], 3), ())


class TestExplicitCallStack:
    def test_100k_deep_recursion_under_default_recursion_limit(self):
        import sys

        source = (
            "def countdown (n : Nat) : Nat :=\n"
            "  if n == 0 then 0\n"
            "  else\n"
            "    let r := countdown (n - 1);\n"
            "    r + 1\n"
            "\n"
            "def main : Nat := countdown 100000"
        )
        before = sys.getrecursionlimit()
        result = run_mlir(source, PipelineOptions())
        assert result.value == 100000
        assert sys.getrecursionlimit() == before

    def test_dispatch_modes_and_fusion_agree_on_regression_programs(self):
        for name in ("match_multi_scrutinee", "list_fold_sum"):
            program = REGRESSION_BY_NAME.get(name)
            if program is None:
                continue
            runs = [
                run_mlir(program.source, PipelineOptions(
                    dispatch=dispatch, superinstructions=fusion,
                ))
                for dispatch in DISPATCH_MODES
                for fusion in (True, False)
            ]
            for run in runs[1:]:
                assert_identical_runs(runs[0], run)


class TestVm2SessionCache:
    def test_session_cache_keys_on_dispatch_and_fusion(self):
        session = CompilationSession()
        compiler = MlirCompiler(PipelineOptions(), session=session)
        module = compiler.compile(TINY).cfg_module
        misses0 = session.stats["bytecode_misses"]
        hits0 = session.stats["bytecode_hits"]
        base = session.bytecode_for(module)
        assert session.bytecode_for(module) is base  # hit
        switch = session.bytecode_for(module, dispatch="switch")
        assert switch is not base  # miss: its own cache row
        unfused = session.bytecode_for(module, superinstructions=False)
        assert unfused is not base and unfused is not switch
        assert base.fused and switch.fused and not unfused.fused
        assert session.bytecode_for(module, dispatch="switch") is switch
        assert session.bytecode_for(
            module, superinstructions=False
        ) is unfused
        assert session.stats["bytecode_misses"] == misses0 + 3
        assert session.stats["bytecode_hits"] == hits0 + 3


class TestVm2Cli:
    RECURSIVE = (
        "def f (n : Nat) : Nat := if n == 0 then 5 else f (n - 1)\n"
        "def main : Nat := f 10"
    )

    def test_exec_stats_reports_fused_names(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "p.lean"
        path.write_text(self.RECURSIVE)
        assert main([str(path), "--exec-stats"]) == 0
        out = capsys.readouterr().out
        assert any(name in out for name in FUSED_OPCODE_BASES)

    def test_exec_stats_unfused_decomposes_to_base_opcodes(
        self, tmp_path, capsys
    ):
        from repro.__main__ import main

        path = tmp_path / "p.lean"
        path.write_text(self.RECURSIVE)
        assert main([str(path), "--exec-stats", "--unfused"]) == 0
        out = capsys.readouterr().out
        assert not any(name in out for name in FUSED_OPCODE_BASES)

    def test_unfused_requires_exec_stats(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "p.lean"
        path.write_text(self.RECURSIVE)
        assert main([str(path), "--unfused"]) == 2
