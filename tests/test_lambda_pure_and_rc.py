"""Tests for the λpure lowering, the simplifier and reference-count insertion."""

import pytest

from repro.interp.rc_interp import run_rc_program
from repro.interp.reference import ReferenceInterpreter, normalize
from repro.lambda_pure import (
    Call,
    Case,
    Ctor,
    Dec,
    Inc,
    JDecl,
    Jmp,
    Let,
    Lit,
    PAp,
    Proj,
    Ret,
    body_size,
    count_jumps,
    free_vars,
    lower_program,
    simplify_program,
)
from repro.lambda_pure.simplifier import Simplifier
from repro.lambda_rc import insert_rc
from repro.lean import check_program, parse_program


def to_pure(src):
    program = parse_program(src)
    env = check_program(program)
    return lower_program(program, env)


def collect_nodes(body, node_type):
    """Collect all IR nodes of a given type in a function body."""
    found = []

    def walk(b):
        if isinstance(b, node_type):
            found.append(b)
        if isinstance(b, Let):
            walk(b.body)
        elif isinstance(b, Case):
            for alt in b.alts:
                walk(alt.body)
            if b.default is not None:
                walk(b.default)
        elif isinstance(b, JDecl):
            walk(b.jbody)
            walk(b.rest)
        elif isinstance(b, (Inc, Dec)):
            walk(b.body)

    walk(body)
    return found


class TestLowering:
    def test_literal_and_return(self):
        program = to_pure("def main : Nat := 5")
        body = program.functions["main"].body
        assert isinstance(body, Let) and isinstance(body.expr, Lit)
        assert isinstance(body.body, Ret)

    def test_constructor_lowering(self):
        program = to_pure(
            """
inductive Pair where
| mk (a : Nat) (b : Nat)
def main : Pair := Pair.mk 1 2
"""
        )
        ctors = collect_nodes(program.functions["main"].body, Let)
        assert any(isinstance(l.expr, Ctor) and l.expr.tag == 0 for l in ctors)

    def test_match_produces_case_and_projections(self):
        program = to_pure(
            """
inductive List where
| nil
| cons (h : Nat) (t : List)
def head (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons h _ => h
"""
        )
        body = program.functions["head"].body
        cases = collect_nodes(body, Case)
        assert cases and cases[0].type_name == "List"
        projections = [
            l for l in collect_nodes(body, Let) if isinstance(l.expr, Proj)
        ]
        assert projections

    def test_multi_arm_match_introduces_join_points(self):
        """Figure 5: fall-through arms share code via join points."""
        program = to_pure(
            """
def eval (x : Nat) (y : Nat) (z : Nat) : Nat :=
  match x, y, z with
  | 0, 2, _ => 40
  | 0, _, 2 => 50
  | _, _, _ => 60
"""
        )
        body = program.functions["eval"].body
        jdecls = collect_nodes(body, JDecl)
        jumps = collect_nodes(body, Jmp)
        assert len(jdecls) >= 2
        assert len(jumps) >= 2
        # The default arm (60) appears exactly once: no code duplication.
        sixty = [
            l for l in collect_nodes(body, Let)
            if isinstance(l.expr, Lit) and l.expr.value == 60
        ]
        assert len(sixty) == 1

    def test_partial_application_lowered_to_pap(self):
        program = to_pure(
            """
def k (x : Nat) (y : Nat) : Nat := x
def k10 : Nat -> Nat := k 10
"""
        )
        paps = [
            l for l in collect_nodes(program.functions["k10"].body, Let)
            if isinstance(l.expr, PAp)
        ]
        assert paps and paps[0].expr.fn == "k"

    def test_lambda_lifting_creates_function(self):
        program = to_pure(
            """
def addK (k : Nat) : Nat -> Nat := fun (x : Nat) => x + k
"""
        )
        lifted = [name for name in program.functions if "_lam" in name]
        assert len(lifted) == 1
        # The lifted function takes the captured variable plus the parameter.
        assert program.functions[lifted[0]].arity == 2

    def test_operators_become_runtime_calls(self):
        program = to_pure("def main : Nat := 2 + 3 * 4")
        calls = [
            l.expr.fn
            for l in collect_nodes(program.functions["main"].body, Let)
            if isinstance(l.expr, Call)
        ]
        assert "lean_nat_add" in calls and "lean_nat_mul" in calls

    def test_int_operators_use_int_runtime(self):
        program = to_pure("def f (x : Int) : Int := x * 2 - 1")
        calls = [
            l.expr.fn
            for l in collect_nodes(program.functions["f"].body, Let)
            if isinstance(l.expr, Call)
        ]
        assert "lean_int_mul" in calls and "lean_int_sub" in calls

    def test_if_lowered_to_bool_case(self):
        program = to_pure("def f (x : Nat) : Nat := if x == 0 then 1 else 2")
        cases = collect_nodes(program.functions["f"].body, Case)
        assert cases and cases[0].type_name == "Bool"


class TestAnalyses:
    def test_free_vars_of_let(self):
        body = Let("x", Call("lean_nat_add", ["a", "b"]), Ret("x"))
        assert free_vars(body) == {"a", "b"}

    def test_free_vars_through_join(self):
        body = JDecl(
            "j",
            ["p"],
            Let("r", Call("lean_nat_add", ["p", "captured"]), Ret("r")),
            Jmp("j", ["arg"]),
        )
        assert free_vars(body) == {"captured", "arg"}

    def test_count_jumps_and_size(self):
        body = JDecl("j", [], Ret("x"), Case("c", [], Jmp("j", [])))
        assert count_jumps(body.rest, "j") == 1
        assert body_size(body) >= 3


class TestSimplifier:
    def test_dead_let_elimination(self):
        program = to_pure("def main : Nat := let unused := 5 * 5; 3")
        simplified = simplify_program(program)
        lets = collect_nodes(simplified.functions["main"].body, Let)
        values = [l.expr.value for l in lets if isinstance(l.expr, Lit)]
        assert 3 in values and 5 not in values

    def test_constant_folding(self):
        program = to_pure("def main : Nat := 2 + 3")
        simplified = simplify_program(program)
        body = simplified.functions["main"].body
        lets = collect_nodes(body, Let)
        assert any(isinstance(l.expr, Lit) and l.expr.value == 5 for l in lets)
        calls = [l for l in lets if isinstance(l.expr, Call)]
        assert not calls

    def test_case_of_known_constructor(self):
        src = """
inductive Option where
| none
| some (v : Nat)
def main : Nat :=
  match Option.some 41 with
  | Option.none => 0
  | Option.some v => v + 1
"""
        program = to_pure(src)
        simplified = simplify_program(program)
        body = simplified.functions["main"].body
        assert not collect_nodes(body, Case)

    def test_simp_case_can_be_disabled(self):
        src = """
inductive Option where
| none
| some (v : Nat)
def main : Nat :=
  match Option.some 41 with
  | Option.none => 0
  | Option.some v => v + 1
"""
        program = to_pure(src)
        kept = Simplifier(enable_simp_case=False).run(program)
        assert collect_nodes(kept.functions["main"].body, Case)

    def test_identical_branches_collapsed(self):
        program = to_pure("def f (b : Bool) : Nat := let k := 7; if b then k else k")
        simplified = simplify_program(program)
        assert not collect_nodes(simplified.functions["f"].body, Case)

    def test_alpha_varying_branches_left_to_region_gvn(self):
        """Branches that differ only in bound-variable names are not collapsed
        by the λpure simplifier (its comparison is syntactic); the rgn
        pipeline's region GVN handles that case — which is exactly the
        paper's motivation for value-numbering regions."""
        program = to_pure("def f (b : Bool) : Nat := if b then 7 else 7")
        simplified = simplify_program(program)
        assert collect_nodes(simplified.functions["f"].body, Case)
        from repro.backend import run_mlir, run_reference

        src = "def f (b : Bool) : Nat := if b then 7 else 7\ndef main : Nat := f (1 < 2)"
        assert run_mlir(src).value == run_reference(src) == 7

    def test_single_use_join_inlined(self):
        program = to_pure(
            """
def f (x : Nat) : Nat :=
  let y := (if x == 0 then 1 else 2);
  y + 10
"""
        )
        simplified = simplify_program(program)
        # The continuation join point had two jumps (one per branch), so it
        # must be preserved; but simplification must preserve semantics.
        reference = normalize(ReferenceInterpreter(simplified).call("f", [0]))
        assert reference == 11

    def test_simplifier_preserves_semantics(self):
        src = """
inductive List where
| nil
| cons (h : Nat) (t : List)
def upto (n : Nat) : List :=
  if n == 0 then List.nil else List.cons n (upto (n - 1))
def sum (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons h t => h + sum t
def main : Nat := sum (upto 15)
"""
        program = to_pure(src)
        expected = normalize(ReferenceInterpreter(program).run_main())
        simplified = simplify_program(program)
        assert normalize(ReferenceInterpreter(simplified).run_main()) == expected


class TestReferenceCounting:
    def run_balanced(self, src):
        """Lower, insert RC, run, and assert the heap ends balanced."""
        rc = insert_rc(to_pure(src))
        result = run_rc_program(rc)  # raises on leak / double free
        return result

    def test_inserts_inc_for_shared_values(self):
        src = """
inductive Pair where
| mk (a : Nat) (b : Nat)
def dup (p : Pair) : Pair :=
  match p with
  | Pair.mk a b => Pair.mk (a + b) (a + b)
def main : Nat :=
  match dup (Pair.mk 100000000000000000000 2) with
  | Pair.mk a _ => Int.toNat (Nat.toInt a)
"""
        rc = insert_rc(to_pure(src))
        incs = sum(
            len(collect_nodes(fn.body, Inc)) for fn in rc.functions.values()
        )
        assert incs > 0
        self.run_balanced(src)

    def test_dead_parameter_released(self):
        result = self.run_balanced(
            """
inductive Box where
| mk (v : Nat)
def ignore (b : Box) : Nat := 7
def main : Nat := ignore (Box.mk 99999999999999999999)
"""
        )
        assert result.value == 7
        assert result.heap_stats["allocations"] == result.heap_stats["frees"]

    def test_heap_balance_for_list_program(self):
        result = self.run_balanced(
            """
inductive List where
| nil
| cons (h : Nat) (t : List)
def upto (n : Nat) : List :=
  if n == 0 then List.nil else List.cons n (upto (n - 1))
def sum (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons h t => h + sum t
def main : Nat := sum (upto 40)
"""
        )
        assert result.value == 820
        assert result.heap_stats["allocations"] == result.heap_stats["frees"]

    def test_heap_balance_with_closures(self):
        result = self.run_balanced(
            """
def applyN (f : Nat -> Nat) (n : Nat) (x : Nat) : Nat :=
  if n == 0 then x else applyN f (n - 1) (f x)
def main : Nat :=
  let offset := 5;
  applyN (fun (v : Nat) => v + offset) 10 0
"""
        )
        assert result.value == 50

    def test_heap_balance_shared_structure(self):
        result = self.run_balanced(
            """
inductive Tree where
| leaf
| node (l : Tree) (r : Tree)
def weight (t : Tree) : Nat :=
  match t with
  | Tree.leaf => 1
  | Tree.node l r => weight l + weight r
def main : Nat :=
  let shared := Tree.node Tree.leaf Tree.leaf;
  weight (Tree.node shared shared) + weight shared
"""
        )
        assert result.value == 6

    def test_double_insert_rejected(self):
        program = to_pure(
            """
inductive Box where
| mk (v : Nat)
def ignore (b : Box) : Nat := 7
def main : Nat := ignore (Box.mk 1)
"""
        )
        rc = insert_rc(program)
        assert any(
            collect_nodes(fn.body, (Inc, Dec)) for fn in rc.functions.values()
        )
        with pytest.raises(ValueError):
            insert_rc(rc)

    def test_rc_program_matches_reference(self):
        src = """
inductive List where
| nil
| cons (h : Nat) (t : List)
def rev (xs : List) (acc : List) : List :=
  match xs with
  | List.nil => acc
  | List.cons h t => rev t (List.cons h acc)
def headOr (xs : List) (d : Nat) : Nat :=
  match xs with
  | List.nil => d
  | List.cons h _ => h
def upto (n : Nat) : List :=
  if n == 0 then List.nil else List.cons n (upto (n - 1))
def main : Nat := headOr (rev (upto 12) List.nil) 0
"""
        pure = to_pure(src)
        expected = normalize(ReferenceInterpreter(pure).run_main())
        assert run_rc_program(insert_rc(pure)).value == expected
