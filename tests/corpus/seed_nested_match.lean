-- corpus seed: multi-column scalar match and nested constructor patterns
inductive P where
| mk (first : Nat) (second : Nat)

inductive Q where
| none
| some (value : P)

def classify (q : Q) (k : Nat) : Nat :=
  match q, k with
  | Q.some (P.mk a b), 0 => a + b
  | Q.some p, m =>
    (match p with
     | P.mk a _ => a + m)
  | Q.none, m => m * 2

def main : Nat :=
  classify (Q.some (P.mk 3 4)) 0 + classify (Q.some (P.mk 5 6)) 2 + classify Q.none 9
