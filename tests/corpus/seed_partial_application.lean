-- corpus seed: higher-order function, partial application and a lambda
def addmul (a : Nat) (b : Nat) (c : Nat) : Nat := a * b + c

def twice (g : Nat -> Nat) (x : Nat) : Nat := g (g x)

def main : Nat := twice (addmul 2 3) 4 + twice (fun (y : Nat) => y + 10) 1
