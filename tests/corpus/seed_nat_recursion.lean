-- corpus seed: Nat-countdown recursion with a bounded measure and let tower
def fn1 (n : Nat) (p1 : Nat) : Nat :=
  if n == 0 then p1 + 1
  else
    let r1 := fn1 (n - 1) (p1 * 2);
    r1 + n

def main : Nat := fn1 (13 % 7) 3 + fn1 0 9
