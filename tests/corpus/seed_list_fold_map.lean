-- corpus seed: ADT fold and structural map (the constructor-reuse hot path)
inductive L where
| nil
| cons (head : Nat) (tail : L)

def total (xs : L) : Nat :=
  match xs with
  | L.nil => 0
  | L.cons h t =>
    let r := total t;
    h + r

def bump (xs : L) : L :=
  match xs with
  | L.nil => L.nil
  | L.cons h t => L.cons (h + 1) (bump t)

def build (n : Nat) : L :=
  if n == 0 then L.nil else L.cons n (build (n - 1))

def main : Nat := total (bump (build 6))
