-- corpus seed: Int arithmetic, comparisons, boolean operators and shadowing
def sign (i : Int) : Int :=
  if i < Nat.toInt 0 then Int.neg i else i

def main : Nat :=
  let v := -5;
  let v := sign v;
  let b := v >= Nat.toInt 0 && 3 < 4;
  if b then Int.toNat v + 1 else 0
