"""The fuzzing layer: generator soundness, differential matrix, corpus replay.

Four guarantees are pinned here (see ``docs/FUZZING.md``):

* **generator soundness** — every program :func:`repro.fuzz.typed_programs`
  draws type-checks, and survives print → parse → check with the identical
  typed AST (the meta-test runs hundreds of examples);
* **matrix agreement** — generated programs run through the *full*
  configuration matrix (rc mode × rewrite engine × execution engine ×
  incremental) agree with the reference value, balance the heap, and keep
  identical execution metrics across the compile-strategy axes;
* **corpus replay** — every shrunk counterexample checked into
  ``tests/corpus/`` replays through the full matrix, fast, forever;
* **surface round-trip** — the pretty-printer reproduces the identical
  typed AST for the whole regression suite and every benchmark, so shrunk
  programs can live on as plain ``.lean`` files.
"""

import time

import pytest
from hypothesis import HealthCheck, given, seed, settings

from repro.backend.pipeline import CompilationSession
from repro.eval.benchmarks import benchmark_sources
from repro.eval.testsuite import regression_programs
from repro.fuzz import (
    DifferentialFailure,
    corpus_name,
    full_matrix,
    load_corpus,
    run_matrix,
    save_counterexample,
    smoke_matrix,
    typed_programs,
)
from repro.fuzz.__main__ import main as fuzz_main
from repro.fuzz.differential import MatrixReport, _check_run
from repro.lean import ast
from repro.lean.parser import parse_program
from repro.lean.printer import PrintError, print_expr, print_pattern, print_program
from repro.lean.typecheck import check_program

NO_HEALTH = list(HealthCheck)


# ---------------------------------------------------------------------------
# Generator soundness (the meta-test)
# ---------------------------------------------------------------------------


class TestGeneratorSoundness:
    @seed(2022)
    @settings(
        max_examples=500,
        database=None,
        deadline=None,
        suppress_health_check=NO_HEALTH,
    )
    @given(program=typed_programs())
    def test_generated_programs_typecheck_and_roundtrip(self, program):
        # Typechecks by construction...
        check_program(program)
        # ...and the printed surface syntax re-checks to the identical
        # typed AST, so counterexamples survive as plain .lean files.
        source = print_program(program)
        reparsed = parse_program(source)
        check_program(reparsed)
        assert reparsed == program, source

    def test_generator_exercises_language_features(self):
        # A statistical floor under the generator: a refactor that silently
        # collapses it to trivial programs must fail loudly, not just make
        # the fuzz matrix vacuous.
        found = set()

        @seed(7)
        @settings(
            max_examples=150,
            database=None,
            deadline=None,
            suppress_health_check=NO_HEALTH,
        )
        @given(program=typed_programs())
        def collect(program):
            found.update(_features(program))

        collect()
        required = {
            "adt",
            "match",
            "nested-patterns",
            "recursion",
            "partial-application",
            "higher-order",
            "lambda",
            "let",
            "if",
        }
        assert required <= found, f"missing: {sorted(required - found)}"


def _expressions(expr):
    stack = [expr]
    while stack:
        e = stack.pop()
        yield e
        if isinstance(e, ast.App):
            stack.append(e.fn)
            stack.extend(e.args)
        elif isinstance(e, ast.BinOp):
            stack += [e.lhs, e.rhs]
        elif isinstance(e, ast.UnaryOp):
            stack.append(e.operand)
        elif isinstance(e, ast.Let):
            stack += [e.value, e.body]
        elif isinstance(e, ast.If):
            stack += [e.cond, e.then_branch, e.else_branch]
        elif isinstance(e, ast.Lambda):
            stack.append(e.body)
        elif isinstance(e, ast.Match):
            stack.extend(e.scrutinees)
            stack.extend(arm.body for arm in e.arms)


def _features(program):
    arity = {d.name: len(d.params) for d in program.defs}
    found = set()
    if program.inductives:
        found.add("adt")
    for decl in program.defs:
        if any(isinstance(t, ast.FunType) for _, t in decl.params):
            found.add("higher-order")
        for e in _expressions(decl.body):
            if isinstance(e, ast.Let):
                found.add("let")
            elif isinstance(e, ast.If):
                found.add("if")
            elif isinstance(e, ast.Lambda):
                found.add("lambda")
            elif isinstance(e, ast.Match):
                found.add("match")
                for arm in e.arms:
                    for pattern in arm.patterns:
                        if isinstance(pattern, ast.PCtor) and any(
                            isinstance(sub, ast.PCtor) for sub in pattern.subpatterns
                        ):
                            found.add("nested-patterns")
            elif isinstance(e, ast.App) and isinstance(e.fn, ast.Var):
                if e.fn.name == decl.name:
                    found.add("recursion")
                n = arity.get(e.fn.name)
                if n is not None and 0 < len(e.args) < n:
                    found.add("partial-application")
    return found


# ---------------------------------------------------------------------------
# Surface round-trip (testsuite + benchmarks)
# ---------------------------------------------------------------------------


BENCHMARKS = benchmark_sources()


def _assert_roundtrip(source: str, label: str) -> None:
    first = parse_program(source)
    check_program(first)
    printed = print_program(first)
    second = parse_program(printed)
    check_program(second)
    assert second == first, f"{label}: round-trip changed the typed AST\n{printed}"


class TestSurfaceRoundtrip:
    @pytest.mark.parametrize(
        "program", regression_programs(), ids=lambda p: p.name
    )
    def test_testsuite_program_roundtrips(self, program):
        _assert_roundtrip(program.source, program.name)

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_benchmark_roundtrips(self, name):
        _assert_roundtrip(BENCHMARKS[name], name)

    def test_nonnegative_int_literal_has_no_surface_spelling(self):
        # `3 : Int` only exists via NatLit coercion under an expected type;
        # printing it would change the reparsed AST, so the printer refuses.
        with pytest.raises(PrintError):
            print_expr(ast.IntLit(3))

    def test_negative_int_literal_prints(self):
        expr = parse_program("def main : Int := -4\n").defs[0].body
        assert print_expr(expr) == "-4"

    def test_negative_pattern_literal_has_no_surface_spelling(self):
        with pytest.raises(PrintError):
            print_pattern(ast.PLit(-1))


# ---------------------------------------------------------------------------
# LeanType hashing (structural, matching __eq__)
# ---------------------------------------------------------------------------


class TestLeanTypeHash:
    def test_equal_types_hash_equal(self):
        pairs = [
            (ast.NatType(), ast.NatType()),
            (ast.DataType("T1"), ast.DataType("T1")),
            (ast.ArrayType(ast.BoolType()), ast.ArrayType(ast.BoolType())),
            (
                ast.FunType(ast.NatType(), ast.FunType(ast.IntType(), ast.BoolType())),
                ast.FunType(ast.NatType(), ast.FunType(ast.IntType(), ast.BoolType())),
            ),
        ]
        for a, b in pairs:
            assert a == b
            assert hash(a) == hash(b), f"{a} == {b} but hashes differ"

    def test_types_work_as_dict_keys(self):
        table = {ast.FunType(ast.NatType(), ast.NatType()): "f"}
        assert table[ast.FunType(ast.NatType(), ast.NatType())] == "f"
        assert len({ast.NatType(), ast.NatType(), ast.IntType()}) == 2

    def test_unequal_types_are_distinct(self):
        assert ast.NatType() != ast.IntType()
        assert ast.DataType("A") != ast.DataType("B")

    def test_hash_handles_list_valued_fields(self):
        class Sig(ast.LeanType):
            def __init__(self, params):
                self.params = list(params)

        a, b = Sig([ast.NatType()]), Sig([ast.NatType()])
        assert a == b
        assert hash(a) == hash(b)


# ---------------------------------------------------------------------------
# Differential matrix
# ---------------------------------------------------------------------------


class _StubMetrics:
    counts = {}

    def total_cost(self):
        return 0


class _StubResult:
    def __init__(self, value, allocations, frees):
        self.value = value
        self.metrics = _StubMetrics()
        self.heap_stats = {"allocations": allocations, "frees": frees}
        self.output = ()


class TestDifferentialMatrix:
    def test_full_matrix_shape(self):
        configs = full_matrix()
        assert len(configs) == 36
        assert len({c.label for c in configs}) == 36
        vm_dispatches = {
            c.dispatch for c in configs if c.execution_engine == "vm"
        }
        assert vm_dispatches == {"threaded", "switch"}

    def test_smoke_matrix_covers_every_axis(self):
        configs = smoke_matrix()
        assert set(configs) <= set(full_matrix())
        assert {c.rc_variant for c in configs} == {
            "rc-naive", "rc-opt", "rc-opt+reuse"
        }
        assert {c.rewrite_engine for c in configs} == {"worklist", "rescan"}
        assert {c.execution_engine for c in configs} == {"vm", "tree"}
        assert {
            c.dispatch for c in configs if c.execution_engine == "vm"
        } == {"threaded", "switch"}
        assert {c.incremental for c in configs} == {False, True}

    def test_generated_programs_agree_everywhere(self):
        session = CompilationSession()

        @seed(2022)
        @settings(
            max_examples=15,
            database=None,
            deadline=None,
            suppress_health_check=NO_HEALTH,
        )
        @given(program=typed_programs())
        def run(program):
            report = run_matrix(print_program(program), session=session)
            # 36 lp+rgn configurations + 6 baseline runs.
            assert report.configurations == 42

        run()

    def test_crash_is_wrapped_with_source(self):
        source = "def main : Nat := oops\n"
        with pytest.raises(DifferentialFailure) as excinfo:
            run_matrix(source)
        assert excinfo.value.source == source
        assert excinfo.value.reason.startswith("reference:")

    def test_value_mismatch_is_detected(self):
        report = MatrixReport(source="s")
        report.reference_value = 1
        with pytest.raises(DifferentialFailure, match="!= reference"):
            _check_run(report, "cfg", _StubResult(2, 0, 0))

    def test_heap_imbalance_is_detected(self):
        report = MatrixReport(source="s")
        report.reference_value = 1
        with pytest.raises(DifferentialFailure, match="heap imbalance"):
            _check_run(report, "cfg", _StubResult(1, 3, 2))


# ---------------------------------------------------------------------------
# Corpus: storage format + replay regression test
# ---------------------------------------------------------------------------


CORPUS = load_corpus()


class TestCorpusStorage:
    def test_save_is_idempotent_and_replayable(self, tmp_path):
        source = "def main : Nat := 1 + 2\n"
        path = save_counterexample(
            source, tmp_path, reason="first line of reason\nsecond line"
        )
        again = save_counterexample(source, tmp_path, reason="different reason")
        assert path == again
        assert path.name == corpus_name(source)
        text = path.read_text(encoding="utf-8")
        assert text.startswith(
            "-- fuzz counterexample\n-- reason: first line of reason\n"
        )
        # The provenance header is comment syntax: the file replays as-is.
        program = parse_program(text)
        check_program(program)
        assert load_corpus(tmp_path) == [(path.name, text)]

    def test_missing_directory_is_empty_corpus(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []


class TestCorpusReplay:
    @pytest.fixture(scope="class")
    def session(self):
        return CompilationSession()

    def test_corpus_is_seeded(self):
        assert len(CORPUS) >= 4, "tests/corpus/ should ship seed programs"

    @pytest.mark.parametrize(
        "name,source", CORPUS, ids=[name for name, _ in CORPUS]
    )
    def test_replays_through_full_matrix(self, name, source, session):
        run_matrix(source, session=session)

    def test_replay_is_fast(self):
        # The corpus is part of tier-1: replaying all of it (fresh session,
        # full matrix) must stay well under the issue's ~5s budget.
        start = time.monotonic()
        session = CompilationSession()
        for _, source in CORPUS:
            run_matrix(source, session=session)
        assert time.monotonic() - start < 5.0


# ---------------------------------------------------------------------------
# Fuzz CLI
# ---------------------------------------------------------------------------


class TestFuzzCli:
    def test_smoke_run_is_deterministic_and_green(self, capsys):
        code = fuzz_main(
            [
                "--seed", "3",
                "--max-examples", "6",
                "--batch-size", "3",
                "--matrix", "smoke",
                "--budget-seconds", "60",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzz: 6 programs x 13 configurations" in out
        assert "0 counterexample(s)" in out

    def test_failure_is_saved_to_corpus_dir(self, tmp_path, monkeypatch, capsys):
        import repro.fuzz.__main__ as fuzz_cli

        def explode(source, **kwargs):
            raise DifferentialFailure(source, "synthetic failure")

        monkeypatch.setattr(fuzz_cli, "run_matrix", explode)
        code = fuzz_main(
            [
                "--max-examples", "2",
                "--batch-size", "2",
                "--save",
                "--corpus-dir", str(tmp_path),
                "--stop-on-failure",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        saved = sorted(tmp_path.glob("fuzz_*.lean"))
        assert len(saved) == 1
        assert "-- reason: synthetic failure" in saved[0].read_text(encoding="utf-8")
        assert "1 counterexample(s)" in out
