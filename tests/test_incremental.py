"""Tests for fingerprint-keyed incremental rgn-opt recompilation.

The contract under test (see :mod:`repro.backend.incremental`):

* recompiling unchanged source through a session re-runs the rgn
  pipeline on **no** function (all hits, byte-identical output),
* recompiling with one function changed re-runs it on **only** that
  function (exactly one miss),
* fingerprints are structural — positional pre-seeding keeps functions
  whose nested regions reference *different* outer values apart, while
  cosmetic SSA name hints don't cause spurious misses,
* cache entries are keyed by the pipeline fingerprint too, so different
  option sets never share optimised IR,
* the cache is FIFO-bounded and its traffic publishes as
  ``session.incremental.*``.
"""

import re

import pytest

from repro.backend.incremental import (
    function_fingerprint,
    function_fingerprint_digest,
)
from repro.backend.pipeline import (
    CompilationSession,
    MlirCompiler,
    PipelineOptions,
)
from repro.dialects import lp, rgn
from repro.dialects.builtin import ModuleOp
from repro.dialects.func import FuncOp
from repro.ir import Builder, FunctionType, InsertionPoint, box
from repro.telemetry import telemetry_session

SOURCE = """
def add (a b : Nat) : Nat := a + b

def double (n : Nat) : Nat := add n n

def main : Nat := double (add 4 17)
"""

#: Same module with only ``double``'s body changed.
CHANGED = SOURCE.replace("add n n", "add n (add n 0)")


def incremental_stats(session):
    return {
        key.removeprefix("incremental_"): session.stats[key]
        for key in ("incremental_hits", "incremental_misses", "incremental_entries")
    }


def make_compiler(session, **overrides):
    options = PipelineOptions(capture_ir=("rgn-opt",), **overrides)
    return MlirCompiler(options, session=session)


def anonymize(text):
    """IR text with every SSA/block name replaced — hint-blind comparison."""
    return re.sub(r"[%^][A-Za-z0-9_$.\-]+", "%_", text)


class TestIncrementalRecompilation:
    def test_first_compile_misses_every_function(self):
        session = CompilationSession()
        make_compiler(session).compile(SOURCE)
        assert incremental_stats(session) == {
            "hits": 0, "misses": 3, "entries": 3,
        }

    def test_recompile_hits_every_function_byte_identically(self):
        session = CompilationSession()
        compiler = make_compiler(session)
        first = compiler.compile(SOURCE).captured_ir["rgn-opt"]
        second = compiler.compile(SOURCE).captured_ir["rgn-opt"]
        assert incremental_stats(session) == {
            "hits": 3, "misses": 3, "entries": 3,
        }
        assert first == second

    def test_one_function_changed_reruns_only_that_function(self):
        session = CompilationSession()
        compiler = make_compiler(session)
        compiler.compile(SOURCE)
        before = incremental_stats(session)
        compiler.compile(CHANGED)
        after = incremental_stats(session)
        # add and main are unchanged (hits); only double re-optimises.
        assert after["hits"] - before["hits"] == 2
        assert after["misses"] - before["misses"] == 1

    def test_incremental_output_matches_non_incremental(self):
        def compile_pair(incremental):
            session = CompilationSession()
            compiler = make_compiler(session, incremental_rgn_opt=incremental)
            compiler.compile(SOURCE)
            return compiler.compile(CHANGED).captured_ir["rgn-opt"]

        # A hit restores the hint spelling of the compile that populated
        # the entry, so the comparison is hint-blind; the IR structure
        # (ops, operands, attributes, types) must agree exactly.
        assert anonymize(compile_pair(True)) == anonymize(compile_pair(False))

    def test_session_output_matches_sessionless_compile(self):
        session = CompilationSession()
        compiler = make_compiler(session)
        compiler.compile(SOURCE)
        cached = compiler.compile(SOURCE).captured_ir["rgn-opt"]
        fresh = MlirCompiler(
            PipelineOptions(capture_ir=("rgn-opt",))
        ).compile(SOURCE).captured_ir["rgn-opt"]
        assert cached == fresh

    def test_incremental_results_still_execute_correctly(self):
        session = CompilationSession()
        compiler = make_compiler(session)
        compiler.compile(SOURCE)
        assert compiler.run(SOURCE).value == 42
        assert compiler.run(CHANGED).value == 42
        assert incremental_stats(session)["hits"] > 0

    def test_disabling_incremental_bypasses_the_cache(self):
        session = CompilationSession()
        compiler = make_compiler(session, incremental_rgn_opt=False)
        compiler.compile(SOURCE)
        compiler.compile(SOURCE)
        assert incremental_stats(session) == {
            "hits": 0, "misses": 0, "entries": 0,
        }

    def test_different_pipeline_specs_do_not_share_entries(self):
        session = CompilationSession()
        make_compiler(session).compile(SOURCE)
        ablated = make_compiler(session, enable_case_elimination=False)
        ablated.compile(SOURCE)
        # Same source, different pipeline fingerprint: all misses again.
        assert incremental_stats(session) == {
            "hits": 0, "misses": 6, "entries": 6,
        }

    def test_metrics_publish_under_telemetry(self):
        with telemetry_session() as telemetry:
            session = CompilationSession()
            compiler = make_compiler(session)
            compiler.compile(SOURCE)
            compiler.compile(SOURCE)
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["session.incremental.hits"] == 3
        assert snapshot["session.incremental.misses"] == 3

    def test_fifo_bound(self):
        session = CompilationSession()
        session.RGN_OPT_CACHE_LIMIT = 2
        session.rgn_opt_store(("p", "a"), object())
        session.rgn_opt_store(("p", "b"), object())
        session.rgn_opt_store(("p", "c"), object())
        assert incremental_stats(session)["entries"] == 2
        assert session.rgn_opt_cached(("p", "a")) is None  # evicted first
        assert session.rgn_opt_cached(("p", "c")) is not None


def _func_with_region_returning(module, name, arg_index):
    """``func(a, b)`` holding a region whose body returns one argument."""
    func = FuncOp(name, FunctionType([box, box], [box]))
    module.append(func)
    builder = Builder(InsertionPoint.at_end(func.entry_block))
    val = builder.create(rgn.ValOp)
    inner = Builder(InsertionPoint.at_end(val.body_block))
    inner.create(lp.ReturnOp, func.arguments[arg_index])
    builder.create(rgn.RunOp, val.result())
    return func


class TestFunctionFingerprint:
    def test_identical_functions_share_a_fingerprint(self):
        module = ModuleOp()
        f = _func_with_region_returning(module, "f", 0)
        g = _func_with_region_returning(module, "g", 0)
        f_key = function_fingerprint(f)
        g_key = function_fingerprint(g)
        # Bodies identical; only the sym_name attribute differs.
        assert f_key[0] == g_key[0] == "body"
        assert f_key[2] == g_key[2]
        assert function_fingerprint_digest(f) != function_fingerprint_digest(g)

    def test_regions_over_different_outer_values_differ(self):
        # The collision positional pre-seeding exists to prevent: with a
        # fresh encounter-order numbering both nested regions would see
        # "some outer value numbered 0" and fingerprint identically, even
        # though one returns the first argument and the other the second.
        module = ModuleOp()
        f = _func_with_region_returning(module, "f", 0)
        g = _func_with_region_returning(module, "g", 1)
        assert function_fingerprint(f)[2] != function_fingerprint(g)[2]

    def test_fingerprint_is_deterministic(self):
        module = ModuleOp()
        f = _func_with_region_returning(module, "f", 0)
        assert function_fingerprint_digest(f) == function_fingerprint_digest(f)

    def test_name_hints_do_not_affect_the_fingerprint(self):
        module = ModuleOp()
        f = _func_with_region_returning(module, "f", 0)
        digest = function_fingerprint_digest(f)
        f.arguments[0].name_hint = "renamed"
        assert function_fingerprint_digest(f) == digest
