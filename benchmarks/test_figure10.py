"""Figure 10: speedup of the rgn optimisations over the λrc simplifier.

Three pipeline variants per benchmark: (a) λpure simplifier + no rgn
optimisation, (b) no simplifier + rgn optimisations, (c) neither.  The paper
reports geomean parity (1.0x) between (a) and (b); variant (c) should never
beat (b).
"""

import pytest

from repro.backend import PipelineOptions, run_mlir, run_reference
from repro.eval.benchmarks import BENCHMARK_NAMES
from repro.eval.harness import geometric_mean

VARIANTS = ("simplifier", "rgn", "none")


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_variant_pipeline(benchmark, sources, name, variant):
    source = sources[name]
    expected = run_reference(source)
    options = PipelineOptions.variant(variant)
    options.verify_each = False
    result = benchmark(lambda: run_mlir(source, options, check_heap=False))
    assert result.value == expected


def test_figure10_speedups_within_parity_band(sources):
    rgn_speedups = []
    none_speedups = []
    for name in BENCHMARK_NAMES:
        source = sources[name]
        costs = {}
        for variant in VARIANTS:
            options = PipelineOptions.variant(variant)
            options.verify_each = False
            result = run_mlir(source, options)
            costs[variant] = result.metrics.total_cost()
        rgn_speedups.append(costs["simplifier"] / costs["rgn"])
        none_speedups.append(costs["simplifier"] / costs["none"])
    # Paper: rgn vs simplifier hovers around 1.0x (0.95-1.05), and the
    # unoptimised variant is never better than the rgn-optimised one.
    assert 0.85 <= geometric_mean(rgn_speedups) <= 1.15
    for rgn_s, none_s in zip(rgn_speedups, none_speedups):
        assert rgn_s >= none_s - 1e-9
