"""Compile-time guard: the worklist rewrite engine vs the rescan baseline.

Asserts the acceptance criteria of the worklist-driver work:

* differential — on the full benchmark suite both engines reach the exact
  same final IR,
* efficiency — on the largest benchmark of the compile suite (the
  ``rewrite-stress`` dead-join-point tower) total pattern match attempts
  drop at least 3x versus the rescan driver,
* reporting — ``BENCH_compile.json`` is emitted with per-phase timings,

plus the acceptance criteria of the session-layer work (PR 4):

* region-gvn memoisation — fingerprint hashing work on ``rbmap_checkpoint``
  drops at least 3x versus the uncached-equivalent counter,
* sharding — a ``--jobs 2`` suite run reaches byte-identical final IR (and
  the same measurement set) as a sequential run,

plus the acceptance criterion of the incremental-recompilation work:

* incrementality — a one-function-changed recompile of
  ``rbmap_checkpoint`` through a session re-runs rgn-opt on exactly the
  changed function (``session.incremental`` hit counters) and the phase
  beats a cold compile on wall time,

plus the acceptance criterion of the unified telemetry subsystem:

* overhead — with no telemetry session active the instrumented call sites
  talk to the no-op singletons, record nothing, and keep the compile
  within noise of a telemetry-on run.
"""

import json
import time

import pytest

from repro.backend.pipeline import MlirCompiler
from repro.eval.benchmarks import DEFAULT_SIZES, benchmark_sources
from repro.eval.compile_bench import (
    STRESS_BENCHMARK,
    CompileMeasurement,
    build_stress_module,
    compile_report,
    differential_rows,
    emit_json,
    load_baseline,
    measure_benchmark,
    measure_stress,
    run_suite,
)
from repro.eval.harness import measurement_options
from repro.telemetry import telemetry_session


@pytest.fixture(scope="module")
def small_sizes(request):
    # Reuse the reduced sizes of the runtime benchmarks (see conftest.py).
    from conftest import SMALL_SIZES

    return SMALL_SIZES


@pytest.fixture(scope="module")
def rows(small_sizes):
    return differential_rows(small_sizes)


class TestDifferential:
    def test_every_benchmark_reaches_identical_ir(self, rows):
        mismatched = [row.benchmark for row in rows if not row.ir_equal]
        assert not mismatched, (
            f"worklist and rescan engines disagree on final IR: {mismatched}"
        )

    def test_suite_is_covered(self, rows, small_sizes):
        names = {row.benchmark for row in rows}
        assert set(small_sizes) <= names
        assert STRESS_BENCHMARK in names

    def test_match_attempts_reduced_3x_on_largest_benchmark(self, rows):
        largest = max(rows, key=lambda row: row.initial_op_count)
        assert largest.worklist_attempts > 0
        assert largest.attempt_ratio >= 3.0, (
            f"{largest.benchmark}: rescan={largest.rescan_attempts} "
            f"worklist={largest.worklist_attempts} "
            f"ratio={largest.attempt_ratio:.2f} < 3.0"
        )

    def test_no_benchmark_regresses_attempts(self, rows):
        # The worklist engine must never do *more* matching work (small
        # notification-driven deltas aside) than a full rescan fixpoint.
        for row in rows:
            assert row.worklist_attempts <= row.rescan_attempts * 1.05, (
                f"{row.benchmark}: worklist={row.worklist_attempts} exceeds "
                f"rescan={row.rescan_attempts}"
            )


class TestStressWorkload:
    def test_stress_module_shape(self):
        module = build_stress_module(layers=4, filler=2)
        ops = [op.name for op in module.walk()]
        assert ops.count("rgn.val") == 4
        assert ops.count("rgn.run") == 6  # two runs per level after the first

    def test_rescan_pays_one_sweep_per_level(self):
        worklist = measure_stress("worklist", layers=8, filler=4)
        rescan = measure_stress("rescan", layers=8, filler=4)
        assert worklist.ir_text == rescan.ir_text
        assert worklist.driver_iterations == 1
        # Dead levels cascade strictly backwards: the rescan driver needs
        # roughly one full sweep per level (plus the final clean sweep).
        assert rescan.driver_iterations >= 8

    def test_worklist_requeues_are_deduplicated(self):
        # Satellite regression: one application may touch the same op many
        # times; the membership set must keep match attempts linear-ish.
        small = measure_stress("worklist", layers=4, filler=4)
        large = measure_stress("worklist", layers=8, filler=4)
        assert large.match_attempts < 4 * small.match_attempts


class TestRegionGvnMemoisation:
    """PR 4 guard: memoised region fingerprints on the flagship benchmark."""

    @pytest.fixture(scope="class")
    def rbmap_stats(self):
        source = benchmark_sources(
            {"rbmap_checkpoint": DEFAULT_SIZES["rbmap_checkpoint"]}
        )["rbmap_checkpoint"]
        artifacts = MlirCompiler(measurement_options("rgn")).compile(source)
        return artifacts.pass_statistics["region-gvn"]

    def test_fingerprint_work_drops_3x_vs_uncached(self, rbmap_stats):
        hashed = rbmap_stats["fingerprint-entries-hashed"]
        uncached = rbmap_stats["fingerprint-entries-uncached"]
        assert hashed > 0
        assert uncached >= 3 * hashed, (
            f"rbmap_checkpoint: {hashed} op entries hashed with the memo, "
            f"uncached equivalent {uncached} — ratio "
            f"{uncached / hashed:.2f} < 3.0"
        )

    def test_every_region_hashed_at_most_once(self, rbmap_stats):
        # Without mutations in this pipeline configuration, computed
        # fingerprints equal the number of distinct regions queried — every
        # repeat query must be a cache hit.
        assert rbmap_stats["fingerprint-cache-hits"] > 0
        assert (
            rbmap_stats["fingerprints-computed"]
            < rbmap_stats["fingerprints-uncached-equivalent"]
        )


class TestIncrementalRecompilation:
    """PR 7 guard: fingerprint-keyed incremental rgn-opt on the flagship
    benchmark — a one-function-changed recompile re-runs the optimisation
    pipeline on exactly that function, and the rgn-opt phase gets
    measurably cheaper than a cold compile."""

    REPEATS = 3

    @pytest.fixture(scope="class")
    def rbmap_source(self):
        return benchmark_sources(
            {"rbmap_checkpoint": DEFAULT_SIZES["rbmap_checkpoint"]}
        )["rbmap_checkpoint"]

    @pytest.fixture(scope="class")
    def recompile_pairs(self, rbmap_source):
        """(cold, warm, session) per repeat: cold = first compile, warm =
        recompile with only ``main``'s body changed."""
        from repro.backend.pipeline import CompilationSession

        changed = rbmap_source.replace("sumFinds 30 t 0", "sumFinds 30 t (0 + 0)")
        assert changed != rbmap_source
        pairs = []
        for _ in range(self.REPEATS):
            session = CompilationSession()
            options = measurement_options("rgn")
            options.incremental_rgn_opt = True  # off for plain measurements
            compiler = MlirCompiler(options, session=session)
            cold = compiler.compile(rbmap_source).phase_timings["rgn-opt"]
            warm = compiler.compile(changed).phase_timings["rgn-opt"]
            pairs.append((cold, warm, session))
        return pairs

    def test_only_the_changed_function_reoptimises(self, recompile_pairs):
        for _, _, session in recompile_pairs:
            stats = session.stats
            # 9 functions: the cold compile misses all of them, the warm
            # recompile hits the 8 unchanged ones and misses only main.
            assert stats["incremental_misses"] == 10
            assert stats["incremental_hits"] == 8

    def test_warm_rgn_opt_phase_beats_cold(self, recompile_pairs):
        colds = sorted(cold for cold, _, _ in recompile_pairs)
        warms = sorted(warm for _, warm, _ in recompile_pairs)
        median_cold = colds[len(colds) // 2]
        median_warm = warms[len(warms) // 2]
        assert median_warm < 0.9 * median_cold, (
            f"one-function-changed rgn-opt took {median_warm * 1e3:.2f} ms "
            f"vs {median_cold * 1e3:.2f} ms cold — the incremental cache "
            "is not paying for itself on rbmap_checkpoint"
        )


class TestBenchJson:
    def test_emit_bench_compile_json(self, tmp_path, small_sizes):
        path = tmp_path / "BENCH_compile.json"
        payload = emit_json(str(path), small_sizes)
        on_disk = json.loads(path.read_text())
        assert on_disk["schema"] == "repro/compile-bench/v1"
        assert set(on_disk["engines"]) == {"worklist", "rescan"}
        names = {entry["benchmark"] for entry in on_disk["benchmarks"]}
        assert set(small_sizes) <= names and STRESS_BENCHMARK in names
        for entry in on_disk["benchmarks"]:
            assert entry["total_seconds"] > 0
            assert entry["phase_seconds"], entry["benchmark"]
            assert entry["match_attempts"] >= 0
            assert entry["initial_op_count"] > 0
        assert payload["totals"]["worklist"]["match_attempts"] > 0

    def test_baseline_comparison_report(self, tmp_path, small_sizes):
        path = tmp_path / "BENCH_compile.json"
        emit_json(str(path), small_sizes)
        baseline = load_baseline(str(path))
        assert set(small_sizes) <= set(baseline)
        report = compile_report(small_sizes, baseline=baseline)
        assert "base rgn-opt" in report and "Δ%" in report

    def test_baseline_rejects_unknown_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "other/v9", "benchmarks": []}')
        with pytest.raises(ValueError):
            load_baseline(str(bad))

    def test_sharded_suite_matches_sequential(self, small_sizes):
        # One worker per benchmark must change nothing observable except
        # wall time: same measurement set, byte-identical final IR.
        sequential = run_suite(small_sizes, jobs=1)
        sharded = run_suite(small_sizes, jobs=2)
        assert [(m.benchmark, m.engine) for m in sequential] == [
            (m.benchmark, m.engine) for m in sharded
        ]
        for seq, par in zip(sequential, sharded):
            assert seq.ir_text == par.ir_text, seq.benchmark
            assert seq.match_attempts == par.match_attempts, seq.benchmark

    def test_phase_timings_cover_pipeline(self, small_sizes):
        name = next(iter(small_sizes))
        from repro.eval.benchmarks import benchmark_sources

        source = benchmark_sources(small_sizes)[name]
        measurement: CompileMeasurement = measure_benchmark(name, source)
        for phase in ("frontend", "rc-insert", "lp-to-rgn", "rgn-opt", "rgn-to-cf"):
            assert phase in measurement.phase_seconds, phase
        assert sum(measurement.phase_seconds.values()) <= measurement.total_seconds


class TestTelemetryOverhead:
    """Telemetry acceptance guard: the disabled path stays within noise."""

    @pytest.fixture(scope="class")
    def source(self):
        return benchmark_sources(
            {"rbmap_checkpoint": DEFAULT_SIZES["rbmap_checkpoint"]}
        )["rbmap_checkpoint"]

    def test_disabled_telemetry_records_nothing(self, source):
        # A run *outside* the session must leave the session's tracer and
        # registry untouched — proof the instrumented call sites resolve
        # the active session per call instead of caching a live one.
        compiler = MlirCompiler(measurement_options("rgn"))
        with telemetry_session() as session:
            pass
        compiler.compile(source)
        assert session.tracer.roots == []
        assert len(session.metrics) == 0

    def test_telemetry_off_compile_not_slower_than_on(self, source):
        # Best-of-3 compile each way.  The disabled path is a handful of
        # no-op calls per pass/phase; the generous 1.5x bound only fails
        # if disabled telemetry somehow costs *more* than live recording
        # plus noise.
        def best_of(runs, session_active):
            samples = []
            for _ in range(runs):
                compiler = MlirCompiler(measurement_options("rgn"))
                start = time.perf_counter()
                if session_active:
                    with telemetry_session():
                        compiler.compile(source)
                else:
                    compiler.compile(source)
                samples.append(time.perf_counter() - start)
            return min(samples)

        off = best_of(3, session_active=False)
        on = best_of(3, session_active=True)
        assert off <= on * 1.5 + 0.05, (
            f"telemetry-off compile ({off * 1e3:.1f} ms) slower than "
            f"telemetry-on ({on * 1e3:.1f} ms) beyond noise"
        )
