"""Shared fixtures for the benchmark harness (pytest-benchmark)."""

import pytest

from repro.eval.benchmarks import benchmark_sources

#: Reduced problem sizes so that the full benchmark matrix stays fast while
#: preserving each workload's character.  Use ``--full-sizes`` to run the
#: default (paper-scale for this reproduction) sizes.
SMALL_SIZES = {
    "binarytrees": {"depth": 5},
    "binarytrees-int": {"depth": 5},
    "const_fold": {"depth": 3, "reps": 3},
    "deriv": {"reps": 3},
    "digits": {"reps": 5, "span": 8},
    "filter": {"length": 30},
    "qsort": {"size": 16},
    "rbmap_checkpoint": {"inserts": 15},
    "unionfind": {"elements": 20, "unions": 15},
}


def pytest_addoption(parser):
    parser.addoption(
        "--full-sizes",
        action="store_true",
        default=False,
        help="run the benchmarks at their default (larger) problem sizes",
    )


@pytest.fixture(scope="session")
def sources(request):
    if request.config.getoption("--full-sizes"):
        return benchmark_sources()
    return benchmark_sources(SMALL_SIZES)
