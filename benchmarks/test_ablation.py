"""Ablation study: toggle each rgn optimisation individually.

Not a figure in the paper, but DESIGN.md calls out the design choice of
splitting the region optimisations into separate passes; this bench measures
the contribution of each one on the benchmark suite.
"""

import pytest

from repro.backend import MlirCompiler, PipelineOptions
from repro.eval.benchmarks import BENCHMARK_NAMES
from repro.interp.cfg_interp import CfgInterpreter

ABLATIONS = {
    "full": {},
    "no-region-gvn": {"enable_region_gvn": False},
    "no-case-elimination": {"enable_case_elimination": False},
    "no-common-branch": {"enable_common_branch_elimination": False},
    "no-dead-region": {"enable_dead_region_elimination": False},
    "no-cse": {"enable_cse": False},
}


def _options(overrides):
    options = PipelineOptions(verify_each=False)
    for key, value in overrides.items():
        setattr(options, key, value)
    return options


@pytest.mark.parametrize("ablation", sorted(ABLATIONS))
@pytest.mark.parametrize("name", BENCHMARK_NAMES[:4])
def test_ablation_compile_and_run(benchmark, sources, name, ablation):
    source = sources[name]
    options = _options(ABLATIONS[ablation])

    def compile_and_run():
        artifacts = MlirCompiler(options).compile(source)
        return CfgInterpreter(artifacts.cfg_module).run_main(check_heap=False)

    result = benchmark(compile_and_run)
    assert result.value is not None


def test_ablations_preserve_semantics(sources):
    source = sources["rbmap_checkpoint"]
    values = set()
    for overrides in ABLATIONS.values():
        artifacts = MlirCompiler(_options(overrides)).compile(source)
        values.add(CfgInterpreter(artifacts.cfg_module).run_main().value)
    assert len(values) == 1
