"""Execution-engine guard: the bytecode VM vs the tree-walking oracles.

Asserts the acceptance criteria of the execution-engine work:

* differential — on the benchmark suite both engines produce identical
  results, execution metrics and heap statistics (the figure suite is
  diffed, so "identical" means byte-identical figures),
* efficiency — on the largest benchmark (by executed cost) the VM cuts
  execution wall time at least 2x versus the tree-walker,
* scale — the new ``large`` problem-size tier actually runs under the VM
  and is roughly an order of magnitude more work than the default tier.
"""

import time

import pytest

from repro.backend.pipeline import CompilationSession, MlirCompiler
from repro.eval.benchmarks import (
    DEFAULT_SIZES,
    LARGE_SIZES,
    SIZE_TIERS,
    benchmark_sources,
)
from repro.eval.harness import measurement_options
from repro.interp.bytecode import VirtualMachine, compile_cfg_module
from repro.interp.cfg_interp import CfgInterpreter


@pytest.fixture(scope="module")
def compiled_suite(sources):
    """Every benchmark compiled once (default pipeline, reduced sizes)."""
    session = CompilationSession()
    compiler = MlirCompiler(measurement_options("default"), session=session)
    return {
        name: compiler.compile(source).cfg_module
        for name, source in sources.items()
    }


class TestEngineDifferential:
    def test_identical_results_metrics_and_heap_stats(self, compiled_suite):
        for name, module in compiled_suite.items():
            tree = CfgInterpreter(module).run_main()
            vm = VirtualMachine(compile_cfg_module(module)).run_main()
            assert vm.value == tree.value, name
            assert vm.metrics.counts == tree.metrics.counts, name
            assert vm.heap_stats == tree.heap_stats, name


class TestExecutionSpeed:
    def test_vm_beats_tree_2x_on_largest_benchmark(self):
        """≥2x wall-time cut on the suite's largest benchmark (by cost).

        Uses the full default sizes (not the reduced benchmark sizes): the
        guard protects the figure-suite execution phase, which runs at
        default sizes.  Best-of-two timings keep a loaded CI runner from
        flaking the ratio; the observed speedup is 3.5-5x.
        """
        session = CompilationSession()
        compiler = MlirCompiler(measurement_options("default"), session=session)
        modules = {
            name: compiler.compile(source).cfg_module
            for name, source in benchmark_sources(DEFAULT_SIZES).items()
        }
        costs = {
            name: VirtualMachine(compile_cfg_module(module))
            .run_main()
            .metrics.total_cost()
            for name, module in modules.items()
        }
        largest = max(costs, key=costs.get)
        module = modules[largest]
        bytecode = compile_cfg_module(module)
        tree_seconds = min(
            CfgInterpreter(module).run_main().metrics.wall_time_seconds
            for _ in range(2)
        )
        vm_seconds = min(
            VirtualMachine(bytecode).run_main().metrics.wall_time_seconds
            for _ in range(2)
        )
        assert vm_seconds > 0
        ratio = tree_seconds / vm_seconds
        assert ratio >= 2.0, (
            f"{largest}: tree {tree_seconds * 1e3:.1f}ms vs "
            f"vm {vm_seconds * 1e3:.1f}ms — speedup {ratio:.2f}x < 2x"
        )

    def test_bytecode_compilation_is_cheap(self):
        """Translating to bytecode must stay well under one execution."""
        source = benchmark_sources(
            {"rbmap_checkpoint": DEFAULT_SIZES["rbmap_checkpoint"]}
        )["rbmap_checkpoint"]
        module = MlirCompiler(measurement_options("default")).compile(source).cfg_module
        start = time.perf_counter()
        bytecode = compile_cfg_module(module)
        compile_seconds = time.perf_counter() - start
        run_seconds = (
            VirtualMachine(bytecode).run_main().metrics.wall_time_seconds
        )
        assert compile_seconds < run_seconds, (
            f"bytecode compile {compile_seconds * 1e3:.1f}ms exceeds "
            f"execution {run_seconds * 1e3:.1f}ms"
        )


class TestLargeSizeTier:
    def test_tier_registry(self):
        assert SIZE_TIERS["default"] is DEFAULT_SIZES
        assert SIZE_TIERS["large"] is LARGE_SIZES
        assert set(LARGE_SIZES) == set(DEFAULT_SIZES)

    def test_large_tier_runs_under_the_vm(self):
        # One representative large benchmark end-to-end, and its cost must
        # dwarf the default tier's (the tier exists to scale the workload).
        name = "rbmap_checkpoint"
        session = CompilationSession()
        compiler = MlirCompiler(measurement_options("default"), session=session)

        def cost(sizes):
            source = benchmark_sources({name: sizes[name]})[name]
            module = compiler.compile(source).cfg_module
            result = VirtualMachine(session.bytecode_for(module)).run_main()
            return result.metrics.total_cost()

        assert cost(LARGE_SIZES) >= 5 * cost(DEFAULT_SIZES)
