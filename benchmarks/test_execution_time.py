"""Execution-engine guard: the bytecode VM vs the tree-walking oracles.

Asserts the acceptance criteria of the execution-engine work:

* differential — on the benchmark suite both engines produce identical
  results, execution metrics and heap statistics (the figure suite is
  diffed, so "identical" means byte-identical figures),
* efficiency — on the largest benchmark (by executed cost) the VM cuts
  execution wall time at least 2x versus the tree-walker, and (VM 2.0)
  the fused direct-threaded configuration cuts at least 2x again versus
  the engine this repo shipped before the fusion work (tuple-switch
  dispatch on unfused bytecode, kept in-tree as the oracle
  configuration),
* scale — the ``large`` tier is roughly an order of magnitude more work
  than the default tier, and the ``xlarge`` tier (another ~10x, funded
  by VM 2.0) runs under the VM with unchanged observables.
"""

import time

import pytest

from repro.backend.pipeline import CompilationSession, MlirCompiler
from repro.eval.benchmarks import (
    DEFAULT_SIZES,
    LARGE_SIZES,
    SIZE_TIERS,
    XLARGE_SIZES,
    benchmark_sources,
)
from repro.eval.harness import measurement_options
from repro.interp.bytecode import VirtualMachine, compile_cfg_module
from repro.interp.cfg_interp import CfgInterpreter


@pytest.fixture(scope="module")
def compiled_suite(sources):
    """Every benchmark compiled once (default pipeline, reduced sizes)."""
    session = CompilationSession()
    compiler = MlirCompiler(measurement_options("default"), session=session)
    return {
        name: compiler.compile(source).cfg_module
        for name, source in sources.items()
    }


class TestEngineDifferential:
    def test_identical_results_metrics_and_heap_stats(self, compiled_suite):
        for name, module in compiled_suite.items():
            tree = CfgInterpreter(module).run_main()
            vm = VirtualMachine(compile_cfg_module(module)).run_main()
            assert vm.value == tree.value, name
            assert vm.metrics.counts == tree.metrics.counts, name
            assert vm.heap_stats == tree.heap_stats, name


class TestExecutionSpeed:
    def test_vm_beats_tree_2x_on_largest_benchmark(self):
        """≥2x wall-time cut on the suite's largest benchmark (by cost).

        Uses the full default sizes (not the reduced benchmark sizes): the
        guard protects the figure-suite execution phase, which runs at
        default sizes.  Best-of-two timings keep a loaded CI runner from
        flaking the ratio; the observed speedup is 3.5-5x.
        """
        session = CompilationSession()
        compiler = MlirCompiler(measurement_options("default"), session=session)
        modules = {
            name: compiler.compile(source).cfg_module
            for name, source in benchmark_sources(DEFAULT_SIZES).items()
        }
        costs = {
            name: VirtualMachine(compile_cfg_module(module))
            .run_main()
            .metrics.total_cost()
            for name, module in modules.items()
        }
        largest = max(costs, key=costs.get)
        module = modules[largest]
        bytecode = compile_cfg_module(module)
        tree_seconds = min(
            CfgInterpreter(module).run_main().metrics.wall_time_seconds
            for _ in range(2)
        )
        vm_seconds = min(
            VirtualMachine(bytecode).run_main().metrics.wall_time_seconds
            for _ in range(2)
        )
        assert vm_seconds > 0
        ratio = tree_seconds / vm_seconds
        assert ratio >= 2.0, (
            f"{largest}: tree {tree_seconds * 1e3:.1f}ms vs "
            f"vm {vm_seconds * 1e3:.1f}ms — speedup {ratio:.2f}x < 2x"
        )

    def test_bytecode_compilation_is_cheap(self):
        """Translating to bytecode must stay well under one execution."""
        source = benchmark_sources(
            {"rbmap_checkpoint": DEFAULT_SIZES["rbmap_checkpoint"]}
        )["rbmap_checkpoint"]
        module = MlirCompiler(measurement_options("default")).compile(source).cfg_module
        start = time.perf_counter()
        bytecode = compile_cfg_module(module)
        compile_seconds = time.perf_counter() - start
        run_seconds = (
            VirtualMachine(bytecode).run_main().metrics.wall_time_seconds
        )
        assert compile_seconds < run_seconds, (
            f"bytecode compile {compile_seconds * 1e3:.1f}ms exceeds "
            f"execution {run_seconds * 1e3:.1f}ms"
        )


class TestVm2Speed:
    """VM 2.0: superinstruction fusion + direct-threaded dispatch."""

    def test_threaded_fused_beats_previous_vm_2x_on_largest_benchmark(self):
        """≥2x wall-time cut versus the previous VM configuration.

        The baseline is switch dispatch on unfused bytecode — exactly the
        engine this repo ran before the fusion/threading work, kept
        in-tree as the oracle configuration (its explicit call stack even
        makes it slightly *faster* than that engine's recursive loop, so
        the bar is conservative).  "Largest" means the most executed
        instructions at the ``large`` tier: dispatch work is what the
        optimisation targets.  Interleaved best-of-three timings absorb
        CI-runner noise; the observed ratio is ~2.4x.
        """
        session = CompilationSession()
        compiler = MlirCompiler(measurement_options("default"), session=session)
        dispatches = {}
        modules = {}
        for name, source in benchmark_sources(LARGE_SIZES).items():
            module = compiler.compile(source).cfg_module
            modules[name] = module
            vm = VirtualMachine(
                session.bytecode_for(
                    module, dispatch="switch", superinstructions=False
                ),
                dispatch="switch",
            )
            vm.run_main()
            dispatches[name] = sum(vm.opcode_counts)
        largest = max(dispatches, key=dispatches.get)
        module = modules[largest]
        fused = session.bytecode_for(module)
        unfused = session.bytecode_for(
            module, dispatch="switch", superinstructions=False
        )

        def threaded_seconds():
            return VirtualMachine(fused).run_main().metrics.wall_time_seconds

        def switch_seconds():
            return (
                VirtualMachine(unfused, dispatch="switch")
                .run_main()
                .metrics.wall_time_seconds
            )

        threaded_seconds()  # warm the closure cache and the CPU
        best_threaded = min(threaded_seconds() for _ in range(3))
        best_switch = min(switch_seconds() for _ in range(3))
        assert best_threaded > 0
        ratio = best_switch / best_threaded
        assert ratio >= 2.0, (
            f"{largest}: switch-unfused {best_switch * 1e3:.1f}ms vs "
            f"threaded-fused {best_threaded * 1e3:.1f}ms — "
            f"speedup {ratio:.2f}x < 2x"
        )

    def test_fusion_shrinks_the_dynamic_instruction_stream(self):
        """Superinstructions must collapse a meaningful share of executed
        dispatches on the fusion-friendly workloads (~30% observed)."""
        name = "rbmap_checkpoint"
        session = CompilationSession()
        compiler = MlirCompiler(measurement_options("default"), session=session)
        source = benchmark_sources({name: DEFAULT_SIZES[name]})[name]
        module = compiler.compile(source).cfg_module

        def executed(**kwargs):
            vm = VirtualMachine(
                session.bytecode_for(module, dispatch="switch", **kwargs),
                dispatch="switch",
            )
            vm.run_main()
            return sum(vm.opcode_counts)

        fused = executed()
        unfused = executed(superinstructions=False)
        assert fused <= 0.8 * unfused, (fused, unfused)


class TestLargeSizeTier:
    def test_tier_registry(self):
        assert SIZE_TIERS["default"] is DEFAULT_SIZES
        assert SIZE_TIERS["large"] is LARGE_SIZES
        assert SIZE_TIERS["xlarge"] is XLARGE_SIZES
        assert set(LARGE_SIZES) == set(DEFAULT_SIZES)
        assert set(XLARGE_SIZES) == set(DEFAULT_SIZES)

    def test_large_tier_runs_under_the_vm(self):
        # One representative large benchmark end-to-end, and its cost must
        # dwarf the default tier's (the tier exists to scale the workload).
        name = "rbmap_checkpoint"
        session = CompilationSession()
        compiler = MlirCompiler(measurement_options("default"), session=session)

        def cost(sizes):
            source = benchmark_sources({name: sizes[name]})[name]
            module = compiler.compile(source).cfg_module
            result = VirtualMachine(session.bytecode_for(module)).run_main()
            return result.metrics.total_cost()

        assert cost(LARGE_SIZES) >= 5 * cost(DEFAULT_SIZES)


class TestXlargeSizeTier:
    def test_xlarge_tier_scales_past_large(self):
        name = "rbmap_checkpoint"
        session = CompilationSession()
        compiler = MlirCompiler(measurement_options("default"), session=session)

        def cost(sizes):
            source = benchmark_sources({name: sizes[name]})[name]
            module = compiler.compile(source).cfg_module
            result = VirtualMachine(session.bytecode_for(module)).run_main()
            return result.metrics.total_cost()

        assert cost(XLARGE_SIZES) >= 5 * cost(LARGE_SIZES)

    def test_xlarge_identity_across_engines(self):
        """One xlarge benchmark end-to-end on the tree oracle and both VM
        configurations: unchanged values, metrics and heap statistics.
        Uses the cheapest xlarge benchmark so the tree-walker stays
        affordable."""
        name = "filter"
        session = CompilationSession()
        compiler = MlirCompiler(measurement_options("default"), session=session)
        source = benchmark_sources({name: XLARGE_SIZES[name]})[name]
        module = compiler.compile(source).cfg_module
        tree = CfgInterpreter(module).run_main()
        threaded = VirtualMachine(session.bytecode_for(module)).run_main()
        switch = VirtualMachine(
            session.bytecode_for(
                module, dispatch="switch", superinstructions=False
            ),
            dispatch="switch",
        ).run_main()
        for vm_result in (threaded, switch):
            assert vm_result.value == tree.value
            assert vm_result.metrics.counts == tree.metrics.counts
            assert vm_result.heap_stats == tree.heap_stats
