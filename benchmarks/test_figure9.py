"""Figure 9: per-benchmark speedup of the lp+rgn backend over the baseline.

Each pytest-benchmark case times one (benchmark, pipeline) pair end to end
(compile + execute); the cost-model speedups — the series the paper plots —
are printed by ``python -m repro.eval.figures --figure 9`` and asserted here
to stay in the performance-parity band the paper reports (geomean 1.09x).
"""

import pytest

from repro.backend import run_baseline, run_mlir, run_reference
from repro.eval.benchmarks import BENCHMARK_NAMES
from repro.eval.harness import geometric_mean


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_baseline_pipeline(benchmark, sources, name):
    source = sources[name]
    expected = run_reference(source)
    result = benchmark(lambda: run_baseline(source, check_heap=False))
    assert result.value == expected


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_lp_rgn_pipeline(benchmark, sources, name):
    source = sources[name]
    expected = run_reference(source)
    result = benchmark(lambda: run_mlir(source, check_heap=False))
    assert result.value == expected


def test_figure9_speedups_within_parity_band(sources):
    """The cost-model speedup series of Figure 9: parity-ish per benchmark."""
    speedups = {}
    for name in BENCHMARK_NAMES:
        source = sources[name]
        baseline = run_baseline(source)
        mlir = run_mlir(source)
        assert baseline.value == mlir.value
        speedups[name] = baseline.metrics.total_cost() / mlir.metrics.total_cost()
    geomean = geometric_mean(list(speedups.values()))
    # Paper: per-benchmark 0.93x-1.39x, geomean 1.09x.  Our cost-model
    # reproduction must stay in the same parity band.
    for name, speedup in speedups.items():
        assert 0.8 <= speedup <= 1.5, (name, speedup)
    assert 0.9 <= geomean <= 1.2, geomean
