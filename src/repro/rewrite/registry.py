"""Pass registry and textual pipeline specifications.

Every pass self-registers under a stable name (``@register_pass`` on the
pass class), and a pipeline can then be described as *text* instead of a
hand-wired call sequence — the mlir-opt / xdsl-opt architecture::

    cse,region-gvn,canonicalize{ablate=case-elim},dce

Grammar (whitespace is insignificant outside names and values)::

    pipeline ::= pass ("," pass)*
    pass     ::= name [ "{" option ("," option)* "}" ]
    option   ::= key [ "=" value ]

An option without ``=value`` is a flag and parses as ``true``.  Options
are validated against the pass's declared :class:`PassOption` list before
the pass is constructed, so unknown passes, unknown options, duplicate
non-repeatable options and out-of-choice values all fail with a
:class:`PipelineSpecError` naming the offending spec fragment.

:func:`build_pipeline` turns a spec into a ready
:class:`~repro.rewrite.pass_manager.PassManager`;
:func:`pipeline_fingerprint` hashes the *canonical* form of a spec, which
is what keys version-sensitive caches (the session's incremental
rgn-opt cache, and eventually the on-disk artifact cache).
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .pass_manager import Pass, PassManager


class PipelineSpecError(ValueError):
    """Raised when a textual pipeline spec cannot be parsed or resolved."""


@dataclass(frozen=True)
class PassOption:
    """One option a registered pass accepts in pipeline specs."""

    name: str
    help: str = ""
    #: May the option appear more than once (values accumulate)?
    repeatable: bool = False
    #: Closed set of accepted values (None accepts any value).
    choices: Optional[Tuple[str, ...]] = None
    #: Value documented as the default when the option is omitted.
    default: str = ""


@dataclass(frozen=True)
class RegisteredPass:
    """Registry row: a stable name bound to a pass class."""

    name: str
    pass_class: type
    options: Tuple[PassOption, ...]
    description: str

    def option(self, name: str) -> Optional[PassOption]:
        for opt in self.options:
            if opt.name == name:
                return opt
        return None


#: name -> RegisteredPass.  Populated by :func:`register_pass` decorators at
#: import time; :func:`ensure_passes_loaded` imports every pass module.
_REGISTRY: Dict[str, RegisteredPass] = {}
_PASSES_LOADED = False

_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9+_.\-]*$")


def register_pass(cls: type) -> type:
    """Class decorator: register ``cls`` under its ``name`` attribute.

    The class declares its spec surface through two optional attributes:

    * ``SPEC_OPTIONS`` — a tuple of :class:`PassOption`,
    * ``from_spec_options(options)`` — a classmethod building an instance
      from the validated ``{key: [values]}`` mapping (the base
      :class:`~repro.rewrite.pass_manager.Pass` implementation takes no
      options and calls the zero-argument constructor).
    """
    name = getattr(cls, "name", None)
    if not name or not _NAME_RE.match(name):
        raise ValueError(f"pass class {cls.__name__} has no registrable name")
    if name in _REGISTRY and _REGISTRY[name].pass_class is not cls:
        raise ValueError(
            f"pass name {name!r} already registered by "
            f"{_REGISTRY[name].pass_class.__name__}"
        )
    doc = (cls.__doc__ or "").strip().splitlines()
    _REGISTRY[name] = RegisteredPass(
        name=name,
        pass_class=cls,
        options=tuple(getattr(cls, "SPEC_OPTIONS", ())),
        description=doc[0] if doc else "",
    )
    return cls


def ensure_passes_loaded() -> None:
    """Import every module that defines registered passes (idempotent)."""
    global _PASSES_LOADED
    if _PASSES_LOADED:
        return
    _PASSES_LOADED = True
    from .. import transforms  # noqa: F401 - imports register the passes
    from ..rc_opt import lp_fusion  # noqa: F401


def registered_passes() -> Dict[str, RegisteredPass]:
    """All registered passes, keyed by stable name, sorted by name."""
    ensure_passes_loaded()
    return dict(sorted(_REGISTRY.items()))


def lookup_pass(name: str) -> Optional[RegisteredPass]:
    ensure_passes_loaded()
    return _REGISTRY.get(name)


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------


@dataclass
class PassInvocation:
    """One parsed ``name{options}`` element of a pipeline spec."""

    name: str
    #: key -> values, in spec order.  Flags carry the single value "true".
    options: Dict[str, List[str]] = field(default_factory=dict)

    def spec(self) -> str:
        """Canonical textual form (sorted keys, values in given order)."""
        if not self.options:
            return self.name
        parts = []
        for key in sorted(self.options):
            for value in self.options[key]:
                parts.append(f"{key}={value}")
        return self.name + "{" + ",".join(parts) + "}"


def parse_pipeline_spec(spec: str) -> List[PassInvocation]:
    """Parse a textual pipeline spec into pass invocations.

    Purely syntactic: names are not resolved against the registry here
    (:func:`build_pipeline` does that), so the parser is usable for error
    reporting and canonicalisation alone.
    """
    invocations: List[PassInvocation] = []
    pos = 0
    text = spec.strip()
    if not text:
        raise PipelineSpecError("empty pipeline spec")
    while pos < len(text):
        match = re.compile(r"\s*([A-Za-z][A-Za-z0-9+_.\-]*)\s*").match(text, pos)
        if match is None:
            raise PipelineSpecError(
                f"expected a pass name at offset {pos} in {text!r}"
            )
        invocation = PassInvocation(match.group(1))
        pos = match.end()
        if pos < len(text) and text[pos] == "{":
            closing = text.find("}", pos)
            if closing < 0:
                raise PipelineSpecError(
                    f"unterminated '{{' after pass {invocation.name!r}"
                )
            body = text[pos + 1 : closing]
            pos = closing + 1
            for raw in body.split(","):
                raw = raw.strip()
                if not raw:
                    if body.strip():
                        raise PipelineSpecError(
                            f"empty option in {invocation.name!r} options "
                            f"{{{body}}}"
                        )
                    continue
                key, eq, value = raw.partition("=")
                key = key.strip()
                value = value.strip() if eq else "true"
                if not key or (eq and not value):
                    raise PipelineSpecError(
                        f"malformed option {raw!r} for pass {invocation.name!r}"
                    )
                invocation.options.setdefault(key, []).append(value)
        invocations.append(invocation)
        while pos < len(text) and text[pos].isspace():
            pos += 1
        if pos < len(text):
            if text[pos] != ",":
                raise PipelineSpecError(
                    f"expected ',' between passes at offset {pos} in {text!r}"
                )
            pos += 1
            if not text[pos:].strip():
                raise PipelineSpecError(f"trailing ',' in pipeline spec {text!r}")
    return invocations


def _validate_options(
    registered: RegisteredPass, invocation: PassInvocation
) -> None:
    for key, values in invocation.options.items():
        option = registered.option(key)
        if option is None:
            known = ", ".join(o.name for o in registered.options) or "none"
            raise PipelineSpecError(
                f"pass {registered.name!r} accepts no option {key!r} "
                f"(known options: {known})"
            )
        if len(values) > 1 and not option.repeatable:
            raise PipelineSpecError(
                f"option {key!r} of pass {registered.name!r} given "
                f"{len(values)} times but is not repeatable"
            )
        if option.choices is not None:
            for value in values:
                if value not in option.choices:
                    raise PipelineSpecError(
                        f"option {key}={value!r} of pass {registered.name!r} "
                        f"not in {option.choices}"
                    )


def resolve_pipeline(spec: str) -> List[Tuple[RegisteredPass, PassInvocation]]:
    """Parse ``spec`` and resolve every element against the registry."""
    ensure_passes_loaded()
    resolved = []
    for invocation in parse_pipeline_spec(spec):
        registered = _REGISTRY.get(invocation.name)
        if registered is None:
            known = ", ".join(sorted(_REGISTRY))
            raise PipelineSpecError(
                f"unknown pass {invocation.name!r} (registered passes: {known})"
            )
        _validate_options(registered, invocation)
        resolved.append((registered, invocation))
    return resolved


def build_passes(spec: str) -> List[Pass]:
    """Construct the pass instances a spec describes."""
    passes = []
    for registered, invocation in resolve_pipeline(spec):
        try:
            instance = registered.pass_class.from_spec_options(
                invocation.options
            )
        except PipelineSpecError:
            raise
        except ValueError as error:
            raise PipelineSpecError(
                f"pass {registered.name!r}: {error}"
            ) from error
        # Remember the canonical one-pass spec so crash bundles can record
        # a replayable remaining pipeline (options included).
        instance.spec = invocation.spec()
        passes.append(instance)
    return passes


def build_pipeline(
    spec: str,
    *,
    verify_each: bool = True,
    verbose: bool = False,
    instrumentations: Optional[Sequence] = None,
    crash_handler=None,
) -> PassManager:
    """Build a :class:`PassManager` from a textual pipeline spec."""
    return PassManager(
        build_passes(spec),
        verify_each=verify_each,
        verbose=verbose,
        instrumentations=instrumentations,
        crash_handler=crash_handler,
    )


def canonical_pipeline_spec(spec: str) -> str:
    """The canonical text of ``spec``: resolved names, sorted option keys."""
    return ",".join(
        invocation.spec() for _, invocation in resolve_pipeline(spec)
    )


#: Version salt for :func:`pipeline_fingerprint`.  Bump when a pass changes
#: behaviour without changing its spec surface, so persisted caches keyed by
#: the fingerprint (the planned on-disk artifact cache) invalidate.
PIPELINE_HASH_VERSION = "repro/pipeline/v1"


def pipeline_fingerprint(spec: str) -> str:
    """Stable hash of a pipeline spec's canonical form.

    Two specs that build the same pipeline (same passes, same options —
    regardless of option order or whitespace) share a fingerprint; any
    difference in pass lineup or options changes it.
    """
    canonical = canonical_pipeline_spec(spec)
    digest = hashlib.sha256(
        (PIPELINE_HASH_VERSION + ":" + canonical).encode("utf-8")
    )
    return digest.hexdigest()[:16]


def describe_registered_passes() -> str:
    """Human-readable table of every registered pass (``--list-passes``)."""
    lines = ["Registered passes", "================="]
    for name, registered in registered_passes().items():
        lines.append(f"{name:28s} {registered.description}")
        for option in registered.options:
            detail = option.help
            if option.choices:
                detail += f" (one of: {', '.join(option.choices)})"
            if option.default:
                detail += f" [default: {option.default}]"
            lines.append(f"  {{{option.name}=...}}  {detail.strip()}")
    return "\n".join(lines)
