"""Pattern rewriting and pass management (the analogue of MLIR's
``PatternRewriter`` / greedy rewrite driver / ``PassManager``)."""

from .driver import (
    ENGINES,
    GreedyRewriteResult,
    NonConvergenceError,
    PatternRewritePass,
    PatternSet,
    Worklist,
    apply_patterns_greedily,
)
from .pass_manager import FunctionPass, ModulePass, Pass, PassManager
from .pattern import PatternRewriter, RewritePattern
from .registry import (
    PassInvocation,
    PassOption,
    PipelineSpecError,
    RegisteredPass,
    build_pipeline,
    canonical_pipeline_spec,
    parse_pipeline_spec,
    pipeline_fingerprint,
    register_pass,
    registered_passes,
)

__all__ = [
    "ENGINES",
    "GreedyRewriteResult",
    "NonConvergenceError",
    "PatternRewritePass",
    "PatternSet",
    "Worklist",
    "apply_patterns_greedily",
    "FunctionPass",
    "ModulePass",
    "Pass",
    "PassManager",
    "PatternRewriter",
    "RewritePattern",
    "PassInvocation",
    "PassOption",
    "PipelineSpecError",
    "RegisteredPass",
    "build_pipeline",
    "canonical_pipeline_spec",
    "parse_pipeline_spec",
    "pipeline_fingerprint",
    "register_pass",
    "registered_passes",
]
