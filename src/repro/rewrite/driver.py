"""Greedy pattern rewrite driver.

Repeatedly applies a set of :class:`RewritePattern`\\ s to every operation
nested under a root until no pattern applies any more (a fixpoint), mirroring
MLIR's ``applyPatternsAndFoldGreedily``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from ..ir.core import Operation
from .pattern import PatternRewriter, RewritePattern


@dataclass
class GreedyRewriteResult:
    """Statistics of one driver invocation."""

    converged: bool = True
    iterations: int = 0
    applications: int = 0
    #: pattern class name -> number of successful applications
    per_pattern: Dict[str, int] = field(default_factory=dict)

    def record(self, pattern: RewritePattern) -> None:
        name = type(pattern).__name__
        self.per_pattern[name] = self.per_pattern.get(name, 0) + 1
        self.applications += 1


def _is_attached(op: Operation, root: Operation) -> bool:
    """True if ``op`` is still nested under ``root``."""
    current = op
    while current is not None:
        if current is root:
            return True
        current = current.parent_op()
    return False


def apply_patterns_greedily(
    root: Operation,
    patterns: Sequence[RewritePattern],
    *,
    max_iterations: int = 64,
) -> GreedyRewriteResult:
    """Apply ``patterns`` to every op under ``root`` until fixpoint.

    The worklist seeds with a post-order walk so that nested operations are
    simplified before their parents; every application requeues the touched
    operations.
    """
    result = GreedyRewriteResult()
    sorted_patterns = sorted(patterns, key=lambda p: -p.benefit)
    by_name: Dict[str, List[RewritePattern]] = {}
    generic: List[RewritePattern] = []
    for p in sorted_patterns:
        if p.op_name is None:
            generic.append(p)
        else:
            by_name.setdefault(p.op_name, []).append(p)

    def candidates_for(op: Operation) -> Iterable[RewritePattern]:
        yield from by_name.get(op.name, ())
        yield from generic

    for iteration in range(max_iterations):
        result.iterations = iteration + 1
        worklist: List[Operation] = list(root.walk())
        changed_this_iteration = False
        index = 0
        while index < len(worklist):
            op = worklist[index]
            index += 1
            if op is root or not _is_attached(op, root):
                continue
            for pattern in candidates_for(op):
                rewriter = PatternRewriter(op)
                try:
                    applied = pattern.match_and_rewrite(op, rewriter)
                except Exception:
                    raise
                if applied:
                    result.record(pattern)
                    changed_this_iteration = True
                    for touched in rewriter.touched:
                        if _is_attached(touched, root):
                            worklist.append(touched)
                    break
        if not changed_this_iteration:
            result.converged = True
            return result
    result.converged = False
    return result
