"""Greedy pattern rewrite driver.

Applies a set of :class:`RewritePattern`\\ s to every operation nested under a
root until no pattern applies any more (a fixpoint), mirroring MLIR's
``applyPatternsAndFoldGreedily``.

Two engines implement the fixpoint:

* ``worklist`` (the default) — a genuinely incremental driver in the style of
  MLIR's ``GreedyPatternRewriteDriver``: the worklist is seeded **once** with
  a post-order walk (so nested ops simplify before their parents) and is then
  driven purely off :class:`PatternRewriter` notifications — ops created or
  modified by an application, and the users of replaced values, are requeued;
  nothing else is ever rescanned.  A membership set makes every push O(1) and
  guarantees an op sits in the queue at most once, and the O(1)
  ``Operation.attached`` flag (maintained by ``ir.core``) discards stale
  queue entries without walking the ancestor chain.

* ``rescan`` — the original seed driver, kept as the differential baseline
  for the compile-time benchmarks: each fixpoint iteration re-walks the whole
  module and chases the ancestor chain per candidate, which makes it
  quadratic in module size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from ..ir.core import Operation
from ..resilience.budgets import RewriteBudgetExceeded
from ..resilience.faults import InjectedFault, fault_hit
from ..telemetry import get_metrics
from .pass_manager import FunctionPass
from .pattern import PatternRewriter, RewritePattern
from .registry import PassOption

#: The rewrite engines understood by :func:`apply_patterns_greedily`.
ENGINES = ("worklist", "rescan")

#: Pipeline-spec option shared by every pattern-driver pass.
ENGINE_OPTION = PassOption(
    "engine",
    "rewrite engine driving the greedy fixpoint",
    choices=ENGINES,
    default="worklist",
)


class NonConvergenceError(RuntimeError):
    """The driver hit its iteration/rewrite budget before reaching a fixpoint.

    Raised under ``strict=True`` (which the :class:`~repro.rewrite.
    pass_manager.PassManager` enables together with ``verify_each``) so that
    a diverging pattern set fails loudly instead of silently returning
    half-rewritten IR.
    """


@dataclass
class GreedyRewriteResult:
    """Statistics of one driver invocation."""

    converged: bool = True
    #: Fixpoint sweeps for the rescan engine; always 1 for the worklist
    #: engine, which never rescans.
    iterations: int = 0
    applications: int = 0
    #: Patterns tried, whether or not they matched (the driver's unit of
    #: work; the compile-time benchmarks track this).
    match_attempts: int = 0
    #: Operations enqueued, seeds included — the worklist engine seeds once
    #: and requeues notifications; the rescan engine re-seeds the whole
    #: module every iteration, and every seed is counted.
    worklist_pushes: int = 0
    #: Requeue requests dropped because the op was already queued.
    requeues_deduped: int = 0
    #: Candidate patterns skipped by the operand-arity prefilter before any
    #: matching work was done (they could never match the op's shape).
    prefilter_skips: int = 0
    #: pattern class name -> number of successful applications
    per_pattern: Dict[str, int] = field(default_factory=dict)

    def record(self, pattern: RewritePattern) -> None:
        name = type(pattern).__name__
        self.per_pattern[name] = self.per_pattern.get(name, 0) + 1
        self.applications += 1


class PatternSet:
    """Patterns indexed by root op name, ordered by decreasing benefit.

    Building the index once per pass (instead of once per driver call, or
    worse per op) keeps the candidate lookup a dict probe.  On top of the
    name index sits an **operand-arity prefilter**: patterns declaring
    ``num_operands`` / ``min_num_operands`` are skipped outright on ops
    whose operand count can never satisfy them — the skip costs one integer
    compare instead of a match attempt, which is what makes drain seeding
    cheap on ops only variadic patterns care about.
    """

    def __init__(self, patterns: Sequence[RewritePattern]):
        ordered = sorted(patterns, key=lambda p: -p.benefit)
        self._by_name: Dict[str, List[RewritePattern]] = {}
        self._generic: List[RewritePattern] = []
        for p in ordered:
            names = p.op_names if p.op_names is not None else (
                frozenset((p.op_name,)) if p.op_name is not None else None
            )
            if names is None:
                self._generic.append(p)
            else:
                for name in names:
                    self._by_name.setdefault(name, []).append(p)

    def candidates(
        self, op: Operation, result: Optional[GreedyRewriteResult] = None
    ) -> Iterable[RewritePattern]:
        """Patterns that might match ``op``, best benefit first.

        Arity-prefiltered candidates are counted on ``result`` (when given)
        instead of being yielded.
        """
        arity = len(op.operands)
        for bucket in (self._by_name.get(op.name, ()), self._generic):
            for pattern in bucket:
                if (
                    pattern.num_operands is not None
                    and pattern.num_operands != arity
                ) or arity < pattern.min_num_operands:
                    if result is not None:
                        result.prefilter_skips += 1
                    continue
                yield pattern


class Worklist:
    """LIFO worklist with an O(1) membership set.

    The membership set is what fixes the duplicate-requeue problem of the
    rescan driver: one application may report the same op several times
    (e.g. an op both produced an operand of and used a result of the erased
    op), but it is only ever queued once.
    """

    __slots__ = ("_stack", "_members")

    def __init__(self):
        self._stack: List[Operation] = []
        self._members: Set[Operation] = set()

    def push(self, op: Operation) -> bool:
        """Queue ``op``; returns False if it was already queued."""
        if op in self._members:
            return False
        self._members.add(op)
        self._stack.append(op)
        return True

    def pop(self) -> Operation:
        op = self._stack.pop()
        self._members.discard(op)
        return op

    def __bool__(self) -> bool:
        return bool(self._stack)

    def __len__(self) -> int:
        return len(self._stack)


def apply_patterns_greedily(
    root: Operation,
    patterns: Union[PatternSet, Sequence[RewritePattern]],
    *,
    max_iterations: int = 64,
    max_rewrites: Optional[int] = None,
    engine: str = "worklist",
    strict: bool = False,
    max_seconds: Optional[float] = None,
    fault_site: Optional[str] = None,
) -> GreedyRewriteResult:
    """Apply ``patterns`` to every op under ``root`` until fixpoint.

    ``engine`` selects the fixpoint strategy (see the module docstring).
    ``max_rewrites`` bounds total applications for the worklist engine
    (defaulting to ``max_iterations`` times the seed size); ``max_iterations``
    bounds full sweeps for the rescan engine.  Under ``strict=True`` hitting
    either budget raises :class:`NonConvergenceError` instead of returning
    with ``converged=False`` (which historically no caller checked).

    ``max_seconds`` is a wall-clock budget on the whole invocation — a
    fixpoint still in flight past the deadline raises
    :class:`~repro.resilience.budgets.RewriteBudgetExceeded`.
    ``fault_site`` names the fault-injection site hit once per successful
    pattern application (the pattern-driver passes pass their
    ``pass.<name>`` site, giving pattern-granular injection; the raised
    :class:`~repro.resilience.faults.InjectedFault` blames the applied
    pattern).
    """
    pattern_set = (
        patterns if isinstance(patterns, PatternSet) else PatternSet(patterns)
    )
    deadline = time.monotonic() + max_seconds if max_seconds is not None else None
    if engine == "worklist":
        result = _apply_worklist(
            root, pattern_set, max_iterations, max_rewrites, deadline, fault_site
        )
    elif engine == "rescan":
        result = _apply_rescan(
            root, pattern_set, max_iterations, max_rewrites, deadline, fault_site
        )
    else:
        raise ValueError(f"unknown rewrite engine {engine!r} (expected {ENGINES})")
    if strict and not result.converged:
        raise NonConvergenceError(
            f"pattern rewriting did not converge on {root.name} after "
            f"{result.applications} applications "
            f"({result.iterations} iterations, engine={engine!r})"
        )
    return result


def _check_rewrite_deadline(
    deadline: Optional[float], result: GreedyRewriteResult, engine: str
) -> None:
    """Trip the wall-clock rewrite budget (cheap no-op without a deadline)."""
    if deadline is None or time.monotonic() <= deadline:
        return
    registry = get_metrics()
    if registry.enabled:
        registry.bump("resilience.budget.trips")
    raise RewriteBudgetExceeded(
        f"rewrite budget exceeded after {result.applications} applications "
        f"({result.match_attempts} match attempts, engine={engine!r})"
    )


def _blame_pattern(error: BaseException, pattern: RewritePattern) -> None:
    """Tag ``error`` with the pattern it escaped from (for bisection)."""
    if getattr(error, "failing_pattern", None) is None:
        try:
            error.failing_pattern = type(pattern).__name__
        except Exception:
            pass  # exceptions with __slots__ cannot carry the tag


# -- the worklist engine ----------------------------------------------------------


def _apply_worklist(
    root: Operation,
    pattern_set: PatternSet,
    max_iterations: int,
    max_rewrites: Optional[int],
    deadline: Optional[float] = None,
    fault_site: Optional[str] = None,
) -> GreedyRewriteResult:
    fault_hit("driver.worklist")
    result = GreedyRewriteResult(iterations=1)
    worklist = Worklist()
    seed = [op for op in root.walk_postorder() if op is not root]
    # Push in reverse so that pops come in post-order: nested operations are
    # simplified before the parents that contain them.
    for op in reversed(seed):
        worklist.push(op)
    result.worklist_pushes = len(seed)
    if max_rewrites is None:
        max_rewrites = max_iterations * max(len(seed), 4)

    while worklist:
        op = worklist.pop()
        if not op.attached:
            continue  # erased (or detached) since it was queued
        for pattern in pattern_set.candidates(op, result):
            result.match_attempts += 1
            if not (result.match_attempts & 255):
                _check_rewrite_deadline(deadline, result, "worklist")
            rewriter = PatternRewriter(op)
            try:
                matched = pattern.match_and_rewrite(op, rewriter)
            except Exception as error:
                _blame_pattern(error, pattern)
                raise
            if not matched:
                continue
            result.record(pattern)
            if fault_site is not None:
                fault_hit(fault_site, pattern=type(pattern).__name__)
            _check_rewrite_deadline(deadline, result, "worklist")
            for touched in rewriter.touched:
                if not touched.attached:
                    continue
                if worklist.push(touched):
                    result.worklist_pushes += 1
                else:
                    result.requeues_deduped += 1
            break
        if result.applications >= max_rewrites and worklist:
            result.converged = False
            return result
    result.converged = True
    return result


# -- the rescan engine (differential baseline) ------------------------------------


class _SeedPatternRewriter(PatternRewriter):
    """The seed driver's sparser notification semantics, kept verbatim.

    The seed rewriter did not requeue the users of replaced results nor the
    remaining users of an erased op's operands — its outer rescan loop
    re-walked the whole module anyway, which is exactly the redundancy the
    worklist engine removes.  The rescan baseline keeps the original hooks so
    the differential compile-time comparison measures the real seed driver.
    """

    def notify_op_inserted(self, op) -> None:
        # Seed behaviour: only the op itself, not its nested subtree — the
        # outer rescan loop found nested matches one sweep later.
        self.touched.append(op)
        self.changed = True

    def replace_op(self, op, replacements) -> None:
        if replacements is not None:
            op.replace_all_uses_with(replacements)
            if isinstance(replacements, Operation):
                self.notify_op_modified(replacements)
        self.erase_op(op)

    def erase_op(self, op) -> None:
        for result in op.results:
            if result.has_uses:
                raise ValueError(
                    f"cannot erase {op.name}: result still has uses"
                )
        for operand in op.operands:
            owner = operand.owner_op()
            if owner is not None:
                self.notify_op_modified(owner)
        op.erase()
        self.notify_op_erased(op)


def _is_attached(op: Operation, root: Operation) -> bool:
    """True if ``op`` is still nested under ``root`` (O(depth) ancestor walk,
    kept verbatim as part of the rescan baseline)."""
    current = op
    while current is not None:
        if current is root:
            return True
        current = current.parent_op()
    return False


def _apply_rescan(
    root: Operation,
    pattern_set: PatternSet,
    max_iterations: int,
    max_rewrites: Optional[int],
    deadline: Optional[float] = None,
    fault_site: Optional[str] = None,
) -> GreedyRewriteResult:
    result = GreedyRewriteResult()
    if max_rewrites is None:
        seed_size = sum(1 for _ in root.walk())
        max_rewrites = max_iterations * max(seed_size, 4)
    for iteration in range(max_iterations):
        result.iterations = iteration + 1
        worklist: List[Operation] = list(root.walk())
        # Every iteration re-queues the entire module — that redundancy is
        # the point of keeping this engine as a baseline, so count it.
        result.worklist_pushes += len(worklist) - 1  # root itself is skipped
        changed_this_iteration = False
        index = 0
        while index < len(worklist):
            op = worklist[index]
            index += 1
            if op is root or not _is_attached(op, root):
                continue
            for pattern in pattern_set.candidates(op, result):
                result.match_attempts += 1
                if not (result.match_attempts & 255):
                    _check_rewrite_deadline(deadline, result, "rescan")
                rewriter = _SeedPatternRewriter(op)
                try:
                    matched = pattern.match_and_rewrite(op, rewriter)
                except Exception as error:
                    _blame_pattern(error, pattern)
                    raise
                if matched:
                    result.record(pattern)
                    if fault_site is not None:
                        fault_hit(fault_site, pattern=type(pattern).__name__)
                    _check_rewrite_deadline(deadline, result, "rescan")
                    changed_this_iteration = True
                    # Faithful to the seed driver: duplicates are appended,
                    # so one op can be re-matched many times per iteration.
                    for touched in rewriter.touched:
                        if _is_attached(touched, root):
                            worklist.append(touched)
                            result.worklist_pushes += 1
                    break
            # Bail only while entries remain: a budget reached exactly at
            # the fixpoint still converges via the following clean sweep.
            if result.applications >= max_rewrites and index < len(worklist):
                result.converged = False
                return result
        if not changed_this_iteration:
            result.converged = True
            return result
    result.converged = False
    return result


# -- pattern-driver passes ---------------------------------------------------------


class PatternRewritePass(FunctionPass):
    """A function pass that drives a fixed pattern set to fixpoint.

    Subclasses implement :meth:`patterns`; the pass indexes them once,
    applies them per function with the configured engine, and surfaces the
    driver statistics (applications, match attempts, worklist pushes)
    through the pass-manager counters.

    Degradation ladder (see ``docs/RESILIENCE.md``): when the worklist
    engine fails to converge — including a tripped
    :class:`~repro.resilience.budgets.RewriteBudgetExceeded` wall-clock
    budget or an injected ``driver.worklist`` fault — the pass retries the
    function once with the rescan engine (counted as
    ``resilience.retry.rescan``) before letting the failure propagate to
    the pass manager's crash-bundle path.  ``pass.<name>`` faults are
    *not* retried: they model the pass itself being broken.
    """

    #: Rewrite engine used by this pass; overridable per instance.
    engine: str = "worklist"

    #: Wall-clock budget per driver invocation (None = unbounded).
    budget_seconds: Optional[float] = None

    #: Retry a failed worklist fixpoint once with the rescan engine.
    allow_rescan_retry: bool = True

    SPEC_OPTIONS = (ENGINE_OPTION,)

    @classmethod
    def from_spec_options(cls, options):
        if "engine" in options:
            return cls(engine=options["engine"][-1])
        return cls()

    def __init__(self, *, engine: Optional[str] = None):
        super().__init__()
        if engine is not None:
            if engine not in ENGINES:
                raise ValueError(
                    f"unknown rewrite engine {engine!r} (expected {ENGINES})"
                )
            self.engine = engine
        self._pattern_set: Optional[PatternSet] = None

    def patterns(self) -> Sequence[RewritePattern]:
        raise NotImplementedError

    @property
    def pattern_set(self) -> PatternSet:
        if self._pattern_set is None:
            self._pattern_set = PatternSet(self.patterns())
        return self._pattern_set

    def apply(self, func) -> GreedyRewriteResult:
        try:
            result = apply_patterns_greedily(
                func,
                self.pattern_set,
                engine=self.engine,
                strict=self.strict_convergence,
                max_seconds=self.budget_seconds,
                fault_site=f"pass.{self.name}",
            )
        except (NonConvergenceError, RewriteBudgetExceeded, InjectedFault) as error:
            # Injected pass.<name> faults model the pass being broken and
            # must reach the pass manager's crash-bundle path unretried.
            if isinstance(error, InjectedFault) and error.site != "driver.worklist":
                raise
            if self.engine != "worklist" or not self.allow_rescan_retry:
                raise
            registry = get_metrics()
            if registry.enabled:
                registry.bump("resilience.retry.rescan")
            self.statistics.bump_meter("rescan-retries")
            result = apply_patterns_greedily(
                func,
                self.pattern_set,
                engine="rescan",
                strict=self.strict_convergence,
                max_seconds=self.budget_seconds,
                fault_site=f"pass.{self.name}",
            )
        self.statistics.bump("applications", result.applications)
        self.statistics.bump_meter("match-attempts", result.match_attempts)
        self.statistics.bump_meter("worklist-pushes", result.worklist_pushes)
        if result.prefilter_skips:
            self.statistics.bump_meter("prefilter-skips", result.prefilter_skips)
        # Per-pattern application counts, as meters so the already-counted
        # "applications" rewrite total is not double-counted.
        for pattern_name, count in result.per_pattern.items():
            self.statistics.bump_meter(pattern_name, count)
        return result

    def run_on_function(self, func) -> None:
        self.apply(func)
