"""Rewrite patterns and the rewriter handle passed to them.

A :class:`RewritePattern` matches a single operation and, if it applies,
mutates the IR through the :class:`PatternRewriter` so the driver can track
what changed.  Every mutation funnels into one of the notification hooks
(:meth:`PatternRewriter.notify_op_inserted`,
:meth:`~PatternRewriter.notify_op_modified`,
:meth:`~PatternRewriter.notify_op_erased`), which is what lets the worklist
driver stay incremental: it never rescans the module, it only requeues what a
pattern reported.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ..ir.builder import Builder, InsertionPoint
from ..ir.core import Block, Operation, Value


class PatternRewriter(Builder):
    """Mutation handle given to patterns.

    All IR changes made during a pattern application should go through this
    object so that the greedy driver can requeue affected operations.  The
    insertion point is materialised lazily (computing ``index(op)`` for every
    match attempt would put an O(block size) walk on the driver's hot path).
    """

    def __init__(self, op: Operation):
        super().__init__(None)
        self.current_op = op
        #: Operations created or modified during this application; the driver
        #: requeues them (deduplicated) after the pattern returns.
        self.touched: List[Operation] = []
        #: Operations erased during this application.
        self.erased: List[Operation] = []
        self.changed = False

    # -- notification hooks -------------------------------------------------------
    # The driver consumes ``touched``/``erased`` after each application; any
    # subclass or external listener can override these to observe rewrites.

    def notify_op_inserted(self, op: Operation) -> None:
        """``op`` was created (or moved) during this application.

        The whole nested subtree is reported: a cloned op may carry regions
        full of ops that became matchable through the clone's operand
        substitution, and the worklist driver has no rescan to find them.
        """
        self.touched.extend(op.walk())
        self.changed = True

    def notify_op_modified(self, op: Operation) -> None:
        """``op`` was modified in place (operands, attributes, regions)."""
        self.touched.append(op)
        self.changed = True

    def notify_op_erased(self, op: Operation) -> None:
        """``op`` was erased; the driver drops stale queue entries lazily."""
        self.erased.append(op)
        self.changed = True

    # -- creation ---------------------------------------------------------------
    def _materialize_insertion_point(self) -> None:
        if self._ip is not None:
            return
        if self.current_op.parent is None:
            raise ValueError(
                f"cannot insert relative to {self.current_op.name}: the "
                "matched op is no longer attached — create new ops before "
                "erasing it, or set an insertion point explicitly"
            )
        self._ip = InsertionPoint.before(self.current_op)

    @property
    def insertion_point(self) -> InsertionPoint:
        self._materialize_insertion_point()
        return self._ip

    def insert(self, op: Operation) -> Operation:
        self._materialize_insertion_point()
        op = super().insert(op)
        self.notify_op_inserted(op)
        return op

    # -- replacement ------------------------------------------------------------
    def replace_op(
        self,
        op: Operation,
        replacements: Union[Operation, Value, Sequence[Value], None],
    ) -> None:
        """Replace ``op``'s results with ``replacements`` and erase it."""
        if replacements is not None:
            # The users of the old results now have new operands and may have
            # become matchable; requeue them before rewiring.
            for result in op.results:
                for user in result.users():
                    self.notify_op_modified(user)
            op.replace_all_uses_with(replacements)
            if isinstance(replacements, Operation):
                self.notify_op_modified(replacements)
        self.erase_op(op)

    def erase_op(self, op: Operation) -> None:
        """Erase ``op`` (its results must be unused by now)."""
        for result in op.results:
            if result.has_uses:
                raise ValueError(
                    f"cannot erase {op.name}: result still has uses"
                )
        # Erasing releases every use held by the whole nested subtree (region
        # bodies included), so collect the released values first.
        released = []
        seen = set()
        for sub in op.walk():
            for operand in sub.operands:
                if operand not in seen:
                    seen.add(operand)
                    released.append(operand)
        op.erase()
        self.notify_op_erased(op)
        for operand in released:
            # The producer may now be dead or otherwise optimisable once this
            # use disappears.
            owner = operand.owner_op()
            if owner is not None and not owner.erased:
                self.notify_op_modified(owner)
            # When the value just became single-use, its one remaining user
            # may newly match a use-count-gated pattern (e.g. inlining a
            # region value once it is run from a single site).  The seed
            # driver missed this notification entirely and relied on its
            # outer rescan loop to pick such matches up one full sweep
            # later.  Only the 1-use transition is interesting — notifying
            # every remaining user of a widely shared value would fan one
            # erasure out into O(uses) requeues.
            if len(operand.uses) == 1:
                user = operand.uses[0].owner
                if not user.erased:
                    self.notify_op_modified(user)

    def replace_all_uses_with(self, old: Value, new: Value) -> None:
        for use in list(old.uses):
            self.notify_op_modified(use.owner)
        old.replace_all_uses_with(new)
        self.changed = True

    def notify_changed(self, op: Optional[Operation] = None) -> None:
        """Record an in-place modification of ``op`` (or the matched op)."""
        self.notify_op_modified(op if op is not None else self.current_op)

    # -- structural helpers -------------------------------------------------------
    def inline_block_before(self, block: Block, anchor: Operation) -> None:
        """Move all operations of ``block`` (excluding nothing) before
        ``anchor``.  The caller is responsible for remapping block arguments
        beforehand."""
        for op in block:
            op.detach()
            anchor.parent.insert_before(op, anchor)
            self.notify_op_inserted(op)


class RewritePattern:
    """Base class of rewrite patterns.

    Attributes:
        op_name: if set, the driver only tries the pattern on operations with
            this name (a cheap pre-filter).
        op_names: like ``op_name`` but for patterns rooted at several
            operation names (e.g. one fold covering all binary arith ops);
            takes precedence over ``op_name``.  Patterns setting neither are
            *generic* and tried on every operation — expensive in a large
            unified pattern drain, so set a root filter whenever possible.
        num_operands: if set, the pattern can only match operations with
            exactly this many operands; the driver skips everything else
            before calling :meth:`match_and_rewrite` (skips are reported as
            ``prefilter-skips`` in the pattern statistics).
        min_num_operands: like ``num_operands`` but a lower bound — for
            patterns rooted at variadic operations (e.g. a switch carrying
            its flag plus any number of case operands).
        benefit: patterns with larger benefit are tried first.
    """

    op_name: Optional[str] = None
    op_names: Optional[frozenset] = None
    num_operands: Optional[int] = None
    min_num_operands: int = 0
    benefit: int = 1

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        """Attempt to match ``op`` and rewrite it.

        Returns True when the pattern applied (the driver then re-processes
        affected operations).
        """
        raise NotImplementedError
