"""Rewrite patterns and the rewriter handle passed to them.

A :class:`RewritePattern` matches a single operation and, if it applies,
mutates the IR through the :class:`PatternRewriter` so the driver can track
what changed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ..ir.builder import Builder, InsertionPoint
from ..ir.core import Block, Operation, Value


class PatternRewriter(Builder):
    """Mutation handle given to patterns.

    All IR changes made during a pattern application should go through this
    object so that the greedy driver can requeue affected operations.
    """

    def __init__(self, op: Operation):
        super().__init__(InsertionPoint.before(op))
        self.current_op = op
        #: Operations created or modified during this application.
        self.touched: List[Operation] = []
        #: Operations erased during this application.
        self.erased: List[Operation] = []
        self.changed = False

    # -- creation ---------------------------------------------------------------
    def insert(self, op: Operation) -> Operation:
        op = super().insert(op)
        self.touched.append(op)
        self.changed = True
        return op

    # -- replacement ------------------------------------------------------------
    def replace_op(
        self,
        op: Operation,
        replacements: Union[Operation, Value, Sequence[Value], None],
    ) -> None:
        """Replace ``op``'s results with ``replacements`` and erase it."""
        if replacements is not None:
            op.replace_all_uses_with(replacements)
            if isinstance(replacements, Operation):
                self.touched.append(replacements)
        self.erase_op(op)

    def erase_op(self, op: Operation) -> None:
        """Erase ``op`` (its results must be unused by now)."""
        for result in op.results:
            if result.has_uses:
                raise ValueError(
                    f"cannot erase {op.name}: result still has uses"
                )
        # Requeue users of the operands (they may now be optimisable).
        for operand in op.operands:
            owner = operand.owner_op()
            if owner is not None:
                self.touched.append(owner)
        op.erase()
        self.erased.append(op)
        self.changed = True

    def replace_all_uses_with(self, old: Value, new: Value) -> None:
        for use in list(old.uses):
            self.touched.append(use.owner)
        old.replace_all_uses_with(new)
        self.changed = True

    def notify_changed(self, op: Optional[Operation] = None) -> None:
        """Record an in-place modification of ``op`` (or the matched op)."""
        self.touched.append(op if op is not None else self.current_op)
        self.changed = True

    # -- structural helpers -------------------------------------------------------
    def inline_block_before(self, block: Block, anchor: Operation) -> None:
        """Move all operations of ``block`` (excluding nothing) before
        ``anchor``.  The caller is responsible for remapping block arguments
        beforehand."""
        for op in list(block.operations):
            op.detach()
            anchor.parent.insert_before(op, anchor)
            self.touched.append(op)
        self.changed = True


class RewritePattern:
    """Base class of rewrite patterns.

    Attributes:
        op_name: if set, the driver only tries the pattern on operations with
            this name (a cheap pre-filter).
        benefit: patterns with larger benefit are tried first.
    """

    op_name: Optional[str] = None
    benefit: int = 1

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        """Attempt to match ``op`` and rewrite it.

        Returns True when the pattern applied (the driver then re-processes
        affected operations).
        """
        raise NotImplementedError
