"""Passes and the pass manager.

A :class:`Pass` transforms a module in place.  :class:`PassManager` runs a
pipeline of passes, optionally verifying the IR after each one (the default,
as in MLIR's ``-verify-each``), and records per-pass wall time and rewrite
counters (MLIR's ``-mlir-pass-statistics``/``-mlir-timing`` analogue).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ir.core import Operation
from ..ir.verifier import verify


@dataclass
class PassStatistics:
    """Named counters a pass may update while running."""

    counters: Dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    def total(self) -> int:
        """Sum of all counters (the pass's total rewrite count)."""
        return sum(self.counters.values())


class Pass:
    """Base class of all passes."""

    #: Human-readable pass name used in pipeline descriptions and reports.
    name: str = "unnamed-pass"

    def __init__(self):
        self.statistics = PassStatistics()

    def run(self, module: Operation) -> None:
        raise NotImplementedError


class ModulePass(Pass):
    """A pass operating on the whole module at once."""


class FunctionPass(Pass):
    """A pass applied independently to every ``func.func`` in the module."""

    def run(self, module: Operation) -> None:
        from ..dialects.func import FuncOp

        for op in list(module.walk()):
            if isinstance(op, FuncOp) and not op.is_declaration:
                self.run_on_function(op)

    def run_on_function(self, func) -> None:
        raise NotImplementedError


class PassManager:
    """Runs a sequence of passes over a module."""

    def __init__(
        self,
        passes: Optional[Sequence[Pass]] = None,
        *,
        verify_each: bool = True,
        verbose: bool = False,
    ):
        self.passes: List[Pass] = list(passes or [])
        self.verify_each = verify_each
        #: Print a per-pass timing/statistics line after each pass runs.
        self.verbose = verbose
        #: pass name -> statistics, populated by :meth:`run`.
        self.statistics: Dict[str, PassStatistics] = {}
        #: pass name -> wall time in seconds, populated by :meth:`run`.
        self.timings: Dict[str, float] = {}

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, module: Operation) -> Operation:
        for pass_ in self.passes:
            start = time.perf_counter()
            pass_.run(module)
            elapsed = time.perf_counter() - start
            self.statistics[pass_.name] = pass_.statistics
            self.timings[pass_.name] = self.timings.get(pass_.name, 0.0) + elapsed
            if self.verbose:
                print(self._format_pass_line(pass_, elapsed))
            if self.verify_each:
                verify(module)
        return module

    @staticmethod
    def _format_pass_line(pass_: Pass, elapsed: float) -> str:
        counters = pass_.statistics.counters
        details = (
            ", ".join(f"{key}={value}" for key, value in sorted(counters.items()))
            or "no rewrites"
        )
        return f"[pass] {pass_.name:28s} {elapsed * 1e3:8.2f} ms  {details}"

    @property
    def total_time(self) -> float:
        """Total wall time spent inside passes (seconds)."""
        return sum(self.timings.values())

    def total_rewrites(self) -> int:
        """Total rewrite count across every pass that has run."""
        return sum(stats.total() for stats in self.statistics.values())

    def report(self) -> str:
        """Multi-line timing/statistics report for every pass that has run."""
        lines = ["Pass pipeline statistics", "========================"]
        for pass_ in self.passes:
            if pass_.name not in self.timings:
                continue
            elapsed = self.timings[pass_.name]
            lines.append(self._format_pass_line(pass_, elapsed))
        lines.append(
            f"total: {self.total_time * 1e3:.2f} ms, "
            f"{self.total_rewrites()} rewrites across {len(self.timings)} passes"
        )
        return "\n".join(lines)

    def describe(self) -> str:
        """Textual pipeline description, e.g. ``cse,dce,region-gvn``."""
        return ",".join(p.name for p in self.passes)
