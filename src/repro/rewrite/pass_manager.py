"""Passes and the pass manager.

A :class:`Pass` transforms a module in place.  :class:`PassManager` runs a
pipeline of passes, optionally verifying the IR after each one (the default,
as in MLIR's ``-verify-each``), and records per-pass wall time and rewrite
counters (MLIR's ``-mlir-pass-statistics``/``-mlir-timing`` analogue).

Observability (see ``docs/OBSERVABILITY.md``):

* :class:`~repro.telemetry.instrumentation.PassInstrumentation` callbacks
  bracket every pass (``run_before_pass`` / ``run_after_pass`` /
  ``run_after_pass_failed``) — a pass that raises, or whose output the
  ``verify_each`` verifier rejects, triggers the failure hook before the
  exception propagates,
* each pass runs inside a telemetry span (``pass:<name>``), so traces show
  where inside a pipeline phase the time goes,
* per-pass counter deltas and wall time publish into the active metrics
  registry under ``rewrite.<pass>.<counter>``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ir.core import Operation
from ..ir.verifier import verify
from ..resilience.faults import active_plan, fault_hit
from ..telemetry import (
    PassInstrumentation,
    get_metrics,
    get_tracer,
    metric_component,
)


@dataclass
class PassStatistics:
    """Named counters a pass may update while running.

    Counters come in two flavours: *rewrite* counters (applications,
    ops-erased, …) that :meth:`total` sums into the pass's rewrite count,
    and *meters* (match attempts, worklist pushes, ops scanned, …) that
    measure work done rather than IR changed and are excluded from
    :meth:`total` — both appear in reports.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    #: Names of counters that measure work, not rewrites.
    meters: set = field(default_factory=set)

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def bump_meter(self, name: str, amount: int = 1) -> None:
        self.meters.add(name)
        self.bump(name, amount)

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    def total(self) -> int:
        """Sum of the rewrite counters (the pass's total rewrite count)."""
        return sum(
            value for name, value in self.counters.items()
            if name not in self.meters
        )


class Pass:
    """Base class of all passes."""

    #: Human-readable pass name used in pipeline descriptions and reports.
    name: str = "unnamed-pass"

    #: When True, pattern-driver passes raise
    #: :class:`~repro.rewrite.driver.NonConvergenceError` if the rewrite
    #: fixpoint is not reached.  :meth:`PassManager.run` syncs this with its
    #: ``verify_each`` setting before running the pass.
    strict_convergence: bool = True

    #: Options the pass accepts in textual pipeline specs — a tuple of
    #: :class:`~repro.rewrite.registry.PassOption` (empty for most passes).
    SPEC_OPTIONS: tuple = ()

    #: Canonical one-pass pipeline spec (``name{options}``) this instance
    #: was built from.  :func:`~repro.rewrite.registry.build_passes` fills
    #: it in; hand-constructed passes fall back to ``name`` — crash bundles
    #: use it to record a replayable remaining pipeline.
    spec: Optional[str] = None

    def __init__(self):
        self.statistics = PassStatistics()

    @classmethod
    def from_spec_options(cls, options: Dict[str, List[str]]) -> "Pass":
        """Build an instance from validated pipeline-spec options.

        ``options`` maps option key to the list of values it was given
        (already validated against :attr:`SPEC_OPTIONS` by the registry).
        The base implementation covers option-free passes.
        """
        return cls()

    def run(self, module: Operation) -> None:
        raise NotImplementedError


class ModulePass(Pass):
    """A pass operating on the whole module at once."""


class FunctionPass(Pass):
    """A pass applied independently to every ``func.func`` in the module."""

    def run(self, module: Operation) -> None:
        from ..dialects.func import FuncOp

        for op in list(module.walk()):
            if isinstance(op, FuncOp) and not op.is_declaration:
                self.run_on_function(op)

    def run_on_function(self, func) -> None:
        raise NotImplementedError


class PassManager:
    """Runs a sequence of passes over a module.

    With a ``crash_handler`` (a
    :class:`~repro.resilience.bundle.CrashBundleWriter` or anything with
    its ``on_crash`` signature), a pass raise or a ``verify_each``
    rejection writes a crash reproducer bundle — the textual IR as it
    stood before the failing pass, the remaining pipeline spec, and the
    active fault plan re-based to that point — before the exception
    propagates (tagged with ``error.crash_bundle``).  Snapshotting the IR
    per pass costs a print, so handlers are attached on the failure-path
    pipelines (the CLIs, the fuzzers), not the benchmark loops.
    """

    def __init__(
        self,
        passes: Optional[Sequence[Pass]] = None,
        *,
        verify_each: bool = True,
        verbose: bool = False,
        instrumentations: Optional[Sequence[PassInstrumentation]] = None,
        crash_handler=None,
    ):
        self.passes: List[Pass] = list(passes or [])
        self.verify_each = verify_each
        #: Print a per-pass timing/statistics line after each pass runs.
        self.verbose = verbose
        #: pass name -> statistics, populated by :meth:`run`.
        self.statistics: Dict[str, PassStatistics] = {}
        #: pass name -> wall time in seconds, populated by :meth:`run`.
        self.timings: Dict[str, float] = {}
        #: Instrumentation callbacks bracketing every pass.
        self.instrumentations: List[PassInstrumentation] = list(
            instrumentations or []
        )
        #: Crash-bundle writer invoked when a pass fails (None = disabled).
        self.crash_handler = crash_handler

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def add_instrumentation(self, instr: PassInstrumentation) -> "PassManager":
        self.instrumentations.append(instr)
        return self

    def _notify_failed(self, pass_: Pass, module: Operation, error: Exception):
        for instr in self.instrumentations:
            instr.run_after_pass_failed(pass_, module, error)

    def _handle_crash(
        self,
        index: int,
        pre_pass_ir: Optional[str],
        hits_baseline: Dict[str, int],
        error: Exception,
    ) -> None:
        """Write a crash bundle for a failure in pass ``index`` (guarded)."""
        if self.crash_handler is None or pre_pass_ir is None:
            return
        remaining = ",".join(
            p.spec or p.name for p in self.passes[index:]
        )
        plan = active_plan()
        fault_specs = (
            plan.remaining_specs(hits_baseline) if plan is not None else []
        )
        try:
            path = self.crash_handler.on_crash(
                pre_pass_ir=pre_pass_ir,
                remaining_spec=remaining,
                failing_pass=self.passes[index].name,
                error=error,
                fault_specs=fault_specs,
                verify_each=self.verify_each,
            )
        except Exception:
            return  # bundle writing must never mask the original failure
        try:
            error.crash_bundle = str(path)
        except Exception:
            pass

    def run(self, module: Operation) -> Operation:
        tracer = get_tracer()
        registry = get_metrics()
        for index, pass_ in enumerate(self.passes):
            pass_.strict_convergence = self.verify_each
            before = dict(pass_.statistics.counters)
            pre_pass_ir: Optional[str] = None
            hits_baseline: Dict[str, int] = {}
            if self.crash_handler is not None:
                from ..ir.printer import print_module

                pre_pass_ir = print_module(module)
                plan = active_plan()
                if plan is not None:
                    hits_baseline = plan.snapshot_hits()
            for instr in self.instrumentations:
                instr.run_before_pass(pass_, module)
            start = time.perf_counter()
            try:
                with tracer.span("pass:" + pass_.name, category="pass"):
                    fault_hit("pass." + pass_.name)
                    pass_.run(module)
            except Exception as error:
                self._notify_failed(pass_, module, error)
                self._handle_crash(index, pre_pass_ir, hits_baseline, error)
                raise
            elapsed = time.perf_counter() - start
            # Merge this run's counter *delta* into the per-name statistics.
            # Assigning ``pass_.statistics`` outright (the old behaviour)
            # silently clobbered earlier runs whenever the same pass — or two
            # instances sharing a name — ran twice, pairing cumulative
            # timings with last-run-only counters.
            delta = {
                key: value - before.get(key, 0)
                for key, value in pass_.statistics.counters.items()
                if value != before.get(key, 0)
            }
            merged = self.statistics.setdefault(pass_.name, PassStatistics())
            for key, value in delta.items():
                if key in pass_.statistics.meters:
                    merged.bump_meter(key, value)
                else:
                    merged.bump(key, value)
            self.timings[pass_.name] = self.timings.get(pass_.name, 0.0) + elapsed
            if registry.enabled:
                prefix = "rewrite." + metric_component(pass_.name) + "."
                for key, value in delta.items():
                    registry.bump(prefix + metric_component(key), value)
                registry.observe(prefix + "seconds", elapsed)
            if self.verbose:
                print(self._format_pass_line(pass_.name, elapsed, delta))
            if self.verify_each:
                try:
                    with tracer.span("verify:" + pass_.name, category="verify"):
                        fault_hit("verify")
                        verify(module)
                except Exception as error:
                    self._notify_failed(pass_, module, error)
                    self._handle_crash(index, pre_pass_ir, hits_baseline, error)
                    raise
            for instr in self.instrumentations:
                instr.run_after_pass(pass_, module)
        return module

    @staticmethod
    def _format_pass_line(name: str, elapsed: float, counters: Dict[str, int]) -> str:
        details = (
            ", ".join(f"{key}={value}" for key, value in sorted(counters.items()))
            or "no rewrites"
        )
        return f"[pass] {name:28s} {elapsed * 1e3:8.2f} ms  {details}"

    @property
    def total_time(self) -> float:
        """Total wall time spent inside passes (seconds)."""
        return sum(self.timings.values())

    def total_rewrites(self) -> int:
        """Total rewrite count across every pass that has run."""
        return sum(stats.total() for stats in self.statistics.values())

    def report(self) -> str:
        """Multi-line timing/statistics report for every pass that has run.

        Reported counters are the merged per-name totals, so a pass that ran
        several times shows cumulative time *and* cumulative counters.
        """
        lines = ["Pass pipeline statistics", "========================"]
        for name, elapsed in self.timings.items():
            counters = self.statistics.get(name, PassStatistics()).counters
            lines.append(self._format_pass_line(name, elapsed, counters))
        lines.append(
            f"total: {self.total_time * 1e3:.2f} ms, "
            f"{self.total_rewrites()} rewrites across {len(self.timings)} passes"
        )
        return "\n".join(lines)

    def describe(self) -> str:
        """Textual pipeline description, e.g. ``cse,dce,region-gvn``."""
        return ",".join(p.name for p in self.passes)
