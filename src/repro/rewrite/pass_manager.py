"""Passes and the pass manager.

A :class:`Pass` transforms a module in place.  :class:`PassManager` runs a
pipeline of passes, optionally verifying the IR after each one (the default,
as in MLIR's ``-verify-each``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ir.core import Operation
from ..ir.verifier import verify


@dataclass
class PassStatistics:
    """Named counters a pass may update while running."""

    counters: Dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)


class Pass:
    """Base class of all passes."""

    #: Human-readable pass name used in pipeline descriptions and reports.
    name: str = "unnamed-pass"

    def __init__(self):
        self.statistics = PassStatistics()

    def run(self, module: Operation) -> None:
        raise NotImplementedError


class ModulePass(Pass):
    """A pass operating on the whole module at once."""


class FunctionPass(Pass):
    """A pass applied independently to every ``func.func`` in the module."""

    def run(self, module: Operation) -> None:
        from ..dialects.func import FuncOp

        for op in list(module.walk()):
            if isinstance(op, FuncOp) and not op.is_declaration:
                self.run_on_function(op)

    def run_on_function(self, func) -> None:
        raise NotImplementedError


class PassManager:
    """Runs a sequence of passes over a module."""

    def __init__(self, passes: Optional[Sequence[Pass]] = None, *, verify_each: bool = True):
        self.passes: List[Pass] = list(passes or [])
        self.verify_each = verify_each
        #: pass name -> statistics, populated by :meth:`run`.
        self.statistics: Dict[str, PassStatistics] = {}

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, module: Operation) -> Operation:
        for pass_ in self.passes:
            pass_.run(module)
            self.statistics[pass_.name] = pass_.statistics
            if self.verify_each:
                verify(module)
        return module

    def describe(self) -> str:
        """Textual pipeline description, e.g. ``cse,dce,region-gvn``."""
        return ",".join(p.name for p in self.passes)
