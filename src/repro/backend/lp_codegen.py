"""λrc → lp code generation (§III of the paper).

Each λrc function becomes a ``func.func`` over the boxed type ``!lp.t``;
λrc's constructs map directly onto the lp dialect:

==============  ==========================================
λrc             lp
==============  ==========================================
``lit`` (small) ``lp.int``
``lit`` (big)   ``lp.bigint``
``ctor``        ``lp.construct``
``proj``        ``lp.project``
``call``        ``func.call`` (user functions and runtime routines alike)
``pap``         ``lp.pap``
``app``         ``lp.papextend``
``case``        ``lp.getlabel`` + ``lp.switch``
``jdecl/jmp``   ``lp.joinpoint`` / ``lp.jump``
``inc/dec``     ``lp.inc`` / ``lp.dec``
``ret``         ``lp.return``
==============  ==========================================
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..dialects import lp as lp_dialect
from ..dialects.builtin import ModuleOp
from ..dialects.func import CallOp, FuncOp
from ..ir.builder import Builder, InsertionPoint
from ..ir.core import Block, Value
from .lowering_context import LoweringContext
from ..lambda_pure.ir import (
    App,
    Call,
    Case,
    Ctor,
    Dec,
    Expr,
    FnBody,
    Function,
    Inc,
    JDecl,
    Jmp,
    Let,
    Lit,
    PAp,
    Program,
    Proj,
    Reset,
    Ret,
    Reuse,
    Unreachable,
)


class CodegenError(Exception):
    """Raised when a λrc construct cannot be emitted."""


class LpCodegen:
    """Generates an MLIR module in the lp dialect from a λrc program.

    Module-scale structures (interned boxed function types, the symbol
    table) live in the :class:`LoweringContext`, which is built once and
    reused across functions — and, when a compilation session provides one,
    across programs.
    """

    def __init__(self, program: Program, context: Optional[LoweringContext] = None):
        self.program = program
        self.context = context if context is not None else LoweringContext()

    # -- entry point -------------------------------------------------------------
    def generate(self) -> ModuleOp:
        module = ModuleOp("lean_module")
        self.context.begin_module()
        for fn in self.program.functions.values():
            func_op = self.generate_function(fn)
            self.context.register_symbol(func_op)
            module.append(func_op)
        return module

    def generate_function(self, fn: Function) -> FuncOp:
        fn_type = self.context.boxed_fn_type(fn.arity)
        func_op = FuncOp(fn.name, fn_type, arg_names=list(fn.params))
        entry = func_op.entry_block
        env: Dict[str, Value] = {
            param: arg for param, arg in zip(fn.params, entry.arguments)
        }
        self._gen_body(fn.body, entry, env)
        return func_op

    # -- expressions -------------------------------------------------------------------
    def _gen_expr(self, builder: Builder, expr: Expr, env: Dict[str, Value]) -> Value:
        if isinstance(expr, Lit):
            if expr.is_big:
                return builder.create(lp_dialect.BigIntOp, str(expr.value)).result()
            return builder.create(lp_dialect.IntOp, expr.value).result()
        if isinstance(expr, Ctor):
            fields = [env[a] for a in expr.args]
            return builder.create(lp_dialect.ConstructOp, expr.tag, fields).result()
        if isinstance(expr, Proj):
            return builder.create(lp_dialect.ProjectOp, env[expr.var], expr.index).result()
        if isinstance(expr, Reset):
            return builder.create(lp_dialect.ResetOp, env[expr.var]).result()
        if isinstance(expr, Reuse):
            fields = [env[a] for a in expr.args]
            return builder.create(
                lp_dialect.ReuseOp, env[expr.token], expr.tag, fields
            ).result()
        if isinstance(expr, Call):
            args = [env[a] for a in expr.args]
            return builder.create(
                CallOp, expr.fn, args, self.context.box_arg_types(1)
            ).result()
        if isinstance(expr, PAp):
            args = [env[a] for a in expr.args]
            return builder.create(lp_dialect.PapOp, expr.fn, args).result()
        if isinstance(expr, App):
            args = [env[a] for a in expr.args]
            return builder.create(
                lp_dialect.PapExtendOp, env[expr.closure], args
            ).result()
        raise CodegenError(f"cannot generate code for expression {expr!r}")

    # -- bodies -------------------------------------------------------------------------------
    def _gen_body(self, body: FnBody, block: Block, env: Dict[str, Value]) -> None:
        builder = Builder(InsertionPoint.at_end(block))
        while True:
            if isinstance(body, Let):
                value = self._gen_expr(builder, body.expr, env)
                value.name_hint = body.var
                env = dict(env)
                env[body.var] = value
                body = body.body
                continue
            if isinstance(body, Inc):
                builder.create(lp_dialect.IncOp, env[body.var], body.count)
                body = body.body
                continue
            if isinstance(body, Dec):
                builder.create(lp_dialect.DecOp, env[body.var], body.count)
                body = body.body
                continue
            if isinstance(body, Ret):
                builder.create(lp_dialect.ReturnOp, env[body.var])
                return
            if isinstance(body, Unreachable):
                builder.create(lp_dialect.UnreachableOp)
                return
            if isinstance(body, Case):
                self._gen_case(builder, body, env)
                return
            if isinstance(body, JDecl):
                self._gen_joinpoint(builder, body, env)
                return
            if isinstance(body, Jmp):
                args = [env[a] for a in body.args]
                builder.create(lp_dialect.JumpOp, body.label, args)
                return
            raise CodegenError(f"cannot generate code for body {body!r}")

    def _gen_case(self, builder: Builder, case: Case, env: Dict[str, Value]) -> None:
        label = builder.create(lp_dialect.GetLabelOp, env[case.var]).result()
        case_values = [alt.tag for alt in case.alts]
        with_default = case.default is not None
        switch = builder.create(
            lp_dialect.SwitchOp, label, case_values, with_default=with_default
        )
        for alt, region in zip(case.alts, switch.case_regions):
            self._gen_body(alt.body, region.blocks[0], dict(env))
        if with_default:
            self._gen_body(case.default, switch.default_block, dict(env))

    def _gen_joinpoint(self, builder: Builder, jdecl: JDecl, env: Dict[str, Value]) -> None:
        joinpoint = builder.create(
            lp_dialect.JoinPointOp,
            jdecl.label,
            self.context.box_arg_types(len(jdecl.params)),
        )
        body_block = joinpoint.body_block
        body_env = dict(env)
        for param, arg in zip(jdecl.params, body_block.arguments):
            arg.name_hint = param
            body_env[param] = arg
        self._gen_body(jdecl.jbody, body_block, body_env)
        self._gen_body(jdecl.rest, joinpoint.pre_block, dict(env))


def generate_lp_module(
    program: Program, context: Optional[LoweringContext] = None
) -> ModuleOp:
    """Generate the lp-dialect MLIR module for a λrc program."""
    return LpCodegen(program, context).generate()
