"""Lowering lp control flow to the rgn dialect (§IV-A, Figure 8).

* ``lp.switch`` with two outcomes → ``arith.cmpi`` + ``arith.select`` over
  two ``rgn.val`` values, then ``rgn.run`` (Figure 8 A),
* ``lp.switch`` with more outcomes → ``rgn.switch`` over one ``rgn.val`` per
  arm, then ``rgn.run`` (Figure 8 B),
* ``lp.joinpoint`` → a ``rgn.val`` naming the join body; the pre-jump code is
  inlined in place of the join point and each ``lp.jump`` becomes a
  ``rgn.run`` of the named region (Figure 8 C).

Data operations of the lp dialect (constructors, projections, closures,
reference counts) are untouched — only control flow changes shape.

The lowering is incremental at module scale: join-point labels live in a
chained :class:`~repro.backend.lowering_context.LabelScope` (O(1) extension
per arm/join body instead of one dict copy each), and when the shared
:class:`LoweringContext` carries the symbol table that ``lp_codegen`` just
built for this module, the lowering iterates it instead of re-scanning the
module body for functions.
"""

from __future__ import annotations

from typing import List, Optional

from ..dialects import arith, lp, rgn
from ..dialects.builtin import ModuleOp
from ..ir.builder import Builder, InsertionPoint
from ..ir.core import Block, Operation, Value
from ..rewrite.pass_manager import ModulePass
from .lowering_context import LabelScope, LoweringContext


class LpToRgnError(Exception):
    """Raised when lp control flow cannot be lowered."""


def _move_block_contents(source: Block, dest: Block) -> None:
    """Move all operations of ``source`` to the end of ``dest`` (one O(1)
    splice per op, no list copies)."""
    dest.take_ops_from(source)


class LpToRgnLowering:
    """Lowers the control flow of every function in a module."""

    def __init__(self, module: ModuleOp, context: Optional[LoweringContext] = None):
        self.module = module
        self.context = context if context is not None else LoweringContext()

    def run(self) -> ModuleOp:
        for func in self._module_functions():
            if func.entry_block is not None:
                self._lower_block(func.entry_block, LabelScope())
        return self.module

    def _module_functions(self):
        """The module's functions, from the context symbol table when it was
        built for *this* module (the pipeline fills it during lp codegen
        immediately before this lowering); otherwise a module body scan."""
        symbols = list(self.context.symbols.values())
        if symbols and all(op.parent_op() is self.module for op in symbols):
            return symbols
        return self.module.functions()

    # -- per-block lowering ---------------------------------------------------------
    def _lower_block(self, block: Block, labels: LabelScope) -> None:
        terminator = block.last_op
        if terminator is None:
            return
        if isinstance(terminator, lp.SwitchOp):
            self._lower_switch(block, terminator, labels)
        elif isinstance(terminator, lp.JoinPointOp):
            self._lower_joinpoint(block, terminator, labels)
        elif isinstance(terminator, lp.JumpOp):
            self._lower_jump(block, terminator, labels)
        # lp.return / lp.unreachable stay as they are.

    def _lower_switch(
        self, block: Block, switch: lp.SwitchOp, labels: LabelScope
    ) -> None:
        builder = Builder(InsertionPoint.before(switch))
        # One rgn.val per arm; arms are lowered recursively.  Arms only read
        # the enclosing labels, so they share the scope — definitions made
        # inside an arm live in that arm's child scopes and cannot leak.
        arm_values: List[Value] = []
        for region in switch.case_regions:
            val = builder.create(rgn.ValOp)
            _move_block_contents(region.blocks[0], val.body_block)
            self._lower_block(val.body_block, labels)
            arm_values.append(val.result())
        default_value: Value
        if switch.has_default:
            val = builder.create(rgn.ValOp)
            _move_block_contents(switch.default_block, val.body_block)
            self._lower_block(val.body_block, labels)
            default_value = val.result()
        else:
            default_value = arm_values[-1]

        case_values = switch.case_values
        tag = switch.tag
        outcomes = list(arm_values)
        if not switch.has_default and outcomes:
            outcomes = outcomes[:-1]
            case_values = case_values[:-1]

        if len(case_values) == 1:
            # Two-way dispatch: compare against the single case value and
            # select between the two regions (Figure 8 A).
            constant = builder.create(arith.ConstantOp, case_values[0], tag.type)
            condition = builder.create(arith.CmpIOp, "eq", tag, constant.result())
            selected = builder.create(
                arith.SelectOp, condition.result(), outcomes[0], default_value
            ).result()
        elif not case_values:
            selected = default_value
        else:
            selected = builder.create(
                rgn.SwitchOp, tag, default_value, case_values, outcomes
            ).result()
        builder.create(rgn.RunOp, selected)
        switch.erase()

    def _lower_joinpoint(
        self, block: Block, joinpoint: lp.JoinPointOp, labels: LabelScope
    ) -> None:
        builder = Builder(InsertionPoint.before(joinpoint))
        arg_types = joinpoint.arg_types
        val = builder.create(rgn.ValOp, arg_types)
        # Move the after-jump body into the region value, remapping the
        # join parameters onto the new entry block arguments.
        source_body = joinpoint.body_block
        for old_arg, new_arg in zip(source_body.arguments, val.body_block.arguments):
            new_arg.name_hint = old_arg.name_hint
            old_arg.replace_all_uses_with(new_arg)
        _move_block_contents(source_body, val.body_block)

        # The join body cannot jump to itself; it sees only the outer labels.
        self._lower_block(val.body_block, labels)

        # Inline the pre-jump code after the region definition; it becomes
        # the remainder of the current block, which *can* jump to the new
        # label — extend the scope in O(1) instead of copying the map.
        inner = labels.child()
        inner.define(joinpoint.label, val.result())
        pre_block = joinpoint.pre_block
        for op in pre_block:
            op.detach()
            block.insert_before(op, joinpoint)
        joinpoint.erase()
        self._lower_block(block, inner)

    def _lower_jump(
        self, block: Block, jump: lp.JumpOp, labels: LabelScope
    ) -> None:
        target = labels.lookup(jump.label)
        if target is None:
            raise LpToRgnError(f"lp.jump to unknown join point @{jump.label}")
        builder = Builder(InsertionPoint.before(jump))
        builder.create(rgn.RunOp, target, jump.args)
        jump.erase()


class LpToRgnPass(ModulePass):
    """Pass wrapper around :class:`LpToRgnLowering`."""

    name = "lp-to-rgn"

    def run(self, module: Operation) -> None:
        if isinstance(module, ModuleOp):
            LpToRgnLowering(module).run()


def lower_lp_to_rgn(
    module: ModuleOp, context: Optional[LoweringContext] = None
) -> ModuleOp:
    """Lower all lp control flow in ``module`` to rgn form (in place)."""
    return LpToRgnLowering(module, context).run()
