"""Lowering lp control flow to the rgn dialect (§IV-A, Figure 8).

* ``lp.switch`` with two outcomes → ``arith.cmpi`` + ``arith.select`` over
  two ``rgn.val`` values, then ``rgn.run`` (Figure 8 A),
* ``lp.switch`` with more outcomes → ``rgn.switch`` over one ``rgn.val`` per
  arm, then ``rgn.run`` (Figure 8 B),
* ``lp.joinpoint`` → a ``rgn.val`` naming the join body; the pre-jump code is
  inlined in place of the join point and each ``lp.jump`` becomes a
  ``rgn.run`` of the named region (Figure 8 C).

Data operations of the lp dialect (constructors, projections, closures,
reference counts) are untouched — only control flow changes shape.
"""

from __future__ import annotations

from typing import Dict, List

from ..dialects import arith, lp, rgn
from ..dialects.builtin import ModuleOp
from ..dialects.func import FuncOp
from ..ir.builder import Builder, InsertionPoint
from ..ir.core import Block, Operation, Value
from ..ir.types import i8
from ..rewrite.pass_manager import ModulePass


class LpToRgnError(Exception):
    """Raised when lp control flow cannot be lowered."""


def _move_block_contents(source: Block, dest: Block) -> None:
    """Move all operations of ``source`` to the end of ``dest`` (one O(1)
    splice per op, no list copies)."""
    dest.take_ops_from(source)


class LpToRgnLowering:
    """Lowers the control flow of every function in a module."""

    def __init__(self, module: ModuleOp):
        self.module = module

    def run(self) -> ModuleOp:
        for func in self.module.functions():
            if func.entry_block is not None:
                self._lower_block(func.entry_block, {})
        return self.module

    # -- per-block lowering ---------------------------------------------------------
    def _lower_block(self, block: Block, label_map: Dict[str, Value]) -> None:
        terminator = block.last_op
        if terminator is None:
            return
        if isinstance(terminator, lp.SwitchOp):
            self._lower_switch(block, terminator, label_map)
        elif isinstance(terminator, lp.JoinPointOp):
            self._lower_joinpoint(block, terminator, label_map)
        elif isinstance(terminator, lp.JumpOp):
            self._lower_jump(block, terminator, label_map)
        # lp.return / lp.unreachable stay as they are.

    def _lower_switch(
        self, block: Block, switch: lp.SwitchOp, label_map: Dict[str, Value]
    ) -> None:
        builder = Builder(InsertionPoint.before(switch))
        # One rgn.val per arm; arms are lowered recursively.
        arm_values: List[Value] = []
        for region in switch.case_regions:
            val = builder.create(rgn.ValOp)
            _move_block_contents(region.blocks[0], val.body_block)
            self._lower_block(val.body_block, dict(label_map))
            arm_values.append(val.result())
        default_value: Value
        if switch.has_default:
            val = builder.create(rgn.ValOp)
            _move_block_contents(switch.default_block, val.body_block)
            self._lower_block(val.body_block, dict(label_map))
            default_value = val.result()
        else:
            default_value = arm_values[-1]

        case_values = switch.case_values
        tag = switch.tag
        outcomes = list(arm_values)
        if not switch.has_default and outcomes:
            outcomes = outcomes[:-1]
            case_values = case_values[:-1]

        if len(case_values) == 1:
            # Two-way dispatch: compare against the single case value and
            # select between the two regions (Figure 8 A).
            constant = builder.create(arith.ConstantOp, case_values[0], tag.type)
            condition = builder.create(arith.CmpIOp, "eq", tag, constant.result())
            selected = builder.create(
                arith.SelectOp, condition.result(), outcomes[0], default_value
            ).result()
        elif not case_values:
            selected = default_value
        else:
            selected = builder.create(
                rgn.SwitchOp, tag, default_value, case_values, outcomes
            ).result()
        builder.create(rgn.RunOp, selected)
        switch.erase()

    def _lower_joinpoint(
        self, block: Block, joinpoint: lp.JoinPointOp, label_map: Dict[str, Value]
    ) -> None:
        builder = Builder(InsertionPoint.before(joinpoint))
        arg_types = joinpoint.arg_types
        val = builder.create(rgn.ValOp, arg_types)
        # Move the after-jump body into the region value, remapping the
        # join parameters onto the new entry block arguments.
        source_body = joinpoint.body_block
        for old_arg, new_arg in zip(source_body.arguments, val.body_block.arguments):
            new_arg.name_hint = old_arg.name_hint
            old_arg.replace_all_uses_with(new_arg)
        _move_block_contents(source_body, val.body_block)

        new_map = dict(label_map)
        new_map[joinpoint.label] = val.result()
        self._lower_block(val.body_block, dict(label_map))

        # Inline the pre-jump code after the region definition; it becomes
        # the remainder of the current block.
        pre_block = joinpoint.pre_block
        for op in pre_block:
            op.detach()
            block.insert_before(op, joinpoint)
        joinpoint.erase()
        self._lower_block(block, new_map)

    def _lower_jump(
        self, block: Block, jump: lp.JumpOp, label_map: Dict[str, Value]
    ) -> None:
        if jump.label not in label_map:
            raise LpToRgnError(f"lp.jump to unknown join point @{jump.label}")
        builder = Builder(InsertionPoint.before(jump))
        builder.create(rgn.RunOp, label_map[jump.label], jump.args)
        jump.erase()


class LpToRgnPass(ModulePass):
    """Pass wrapper around :class:`LpToRgnLowering`."""

    name = "lp-to-rgn"

    def run(self, module: Operation) -> None:
        if isinstance(module, ModuleOp):
            LpToRgnLowering(module).run()


def lower_lp_to_rgn(module: ModuleOp) -> ModuleOp:
    """Lower all lp control flow in ``module`` to rgn form (in place)."""
    return LpToRgnLowering(module).run()
