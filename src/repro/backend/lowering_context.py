"""Module-scale context shared by the backend lowerings.

Both backend lowerings used to rebuild small module-scale structures over
and over: ``lp_codegen`` constructed a fresh boxed :class:`FunctionType`
(and fresh ``[box] * n`` argument lists) for every function and join point,
and neither lowering kept a symbol table, so anything that needed to map a
symbol name back to its ``func.func`` re-walked the module.

:class:`LoweringContext` hoists that work to module scope and makes it
reusable *across* modules: types are immutable value objects, so the
arity-keyed interning tables survive for the lifetime of the context (a
:class:`~repro.backend.pipeline.CompilationSession` keeps one context for
all programs it compiles), while the symbol table is rebuilt per module by
``begin_module``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..dialects.func import FuncOp
from ..ir.core import Value
from ..ir.types import FunctionType, Type, box


class LabelScope:
    """Chained join-point label map.

    The lp→rgn lowering used to copy the whole label dict once per switch
    arm and once per join-point body (``dict(label_map)``), making deeply
    nested control flow quadratic in the number of live labels.  A scope is
    instead extended in O(1) by chaining: a child sees every parent binding,
    definitions in a child shadow the parent and never leak to siblings.
    """

    __slots__ = ("_labels", "_parent")

    def __init__(self, parent: Optional["LabelScope"] = None):
        self._labels: Dict[str, Value] = {}
        self._parent = parent

    def child(self) -> "LabelScope":
        """A new scope extending this one (O(1), no copying)."""
        return LabelScope(self)

    def define(self, label: str, value: Value) -> None:
        self._labels[label] = value

    def lookup(self, label: str) -> Optional[Value]:
        scope: Optional[LabelScope] = self
        while scope is not None:
            value = scope._labels.get(label)
            if value is not None:
                return value
            scope = scope._parent
        return None


class LoweringContext:
    """Interned lowering structures: built once, reused per module/session.

    * :meth:`boxed_fn_type` — the ``(!lp.t, …) -> !lp.t`` function type of a
      given arity, interned (every λrc function and runtime call uses one).
    * :meth:`box_arg_types` — the ``[box] * n`` argument-type tuple used for
      entry blocks and join points, interned.
    * :attr:`symbols` — symbol table of the module currently being lowered
      (``sym_name`` → :class:`FuncOp`), reset by :meth:`begin_module` and
      filled by :meth:`register_symbol` as functions are generated.
    """

    def __init__(self):
        self._boxed_fn_types: Dict[int, FunctionType] = {}
        self._box_arg_types: Dict[int, Tuple[Type, ...]] = {}
        self.symbols: Dict[str, FuncOp] = {}
        self.modules_lowered = 0

    # -- interned types ----------------------------------------------------
    def boxed_fn_type(self, arity: int) -> FunctionType:
        """The interned ``(!lp.t^arity) -> !lp.t`` function type."""
        cached = self._boxed_fn_types.get(arity)
        if cached is None:
            cached = FunctionType([box] * arity, [box])
            self._boxed_fn_types[arity] = cached
        return cached

    def box_arg_types(self, count: int) -> Tuple[Type, ...]:
        """The interned ``(!lp.t,) * count`` argument-type tuple."""
        cached = self._box_arg_types.get(count)
        if cached is None:
            cached = (box,) * count
            self._box_arg_types[count] = cached
        return cached

    # -- per-module symbol table -------------------------------------------
    def begin_module(self) -> None:
        """Reset the per-module state (symbol table); interning survives."""
        self.symbols = {}
        self.modules_lowered += 1

    def register_symbol(self, func_op: FuncOp) -> None:
        self.symbols[func_op.sym_name] = func_op
