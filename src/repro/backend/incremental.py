"""Fingerprint-keyed incremental rgn-opt recompilation.

Recompiling a module where one function changed should not re-run the rgn
optimisation pipeline on the unchanged functions.  The
:class:`~repro.backend.pipeline.CompilationSession` keeps a cache of
optimised per-function rgn IR keyed by

* the **pipeline fingerprint** (hash of the canonical pipeline spec, see
  :func:`repro.rewrite.registry.pipeline_fingerprint`) — two option sets
  that optimise differently never share entries, and

* the **function fingerprint** (:func:`function_fingerprint`) — a
  structural key of the function body built on
  :class:`~repro.transforms.region_gvn.RegionFingerprinter`.

Cross-compile comparability is the delicate part: the fingerprinter's
:class:`~repro.transforms.region_gvn.ValueNumbering` hands out *opaque*
numbers to impure values in encounter order, so fingerprints taken with a
fresh numbering are only meaningful within one request stream — two
structurally different functions could collide when nested regions
reference different outer values that happen to receive the same
encounter-order number.  :func:`function_fingerprint` therefore pre-seeds
**every** value of the function with its position in a deterministic
pre-order walk before fingerprinting: equal fingerprints then imply
position-for-position structurally identical bodies.  Functions whose
bodies fall outside the fingerprintable subset (multi-block nested
regions) fall back to the printed text as the key — always sound, merely
slower to compute.

The cached value is a detached clone of the optimised ``func.func``; a hit
splices a fresh clone into the module in place of the unoptimised
function, which yields byte-identical IR to re-running the pipeline on the
function that populated the entry, because every pass in the rgn pipeline
is a :class:`~repro.rewrite.pass_manager.FunctionPass` (no cross-function
state) and clones preserve name hints.  Fingerprints deliberately ignore
SSA *name hints* (they carry no semantics, and a session's shared lowering
context renumbers them as unrelated code changes), so after a hit the
spliced function keeps the hint spelling of the compile that populated the
entry — identical IR modulo ``%``-name cosmetics, bit-identical execution.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

from ..dialects.builtin import ModuleOp
from ..ir.printer import print_op
from ..resilience.faults import InjectedFault, fault_hit
from ..telemetry import get_tracer
from ..transforms.region_gvn import RegionFingerprinter, ValueNumbering


def _preseed_positional(func, numbering: ValueNumbering) -> None:
    """Assign every value defined in ``func`` its pre-order position."""
    position = 0

    def seed_block(block) -> None:
        nonlocal position
        for arg in block.arguments:
            numbering.preset(arg, ("pos", position))
            position += 1
        for op in block:
            for result in op.results:
                numbering.preset(result, ("pos", position))
                position += 1
            for region in op.regions:
                for inner in region.blocks:
                    seed_block(inner)

    for region in func.regions:
        for block in region.blocks:
            seed_block(block)


def function_fingerprint(func) -> Tuple:
    """Structural cache key of one function (body + attributes).

    Equal keys imply structurally identical functions; see the module
    docstring for why the value numbering is positionally pre-seeded.
    """
    attrs = tuple(sorted((k, str(v)) for k, v in func.attributes.items()))
    numbering = ValueNumbering()
    _preseed_positional(func, numbering)
    body = RegionFingerprinter(numbering).fingerprint(func.body)
    if body is None:
        return ("text", attrs, print_op(func))
    return ("body", attrs, body)


def function_fingerprint_digest(func) -> str:
    """Compact digest of :func:`function_fingerprint` (the stored key).

    The structural key nests tuples of interned strings and ints, so its
    ``repr`` is deterministic; hashing it keeps cache keys O(1)-sized
    instead of retaining the whole structure per entry.
    """
    key = function_fingerprint(func)
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


def run_pipeline_on_functions(funcs, pipeline) -> None:
    """Run a function-pass pipeline on selected functions, in place.

    The functions are detached into one scratch module for the duration of
    a single ``pipeline.run`` (pass managers take modules, and per-run
    bookkeeping is cheaper paid once than once per function), then
    re-inserted at their original positions.  Legal because the verifier
    performs no symbol resolution and every pass in the rgn pipeline is a
    ``FunctionPass``.
    """
    detached = []
    for func in funcs:
        # Anchors may themselves be detached later in this loop; reverse
        # re-insertion below restores each anchor before it is needed.
        detached.append((func, func.parent, func.next_op))
        func.detach()
    scratch = ModuleOp()
    for func, _, _ in detached:
        scratch.append(func)
    try:
        pipeline.run(scratch)
    finally:
        for func, block, anchor in reversed(detached):
            func.detach()
            if anchor is not None:
                block.insert_before(func, anchor)
            else:
                block.append(func)


def run_incremental_rgn_opt(module, pipeline, session, pipeline_hash: str) -> None:
    """Optimise ``module`` function-by-function through the session cache.

    Functions whose (pipeline, body) fingerprint is cached are replaced by
    a clone of their previously optimised form; the pipeline re-runs only
    on the misses — batched through one scratch module.  Hit/miss counts
    publish as ``session.incremental.*`` (see
    :meth:`CompilationSession.rgn_opt_cached`).
    """
    tracer = get_tracer()
    misses = []
    for func in list(module.functions()):
        if func.is_declaration:
            continue
        key = (pipeline_hash, function_fingerprint_digest(func))
        cached = session.rgn_opt_cached(key)
        if cached is not None:
            try:
                fault_hit("cache.incremental")
            except InjectedFault:
                # Degradation ladder: a corrupt/divergent cached entry is
                # quarantined and the function recompiles cleanly.
                session.rgn_opt_quarantine(key)
                misses.append((func, key))
                continue
            with tracer.span(
                "incremental:hit", category="session", func=func.sym_name
            ):
                replacement = cached.clone()
                func.parent.insert_before(replacement, func)
                func.erase()
        else:
            misses.append((func, key))
    if not misses:
        return
    with tracer.span(
        "incremental:miss",
        category="session",
        funcs=",".join(func.sym_name for func, _ in misses),
    ):
        run_pipeline_on_functions([func for func, _ in misses], pipeline)
        for func, key in misses:
            session.rgn_opt_store(key, func.clone())
