"""Backends: λrc → lp codegen, lp → rgn and rgn → CFG lowerings, the baseline
C emitter and the end-to-end pipeline drivers."""

from .c_backend import emit_c_source
from .lowering_context import LabelScope, LoweringContext
from .lp_codegen import CodegenError, generate_lp_module
from .lp_to_rgn import LpToRgnPass, lower_lp_to_rgn
from .pipeline import (
    FIGURE10_VARIANTS,
    RC_VARIANTS,
    BaselineCompiler,
    CompilationArtifacts,
    CompilationSession,
    Frontend,
    MlirCompiler,
    PipelineOptions,
    build_spec_pipeline,
    rgn_optimization_pipeline,
    rgn_pipeline_spec,
    run_all_backends,
    run_baseline,
    run_mlir,
    run_rc_variant,
    run_reference,
)
from .rgn_to_cf import RgnToCfPass, lower_rgn_to_cf

__all__ = [
    "emit_c_source",
    "LabelScope",
    "LoweringContext",
    "CodegenError",
    "generate_lp_module",
    "LpToRgnPass",
    "lower_lp_to_rgn",
    "FIGURE10_VARIANTS",
    "RC_VARIANTS",
    "BaselineCompiler",
    "CompilationArtifacts",
    "CompilationSession",
    "Frontend",
    "MlirCompiler",
    "PipelineOptions",
    "build_spec_pipeline",
    "rgn_optimization_pipeline",
    "rgn_pipeline_spec",
    "run_all_backends",
    "run_baseline",
    "run_mlir",
    "run_rc_variant",
    "run_reference",
    "RgnToCfPass",
    "lower_rgn_to_cf",
]
