"""End-to-end compilation pipelines (Figure 3) and the variant matrix used by
the evaluation (Figures 9 and 10).

Baseline pipeline ("leanc")
    mini-LEAN → λpure → λpure simplifier → λrc → (C source artifact)
    → λrc interpreter.

New pipeline ("lp + rgn")
    mini-LEAN → λpure → [optional λpure simplifier] → λrc → lp dialect
    → rgn dialect → [optional rgn optimisations] → flat CFG → CFG interpreter.

Variants (Figure 10):
    * ``simplifier`` — λpure simplifier on, rgn optimisations off,
    * ``rgn``        — λpure simplifier off (LEAN's ``simp_case`` disabled),
      rgn optimisations on,
    * ``none``       — both off.

RC-optimisation ablation variants (the :mod:`repro.rc_opt` subsystem, which
runs between RC insertion and backend lowering):
    * ``rc-naive``     — the seed owned-arguments discipline,
    * ``rc-opt``       — borrow inference + dup/drop fusion,
    * ``rc-opt+reuse`` — ``rc-opt`` plus constructor-reuse analysis.
"""

from __future__ import annotations

import copy
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dialects.builtin import ModuleOp
from ..interp.bytecode import (
    DISPATCH_MODES,
    EXECUTION_ENGINES,
    BytecodeError,
    BytecodeProgram,
    VirtualMachine,
    compile_cfg_module,
    compile_rc_program,
)
from ..interp.cfg_interp import CfgInterpreter
from ..interp.rc_interp import RcInterpreter, RunResult
from ..interp.reference import ReferenceInterpreter, normalize
from ..lambda_pure.ir import Program as PureProgram
from ..lambda_pure.lowering import lower_program
from ..lambda_pure.simplifier import simplify_program
from ..ir.printer import print_module
from ..lean.parser import parse_program
from ..lean.typecheck import check_program
from ..rc_opt import RcOptReport, insert_optimized_rc
from ..resilience.budgets import ExecutionBudget, make_execution_budget
from ..resilience.bundle import CrashBundleWriter
from ..resilience.faults import InjectedFault, fault_hit
from ..rewrite.pass_manager import PassManager
from ..rewrite.registry import build_pipeline, pipeline_fingerprint
from ..telemetry import (
    PassInstrumentation,
    PrintIRInstrumentation,
    get_metrics,
    get_tracer,
    metric_component,
)
from ..transforms.canonicalize import canonicalization_patterns
from .c_backend import emit_c_source
from .incremental import run_incremental_rgn_opt
from .lowering_context import LoweringContext
from .lp_codegen import generate_lp_module
from .lp_to_rgn import lower_lp_to_rgn
from .rgn_to_cf import lower_rgn_to_cf


@dataclass
class PipelineOptions:
    """Configuration knobs of the lp+rgn pipeline."""

    #: Run the λpure simplifier before reference-count insertion.
    run_lambda_simplifier: bool = True
    #: Keep LEAN's ``simp_case`` sub-pass enabled inside the simplifier.
    enable_simp_case: bool = True
    #: Run the rgn optimisation pipeline between lp→rgn and rgn→cf.
    run_rgn_optimizations: bool = True
    #: Individual rgn passes (used by the ablation benchmarks).
    enable_dead_region_elimination: bool = True
    enable_region_gvn: bool = True
    enable_case_elimination: bool = True
    enable_common_branch_elimination: bool = True
    enable_constant_fold: bool = True
    enable_cse: bool = True
    #: RC optimisation level applied between RC insertion and lowering
    #: ("naive", "opt" or "opt+reuse"; see :mod:`repro.rc_opt`).
    rc_mode: str = "naive"
    #: Pattern-rewrite fixpoint engine: "worklist" (incremental, the
    #: default) or "rescan" (the quadratic seed driver, kept for the
    #: compile-time differential benchmarks).
    rewrite_engine: str = "worklist"
    #: Execution engine for compiled modules: "vm" (register-based
    #: bytecode, the default) or "tree" (the tree-walking interpreters,
    #: kept as differential oracles).
    execution_engine: str = "vm"
    #: VM dispatch mode: "threaded" (closure-per-instruction direct
    #: threading, the default) or "switch" (the tuple-decoding loop, kept
    #: as the in-VM oracle).  Ignored by the tree engine.
    dispatch: str = "threaded"
    #: Run the superinstruction fusion peephole over compiled bytecode.
    #: Fused instructions charge exactly the unfused events, so this only
    #: changes execution speed, never metrics or results.
    superinstructions: bool = True
    #: Verify the IR after every pass (slower; on by default in tests).
    verify_each: bool = True
    #: Print per-pass wall time and rewrite counters while compiling.
    verbose_passes: bool = False
    #: Pass names whose output IR is printed after they run
    #: (``--print-ir-after=<pass>``, MLIR's ``--mlir-print-ir-after``).
    print_ir_after: Tuple[str, ...] = ()
    #: Print the module after every pass (``--print-ir-after-all``).
    print_ir_after_all: bool = False
    #: On a pass failure (pattern non-convergence or a ``verify_each``
    #: rejection), dump the offending function's IR and the pass name.
    print_ir_on_failure: bool = True
    #: Serve rgn-opt results from the session's fingerprint-keyed
    #: per-function cache (no effect without a session; see
    #: :mod:`repro.backend.incremental`).
    incremental_rgn_opt: bool = True
    #: Pipeline points whose textual IR to capture into
    #: ``CompilationArtifacts.captured_ir``: any of "lp" (after lp
    #: codegen/fusion), "rgn" (entering rgn-opt), "rgn-opt" (leaving it).
    #: The lowerings mutate modules in place, so these snapshots cannot be
    #: reconstructed after the fact.
    capture_ir: Tuple[str, ...] = ()
    #: Directory to write crash reproducer bundles into when a pass fails
    #: (None disables bundle writing; see :mod:`repro.resilience.bundle`).
    crash_bundle_dir: Optional[str] = None
    #: Graceful-degradation ladders: VM fault → tree-walker re-execution,
    #: corrupt cache entry → recompute (see ``docs/RESILIENCE.md``).
    enable_fallbacks: bool = True
    #: Execution budget applied when running compiled programs: wall-clock
    #: seconds and/or control-transfer steps (None = unbounded).  A tripped
    #: budget raises :class:`~repro.resilience.budgets.
    #: ExecutionBudgetExceeded` instead of hanging.
    execution_budget_seconds: Optional[float] = None
    execution_budget_steps: Optional[int] = None

    def execution_budget(self) -> Optional[ExecutionBudget]:
        """A fresh :class:`ExecutionBudget` for one run, or None."""
        return make_execution_budget(
            self.execution_budget_seconds, self.execution_budget_steps
        )

    @classmethod
    def variant(cls, name: str) -> "PipelineOptions":
        """The variants of Figure 10 and of the RC-optimisation ablation."""
        if name == "simplifier":
            return cls(run_lambda_simplifier=True, run_rgn_optimizations=False)
        if name == "rgn":
            return cls(run_lambda_simplifier=False, run_rgn_optimizations=True)
        if name == "none":
            return cls(run_lambda_simplifier=False, run_rgn_optimizations=False)
        if name in RC_VARIANTS:
            return cls(rc_mode=name[len("rc-"):])
        raise ValueError(f"unknown pipeline variant {name!r}")


FIGURE10_VARIANTS = ("simplifier", "rgn", "none")
RC_VARIANTS = ("rc-naive", "rc-opt", "rc-opt+reuse")


def _check_execution_engine(engine: str) -> None:
    if engine not in EXECUTION_ENGINES:
        raise ValueError(
            f"unknown execution engine {engine!r} (expected {EXECUTION_ENGINES})"
        )


def _check_dispatch(dispatch: str) -> None:
    if dispatch not in DISPATCH_MODES:
        raise ValueError(
            f"unknown dispatch mode {dispatch!r} (expected {DISPATCH_MODES})"
        )


@dataclass
class CompilationArtifacts:
    """Everything produced while compiling one program."""

    surface_source: str
    pure_program: PureProgram
    rc_program: PureProgram
    lp_module: Optional[ModuleOp] = None
    cfg_module: Optional[ModuleOp] = None
    c_source: Optional[str] = None
    pass_statistics: Dict[str, Dict[str, int]] = field(default_factory=dict)
    rc_report: Optional[RcOptReport] = None
    #: Wall time per compilation phase in seconds (frontend, simplify,
    #: rc-insert, lp-codegen, lp-fusion, lp-to-rgn, rgn-opt, rgn-to-cf /
    #: c-emit), populated by the compilers for :mod:`repro.eval.compile_bench`.
    phase_timings: Dict[str, float] = field(default_factory=dict)
    #: Module op counts sampled at pipeline points ("lp" after codegen,
    #: "rgn" entering the rgn optimisations).  The lowerings mutate the
    #: module in place, so these cannot be recomputed afterwards.
    module_op_counts: Dict[str, int] = field(default_factory=dict)
    #: Textual IR snapshots requested via ``PipelineOptions.capture_ir``.
    captured_ir: Dict[str, str] = field(default_factory=dict)


class Frontend:
    """Shared frontend: parse, type check, lower to λpure."""

    @staticmethod
    def to_pure(source: str) -> PureProgram:
        surface = parse_program(source)
        env = check_program(surface)
        return lower_program(surface, env)


class CompilationSession:
    """Shares frontend and lowering work across compilations.

    The eval harness compiles every benchmark through up to nine pipeline
    variants; without a session each run re-parses, re-typechecks and
    re-lowers the identical source.  A session adds a *content-keyed*
    frontend cache: the first compile of a source pays the full frontend,
    later compiles of the same text get a deep copy of the memoised λpure
    program (a copy, so downstream mutation can never leak between runs —
    cached and uncached compiles produce byte-identical IR).

    The prelude itself is shared one level deeper: the builtin typing
    tables are resolved once per process (see
    :func:`repro.lean.typecheck._prelude_tables`), so even cache *misses*
    skip the prelude re-derivation.  The session also owns one
    :class:`LoweringContext`, so interned backend types survive across
    programs.

    Alongside the frontend cache the session memoises *compiled bytecode*
    per module identity: executing the same compiled module repeatedly
    (drivers, REPL-style runs, the multi-run benchmarks) pays the
    bytecode translation once.  Entries hold a strong reference to their
    module, so an ``id`` can never be recycled while its cache row lives.

    The third cache drives **incremental recompilation**: optimised
    per-function rgn IR keyed by (pipeline fingerprint, structural body
    fingerprint) — see :mod:`repro.backend.incremental`.  Recompiling a
    module where one function changed re-runs the rgn-opt pipeline only on
    that function; every other function splices in its cached optimised
    clone.

    Sessions are cheap, single-process objects; the process-sharded harness
    gives each worker its own.
    """

    def __init__(self):
        self._pure_cache: Dict[str, PureProgram] = {}
        self._bytecode_cache: Dict[tuple, tuple] = {}
        self._rgn_opt_cache: Dict[tuple, object] = {}
        self.lowering_context = LoweringContext()
        self.hits = 0
        self.misses = 0
        self.bytecode_hits = 0
        self.bytecode_misses = 0
        self.incremental_hits = 0
        self.incremental_misses = 0

    def frontend(self, source: str) -> PureProgram:
        """λpure program for ``source``, served from the cache when possible.

        Always returns a fresh deep copy — callers own the result.
        """
        cached = self._pure_cache.get(source)
        hit = cached is not None
        if hit:
            try:
                fault_hit("cache.frontend")
            except InjectedFault:
                # A corrupt cached entry: quarantine it and fall back to a
                # clean re-parse (counted, never silent).
                del self._pure_cache[source]
                cached = None
                hit = False
                registry = get_metrics()
                if registry.enabled:
                    registry.bump("resilience.recovered.frontend_cache")
        with get_tracer().span("session:frontend", category="session", hit=hit):
            if cached is None:
                self.misses += 1
                cached = Frontend.to_pure(source)
                self._pure_cache[source] = cached
            else:
                self.hits += 1
            registry = get_metrics()
            if registry.enabled:
                registry.bump(
                    "session.frontend.hits" if hit else "session.frontend.misses"
                )
            return copy.deepcopy(cached)

    def bytecode_for(
        self,
        module: ModuleOp,
        *,
        dispatch: str = "threaded",
        superinstructions: bool = True,
    ) -> BytecodeProgram:
        """Bytecode for a CFG-form ``module``, compiled once per (module,
        dispatch mode, fusion flag)."""
        return self._cached_bytecode(
            module, compile_cfg_module, dispatch, superinstructions
        )

    def rc_bytecode_for(
        self,
        program: PureProgram,
        *,
        dispatch: str = "threaded",
        superinstructions: bool = True,
    ) -> BytecodeProgram:
        """Bytecode for a λrc ``program``, compiled once per (program,
        dispatch mode, fusion flag)."""
        return self._cached_bytecode(
            program, compile_rc_program, dispatch, superinstructions
        )

    #: Bound on cached bytecode rows.  Each row pins its module alive (the
    #: strong reference is what keeps ``id`` keys valid), and compile-only
    #: workloads never hit the cache — without a bound a long-lived session
    #: would retain every module it ever executed.
    BYTECODE_CACHE_LIMIT = 128

    def _cached_bytecode(
        self, source: object, compiler, dispatch: str, superinstructions: bool
    ) -> BytecodeProgram:
        # Keyed on (module identity, dispatch mode, fusion flag): switching
        # engine configuration mid-session must never serve bytecode
        # compiled for another configuration.
        key = (id(source), dispatch, superinstructions)
        entry = self._bytecode_cache.get(key)
        registry = get_metrics()
        if entry is not None and entry[0] is source:
            try:
                fault_hit("cache.bytecode")
            except InjectedFault:
                # Corrupt cached bytecode: drop the row and recompile.
                del self._bytecode_cache[key]
                if registry.enabled:
                    registry.bump("resilience.recovered.bytecode_cache")
                entry = None
        if entry is not None and entry[0] is source:
            self.bytecode_hits += 1
            if registry.enabled:
                registry.bump("session.bytecode.hits")
            return entry[1]
        self.bytecode_misses += 1
        if registry.enabled:
            registry.bump("session.bytecode.misses")
        bytecode = compiler(source, fuse=superinstructions)
        while len(self._bytecode_cache) >= self.BYTECODE_CACHE_LIMIT:
            # FIFO eviction (dicts preserve insertion order): repeated
            # execution of a recent module stays cached, ancient rows go.
            self._bytecode_cache.pop(next(iter(self._bytecode_cache)))
        self._bytecode_cache[key] = (source, bytecode)
        return bytecode

    #: Bound on cached optimised functions.  Each row holds a detached
    #: clone of one function body; FIFO eviction (as for bytecode) keeps a
    #: long-lived session from retaining every function it ever optimised.
    RGN_OPT_CACHE_LIMIT = 512

    def rgn_opt_cached(self, key: tuple):
        """Cached optimised function for ``key``, or None (counts the miss).

        Keys pair the pipeline fingerprint with the function's structural
        body fingerprint (see :mod:`repro.backend.incremental`); hit/miss
        counts publish as ``session.incremental.hits`` / ``.misses``.
        """
        entry = self._rgn_opt_cache.get(key)
        registry = get_metrics()
        if entry is not None:
            self.incremental_hits += 1
            if registry.enabled:
                registry.bump("session.incremental.hits")
            return entry
        self.incremental_misses += 1
        if registry.enabled:
            registry.bump("session.incremental.misses")
        return None

    def rgn_opt_store(self, key: tuple, func) -> None:
        """Remember the optimised (detached, cloned) function for ``key``."""
        while len(self._rgn_opt_cache) >= self.RGN_OPT_CACHE_LIMIT:
            self._rgn_opt_cache.pop(next(iter(self._rgn_opt_cache)))
        self._rgn_opt_cache[key] = func

    def rgn_opt_quarantine(self, key: tuple) -> None:
        """Evict a corrupt/divergent cached function (clean recompile next).

        Counted as ``resilience.quarantine.incremental`` — the degradation
        ladder of the incremental rgn-opt cache (see
        :mod:`repro.backend.incremental`).
        """
        self._rgn_opt_cache.pop(key, None)
        registry = get_metrics()
        if registry.enabled:
            registry.bump("resilience.quarantine.incremental")

    @property
    def stats(self) -> Dict[str, int]:
        """Hit/miss accounting (one entry per distinct source cached)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._pure_cache),
            "bytecode_hits": self.bytecode_hits,
            "bytecode_misses": self.bytecode_misses,
            "bytecode_entries": len(self._bytecode_cache),
            "incremental_hits": self.incremental_hits,
            "incremental_misses": self.incremental_misses,
            "incremental_entries": len(self._rgn_opt_cache),
        }


class PhaseTimer:
    """Per-phase compile bookkeeping shared by both compilers.

    One object per compile owns the ``phase_timings`` dict the
    :class:`CompilationArtifacts` carry; :meth:`phase` accumulates the
    wall time of one phase, opens a telemetry span (``phase:<name>``) and
    publishes ``pipeline.phase.<name>.seconds`` into the active metrics
    registry.  Replaces the timing bookkeeping both
    :class:`BaselineCompiler` and :class:`MlirCompiler` used to carry
    separately.
    """

    __slots__ = ("timings",)

    def __init__(self):
        self.timings: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str):
        with get_tracer().span("phase:" + name, category="phase"):
            start = time.perf_counter()
            try:
                yield
            finally:
                elapsed = time.perf_counter() - start
                self.timings[name] = self.timings.get(name, 0.0) + elapsed
                registry = get_metrics()
                if registry.enabled:
                    registry.observe(
                        "pipeline.phase." + metric_component(name) + ".seconds",
                        elapsed,
                    )


def pass_instrumentations(options: PipelineOptions) -> List[PassInstrumentation]:
    """The pass-instrumentation stack implied by ``options``."""
    if not (
        options.print_ir_after
        or options.print_ir_after_all
        or options.print_ir_on_failure
    ):
        return []
    return [
        PrintIRInstrumentation(
            print_after=options.print_ir_after,
            print_after_all=options.print_ir_after_all,
            print_on_failure=options.print_ir_on_failure,
        )
    ]


def canonicalization_drain_patterns(options: PipelineOptions) -> List:
    """The unified canonicalisation pattern set for ``options``.

    Each ablation flag removes one pattern family from the drain instead of
    removing a pipeline stage, so the pipeline shape (and hence the seeding
    cost) is independent of the ablation configuration.
    """
    return canonicalization_patterns(
        constant_fold=options.enable_constant_fold,
        case_elimination=options.enable_case_elimination,
        common_branch=options.enable_common_branch_elimination,
        dead_region=options.enable_dead_region_elimination,
    )


#: Spec of the lp-level cleanup pipeline run after codegen for the
#: optimised RC modes (the SSA twin of dup/drop fusion).
LP_FUSION_SPEC = "lp-rc-fusion"

#: The ablation flag of ``PipelineOptions`` -> the ``canonicalize`` pass's
#: ``ablate=`` choice it corresponds to.
_ABLATION_FLAGS = (
    ("enable_constant_fold", "constant-fold"),
    ("enable_case_elimination", "case-elim"),
    ("enable_common_branch_elimination", "common-branch"),
    ("enable_dead_region_elimination", "dead-region"),
)


def rgn_pipeline_spec(options: PipelineOptions) -> str:
    """The textual pipeline spec of the rgn optimisation pipeline.

    The default configuration reads ``cse,region-gvn,canonicalize,dce`` —
    runnable verbatim through ``python -m repro.opt``.  Ablation flags map
    onto ``canonicalize{ablate=...}`` options (dropping a pattern family
    from the drain rather than a pipeline stage), and a fully-ablated drain
    drops the ``canonicalize`` element entirely.
    """
    parts = []
    if options.enable_cse:
        parts.append("cse")
    if options.enable_region_gvn:
        parts.append("region-gvn")
    drain_options = [
        f"ablate={choice}"
        for flag, choice in _ABLATION_FLAGS
        if not getattr(options, flag)
    ]
    if len(drain_options) < len(_ABLATION_FLAGS):
        if options.rewrite_engine != "worklist":
            drain_options.append(f"engine={options.rewrite_engine}")
        suffix = "{" + ",".join(drain_options) + "}" if drain_options else ""
        parts.append("canonicalize" + suffix)
    parts.append("dce")
    return ",".join(parts)


def build_spec_pipeline(spec: str, options: PipelineOptions) -> PassManager:
    """Build the pipeline of ``spec`` under the knobs of ``options``."""
    crash_handler = (
        CrashBundleWriter(options.crash_bundle_dir)
        if options.crash_bundle_dir is not None
        else None
    )
    return build_pipeline(
        spec,
        verify_each=options.verify_each,
        verbose=options.verbose_passes,
        instrumentations=pass_instrumentations(options),
        crash_handler=crash_handler,
    )


def rgn_optimization_pipeline(options: PipelineOptions) -> PassManager:
    """The rgn optimisation pass pipeline of the new backend (§IV-B).

    Local simplification is one *canonicalisation drain* — the union of
    constant folding, case elimination (incl. case-of-known-constructor),
    common-branch elimination and dead region elimination — driven to
    fixpoint by the worklist engine with a single per-function seed, instead
    of one fixpoint (and one seed) per pattern family.  The drain runs once,
    after CSE / region GVN, because region GVN is what exposes the
    identical-operand select/switch folds; GVN itself numbers structurally,
    so it does not need folding first.  (Deliberate tradeoff of the single
    seed: constants materialised by the drain are not re-CSE'd — duplicate
    constants are harmless to the cost model, and the final DCE still drops
    unused ones.)

    Built declaratively from :func:`rgn_pipeline_spec` through the pass
    registry, so the in-compiler pipeline and a ``repro.opt`` run of the
    same spec are the same object construction path.
    """
    return build_spec_pipeline(rgn_pipeline_spec(options), options)


class BaselineCompiler:
    """The baseline ("leanc") pipeline: λrc executed directly, C emitted as
    an artifact."""

    def __init__(
        self,
        *,
        enable_simplifier: bool = True,
        rc_mode: str = "naive",
        session: Optional[CompilationSession] = None,
        execution_engine: str = "vm",
        dispatch: str = "threaded",
        superinstructions: bool = True,
        enable_fallbacks: bool = True,
        execution_budget_seconds: Optional[float] = None,
        execution_budget_steps: Optional[int] = None,
    ):
        _check_execution_engine(execution_engine)
        _check_dispatch(dispatch)
        self.enable_simplifier = enable_simplifier
        self.rc_mode = rc_mode
        self.session = session
        self.execution_engine = execution_engine
        self.dispatch = dispatch
        self.superinstructions = superinstructions
        self.enable_fallbacks = enable_fallbacks
        self.execution_budget_seconds = execution_budget_seconds
        self.execution_budget_steps = execution_budget_steps

    def _execution_budget(self) -> Optional[ExecutionBudget]:
        return make_execution_budget(
            self.execution_budget_seconds, self.execution_budget_steps
        )

    def compile(self, source: str) -> CompilationArtifacts:
        phases = PhaseTimer()
        with get_tracer().span(
            "compile", category="pipeline", pipeline="baseline",
            rc_mode=self.rc_mode,
        ):
            with phases.phase("frontend"):
                pure = (
                    self.session.frontend(source)
                    if self.session is not None
                    else Frontend.to_pure(source)
                )
            with phases.phase("simplify"):
                optimized = (
                    simplify_program(copy.deepcopy(pure))
                    if self.enable_simplifier
                    else pure
                )
            with phases.phase("rc-insert"):
                rc, rc_report = insert_optimized_rc(optimized, self.rc_mode)
            with phases.phase("c-emit"):
                c_source = emit_c_source(rc)
        return CompilationArtifacts(
            surface_source=source,
            pure_program=pure,
            rc_program=rc,
            c_source=c_source,
            rc_report=rc_report,
            phase_timings=phases.timings,
        )

    def run(self, source: str, *, check_heap: bool = True) -> RunResult:
        artifacts = self.compile(source)
        return self.execute(artifacts.rc_program, check_heap=check_heap)

    def execute(self, rc_program: PureProgram, *, check_heap: bool = True) -> RunResult:
        """Execute a compiled λrc program with the configured engine.

        A VM-side fault (injected ``vm.dispatch`` or a bytecode bug) falls
        back to the λrc tree-walker — the differential oracle, so figure
        output and metrics are byte-identical — counted as
        ``resilience.fallback.vm_to_tree``.  Budget trips are *not* a VM
        fault and propagate: the tree-walker would only hang longer.
        """
        if self.execution_engine == "tree":
            return RcInterpreter(
                rc_program, budget=self._execution_budget()
            ).run_main(check_heap=check_heap)
        bytecode = (
            self.session.rc_bytecode_for(
                rc_program,
                dispatch=self.dispatch,
                superinstructions=self.superinstructions,
            )
            if self.session is not None
            else compile_rc_program(rc_program, fuse=self.superinstructions)
        )
        try:
            return VirtualMachine(
                bytecode, dispatch=self.dispatch,
                budget=self._execution_budget(),
            ).run_main(check_heap=check_heap)
        except (InjectedFault, BytecodeError):
            if not self.enable_fallbacks:
                raise
            registry = get_metrics()
            if registry.enabled:
                registry.bump("resilience.fallback.vm_to_tree")
            return RcInterpreter(
                rc_program, budget=self._execution_budget()
            ).run_main(check_heap=check_heap)


class MlirCompiler:
    """The new pipeline: λrc → lp → rgn → CFG."""

    def __init__(
        self,
        options: Optional[PipelineOptions] = None,
        *,
        session: Optional[CompilationSession] = None,
    ):
        self.options = options if options is not None else PipelineOptions()
        _check_execution_engine(self.options.execution_engine)
        _check_dispatch(self.options.dispatch)
        self.session = session

    def compile(self, source: str) -> CompilationArtifacts:
        options = self.options
        session = self.session
        lowering_context = (
            session.lowering_context if session is not None else LoweringContext()
        )
        phases = PhaseTimer()
        with get_tracer().span(
            "compile", category="pipeline", pipeline="lp+rgn",
            rc_mode=options.rc_mode,
            rewrite_engine=options.rewrite_engine,
        ):
            with phases.phase("frontend"):
                pure = (
                    session.frontend(source)
                    if session is not None
                    else Frontend.to_pure(source)
                )
            with phases.phase("simplify"):
                staged = copy.deepcopy(pure)
                if options.run_lambda_simplifier:
                    staged = simplify_program(
                        staged, enable_simp_case=options.enable_simp_case
                    )
            with phases.phase("rc-insert"):
                rc, rc_report = insert_optimized_rc(staged, options.rc_mode)
            with phases.phase("lp-codegen"):
                lp_module = generate_lp_module(rc, lowering_context)
            artifacts = CompilationArtifacts(
                surface_source=source,
                pure_program=pure,
                rc_program=rc,
                lp_module=lp_module,
                rc_report=rc_report,
                phase_timings=phases.timings,
            )
            artifacts.module_op_counts["lp"] = sum(1 for _ in lp_module.walk()) - 1
            if options.rc_mode != "naive":
                # The SSA twin of dup/drop fusion: catches pairs exposed by
                # lowering λrc trees into lp blocks.
                with phases.phase("lp-fusion"):
                    lp_fusion = build_spec_pipeline(LP_FUSION_SPEC, options)
                    lp_fusion.run(lp_module)
                artifacts.pass_statistics.update(
                    (name, stats.counters)
                    for name, stats in lp_fusion.statistics.items()
                )
            if "lp" in options.capture_ir:
                artifacts.captured_ir["lp"] = print_module(lp_module)
            with phases.phase("lp-to-rgn"):
                cfg_module = lower_lp_to_rgn(lp_module, lowering_context)
            artifacts.module_op_counts["rgn"] = sum(1 for _ in cfg_module.walk()) - 1
            if "rgn" in options.capture_ir:
                artifacts.captured_ir["rgn"] = print_module(cfg_module)
            if options.run_rgn_optimizations:
                spec = rgn_pipeline_spec(options)
                with phases.phase("rgn-opt"):
                    pipeline = build_spec_pipeline(spec, options)
                    if session is not None and options.incremental_rgn_opt:
                        run_incremental_rgn_opt(
                            cfg_module,
                            pipeline,
                            session,
                            pipeline_fingerprint(spec),
                        )
                    else:
                        pipeline.run(cfg_module)
                artifacts.pass_statistics.update(
                    (name, stats.counters)
                    for name, stats in pipeline.statistics.items()
                )
                if "rgn-opt" in options.capture_ir:
                    artifacts.captured_ir["rgn-opt"] = print_module(cfg_module)
            with phases.phase("rgn-to-cf"):
                cfg_module = lower_rgn_to_cf(cfg_module)
        artifacts.cfg_module = cfg_module
        return artifacts

    def run(self, source: str, *, check_heap: bool = True) -> RunResult:
        artifacts = self.compile(source)
        return self.execute(artifacts.cfg_module, check_heap=check_heap)

    def execute(self, cfg_module: ModuleOp, *, check_heap: bool = True) -> RunResult:
        """Execute a compiled CFG module with the configured engine.

        A VM-side fault (injected ``vm.dispatch`` or a bytecode bug) falls
        back to the CFG tree-walker — the differential oracle, so figure
        output and metrics are byte-identical — counted as
        ``resilience.fallback.vm_to_tree``.  Budget trips are *not* a VM
        fault and propagate: the tree-walker would only hang longer.
        """
        options = self.options
        if options.execution_engine == "tree":
            return CfgInterpreter(
                cfg_module, budget=options.execution_budget()
            ).run_main(check_heap=check_heap)
        bytecode = (
            self.session.bytecode_for(
                cfg_module,
                dispatch=options.dispatch,
                superinstructions=options.superinstructions,
            )
            if self.session is not None
            else compile_cfg_module(cfg_module, fuse=options.superinstructions)
        )
        try:
            return VirtualMachine(
                bytecode, dispatch=options.dispatch,
                budget=options.execution_budget(),
            ).run_main(check_heap=check_heap)
        except (InjectedFault, BytecodeError):
            if not options.enable_fallbacks:
                raise
            registry = get_metrics()
            if registry.enabled:
                registry.bump("resilience.fallback.vm_to_tree")
            return CfgInterpreter(
                cfg_module, budget=options.execution_budget()
            ).run_main(check_heap=check_heap)


def run_reference(
    source: str,
    *,
    session: Optional[CompilationSession] = None,
    budget_seconds: Optional[float] = None,
    budget_steps: Optional[int] = None,
):
    """Run the source through the λpure reference interpreter (golden value)."""
    pure = session.frontend(source) if session is not None else Frontend.to_pure(source)
    budget = make_execution_budget(budget_seconds, budget_steps)
    return normalize(ReferenceInterpreter(pure, budget=budget).run_main())


def run_baseline(
    source: str,
    *,
    check_heap: bool = True,
    rc_mode: str = "naive",
    session: Optional[CompilationSession] = None,
    execution_engine: str = "vm",
    dispatch: str = "threaded",
    superinstructions: bool = True,
    budget_seconds: Optional[float] = None,
    budget_steps: Optional[int] = None,
) -> RunResult:
    """Compile and run via the baseline ("leanc") pipeline."""
    return BaselineCompiler(
        rc_mode=rc_mode,
        session=session,
        execution_engine=execution_engine,
        dispatch=dispatch,
        superinstructions=superinstructions,
        execution_budget_seconds=budget_seconds,
        execution_budget_steps=budget_steps,
    ).run(source, check_heap=check_heap)


def run_mlir(
    source: str,
    options: Optional[PipelineOptions] = None,
    *,
    check_heap: bool = True,
    session: Optional[CompilationSession] = None,
) -> RunResult:
    """Compile and run via the lp+rgn pipeline."""
    return MlirCompiler(options, session=session).run(source, check_heap=check_heap)


def run_rc_variant(
    source: str, variant: str, *, check_heap: bool = True
) -> RunResult:
    """Compile and run via the lp+rgn pipeline at one RC optimisation level
    (``rc-naive`` / ``rc-opt`` / ``rc-opt+reuse``)."""
    if variant not in RC_VARIANTS:
        raise ValueError(f"unknown RC variant {variant!r}")
    return run_mlir(source, PipelineOptions.variant(variant), check_heap=check_heap)


def run_all_backends(source: str) -> Dict[str, RunResult]:
    """Run every pipeline variant on ``source`` (used by differential tests)."""
    results: Dict[str, RunResult] = {"baseline": run_baseline(source)}
    for variant in FIGURE10_VARIANTS:
        results[f"mlir-{variant}"] = run_mlir(source, PipelineOptions.variant(variant))
    results["mlir-default"] = run_mlir(source)
    for variant in RC_VARIANTS[1:]:
        results[f"mlir-{variant}"] = run_mlir(source, PipelineOptions.variant(variant))
        results[f"baseline-{variant}"] = run_baseline(
            source, rc_mode=variant[len("rc-"):]
        )
    return results
