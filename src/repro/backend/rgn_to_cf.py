"""Lowering rgn to a flat CFG (§IV-C).

The semantics of rgn is given entirely by adding structure to flat CFGs, so
the lowering forgets that structure, driven by ``rgn.run``:

* ``rgn.run`` of a known ``rgn.val`` compiles to a branch to (the block made
  from) that region,
* ``rgn.run`` of an ``arith.select`` over regions compiles to a conditional
  branch,
* ``rgn.run`` of a ``rgn.switch`` compiles to a jump table (``cf.switch``),
* dead ``rgn.val`` definitions are dropped.

``lp.return`` becomes ``func.return`` and ``lp.unreachable`` becomes
``cf.unreachable``.  lp data operations survive untouched; they are the
operations the CFG interpreter executes against the runtime.
"""

from __future__ import annotations

from typing import Dict, List

from ..dialects import arith, cf, lp, rgn
from ..dialects.builtin import ModuleOp
from ..dialects.func import FuncOp, ReturnOp
from ..ir.core import Block, Operation, Value
from ..rewrite.pass_manager import ModulePass
from ..transforms.dce import eliminate_dead_code


class RgnToCfError(Exception):
    """Raised when a region value cannot be resolved to branch targets."""


class RgnToCfLowering:
    """Flattens one function's rgn structure into basic blocks."""

    def __init__(self, func: FuncOp):
        self.func = func
        #: rgn.val operation -> CFG block created from its body.
        self._val_blocks: Dict[Operation, Block] = {}

    # -- entry point -----------------------------------------------------------
    def run(self) -> None:
        if self.func.entry_block is None:
            return
        # Process blocks until no structured terminators remain.  New blocks
        # are appended to the function region as region values are flattened.
        index = 0
        region = self.func.body
        while index < len(region.blocks):
            block = region.blocks[index]
            index += 1
            self._lower_terminator(block)
        self._cleanup()

    # -- block creation -------------------------------------------------------------
    def _block_for_val(self, val_op: rgn.ValOp) -> Block:
        existing = self._val_blocks.get(val_op)
        if existing is not None:
            return existing
        body = val_op.body_block
        new_block = Block()
        self.func.body.add_block(new_block)
        for arg in body.arguments:
            new_arg = new_block.add_argument(arg.type, arg.name_hint)
            arg.replace_all_uses_with(new_arg)
        new_block.take_ops_from(body)
        self._val_blocks[val_op] = new_block
        return new_block

    # -- terminator lowering -----------------------------------------------------------
    def _lower_terminator(self, block: Block) -> None:
        terminator = block.last_op
        if terminator is None:
            return
        if isinstance(terminator, lp.ReturnOp):
            value = terminator.value
            operands = [value] if value is not None else []
            terminator.erase()
            block.append(ReturnOp(operands))
            return
        if isinstance(terminator, lp.UnreachableOp):
            terminator.erase()
            block.append(cf.UnreachableOp())
            return
        if isinstance(terminator, rgn.RunOp):
            self._lower_run(block, terminator)
            return
        # func.return / cf.* terminators are already in final form.

    def _lower_run(self, block: Block, run: rgn.RunOp) -> None:
        region_value = run.region_value
        args = run.args
        producer = region_value.owner_op()
        run.erase()

        if isinstance(producer, rgn.ValOp):
            dest = self._block_for_val(producer)
            block.append(cf.BranchOp(dest, args))
            return
        if isinstance(producer, arith.SelectOp):
            true_block = self._resolve_to_block(producer.true_value, args)
            false_block = self._resolve_to_block(producer.false_value, args)
            block.append(
                cf.CondBranchOp(producer.condition, true_block, false_block, args, args)
            )
            return
        if isinstance(producer, rgn.SwitchOp):
            if args:
                raise RgnToCfError(
                    "rgn.run of a rgn.switch with arguments is not supported"
                )
            default_block = self._resolve_to_block(producer.default_region, [])
            case_blocks = [
                self._resolve_to_block(v, []) for v in producer.case_regions
            ]
            block.append(
                cf.SwitchOp(producer.flag, default_block, producer.case_values, case_blocks)
            )
            return
        raise RgnToCfError(
            f"cannot resolve region value produced by {producer.name if producer else region_value!r}"
        )

    def _resolve_to_block(self, region_value: Value, args: List[Value]) -> Block:
        """Resolve a region value to a branch-target block.

        Nested selects/switches are resolved by introducing trampoline blocks
        holding the residual dispatch.
        """
        producer = region_value.owner_op()
        if isinstance(producer, rgn.ValOp):
            dest = self._block_for_val(producer)
            if args and len(dest.arguments) != len(args):
                raise RgnToCfError(
                    "argument count mismatch when branching to a region block"
                )
            return dest
        if isinstance(producer, (arith.SelectOp, rgn.SwitchOp)):
            trampoline = Block()
            self.func.body.add_block(trampoline)
            trampoline.append(rgn.RunOp(region_value, args))
            return trampoline
        raise RgnToCfError(
            f"cannot resolve region value produced by "
            f"{producer.name if producer else region_value!r}"
        )

    # -- cleanup -----------------------------------------------------------------------------
    def _cleanup(self) -> None:
        # Remove the (now empty) rgn.val shells and any dispatch ops whose
        # results became unused.
        eliminate_dead_code(self.func)
        for op in list(self.func.walk()):
            if isinstance(op, rgn.ValOp) and not op.results_used():
                op.erase()
        eliminate_dead_code(self.func)


class RgnToCfPass(ModulePass):
    """Flatten rgn structure into CFG form for every function."""

    name = "rgn-to-cf"

    def run(self, module: Operation) -> None:
        if not isinstance(module, ModuleOp):
            return
        for func in module.functions():
            RgnToCfLowering(func).run()


def lower_rgn_to_cf(module: ModuleOp) -> ModuleOp:
    """Lower every function of ``module`` from rgn form to a flat CFG."""
    RgnToCfPass().run(module)
    return module
