"""The active telemetry session.

Telemetry is *opt-in per execution context*: instrumented components
(pass manager, pipeline phases, session caches, the VM, the harness) call
:func:`get_tracer` / :func:`get_metrics` and receive either the live
session installed by :func:`telemetry_session` or the shared null
singletons, whose every operation is a no-op.  The session lives in a
contextvar, so nested scopes restore the previous session on exit and a
forked worker inherits (a copy of) its parent's state.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from .metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    Number,
    snapshot_delta,
)
from .tracer import NULL_TRACER, Tracer


class TelemetrySession:
    """One tracer plus one metrics registry, installed together."""

    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()


_ACTIVE: contextvars.ContextVar[Optional[TelemetrySession]] = (
    contextvars.ContextVar("repro-telemetry-session", default=None)
)


def active_session() -> Optional[TelemetrySession]:
    return _ACTIVE.get()


def get_tracer():
    """The active session's tracer, or the no-op :data:`NULL_TRACER`."""
    session = _ACTIVE.get()
    return session.tracer if session is not None else NULL_TRACER


def get_metrics():
    """The active session's registry, or the no-op :data:`NULL_REGISTRY`."""
    session = _ACTIVE.get()
    return session.metrics if session is not None else NULL_REGISTRY


@contextmanager
def telemetry_session(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Iterator[TelemetrySession]:
    """Install a telemetry session for the duration of the block."""
    session = TelemetrySession(tracer, metrics)
    token = _ACTIVE.set(session)
    try:
        yield session
    finally:
        _ACTIVE.reset(token)


@contextmanager
def measured_metrics() -> Iterator[Dict[str, Number]]:
    """Yield a dict filled with the metrics recorded inside the block.

    Reuses the active session's registry (reporting the delta, so an outer
    ``--metrics-json`` aggregation still sees everything) or installs a
    private session when none is active.  The dict is populated on exit.
    """
    session = _ACTIVE.get()
    if session is not None:
        before = session.metrics.snapshot()
        out: Dict[str, Number] = {}
        try:
            yield out
        finally:
            out.update(snapshot_delta(session.metrics.snapshot(), before))
    else:
        with telemetry_session() as private:
            out = {}
            try:
                yield out
            finally:
                out.update(private.metrics.snapshot())
