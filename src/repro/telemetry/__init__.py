"""Unified observability layer: tracing, metrics, pass instrumentation.

Three pillars (see ``docs/OBSERVABILITY.md``):

* **Hierarchical span tracing** (:mod:`~repro.telemetry.tracer`) — a
  :class:`Tracer` records nestable, contextvar-scoped spans around
  pipeline phases, passes, session cache lookups, harness measurements
  and VM runs, exporting Chrome trace-event JSON (Perfetto-loadable) and
  a plain-text tree report.
* **Central metrics registry** (:mod:`~repro.telemetry.metrics`) — one
  namespaced :class:`MetricsRegistry` that every stat surface (pass
  counters, phase timings, region-GVN fingerprint meters, session
  hit/miss, VM instruction frequencies) publishes into; one JSON
  snapshot behind the ``--metrics-json`` flags.
* **Pass instrumentation** (:mod:`~repro.telemetry.instrumentation`) —
  MLIR-style ``run_before_pass`` / ``run_after_pass`` /
  ``run_after_pass_failed`` hooks on the pass manager, powering
  ``--print-ir-after=<pass>``, ``--print-ir-after-all`` and
  print-IR-on-failure.

Telemetry is opt-in: components fetch the active session through
:func:`get_tracer` / :func:`get_metrics` and get shared no-op singletons
when none is installed, so the disabled path stays off the profile.
"""

from .context import (
    TelemetrySession,
    active_session,
    get_metrics,
    get_tracer,
    measured_metrics,
    telemetry_session,
)
from .instrumentation import PassInstrumentation, PrintIRInstrumentation
from .metrics import (
    NAMESPACES,
    NULL_REGISTRY,
    MetricsRegistry,
    NullMetricsRegistry,
    metric_component,
    namespace_of,
    snapshot_delta,
)
from .tracer import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "NAMESPACES",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NullTracer",
    "PassInstrumentation",
    "PrintIRInstrumentation",
    "Span",
    "TelemetrySession",
    "Tracer",
    "active_session",
    "get_metrics",
    "get_tracer",
    "measured_metrics",
    "metric_component",
    "namespace_of",
    "snapshot_delta",
    "telemetry_session",
]
