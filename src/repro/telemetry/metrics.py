"""Central metrics registry.

Every stat surface of the compiler publishes into one namespaced
:class:`MetricsRegistry` instead of owning its reporting story:

* ``rewrite.<pass>.<counter>`` — pass-manager counters and meters
  (``rewrite.canonicalize.match_attempts``, the region-GVN fingerprint
  meters, per-pass ``seconds``),
* ``pipeline.phase.<phase>.seconds`` — per-phase compile wall time from
  both compilers,
* ``session.frontend.* / session.bytecode.*`` — compilation-session cache
  hits and misses,
* ``vm.instr.freq.<op>`` — the VM's dynamic instruction frequencies, plus
  ``vm.run.seconds``,
* ``harness.*`` — evaluation-harness bookkeeping,
* ``resilience.*`` — failure-path accounting: injected faults, budget
  trips, crash bundles written, and every graceful-degradation recovery
  (VM→tree fallback, rescan retry, cache quarantine).

The registry stores integer counters (:meth:`bump`) and float gauges
(:meth:`observe`, accumulating — repeated observations of a timing add
up, mirroring how ``phase_timings`` accumulates).  :meth:`snapshot`
returns one sorted, JSON-ready dict — the payload behind the
``--metrics-json`` CLI flags.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Union

Number = Union[int, float]

#: Every valid top-level metric namespace.  ``docs/OBSERVABILITY.md``
#: documents each one; ``tests/test_telemetry.py`` drift-tests the two
#: against each other and against a real compile's snapshot.
NAMESPACES = ("harness", "pipeline", "resilience", "rewrite", "session", "vm")

_COMPONENT_SANITIZER = re.compile(r"[^A-Za-z0-9_]")


def metric_component(raw: str) -> str:
    """A raw name (pass name, counter name, …) as one metric-key component.

    Hyphenated counter names (``match-attempts``) and pass names
    (``region-gvn``) become underscore-joined components, so every key is
    ``namespace.dotted.path`` with predictable separators.
    """
    return _COMPONENT_SANITIZER.sub("_", raw)


def namespace_of(key: str) -> str:
    """Top-level namespace of a metric key."""
    return key.split(".", 1)[0]


class MetricsRegistry:
    """Namespaced counters and gauges for one telemetry session."""

    enabled = True

    def __init__(self):
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}

    # -- recording ---------------------------------------------------------
    def bump(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the integer counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        """Accumulate ``value`` into the float gauge ``name``."""
        self._gauges[name] = self._gauges.get(name, 0.0) + value

    # -- reading -----------------------------------------------------------
    def get(self, name: str, default: Number = 0) -> Number:
        if name in self._counters:
            return self._counters[name]
        return self._gauges.get(name, default)

    def snapshot(self) -> Dict[str, Number]:
        """Every metric, keys sorted — the ``--metrics-json`` payload."""
        merged: Dict[str, Number] = {}
        merged.update(self._counters)
        merged.update(self._gauges)
        return dict(sorted(merged.items()))

    def write_json(self, path: str) -> None:
        payload = {
            "schema": "repro/metrics/v1",
            "metrics": self.snapshot(),
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges)


class NullMetricsRegistry:
    """The disabled registry: accepts everything, stores nothing."""

    enabled = False
    __slots__ = ()

    def bump(self, name: str, amount: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def get(self, name: str, default: Number = 0) -> Number:
        return default

    def snapshot(self) -> Dict[str, Number]:
        return {}

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullMetricsRegistry()


def snapshot_delta(
    after: Dict[str, Number], before: Dict[str, Number]
) -> Dict[str, Number]:
    """The metrics recorded between two snapshots of the same registry."""
    delta: Dict[str, Number] = {}
    for key, value in after.items():
        changed = value - before.get(key, 0)
        if changed:
            delta[key] = changed
    return delta
