"""Hierarchical span tracing.

A :class:`Tracer` records a tree of timed *spans* — one per pipeline phase,
pass, session cache lookup, VM run, … — and exports it either as a
Chrome trace-event JSON file (loadable in Perfetto / ``chrome://tracing``,
MLIR's ``-mlir-timing`` analogue with real nesting) or as a plain-text
tree report.

Spans nest through a contextvar, so the parent of a new span is whatever
span is open in the *current execution context* — correct across
generators and ``contextvars``-aware schedulers, and isolated per forked
worker process.

When no telemetry session is active the process-wide tracer is
:data:`NULL_TRACER`, whose :meth:`~NullTracer.span` returns one shared
no-op context manager — the disabled path costs an attribute lookup and
two empty method calls, nothing more.
"""

from __future__ import annotations

import contextvars
import json
import os
import time
from typing import Dict, List, Optional


class Span:
    """One timed, named interval; a node of the trace tree.

    Spans are context managers handed out by :meth:`Tracer.span`; entering
    starts the clock and links the span under the currently open span,
    exiting stops it.  ``args`` carries arbitrary key/value annotations
    (``set`` adds more while the span is open) that end up in the Chrome
    trace's ``args`` field.
    """

    __slots__ = (
        "name", "category", "args", "start", "end", "children",
        "_tracer", "_token",
    )

    def __init__(self, tracer: "Tracer", name: str, category: str, args: Dict):
        self.name = name
        self.category = category
        self.args = args
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self.children: List["Span"] = []
        self._tracer = tracer
        self._token = None

    def set(self, key: str, value) -> "Span":
        """Annotate the span; chains, so usable inline in a ``with``."""
        self.args[key] = value
        return self

    @property
    def duration_seconds(self) -> float:
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._tracer._exit(self)
        return False

    def __repr__(self):
        return (
            f"Span({self.name!r}, cat={self.category!r}, "
            f"dur={self.duration_seconds * 1e3:.2f}ms, "
            f"children={len(self.children)})"
        )


class _NullSpan:
    """Shared no-op span: the body of every disabled ``with tracer.span``."""

    __slots__ = ()

    def set(self, key: str, value) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: hands out :data:`NULL_SPAN`, records nothing."""

    enabled = False
    __slots__ = ()

    def span(self, name: str, category: str = "misc", **args) -> _NullSpan:
        return NULL_SPAN


NULL_TRACER = NullTracer()


class Tracer:
    """Records a forest of :class:`Span` trees for one telemetry session."""

    enabled = True

    def __init__(self):
        #: Finished (or still-open) top-level spans, in start order.
        self.roots: List[Span] = []
        self._epoch = time.perf_counter()
        self._current: contextvars.ContextVar[Optional[Span]] = (
            contextvars.ContextVar("repro-tracer-current", default=None)
        )

    # -- recording ---------------------------------------------------------
    def span(self, name: str, category: str = "misc", **args) -> Span:
        """A new span; enter it (``with``) to start the clock."""
        return Span(self, name, category, args)

    def current_span(self) -> Optional[Span]:
        return self._current.get()

    def _enter(self, span: Span) -> None:
        parent = self._current.get()
        if parent is None:
            self.roots.append(span)
        else:
            parent.children.append(span)
        span._token = self._current.set(span)
        span.start = time.perf_counter()

    def _exit(self, span: Span) -> None:
        span.end = time.perf_counter()
        if span._token is not None:
            self._current.reset(span._token)
            span._token = None

    # -- introspection -----------------------------------------------------
    def all_spans(self) -> List[Span]:
        """Every recorded span, depth-first in start order."""
        out: List[Span] = []
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            out.append(span)
            stack.extend(reversed(span.children))
        return out

    def find(self, name: str) -> List[Span]:
        return [s for s in self.all_spans() if s.name == name]

    # -- Chrome trace-event export -----------------------------------------
    def to_chrome_trace(self) -> Dict[str, object]:
        """The trace as a Chrome trace-event JSON object.

        Every span becomes one complete event (``"ph": "X"``) with
        microsecond ``ts``/``dur`` relative to the tracer's construction —
        the JSON object format Perfetto and ``chrome://tracing`` load
        directly.
        """
        pid = os.getpid()
        events = []
        for span in self.all_spans():
            start = span.start if span.start is not None else self._epoch
            end = span.end if span.end is not None else start
            events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": (start - self._epoch) * 1e6,
                "dur": (end - start) * 1e6,
                "pid": pid,
                "tid": 1,
                "args": dict(span.args),
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1, default=str)
            handle.write("\n")

    # -- text report -------------------------------------------------------
    def report(self) -> str:
        """Plain-text span tree with per-span wall time."""
        title = "Telemetry trace"
        lines = [title, "=" * len(title)]
        if not self.roots:
            lines.append("(no spans recorded)")
        for root in self.roots:
            self._format(root, 0, lines)
        return "\n".join(lines)

    def _format(self, span: Span, depth: int, lines: List[str]) -> None:
        label = "  " * depth + span.name
        annotations = "".join(
            f" {key}={value}" for key, value in sorted(span.args.items())
        )
        lines.append(
            f"{label:44s} {span.duration_seconds * 1e3:9.3f} ms{annotations}"
        )
        for child in span.children:
            self._format(child, depth + 1, lines)
