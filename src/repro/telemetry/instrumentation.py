"""MLIR-style pass instrumentation.

:class:`PassInstrumentation` callbacks hook the
:class:`~repro.rewrite.pass_manager.PassManager` around every pass:
``run_before_pass`` / ``run_after_pass`` bracket a successful run,
``run_after_pass_failed`` fires when the pass itself raises (e.g. a
:class:`~repro.rewrite.driver.NonConvergenceError`) **or** when the
post-pass ``verify_each`` verification rejects the module.

:class:`PrintIRInstrumentation` is the standard consumer — MLIR's
``--mlir-print-ir-after`` / ``--mlir-print-ir-after-all`` /
print-on-failure, surfaced on the CLI as ``--print-ir-after=<pass>``,
``--print-ir-after-all`` and the always-on failure dump.
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence, TextIO


class PassInstrumentation:
    """Base class: every callback defaults to a no-op."""

    def run_before_pass(self, pass_, module) -> None:
        """Called immediately before ``pass_`` runs on ``module``."""

    def run_after_pass(self, pass_, module) -> None:
        """Called after ``pass_`` ran and (when enabled) verification
        passed."""

    def run_after_pass_failed(self, pass_, module, error: Exception) -> None:
        """Called when ``pass_`` raised or post-pass verification failed."""


class PrintIRInstrumentation(PassInstrumentation):
    """Dump IR around pass execution.

    * ``print_after`` — pass names whose output IR is printed,
    * ``print_after_all`` — print the module after every pass,
    * ``print_on_failure`` — when a pass fails (pattern non-convergence or
      a ``verify_each`` rejection), print the offending IR: for a
      verification failure, each failing *function* (located by re-running
      the verifier per function) together with its error list; otherwise
      the whole module.

    ``stream`` defaults to ``sys.stderr`` resolved at print time, so
    test harnesses that capture stderr see the dumps.
    """

    def __init__(
        self,
        *,
        print_after: Sequence[str] = (),
        print_after_all: bool = False,
        print_on_failure: bool = True,
        stream: Optional[TextIO] = None,
    ):
        self.print_after = frozenset(print_after)
        self.print_after_all = print_after_all
        self.print_on_failure = print_on_failure
        self._stream = stream

    @property
    def stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stderr

    def _dump(self, header: str, op) -> None:
        from ..ir.printer import print_op

        print(f"// -----// {header} //----- //", file=self.stream)
        print(print_op(op), file=self.stream)

    def run_after_pass(self, pass_, module) -> None:
        if self.print_after_all or pass_.name in self.print_after:
            self._dump(f"IR Dump After {pass_.name}", module)

    def run_after_pass_failed(self, pass_, module, error: Exception) -> None:
        if not self.print_on_failure:
            return
        from ..ir.verifier import VerificationError

        stream = self.stream
        print(
            f"// -----// IR Dump After {pass_.name} Failed "
            f"({type(error).__name__}) //----- //",
            file=stream,
        )
        if isinstance(error, VerificationError):
            if self._dump_failing_functions(pass_, module, stream):
                return
        # Non-verifier failures (or errors outside any function): the
        # whole module is the most precise thing we can show.
        from ..ir.printer import print_op

        print(print_op(module), file=stream)

    def _dump_failing_functions(self, pass_, module, stream: TextIO) -> bool:
        """Print every function the verifier rejects; True if any found."""
        from ..dialects.func import FuncOp
        from ..ir.printer import print_op
        from ..ir.verifier import collect_errors

        found = False
        for op in module.walk():
            if not isinstance(op, FuncOp):
                continue
            errors = collect_errors(op)
            if not errors:
                continue
            found = True
            print(
                f"// function @{op.sym_name} failed verification after "
                f"pass '{pass_.name}':",
                file=stream,
            )
            for message in errors:
                print(f"//   {message}", file=stream)
            print(print_op(op), file=stream)
        return found
