"""repro — a reproduction of *Lambda the Ultimate SSA* (CGO 2022).

The package implements, in pure Python, every subsystem the paper relies on:

* ``repro.ir`` — a mini-MLIR: SSA values, operations, blocks, nested regions,
  attributes, types, a verifier, a textual printer/parser, traits and
  dominance analysis.
* ``repro.dialects`` — the ``func``/``arith``/``cf``/``scf`` substrate
  dialects and the paper's ``lp`` and ``rgn`` dialects.
* ``repro.rewrite`` — pattern rewriting, the greedy rewrite driver and a pass
  manager.
* ``repro.transforms`` — classical SSA passes (CSE, DCE, canonicalisation,
  inlining, constant folding) and the paper's region optimisations
  (dead-region elimination, global region numbering, case elimination,
  common-branch elimination).
* ``repro.lean`` — a mini-LEAN functional frontend.
* ``repro.lambda_pure`` / ``repro.lambda_rc`` — the λpure / λrc intermediate
  representations, pattern-match compilation with join points, lambda
  lifting, the λpure simplifier and reference-count insertion.
* ``repro.runtime`` — a simulated LEAN runtime (boxed objects, closures, big
  integers, arrays, reference counting).
* ``repro.backend`` — the baseline (λrc → C-like) and new (λrc → lp → rgn →
  CFG) backends and the pipeline drivers.
* ``repro.interp`` — interpreters with a deterministic cost model.
* ``repro.eval`` — benchmark programs and the Figure 9/10/11 harness.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
