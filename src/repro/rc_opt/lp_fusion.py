"""Dup/drop fusion on the lp dialect.

The SSA twin of :mod:`repro.rc_opt.fusion`: within every basic block, scan
maximal runs of consecutive ``lp.inc`` / ``lp.dec`` operations and

* cancel an ``lp.inc`` against a later ``lp.dec`` of the *same SSA value*
  in the same run (never the converse — a decrement may free), and
* merge adjacent same-kind operations on the same value into a single op
  with a larger ``count``.

λrc-level fusion already normalises most of the traffic before code
generation; this pass additionally catches pairs exposed by later lowering
(e.g. join-point inlining in lp→rgn) and demonstrates the same optimisation
expressed as a rewrite over region-based SSA rather than over a tree IR.
"""

from __future__ import annotations

from typing import List

from ..dialects import lp
from ..ir.attributes import IntegerAttr
from ..ir.core import Block, Operation
from ..rewrite.pass_manager import FunctionPass
from ..rewrite.registry import register_pass


def _fuse_block(block: Block) -> int:
    """Fuse RC runs inside one block; returns the number of removed ops.

    Walks the intrusive op list once, collecting each maximal inc/dec run
    before fusing it — the cursor is already past a run when its members are
    erased, so no snapshot of the block is needed.
    """
    removed = 0
    op = block.first_op
    while op is not None:
        if not isinstance(op, (lp.IncOp, lp.DecOp)):
            op = op.next_op
            continue
        run: List[Operation] = []
        while op is not None and isinstance(op, (lp.IncOp, lp.DecOp)):
            run.append(op)
            op = op.next_op
        removed += _fuse_run(run)
    return removed


def _fuse_run(run: List[Operation]) -> int:
    counts = {id(op): op.count for op in run}
    # Cancel decs against earlier incs of the same SSA value.
    for position, op in enumerate(run):
        if not isinstance(op, lp.DecOp):
            continue
        remaining = counts[id(op)]
        for earlier in run[:position]:
            if not isinstance(earlier, lp.IncOp):
                continue
            if earlier.value is not op.value:
                continue
            available = counts[id(earlier)]
            cancelled = min(available, remaining)
            if cancelled <= 0:
                continue
            counts[id(earlier)] -= cancelled
            remaining -= cancelled
            if remaining == 0:
                break
        counts[id(op)] = remaining
    removed = 0
    survivors: List[Operation] = []
    for op in run:
        if counts[id(op)] == 0:
            op.erase()
            removed += 1
            continue
        survivors.append(op)
    # Merge adjacent same-kind ops on the same value.
    merged: List[Operation] = []
    for op in survivors:
        if (
            merged
            and type(merged[-1]) is type(op)
            and merged[-1].value is op.value
        ):
            keep = merged[-1]
            counts[id(keep)] += counts[id(op)]
            op.erase()
            removed += 1
        else:
            merged.append(op)
    for op in merged:
        op.attributes["count"] = IntegerAttr(counts[id(op)])
    return removed


@register_pass
class LpRcFusionPass(FunctionPass):
    """Cancel/merge ``lp.inc``/``lp.dec`` runs in every function."""

    name = "lp-rc-fusion"

    def run_on_function(self, func) -> None:
        removed = 0
        for op in list(func.walk()):
            for region in op.regions:
                for block in region.blocks:
                    removed += _fuse_block(block)
        if removed:
            self.statistics.bump("rc-ops-removed", removed)


def fuse_lp_module(module) -> int:
    """Convenience entry point: run fusion over a whole module; returns the
    number of removed RC operations."""
    pass_ = LpRcFusionPass()
    pass_.run(module)
    return pass_.statistics.get("rc-ops-removed")
