"""Perceus-style reference-count optimisation (λrc → λrc).

This subsystem runs between RC insertion and backend lowering and implements
three cooperating analyses in the lineage of LEAN 4's "Counting Immutable
Beans" scheme and Koka's Perceus precise reference counting:

* :mod:`repro.rc_opt.borrow` — per-function borrow signatures via a
  call-graph fixpoint, so parameters that are only inspected are passed
  without inc/dec traffic,
* :mod:`repro.rc_opt.fusion` — intra-procedural dup/drop fusion that cancels
  and merges redundant ``inc``/``dec`` runs on λrc,
* :mod:`repro.rc_opt.reuse` — constructor-reuse analysis that pairs a
  ``dec`` of a dead cell with a same-arity constructor so the runtime can
  recycle the allocation in place (``reset``/``reuse`` tokens),
* :mod:`repro.rc_opt.lp_fusion` — the SSA twin of dup/drop fusion as a pass
  over the lp dialect.

:func:`insert_optimized_rc` is the front door used by the compilation
pipelines: it performs RC insertion at one of three optimisation levels
(``naive`` / ``opt`` / ``opt+reuse``), matching the pipeline ablation
variants ``rc-naive`` / ``rc-opt`` / ``rc-opt+reuse``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..lambda_pure.ir import Program
from ..lambda_rc.refcount import BorrowSignatures, insert_rc
from .borrow import (
    borrowed_parameter_count,
    infer_borrow_signatures,
    reuse_critical_params,
)
from .fusion import FusionStats, fuse_rc
from .lp_fusion import LpRcFusionPass, fuse_lp_module
from .reuse import ReuseStats, apply_reuse

#: The RC optimisation levels understood by the pipelines.
RC_MODES = ("naive", "opt", "opt+reuse")


@dataclass
class RcOptReport:
    """What the optimiser did to one program."""

    mode: str = "naive"
    borrowed_parameters: int = 0
    signatures: BorrowSignatures = field(default_factory=dict)
    fusion: FusionStats = field(default_factory=FusionStats)
    reuse: ReuseStats = field(default_factory=ReuseStats)


def insert_optimized_rc(
    pure_program: Program, mode: str = "naive"
) -> Tuple[Program, RcOptReport]:
    """λpure → λrc at the requested optimisation level.

    * ``naive``      — the seed owned-arguments discipline,
    * ``opt``        — borrow inference + dup/drop fusion,
    * ``opt+reuse``  — ``opt`` plus constructor-reuse analysis.
    """
    if mode not in RC_MODES:
        raise ValueError(f"unknown RC optimisation mode {mode!r}")
    report = RcOptReport(mode=mode)
    if mode == "naive":
        return insert_rc(pure_program), report

    keep_owned = reuse_critical_params(pure_program) if mode == "opt+reuse" else None
    signatures = infer_borrow_signatures(pure_program, keep_owned)
    report.signatures = signatures
    report.borrowed_parameters = borrowed_parameter_count(signatures)
    rc_program = insert_rc(pure_program, signatures)
    rc_program, report.fusion = fuse_rc(rc_program)
    if mode == "opt+reuse":
        rc_program, report.reuse = apply_reuse(rc_program)
    return rc_program, report


__all__ = [
    "RC_MODES",
    "RcOptReport",
    "BorrowSignatures",
    "FusionStats",
    "ReuseStats",
    "LpRcFusionPass",
    "apply_reuse",
    "borrowed_parameter_count",
    "fuse_lp_module",
    "fuse_rc",
    "infer_borrow_signatures",
    "insert_optimized_rc",
    "reuse_critical_params",
]
