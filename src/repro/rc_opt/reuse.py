"""Constructor-reuse analysis — turn ``dec`` + ``ctor`` into in-place reuse.

The destructive-update idiom of Perceus / "Counting Immutable Beans":
when a constructor cell is released (``dec x``) and, on the same straight-line
path, a *same-arity* constructor is allocated, the allocation can reuse the
released cell in place:

    dec x; ... let y := ctor_k(a, b); ...
        ⇒
    let t := reset x; ... let y := reuse t in ctor_k(a, b); ...

``reset`` consumes the reference: if the cell is uniquely owned its fields
are released and the cell itself becomes a *reuse token*; otherwise the
reference count is decremented as the ``dec`` would have, and the token is
null.  ``reuse`` constructs through the token — in place (no allocation)
when the token is live, through the ordinary allocator when it is null.
This preserves the heap balance invariant in both cases, which the runtime
heap checker verifies on every benchmark.

The transform is deliberately local: a ``dec`` is only paired with a
constructor found by walking the *linear* continuation (``let``/``inc``/
``dec`` spine) below it, never across a branch, join point or jump — so the
token is statically guaranteed to reach exactly one ``reuse``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..lambda_pure.ir import (
    Case,
    CaseAlt,
    Ctor,
    Dec,
    FnBody,
    Function,
    Inc,
    JDecl,
    Jmp,
    Let,
    Program,
    Reset,
    Ret,
    Reuse,
    Unreachable,
)


@dataclass
class ReuseStats:
    """Counters describing one reuse-analysis run."""

    reuse_pairs: int = 0

    def merge(self, other: "ReuseStats") -> None:
        self.reuse_pairs += other.reuse_pairs


class ReuseAnalyzer:
    """Applies constructor-reuse rewriting to one function."""

    def __init__(self, ctor_arities: Dict[Tuple[str, int], int], stats: ReuseStats):
        self.ctor_arities = ctor_arities
        self.stats = stats
        self._fresh = 0

    def _fresh_token(self) -> str:
        self._fresh += 1
        return f"_reuse_tok_{self._fresh}"

    # -- pairing ---------------------------------------------------------------
    def _try_reuse(
        self, dec: Dec, arity: int, shapes: Dict[str, int]
    ) -> Optional[FnBody]:
        """Try to pair ``dec`` with a same-arity ctor on the linear spine
        below it; returns the rewritten body or ``None``."""
        token = self._fresh_token()
        rewritten = self._replace_first_ctor(dec.body, token, arity)
        if rewritten is None:
            return None
        self.stats.reuse_pairs += 1
        return Let(token, Reset(dec.var), self.visit(rewritten, shapes))

    def _replace_first_ctor(
        self, body: FnBody, token: str, arity: int
    ) -> Optional[FnBody]:
        """Replace the first same-arity ``Ctor`` on the linear spine with a
        ``Reuse`` through ``token``; ``None`` when no candidate exists."""
        if isinstance(body, Let):
            expr = body.expr
            if isinstance(expr, Ctor) and len(expr.args) == arity and arity > 0:
                reuse = Reuse(
                    token, expr.tag, list(expr.args), expr.type_name, expr.ctor_name
                )
                return Let(body.var, reuse, body.body)
            inner = self._replace_first_ctor(body.body, token, arity)
            if inner is None:
                return None
            return Let(body.var, body.expr, inner)
        if isinstance(body, (Inc, Dec)):
            inner = self._replace_first_ctor(body.body, token, arity)
            if inner is None:
                return None
            node = Inc if isinstance(body, Inc) else Dec
            return node(body.var, inner, body.count)
        # Stop at any control flow: the token must reach exactly one reuse.
        return None

    # -- the rewriting walk ----------------------------------------------------
    def visit(self, body: FnBody, shapes: Dict[str, int]) -> FnBody:
        if isinstance(body, Dec):
            arity = shapes.get(body.var)
            if arity is not None and arity > 0 and body.count == 1:
                rewritten = self._try_reuse(body, arity, shapes)
                if rewritten is not None:
                    return rewritten
            return Dec(body.var, self.visit(body.body, shapes), body.count)
        if isinstance(body, Inc):
            return Inc(body.var, self.visit(body.body, shapes), body.count)
        if isinstance(body, Let):
            shapes = dict(shapes)
            if isinstance(body.expr, Ctor):
                shapes[body.var] = len(body.expr.args)
            elif isinstance(body.expr, Reuse):
                shapes[body.var] = len(body.expr.args)
            else:
                shapes.pop(body.var, None)
            return Let(body.var, body.expr, self.visit(body.body, shapes))
        if isinstance(body, Case):
            alts = []
            for alt in body.alts:
                branch_shapes = dict(shapes)
                arity = self.ctor_arities.get((body.type_name, alt.tag))
                if arity is not None:
                    branch_shapes[body.var] = arity
                else:
                    branch_shapes.pop(body.var, None)
                alts.append(
                    CaseAlt(alt.tag, alt.ctor_name, self.visit(alt.body, branch_shapes))
                )
            default = None
            if body.default is not None:
                default_shapes = dict(shapes)
                default_shapes.pop(body.var, None)
                default = self.visit(body.default, default_shapes)
            return Case(body.var, alts, default, body.type_name)
        if isinstance(body, JDecl):
            return JDecl(
                body.label,
                body.params,
                self.visit(body.jbody, shapes),
                self.visit(body.rest, shapes),
            )
        if isinstance(body, (Ret, Jmp, Unreachable)):
            return body
        raise TypeError(f"unknown FnBody node {body!r}")


def constructor_arities(program: Program) -> Dict[Tuple[str, int], int]:
    """Map ``(type name, tag)`` to the constructor's field count."""
    return {
        (info.type_name, info.tag): info.arity
        for info in program.constructors.values()
    }


def apply_reuse(program: Program) -> Tuple[Program, ReuseStats]:
    """Run constructor-reuse analysis over every function of a λrc program."""
    stats = ReuseStats()
    arities = constructor_arities(program)
    result = Program(constructors=dict(program.constructors), main=program.main)
    for name, fn in program.functions.items():
        analyzer = ReuseAnalyzer(arities, stats)
        result.functions[name] = Function(
            fn.name,
            fn.params,
            analyzer.visit(fn.body, {}),
            fn.borrowed,
            borrowed_params=fn.borrowed_params,
        )
    return result, stats
