"""Borrow inference — per-function borrow signatures via a call-graph fixpoint.

A parameter may be passed *borrowed* (no ownership transfer, hence no
inc/dec traffic) when the function only ever inspects it: uses it as a
``case`` scrutinee, a ``proj`` operand, or forwards it in a position that is
itself borrowed.  Any owning use — storing it in a constructor or closure,
returning it, passing it to a join point or to an owned parameter of a
callee — forces the parameter to be owned.

The analysis is the optimistic fixpoint of "Counting Immutable Beans" (Ullrich
& de Moura) as adopted by Koka's Perceus: start with *every* eligible
parameter marked borrowed and repeatedly demote parameters with an owning
use until nothing changes.  Because a demotion can only create new owning
uses at call sites (never remove one), the iteration is monotone and
terminates — including through mutual recursion, where a stable all-borrowed
signature survives precisely when the recursive cycle only inspects the
parameter.

Functions that escape as closures (``pap`` targets) keep all-owned
signatures: the generic apply machinery always transfers ownership.  The
program entry point keeps an owned signature as well (the driver owns the
arguments it passes).

Borrowing interacts with constructor reuse: a borrowed parameter is never
``dec``-ed by the callee, so the dead cell that reuse analysis would pair
with a same-arity constructor never appears.  :func:`reuse_critical_params`
identifies parameters with such reuse potential so the ``opt+reuse``
pipeline can keep them owned (the same owned-over-borrowed preference the
Lean 4 compiler applies).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..lambda_pure.ir import (
    App,
    Call,
    Case,
    Ctor,
    Dec,
    FnBody,
    Function,
    Inc,
    JDecl,
    Jmp,
    Let,
    PAp,
    Program,
    Proj,
    Reset,
    Ret,
    Reuse,
    Unreachable,
)
from ..lambda_rc.refcount import BorrowSignatures


def _pap_targets(program: Program) -> Set[str]:
    """Functions that escape as closures (all parameters must stay owned)."""
    targets: Set[str] = set()

    def walk(body: FnBody) -> None:
        if isinstance(body, Let):
            if isinstance(body.expr, PAp):
                targets.add(body.expr.fn)
            walk(body.body)
        elif isinstance(body, Case):
            for alt in body.alts:
                walk(alt.body)
            if body.default is not None:
                walk(body.default)
        elif isinstance(body, JDecl):
            walk(body.jbody)
            walk(body.rest)
        elif isinstance(body, (Inc, Dec)):
            walk(body.body)

    for fn in program.functions.values():
        walk(fn.body)
    return targets


def _owned_uses(fn: Function, signatures: BorrowSignatures) -> Set[str]:
    """Variables of ``fn`` with at least one owning use, given the current
    candidate signatures of its callees."""
    owned: Set[str] = set()

    def walk(body: FnBody) -> None:
        if isinstance(body, Let):
            expr = body.expr
            if isinstance(expr, (Ctor, PAp, App, Reset, Reuse)):
                owned.update(expr.arg_vars())
            elif isinstance(expr, Call):
                borrowed_positions = signatures.get(expr.fn, frozenset())
                for index, arg in enumerate(expr.args):
                    if index not in borrowed_positions:
                        owned.add(arg)
            # Proj and Lit only borrow.
            walk(body.body)
        elif isinstance(body, Ret):
            owned.add(body.var)
        elif isinstance(body, Jmp):
            # Join parameters are owned by the join body; be conservative.
            owned.update(body.args)
        elif isinstance(body, Case):
            # The scrutinee itself is borrowed; visit the branches.
            for alt in body.alts:
                walk(alt.body)
            if body.default is not None:
                walk(body.default)
        elif isinstance(body, JDecl):
            walk(body.jbody)
            walk(body.rest)
        elif isinstance(body, (Inc, Dec)):
            walk(body.body)
        elif isinstance(body, Unreachable):
            pass
        else:
            raise TypeError(f"unknown FnBody node {body!r}")

    walk(fn.body)
    return owned


def reuse_critical_params(program: Program) -> Dict[str, Set[int]]:
    """Parameters with constructor-reuse potential (keep them owned).

    A parameter is reuse-critical when the function cases on it and some
    alternative of known positive arity constructs a same-arity value: once
    the parameter is owned, RC insertion releases the dead cell inside that
    branch and reuse analysis can pair the ``dec`` with the constructor.
    """
    from .reuse import constructor_arities

    arities = constructor_arities(program)

    def ctor_arities_in(body: FnBody, found: Set[int]) -> None:
        if isinstance(body, Let):
            if isinstance(body.expr, Ctor):
                found.add(len(body.expr.args))
            ctor_arities_in(body.body, found)
        elif isinstance(body, Case):
            for alt in body.alts:
                ctor_arities_in(alt.body, found)
            if body.default is not None:
                ctor_arities_in(body.default, found)
        elif isinstance(body, JDecl):
            ctor_arities_in(body.jbody, found)
            ctor_arities_in(body.rest, found)
        elif isinstance(body, (Inc, Dec)):
            ctor_arities_in(body.body, found)

    critical: Dict[str, Set[int]] = {}

    def walk(fn: Function, body: FnBody) -> None:
        if isinstance(body, Case):
            if body.var in fn.params:
                for alt in body.alts:
                    arity = arities.get((body.type_name, alt.tag))
                    if arity is None or arity == 0:
                        continue
                    built: Set[int] = set()
                    ctor_arities_in(alt.body, built)
                    if arity in built:
                        critical.setdefault(fn.name, set()).add(
                            fn.params.index(body.var)
                        )
                        break
            for alt in body.alts:
                walk(fn, alt.body)
            if body.default is not None:
                walk(fn, body.default)
        elif isinstance(body, Let):
            walk(fn, body.body)
        elif isinstance(body, JDecl):
            walk(fn, body.jbody)
            walk(fn, body.rest)
        elif isinstance(body, (Inc, Dec)):
            walk(fn, body.body)

    for fn in program.functions.values():
        walk(fn, fn.body)
    return critical


def infer_borrow_signatures(
    program: Program, keep_owned: Optional[Dict[str, Set[int]]] = None
) -> BorrowSignatures:
    """Compute the greatest borrow signature for every function.

    ``keep_owned`` (function name → parameter indices) excludes parameters
    from borrowing up front — used to preserve constructor-reuse
    opportunities (see :func:`reuse_critical_params`).

    Returns a map ``function name -> frozenset of borrowed parameter
    indices``; functions without an entry have all-owned parameters.
    """
    escaping = _pap_targets(program)
    keep_owned = keep_owned or {}
    signatures: Dict[str, frozenset] = {}
    for name, fn in program.functions.items():
        if name == program.main or name in escaping:
            continue
        pinned = keep_owned.get(name, set())
        signatures[name] = frozenset(
            index for index in range(fn.arity) if index not in pinned
        )

    changed = True
    while changed:
        changed = False
        for name in list(signatures):
            fn = program.functions[name]
            owned = _owned_uses(fn, signatures)
            demoted = frozenset(
                index
                for index in signatures[name]
                if fn.params[index] not in owned
            )
            if demoted != signatures[name]:
                signatures[name] = demoted
                changed = True

    return {name: sig for name, sig in signatures.items() if sig}


def borrowed_parameter_count(signatures: BorrowSignatures) -> int:
    """Total number of borrowed parameters across the program (reporting)."""
    return sum(len(sig) for sig in signatures.values())
