"""Dup/drop fusion — cancel and merge redundant ``inc``/``dec`` runs in λrc.

RC insertion (and especially borrow-aware insertion) produces *runs* of
consecutive ``inc``/``dec`` instructions: increments wrapped in front of a
consuming instruction, decrements released at a branch entry or before a
return.  Within one maximal run this pass:

* cancels an ``inc v`` against a *later* ``dec v`` in the same run
  (dup/drop fusion).  Cancelling in that direction is sound: it lowers
  ``v``'s reference count by exactly one between the two instructions, and
  the original program kept a strictly larger count alive over the same
  window, so no free is reordered before a remaining use.  The converse
  (``dec`` before ``inc``) is *not* cancelled — the decrement may free the
  value;
* merges adjacent operations of the same kind on the same variable into one
  instruction with a ``count`` (``inc v; inc v`` → ``inc v, 2``), which the
  runtime executes as a single RC event.

The pass is purely intra-procedural and preserves the heap balance
invariant checked by the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..lambda_pure.ir import (
    Case,
    CaseAlt,
    Dec,
    FnBody,
    Function,
    Inc,
    JDecl,
    Jmp,
    Let,
    Program,
    Ret,
    Unreachable,
)


@dataclass
class FusionStats:
    """Counters describing one fusion run."""

    cancelled_pairs: int = 0
    merged_ops: int = 0

    def merge(self, other: "FusionStats") -> None:
        self.cancelled_pairs += other.cancelled_pairs
        self.merged_ops += other.merged_ops


def _fuse_run(
    events: List[Tuple[str, str, int]], stats: FusionStats
) -> List[Tuple[str, str, int]]:
    """Fuse one maximal run of ``(kind, var, count)`` RC events."""
    counts = [list(event) for event in events]
    # Cancel each dec against the earliest preceding inc of the same variable.
    for index, event in enumerate(counts):
        kind, var, remaining = event
        if kind != "dec":
            continue
        for earlier in counts[:index]:
            if earlier[0] != "inc" or earlier[1] != var:
                continue
            cancelled = min(earlier[2], remaining)
            if cancelled <= 0:
                continue
            earlier[2] -= cancelled
            remaining -= cancelled
            stats.cancelled_pairs += cancelled
            if remaining == 0:
                break
        event[2] = remaining
    survivors = [tuple(event) for event in counts if event[2] > 0]
    # Merge adjacent same-kind operations on the same variable.
    merged: List[Tuple[str, str, int]] = []
    for kind, var, count in survivors:
        if merged and merged[-1][0] == kind and merged[-1][1] == var:
            previous = merged.pop()
            merged.append((kind, var, previous[2] + count))
            stats.merged_ops += 1
        else:
            merged.append((kind, var, count))
    return merged


def _rebuild_run(events: List[Tuple[str, str, int]], tail: FnBody) -> FnBody:
    body = tail
    for kind, var, count in reversed(events):
        body = Inc(var, body, count) if kind == "inc" else Dec(var, body, count)
    return body


def fuse_body(body: FnBody, stats: FusionStats) -> FnBody:
    if isinstance(body, (Inc, Dec)):
        events: List[Tuple[str, str, int]] = []
        current = body
        while isinstance(current, (Inc, Dec)):
            kind = "inc" if isinstance(current, Inc) else "dec"
            events.append((kind, current.var, current.count))
            current = current.body
        tail = fuse_body(current, stats)
        return _rebuild_run(_fuse_run(events, stats), tail)
    if isinstance(body, Let):
        return Let(body.var, body.expr, fuse_body(body.body, stats))
    if isinstance(body, Case):
        alts = [
            CaseAlt(alt.tag, alt.ctor_name, fuse_body(alt.body, stats))
            for alt in body.alts
        ]
        default = (
            fuse_body(body.default, stats) if body.default is not None else None
        )
        return Case(body.var, alts, default, body.type_name)
    if isinstance(body, JDecl):
        return JDecl(
            body.label,
            body.params,
            fuse_body(body.jbody, stats),
            fuse_body(body.rest, stats),
        )
    if isinstance(body, (Ret, Jmp, Unreachable)):
        return body
    raise TypeError(f"unknown FnBody node {body!r}")


def fuse_function(fn: Function, stats: FusionStats) -> Function:
    return Function(
        fn.name,
        fn.params,
        fuse_body(fn.body, stats),
        fn.borrowed,
        borrowed_params=fn.borrowed_params,
    )


def fuse_rc(program: Program) -> Tuple[Program, FusionStats]:
    """Fuse inc/dec runs in every function; returns a new program + stats."""
    stats = FusionStats()
    result = Program(constructors=dict(program.constructors), main=program.main)
    for name, fn in program.functions.items():
        result.functions[name] = fuse_function(fn, stats)
    return result, stats
