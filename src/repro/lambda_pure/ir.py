"""λpure / λrc — LEAN's functional intermediate representations.

λpure is a minimal, pure, strict, higher-order IR in A-normal form: every
operand is a variable, and function bodies are trees built from ``let``,
``case``, join-point declarations, jumps and returns.  λrc extends λpure with
the reference-counting instructions ``inc`` and ``dec``; we represent both in
the same node classes (a program is "in λrc" once RC insertion has run).

The design follows the paper (§III) and LEAN4's compiler IR:

Expressions (right-hand sides of ``let``):
    * :class:`Ctor` — construct a tagged value,
    * :class:`Proj` — project a constructor field,
    * :class:`Call` — saturated call of a known top-level function,
    * :class:`PAp` — partial application (closure creation),
    * :class:`App` — apply a closure to further arguments,
    * :class:`Lit` — machine integer or big integer literal.

Function bodies:
    * :class:`Let`, :class:`Case`, :class:`Ret`,
    * :class:`JDecl` / :class:`Jmp` — join points,
    * :class:`Inc` / :class:`Dec` — reference counting (λrc),
    * :class:`Unreachable`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Threshold above which integer literals are treated as big integers
#: (mirrors LEAN's boxing of naturals that do not fit in a machine word).
MACHINE_INT_LIMIT = 2**62


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class of λpure expressions (always in A-normal form)."""

    def arg_vars(self) -> List[str]:
        """Variables consumed (ownership transferred) by this expression."""
        return []

    def borrowed_vars(self) -> List[str]:
        """Variables inspected but not consumed by this expression."""
        return []

    def free_vars(self) -> Set[str]:
        return set(self.arg_vars()) | set(self.borrowed_vars())


@dataclass
class Ctor(Expr):
    """``ctor_tag(args)`` — build a data constructor value."""

    tag: int
    args: List[str] = field(default_factory=list)
    type_name: str = ""
    ctor_name: str = ""

    def arg_vars(self) -> List[str]:
        return list(self.args)

    def __str__(self):
        name = self.ctor_name or f"ctor_{self.tag}"
        return f"{name}({', '.join(self.args)})"


@dataclass
class Proj(Expr):
    """``proj_index(var)`` — extract a constructor field (borrows ``var``)."""

    index: int
    var: str

    def borrowed_vars(self) -> List[str]:
        return [self.var]

    def __str__(self):
        return f"proj_{self.index} {self.var}"


@dataclass
class Call(Expr):
    """``call fn(args)`` — saturated call of a known function or runtime
    builtin."""

    fn: str
    args: List[str] = field(default_factory=list)

    def arg_vars(self) -> List[str]:
        return list(self.args)

    def __str__(self):
        return f"{self.fn}({', '.join(self.args)})"


@dataclass
class PAp(Expr):
    """``pap fn(args)`` — create a closure holding ``args`` for ``fn``."""

    fn: str
    args: List[str] = field(default_factory=list)

    def arg_vars(self) -> List[str]:
        return list(self.args)

    def __str__(self):
        return f"pap {self.fn}({', '.join(self.args)})"


@dataclass
class App(Expr):
    """``app closure(args)`` — apply a closure to further arguments."""

    closure: str
    args: List[str] = field(default_factory=list)

    def arg_vars(self) -> List[str]:
        return [self.closure, *self.args]

    def __str__(self):
        return f"app {self.closure}({', '.join(self.args)})"


@dataclass
class Lit(Expr):
    """Integer literal (machine word or big integer)."""

    value: int

    @property
    def is_big(self) -> bool:
        return abs(self.value) >= MACHINE_INT_LIMIT

    def __str__(self):
        return str(self.value)


@dataclass
class Reset(Expr):
    """``reset var`` — consume a (statically dead) constructor cell and yield
    a *reuse token* (λrc reuse analysis, after Perceus / "Counting Immutable
    Beans").

    At runtime: if the cell is uniquely referenced its fields are released
    and the cell itself is returned for in-place reuse; otherwise the
    reference is dropped and a null token is returned.
    """

    var: str

    def arg_vars(self) -> List[str]:
        return [self.var]

    def __str__(self):
        return f"reset {self.var}"


@dataclass
class Reuse(Expr):
    """``reuse token in ctor_tag(args)`` — construct a value, reusing the
    memory cell held by ``token`` when it is live (same-arity reuse)."""

    token: str
    tag: int
    args: List[str] = field(default_factory=list)
    type_name: str = ""
    ctor_name: str = ""

    def arg_vars(self) -> List[str]:
        return [self.token, *self.args]

    def __str__(self):
        name = self.ctor_name or f"ctor_{self.tag}"
        return f"reuse {self.token} in {name}({', '.join(self.args)})"


# ---------------------------------------------------------------------------
# Function bodies
# ---------------------------------------------------------------------------


class FnBody:
    """Base class of λpure function bodies."""


@dataclass
class Let(FnBody):
    """``let var := expr; body``."""

    var: str
    expr: Expr
    body: FnBody

    def __str__(self):
        return f"let {self.var} := {self.expr};\n{self.body}"


@dataclass
class CaseAlt:
    """One alternative of a :class:`Case`: constructor tag → body."""

    tag: int
    ctor_name: str
    body: FnBody


@dataclass
class Case(FnBody):
    """``case var of alts [| default]`` — dispatch on a constructor tag.

    The scrutinee is *borrowed* (not consumed); branches project fields out
    of it as needed.
    """

    var: str
    alts: List[CaseAlt] = field(default_factory=list)
    default: Optional[FnBody] = None
    type_name: str = ""

    def __str__(self):
        parts = [f"case {self.var} of"]
        for alt in self.alts:
            parts.append(f"| {alt.ctor_name or alt.tag} =>\n{alt.body}")
        if self.default is not None:
            parts.append(f"| _ =>\n{self.default}")
        return "\n".join(parts)


@dataclass
class Ret(FnBody):
    """``ret var`` — return from the enclosing function."""

    var: str

    def __str__(self):
        return f"ret {self.var}"


@dataclass
class JDecl(FnBody):
    """``jdecl label(params) := jbody; rest`` — declare a join point."""

    label: str
    params: List[str]
    jbody: FnBody
    rest: FnBody

    def __str__(self):
        return (
            f"jdecl {self.label}({', '.join(self.params)}) :=\n"
            f"{self.jbody};\n{self.rest}"
        )


@dataclass
class Jmp(FnBody):
    """``jmp label(args)`` — jump to an enclosing join point."""

    label: str
    args: List[str] = field(default_factory=list)

    def __str__(self):
        return f"jmp {self.label}({', '.join(self.args)})"


@dataclass
class Inc(FnBody):
    """``inc var; body`` — λrc reference count increment."""

    var: str
    body: FnBody
    count: int = 1

    def __str__(self):
        return f"inc {self.var};\n{self.body}"


@dataclass
class Dec(FnBody):
    """``dec var; body`` — λrc reference count decrement."""

    var: str
    body: FnBody
    count: int = 1

    def __str__(self):
        return f"dec {self.var};\n{self.body}"


@dataclass
class Unreachable(FnBody):
    """Statically impossible program point (e.g. empty match)."""

    def __str__(self):
        return "unreachable"


# ---------------------------------------------------------------------------
# Functions and programs
# ---------------------------------------------------------------------------


@dataclass
class Function:
    """A top-level λpure/λrc function."""

    name: str
    params: List[str]
    body: FnBody
    #: number of leading parameters that are borrowed (not consumed);
    #: our simplified RC scheme treats all parameters as owned, so this is 0.
    borrowed: int = 0
    #: indices of parameters passed *borrowed* (no ownership transfer), as
    #: computed by :mod:`repro.rc_opt.borrow`; empty under the naive scheme.
    borrowed_params: Tuple[int, ...] = ()

    @property
    def arity(self) -> int:
        return len(self.params)

    def __str__(self):
        return f"def {self.name}({', '.join(self.params)}) :=\n{self.body}"


@dataclass
class ConstructorInfo:
    """Metadata about one constructor of an inductive type."""

    type_name: str
    ctor_name: str
    tag: int
    arity: int


@dataclass
class Program:
    """A λpure/λrc program: functions plus inductive-type metadata."""

    functions: Dict[str, Function] = field(default_factory=dict)
    constructors: Dict[str, ConstructorInfo] = field(default_factory=dict)
    main: str = "main"

    def add_function(self, fn: Function) -> None:
        self.functions[fn.name] = fn

    def constructor(self, qualified_name: str) -> ConstructorInfo:
        return self.constructors[qualified_name]

    def arity_of(self, fn_name: str) -> Optional[int]:
        fn = self.functions.get(fn_name)
        return fn.arity if fn is not None else None

    def __str__(self):
        return "\n\n".join(str(f) for f in self.functions.values())


# ---------------------------------------------------------------------------
# Analyses shared by the simplifier and the RC inserter
# ---------------------------------------------------------------------------


def free_vars(body: FnBody, join_env: Optional[Dict[str, Tuple[List[str], Set[str]]]] = None) -> Set[str]:
    """Free variables of a function body.

    ``join_env`` maps join labels to ``(params, free_vars_of_join_body)``;
    a ``jmp`` then contributes the join body's free variables as well, which
    is what makes liveness (and therefore RC insertion) correct across join
    points.
    """
    join_env = join_env if join_env is not None else {}

    if isinstance(body, Let):
        inner = free_vars(body.body, join_env) - {body.var}
        return set(body.expr.free_vars()) | inner
    if isinstance(body, Case):
        result = {body.var}
        for alt in body.alts:
            result |= free_vars(alt.body, join_env)
        if body.default is not None:
            result |= free_vars(body.default, join_env)
        return result
    if isinstance(body, Ret):
        return {body.var}
    if isinstance(body, JDecl):
        jfree = free_vars(body.jbody, join_env) - set(body.params)
        extended = dict(join_env)
        extended[body.label] = (body.params, jfree)
        return jfree | free_vars(body.rest, extended)
    if isinstance(body, Jmp):
        result = set(body.args)
        if body.label in join_env:
            result |= join_env[body.label][1]
        return result
    if isinstance(body, (Inc, Dec)):
        return {body.var} | free_vars(body.body, join_env)
    if isinstance(body, Unreachable):
        return set()
    raise TypeError(f"unknown FnBody node: {body!r}")


def body_size(body: FnBody) -> int:
    """Number of nodes in a function body (used by inlining heuristics)."""
    if isinstance(body, Let):
        return 1 + body_size(body.body)
    if isinstance(body, Case):
        total = 1 + sum(body_size(a.body) for a in body.alts)
        if body.default is not None:
            total += body_size(body.default)
        return total
    if isinstance(body, JDecl):
        return 1 + body_size(body.jbody) + body_size(body.rest)
    if isinstance(body, (Inc, Dec)):
        return 1 + body_size(body.body)
    return 1


def count_jumps(body: FnBody, label: str) -> int:
    """Number of ``jmp`` nodes targeting ``label`` inside ``body``."""
    if isinstance(body, Jmp):
        return 1 if body.label == label else 0
    if isinstance(body, Let):
        return count_jumps(body.body, label)
    if isinstance(body, Case):
        total = sum(count_jumps(a.body, label) for a in body.alts)
        if body.default is not None:
            total += count_jumps(body.default, label)
        return total
    if isinstance(body, JDecl):
        if body.label == label:
            # Shadowed: jumps inside refer to the inner declaration.
            return count_jumps(body.rest, label) if body.label != label else 0
        return count_jumps(body.jbody, label) + count_jumps(body.rest, label)
    if isinstance(body, (Inc, Dec)):
        return count_jumps(body.body, label)
    return 0
