"""The λpure simplifier — the baseline optimiser of the LEAN compiler.

The current LEAN backend optimises λpure/λrc with a set of hand-written
passes before emitting C.  We reproduce the ones relevant to the evaluation:

* dead let elimination (pure bindings whose variable is never used),
* copy and constant propagation,
* constant folding of runtime arithmetic/comparison calls on literals,
* ``simp_case``: case-of-known-constructor and projection-of-known-
  constructor (the λrc analogue of the rgn case-elimination optimisation;
  Figure 10's variant (b) disables exactly this pass),
* collapse of case expressions whose branches are structurally identical
  (the λrc analogue of common-branch elimination),
* inlining of join points that are jumped to exactly once.

The simplifier is purely λpure-level: it runs before reference-count
insertion, as in LEAN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .ir import (
    App,
    Call,
    Case,
    CaseAlt,
    Ctor,
    Dec,
    Expr,
    FnBody,
    Function,
    Inc,
    JDecl,
    Jmp,
    Let,
    Lit,
    PAp,
    Proj,
    Program,
    Ret,
    Unreachable,
    count_jumps,
    free_vars,
)

#: Runtime calls that are pure and foldable when all arguments are literals.
_FOLDABLE_CALLS = {
    "lean_nat_add": lambda a, b: max(a + b, 0),
    "lean_nat_sub": lambda a, b: max(a - b, 0),
    "lean_nat_mul": lambda a, b: a * b,
    "lean_nat_div": lambda a, b: a // b if b else 0,
    "lean_nat_mod": lambda a, b: a % b if b else a,
    "lean_int_add": lambda a, b: a + b,
    "lean_int_sub": lambda a, b: a - b,
    "lean_int_mul": lambda a, b: a * b,
    "lean_int_neg": lambda a: -a,
}

_FOLDABLE_COMPARISONS = {
    "lean_nat_dec_eq": lambda a, b: a == b,
    "lean_nat_dec_ne": lambda a, b: a != b,
    "lean_nat_dec_lt": lambda a, b: a < b,
    "lean_nat_dec_le": lambda a, b: a <= b,
    "lean_nat_dec_gt": lambda a, b: a > b,
    "lean_nat_dec_ge": lambda a, b: a >= b,
    "lean_int_dec_eq": lambda a, b: a == b,
    "lean_int_dec_ne": lambda a, b: a != b,
    "lean_int_dec_lt": lambda a, b: a < b,
    "lean_int_dec_le": lambda a, b: a <= b,
    "lean_int_dec_gt": lambda a, b: a > b,
    "lean_int_dec_ge": lambda a, b: a >= b,
}

#: Pure runtime calls (safe to remove when dead).
_PURE_RUNTIME_PREFIXES = ("lean_nat_", "lean_int_", "lean_array_", "lean_string_")


def _is_pure_expr(expr: Expr) -> bool:
    """Whether evaluating ``expr`` has no observable effect (so a dead
    binding of it may be dropped).  User function calls are conservatively
    impure (they may diverge); closure application likewise."""
    if isinstance(expr, (Ctor, Proj, Lit, PAp)):
        return True
    if isinstance(expr, Call):
        return expr.fn.startswith(_PURE_RUNTIME_PREFIXES)
    return False


@dataclass
class _Binding:
    """What the simplifier knows about a let-bound variable."""

    expr: Optional[Expr] = None

    @property
    def as_lit(self) -> Optional[int]:
        return self.expr.value if isinstance(self.expr, Lit) else None

    @property
    def as_ctor(self) -> Optional[Ctor]:
        return self.expr if isinstance(self.expr, Ctor) else None


@dataclass
class SimplifierStats:
    """Counters reported by one simplifier run."""

    dead_lets: int = 0
    constants_folded: int = 0
    cases_simplified: int = 0
    projections_folded: int = 0
    branches_collapsed: int = 0
    joins_inlined: int = 0

    def total(self) -> int:
        return (
            self.dead_lets
            + self.constants_folded
            + self.cases_simplified
            + self.projections_folded
            + self.branches_collapsed
            + self.joins_inlined
        )


class Simplifier:
    """Runs the λpure simplification pipeline to a (bounded) fixpoint."""

    def __init__(self, *, enable_simp_case: bool = True, max_rounds: int = 8):
        self.enable_simp_case = enable_simp_case
        self.max_rounds = max_rounds
        self.stats = SimplifierStats()

    # -- program / function entry points -----------------------------------------
    def run(self, program: Program) -> Program:
        for name, fn in list(program.functions.items()):
            program.functions[name] = self.run_on_function(fn)
        return program

    def run_on_function(self, fn: Function) -> Function:
        body = fn.body
        for _ in range(self.max_rounds):
            before = self.stats.total()
            body = self._simplify(body, {}, {})
            body = self._inline_single_jumps(body)
            if self.stats.total() == before:
                break
        return Function(fn.name, fn.params, body, fn.borrowed)

    # -- expression-level helpers ---------------------------------------------------
    def _substitute_expr(self, expr: Expr, subst: Dict[str, str]) -> Expr:
        def s(v: str) -> str:
            return subst.get(v, v)

        if isinstance(expr, Ctor):
            return Ctor(expr.tag, [s(a) for a in expr.args], expr.type_name, expr.ctor_name)
        if isinstance(expr, Proj):
            return Proj(expr.index, s(expr.var))
        if isinstance(expr, Call):
            return Call(expr.fn, [s(a) for a in expr.args])
        if isinstance(expr, PAp):
            return PAp(expr.fn, [s(a) for a in expr.args])
        if isinstance(expr, App):
            return App(s(expr.closure), [s(a) for a in expr.args])
        if isinstance(expr, Lit):
            return Lit(expr.value)
        raise TypeError(f"unknown expression {expr!r}")

    def _fold_call(self, expr: Call, bindings: Dict[str, _Binding]) -> Optional[Expr]:
        arg_lits = []
        for a in expr.args:
            binding = bindings.get(a)
            lit = binding.as_lit if binding is not None else None
            if lit is None:
                return None
            arg_lits.append(lit)
        if expr.fn in _FOLDABLE_CALLS:
            try:
                return Lit(_FOLDABLE_CALLS[expr.fn](*arg_lits))
            except TypeError:
                return None
        if expr.fn in _FOLDABLE_COMPARISONS:
            try:
                result = _FOLDABLE_COMPARISONS[expr.fn](*arg_lits)
            except TypeError:
                return None
            tag = 1 if result else 0
            name = "Bool.true" if result else "Bool.false"
            return Ctor(tag, [], "Bool", name)
        return None

    # -- the main rewriting walk -------------------------------------------------------
    def _simplify(
        self,
        body: FnBody,
        bindings: Dict[str, _Binding],
        subst: Dict[str, str],
    ) -> FnBody:
        def s(v: str) -> str:
            return subst.get(v, v)

        if isinstance(body, Let):
            expr = self._substitute_expr(body.expr, subst)
            # Copy propagation through redundant projections / folds.
            if isinstance(expr, Call):
                folded = self._fold_call(expr, bindings)
                if folded is not None:
                    self.stats.constants_folded += 1
                    expr = folded
            if self.enable_simp_case and isinstance(expr, Proj):
                ctor = (
                    bindings[expr.var].as_ctor if expr.var in bindings else None
                )
                if ctor is not None and expr.index < len(ctor.args):
                    # proj i (ctor ... a_i ...)  ==>  a_i  (pure renaming).
                    self.stats.projections_folded += 1
                    new_subst = dict(subst)
                    new_subst[body.var] = ctor.args[expr.index]
                    return self._simplify(body.body, bindings, new_subst)
            new_bindings = dict(bindings)
            new_bindings[body.var] = _Binding(expr)
            inner = self._simplify(body.body, new_bindings, subst)
            if _is_pure_expr(expr) and body.var not in free_vars(inner):
                self.stats.dead_lets += 1
                return inner
            return Let(body.var, expr, inner)

        if isinstance(body, Case):
            scrutinee = s(body.var)
            binding = bindings.get(scrutinee)
            if (
                self.enable_simp_case
                and binding is not None
                and binding.as_ctor is not None
            ):
                # case of a known constructor: take the matching branch.
                tag = binding.as_ctor.tag
                chosen: Optional[FnBody] = None
                for alt in body.alts:
                    if alt.tag == tag:
                        chosen = alt.body
                        break
                if chosen is None:
                    chosen = body.default
                if chosen is not None:
                    self.stats.cases_simplified += 1
                    return self._simplify(chosen, bindings, subst)
            new_alts = [
                CaseAlt(
                    alt.tag,
                    alt.ctor_name,
                    self._simplify(alt.body, bindings, subst),
                )
                for alt in body.alts
            ]
            new_default = (
                self._simplify(body.default, bindings, subst)
                if body.default is not None
                else None
            )
            collapsed = self._collapse_identical_branches(
                Case(scrutinee, new_alts, new_default, body.type_name)
            )
            return collapsed

        if isinstance(body, Ret):
            return Ret(s(body.var))
        if isinstance(body, Jmp):
            return Jmp(body.label, [s(a) for a in body.args])
        if isinstance(body, JDecl):
            new_jbody = self._simplify(body.jbody, bindings, subst)
            new_rest = self._simplify(body.rest, bindings, subst)
            if count_jumps(new_rest, body.label) == 0:
                # The join point is never reached: drop it.
                self.stats.dead_lets += 1
                return new_rest
            return JDecl(body.label, body.params, new_jbody, new_rest)
        if isinstance(body, Inc):
            return Inc(s(body.var), self._simplify(body.body, bindings, subst), body.count)
        if isinstance(body, Dec):
            return Dec(s(body.var), self._simplify(body.body, bindings, subst), body.count)
        if isinstance(body, Unreachable):
            return body
        raise TypeError(f"unknown FnBody {body!r}")

    # -- identical branch collapse -------------------------------------------------------
    def _collapse_identical_branches(self, case: Case) -> FnBody:
        branches: List[FnBody] = [alt.body for alt in case.alts]
        if case.default is not None:
            branches.append(case.default)
        if len(branches) < 2:
            return case
        first_repr = _structural_repr(branches[0])
        if all(_structural_repr(b) == first_repr for b in branches[1:]):
            self.stats.branches_collapsed += 1
            return branches[0]
        return case

    # -- join point inlining ----------------------------------------------------------------
    def _inline_single_jumps(self, body: FnBody) -> FnBody:
        if isinstance(body, JDecl):
            jbody = self._inline_single_jumps(body.jbody)
            rest = self._inline_single_jumps(body.rest)
            if count_jumps(rest, body.label) == 1:
                self.stats.joins_inlined += 1
                return _replace_jump(rest, body.label, body.params, jbody)
            return JDecl(body.label, body.params, jbody, rest)
        if isinstance(body, Let):
            return Let(body.var, body.expr, self._inline_single_jumps(body.body))
        if isinstance(body, Case):
            return Case(
                body.var,
                [
                    CaseAlt(a.tag, a.ctor_name, self._inline_single_jumps(a.body))
                    for a in body.alts
                ],
                self._inline_single_jumps(body.default)
                if body.default is not None
                else None,
                body.type_name,
            )
        if isinstance(body, Inc):
            return Inc(body.var, self._inline_single_jumps(body.body), body.count)
        if isinstance(body, Dec):
            return Dec(body.var, self._inline_single_jumps(body.body), body.count)
        return body


def _structural_repr(body: FnBody) -> str:
    """A canonical string used to compare branches for structural equality."""
    return str(body)


def _replace_jump(
    body: FnBody, label: str, params: List[str], jbody: FnBody
) -> FnBody:
    """Replace the single ``jmp label(args)`` inside ``body`` with ``jbody``
    where the join parameters are renamed to the jump arguments."""
    if isinstance(body, Jmp) and body.label == label:
        subst = dict(zip(params, body.args))
        return _rename(jbody, subst)
    if isinstance(body, Let):
        return Let(body.var, body.expr, _replace_jump(body.body, label, params, jbody))
    if isinstance(body, Case):
        return Case(
            body.var,
            [
                CaseAlt(a.tag, a.ctor_name, _replace_jump(a.body, label, params, jbody))
                for a in body.alts
            ],
            _replace_jump(body.default, label, params, jbody)
            if body.default is not None
            else None,
            body.type_name,
        )
        # (each label is jumped to exactly once, so recursing into every
        # branch is safe: at most one branch contains the jump)
    if isinstance(body, JDecl):
        if body.label == label:
            return body
        return JDecl(
            body.label,
            body.params,
            _replace_jump(body.jbody, label, params, jbody),
            _replace_jump(body.rest, label, params, jbody),
        )
    if isinstance(body, Inc):
        return Inc(body.var, _replace_jump(body.body, label, params, jbody), body.count)
    if isinstance(body, Dec):
        return Dec(body.var, _replace_jump(body.body, label, params, jbody), body.count)
    return body


def _rename(body: FnBody, subst: Dict[str, str]) -> FnBody:
    """Rename free variables of ``body`` according to ``subst``."""
    def s(v: str) -> str:
        return subst.get(v, v)

    if isinstance(body, Let):
        expr = body.expr
        renamed_expr: Expr
        if isinstance(expr, Ctor):
            renamed_expr = Ctor(expr.tag, [s(a) for a in expr.args], expr.type_name, expr.ctor_name)
        elif isinstance(expr, Proj):
            renamed_expr = Proj(expr.index, s(expr.var))
        elif isinstance(expr, Call):
            renamed_expr = Call(expr.fn, [s(a) for a in expr.args])
        elif isinstance(expr, PAp):
            renamed_expr = PAp(expr.fn, [s(a) for a in expr.args])
        elif isinstance(expr, App):
            renamed_expr = App(s(expr.closure), [s(a) for a in expr.args])
        else:
            renamed_expr = expr
        return Let(body.var, renamed_expr, _rename(body.body, subst))
    if isinstance(body, Case):
        return Case(
            s(body.var),
            [CaseAlt(a.tag, a.ctor_name, _rename(a.body, subst)) for a in body.alts],
            _rename(body.default, subst) if body.default is not None else None,
            body.type_name,
        )
    if isinstance(body, Ret):
        return Ret(s(body.var))
    if isinstance(body, Jmp):
        return Jmp(body.label, [s(a) for a in body.args])
    if isinstance(body, JDecl):
        return JDecl(body.label, body.params, _rename(body.jbody, subst), _rename(body.rest, subst))
    if isinstance(body, Inc):
        return Inc(s(body.var), _rename(body.body, subst), body.count)
    if isinstance(body, Dec):
        return Dec(s(body.var), _rename(body.body, subst), body.count)
    return body


def simplify_program(program: Program, *, enable_simp_case: bool = True) -> Program:
    """Run the λpure simplifier over every function of ``program``."""
    return Simplifier(enable_simp_case=enable_simp_case).run(program)
