"""Lowering mini-LEAN surface programs to λpure.

This stage performs what LEAN4's compiler front-half does before λrc:

* A-normal form conversion (every operand becomes a ``let``-bound variable),
* compilation of (nested, multi-scrutinee) pattern matches into trees of
  single-tag ``case`` constructs, introducing *join points* for shared
  fall-through arms (exactly the deduplication of Figure 5),
* desugaring of ``if`` / boolean operators into matches on ``Bool``,
* lambda lifting: anonymous functions become top-level λpure functions, and
  their capture sites become partial applications (``pap``),
* resolution of saturated vs partial vs over-saturated applications into
  ``call`` / ``pap`` / ``app``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..lean import ast
from ..lean.prelude import (
    BOOL_FALSE_TAG,
    BOOL_TRUE_TAG,
    BUILTIN_RUNTIME_CALLS,
    OPERATOR_RUNTIME_CALLS,
)
from ..lean.typecheck import GlobalEnv, check_program
from . import ir


class LoweringError(Exception):
    """Raised when a construct cannot be lowered (e.g. unsaturated builtin)."""


#: A lowering destination: either return from the function or jump to a join
#: point with the produced value.
Dest = Tuple[str, Optional[str]]
RETURN_DEST: Dest = ("ret", None)


def jump_dest(label: str) -> Dest:
    return ("jmp", label)


class ProgramLowering:
    """Shared state while lowering a whole program."""

    def __init__(self, surface: ast.Program, env: GlobalEnv):
        self.surface = surface
        self.env = env
        self.program = ir.Program()
        self._fresh = 0
        for sig in env.constructors.values():
            self.program.constructors[sig.qualified] = ir.ConstructorInfo(
                sig.type_name, sig.ctor_name, sig.tag, sig.arity
            )

    def fresh(self, prefix: str = "x") -> str:
        self._fresh += 1
        return f"{prefix}_{self._fresh}"

    def function_arity(self, name: str) -> Optional[int]:
        decl = self.surface.definition(name)
        if decl is not None:
            return len(decl.params)
        fn = self.program.functions.get(name)
        if fn is not None:
            return fn.arity
        return None

    def lower(self) -> ir.Program:
        for decl in self.surface.defs:
            FunctionLowering(self, decl.name).lower_def(decl)
        if "main" in self.program.functions:
            self.program.main = "main"
        return self.program


class FunctionLowering:
    """Lowers one surface definition (or one lifted lambda) to a λpure
    :class:`~repro.lambda_pure.ir.Function`."""

    def __init__(self, ctx: ProgramLowering, name: str):
        self.ctx = ctx
        self.env = ctx.env
        self.name = name
        self._lambda_counter = 0

    # -- entry points -----------------------------------------------------------
    def lower_def(self, decl: ast.DefDecl) -> ir.Function:
        vars_: Dict[str, str] = {}
        params = []
        for pname, _ in decl.params:
            pvar = self.ctx.fresh(pname)
            vars_[pname] = pvar
            params.append(pvar)
        body = self.lower_dest(decl.body, vars_, RETURN_DEST)
        fn = ir.Function(decl.name, params, body)
        self.ctx.program.add_function(fn)
        return fn

    def lower_lambda(
        self,
        lam: ast.Lambda,
        captured: List[Tuple[str, str]],
    ) -> ir.Function:
        """Lower a lambda into a fresh top-level function.

        ``captured`` is the list of (surface name, fresh parameter name) of
        captured variables, which become the leading parameters.
        """
        self._lambda_counter += 1
        lifted_name = f"{self.name}._lam{self._lambda_counter}_{self.ctx.fresh('f')}"
        vars_: Dict[str, str] = {}
        params: List[str] = []
        for surface_name, param_name in captured:
            vars_[surface_name] = param_name
            params.append(param_name)
        for pname, _ in lam.params:
            pvar = self.ctx.fresh(pname)
            vars_[pname] = pvar
            params.append(pvar)
        inner = FunctionLowering(self.ctx, lifted_name)
        body = inner.lower_dest(lam.body, vars_, RETURN_DEST)
        fn = ir.Function(lifted_name, params, body)
        self.ctx.program.add_function(fn)
        return fn

    # -- destinations -------------------------------------------------------------
    def finish(self, dest: Dest, var: str) -> ir.FnBody:
        kind, label = dest
        if kind == "ret":
            return ir.Ret(var)
        return ir.Jmp(label, [var])

    def lower_dest(self, expr: ast.Expr, vars_: Dict[str, str], dest: Dest) -> ir.FnBody:
        """Lower ``expr`` so that its value flows to ``dest``."""
        if isinstance(expr, ast.Let):
            return self.lower_value(
                expr.value,
                vars_,
                lambda v: self.lower_dest(
                    expr.body, {**vars_, expr.name: v}, dest
                ),
            )
        if isinstance(expr, ast.If):
            return self._lower_if(expr, vars_, dest)
        if isinstance(expr, ast.Match):
            return self._lower_match(expr, vars_, dest)
        return self.lower_value(expr, vars_, lambda v: self.finish(dest, v))

    # -- value lowering --------------------------------------------------------------
    def lower_value(
        self,
        expr: ast.Expr,
        vars_: Dict[str, str],
        k: Callable[[str], ir.FnBody],
    ) -> ir.FnBody:
        """Lower ``expr`` to a variable and continue with ``k``."""
        if isinstance(expr, (ast.NatLit, ast.IntLit)):
            v = self.ctx.fresh("n")
            return ir.Let(v, ir.Lit(expr.value), k(v))
        if isinstance(expr, ast.BoolLit):
            v = self.ctx.fresh("b")
            tag = BOOL_TRUE_TAG if expr.value else BOOL_FALSE_TAG
            name = "Bool.true" if expr.value else "Bool.false"
            return ir.Let(
                v, ir.Ctor(tag, [], "Bool", name), k(v)
            )
        if isinstance(expr, ast.Var):
            return self._lower_name(expr.name, [], vars_, k)
        if isinstance(expr, ast.App):
            head, args = self._collect_app(expr)
            if isinstance(head, ast.Var):
                return self._lower_name(head.name, args, vars_, k)
            # Higher-order head (lambda or computed closure).
            return self.lower_value(
                head,
                vars_,
                lambda closure: self._lower_args(
                    args,
                    vars_,
                    lambda argvars: self._bind(
                        ir.App(closure, argvars), "r", k
                    ),
                ),
            )
        if isinstance(expr, ast.BinOp):
            return self._lower_binop(expr, vars_, k)
        if isinstance(expr, ast.UnaryOp):
            return self.lower_value(
                expr.operand,
                vars_,
                lambda v: self._bind(ir.Call("lean_int_neg", [v]), "r", k),
            )
        if isinstance(expr, ast.Let):
            return self.lower_value(
                expr.value,
                vars_,
                lambda v: self.lower_value(expr.body, {**vars_, expr.name: v}, k),
            )
        if isinstance(expr, (ast.If, ast.Match)):
            return self._lower_control_value(expr, vars_, k)
        if isinstance(expr, ast.Lambda):
            return self._lower_lambda_value(expr, vars_, k)
        raise LoweringError(f"cannot lower expression {expr!r}")

    def _bind(
        self, rhs: ir.Expr, prefix: str, k: Callable[[str], ir.FnBody]
    ) -> ir.FnBody:
        v = self.ctx.fresh(prefix)
        return ir.Let(v, rhs, k(v))

    # -- names and applications ----------------------------------------------------------
    def _collect_app(self, expr: ast.Expr) -> Tuple[ast.Expr, List[ast.Expr]]:
        args: List[ast.Expr] = []
        head = expr
        while isinstance(head, ast.App):
            args = list(head.args) + args
            head = head.fn
        return head, args

    def _lower_args(
        self,
        args: Sequence[ast.Expr],
        vars_: Dict[str, str],
        k: Callable[[List[str]], ir.FnBody],
    ) -> ir.FnBody:
        lowered: List[str] = []

        def go(index: int) -> ir.FnBody:
            if index == len(args):
                return k(lowered)
            return self.lower_value(
                args[index],
                vars_,
                lambda v: (lowered.append(v), go(index + 1))[1],
            )

        return go(0)

    def _lower_name(
        self,
        name: str,
        args: Sequence[ast.Expr],
        vars_: Dict[str, str],
        k: Callable[[str], ir.FnBody],
    ) -> ir.FnBody:
        # Local variable: either the value itself or a closure application.
        if name in vars_:
            local = vars_[name]
            if not args:
                return k(local)
            return self._lower_args(
                args,
                vars_,
                lambda argvars: self._bind(ir.App(local, argvars), "r", k),
            )
        # Constructor.
        if name in self.env.constructors:
            sig = self.env.constructor(name)
            if len(args) != sig.arity:
                raise LoweringError(
                    f"constructor {name} must be fully applied "
                    f"({len(args)}/{sig.arity} arguments)"
                )
            return self._lower_args(
                args,
                vars_,
                lambda argvars: self._bind(
                    ir.Ctor(sig.tag, argvars, sig.type_name, sig.qualified),
                    "c",
                    k,
                ),
            )
        # Builtin runtime function.
        if name in BUILTIN_RUNTIME_CALLS:
            runtime_name, arity = BUILTIN_RUNTIME_CALLS[name]
            if len(args) != arity:
                raise LoweringError(
                    f"builtin {name} must be fully applied "
                    f"({len(args)}/{arity} arguments)"
                )
            return self._lower_args(
                args,
                vars_,
                lambda argvars: self._bind(
                    ir.Call(runtime_name, argvars), "r", k
                ),
            )
        # User-defined function.
        arity = self.ctx.function_arity(name)
        if arity is None:
            decl = self.ctx.surface.definition(name)
            if decl is None:
                raise LoweringError(f"unknown identifier {name}")
            arity = len(decl.params)
        return self._lower_args(
            args,
            vars_,
            lambda argvars: self._finish_call(name, arity, argvars, k),
        )

    def _finish_call(
        self,
        name: str,
        arity: int,
        argvars: List[str],
        k: Callable[[str], ir.FnBody],
    ) -> ir.FnBody:
        if len(argvars) == arity:
            return self._bind(ir.Call(name, argvars), "r", k)
        if len(argvars) < arity:
            return self._bind(ir.PAp(name, argvars), "clo", k)
        # Over-application: saturate the direct call, then apply the returned
        # closure to the remaining arguments.
        direct, extra = argvars[:arity], argvars[arity:]
        return self._bind(
            ir.Call(name, direct),
            "r",
            lambda r: self._bind(ir.App(r, extra), "r", k),
        )

    # -- operators ----------------------------------------------------------------------
    def _lower_binop(
        self,
        expr: ast.BinOp,
        vars_: Dict[str, str],
        k: Callable[[str], ir.FnBody],
    ) -> ir.FnBody:
        if expr.op == "&&":
            desugared = ast.If(expr.lhs, expr.rhs, ast.BoolLit(False))
            return self._lower_control_value(desugared, vars_, k)
        if expr.op == "||":
            desugared = ast.If(expr.lhs, ast.BoolLit(True), expr.rhs)
            return self._lower_control_value(desugared, vars_, k)
        operand_type = expr.lhs.inferred_type
        type_name = "Int" if isinstance(operand_type, ast.IntType) else "Nat"
        runtime = OPERATOR_RUNTIME_CALLS.get((expr.op, type_name))
        if runtime is None:
            raise LoweringError(f"cannot lower operator {expr.op} at type {type_name}")
        return self.lower_value(
            expr.lhs,
            vars_,
            lambda lhs: self.lower_value(
                expr.rhs,
                vars_,
                lambda rhs: self._bind(ir.Call(runtime, [lhs, rhs]), "r", k),
            ),
        )

    # -- lambdas -------------------------------------------------------------------------
    def _lower_lambda_value(
        self,
        lam: ast.Lambda,
        vars_: Dict[str, str],
        k: Callable[[str], ir.FnBody],
    ) -> ir.FnBody:
        captured_names = sorted(self._free_surface_vars(lam) & set(vars_.keys()))
        captured = [
            (name, self.ctx.fresh(name)) for name in captured_names
        ]
        lifted = self.lower_lambda(lam, captured)
        captured_vars = [vars_[name] for name in captured_names]
        return self._bind(ir.PAp(lifted.name, captured_vars), "clo", k)

    def _free_surface_vars(self, expr: ast.Expr) -> set:
        """Free surface-level variables of an expression."""
        if isinstance(expr, ast.Var):
            return {expr.name}
        if isinstance(expr, (ast.NatLit, ast.IntLit, ast.BoolLit)):
            return set()
        if isinstance(expr, ast.App):
            result = self._free_surface_vars(expr.fn)
            for a in expr.args:
                result |= self._free_surface_vars(a)
            return result
        if isinstance(expr, ast.BinOp):
            return self._free_surface_vars(expr.lhs) | self._free_surface_vars(expr.rhs)
        if isinstance(expr, ast.UnaryOp):
            return self._free_surface_vars(expr.operand)
        if isinstance(expr, ast.Let):
            return self._free_surface_vars(expr.value) | (
                self._free_surface_vars(expr.body) - {expr.name}
            )
        if isinstance(expr, ast.If):
            return (
                self._free_surface_vars(expr.cond)
                | self._free_surface_vars(expr.then_branch)
                | self._free_surface_vars(expr.else_branch)
            )
        if isinstance(expr, ast.Lambda):
            bound = {name for name, _ in expr.params}
            return self._free_surface_vars(expr.body) - bound
        if isinstance(expr, ast.Match):
            result = set()
            for s in expr.scrutinees:
                result |= self._free_surface_vars(s)
            for arm in expr.arms:
                bound = set()
                for p in arm.patterns:
                    bound |= self._pattern_vars(p)
                result |= self._free_surface_vars(arm.body) - bound
            return result
        raise LoweringError(f"cannot compute free variables of {expr!r}")

    def _pattern_vars(self, pattern: ast.Pattern) -> set:
        if isinstance(pattern, ast.PVar):
            return {pattern.name}
        if isinstance(pattern, ast.PCtor):
            result = set()
            for sub in pattern.subpatterns:
                result |= self._pattern_vars(sub)
            return result
        return set()

    # -- control flow in value position -------------------------------------------------------
    def _lower_control_value(
        self,
        expr: Union[ast.If, ast.Match],
        vars_: Dict[str, str],
        k: Callable[[str], ir.FnBody],
    ) -> ir.FnBody:
        """Lower an ``if``/``match`` whose value feeds a continuation by
        introducing a join point for the continuation."""
        label = self.ctx.fresh("jp")
        result = self.ctx.fresh("res")
        jbody = k(result)
        inner = self.lower_dest(expr, vars_, jump_dest(label))
        return ir.JDecl(label, [result], jbody, inner)

    def _lower_if(self, expr: ast.If, vars_: Dict[str, str], dest: Dest) -> ir.FnBody:
        return self.lower_value(
            expr.cond,
            vars_,
            lambda c: ir.Case(
                c,
                [
                    ir.CaseAlt(
                        BOOL_TRUE_TAG,
                        "Bool.true",
                        self.lower_dest(expr.then_branch, vars_, dest),
                    ),
                    ir.CaseAlt(
                        BOOL_FALSE_TAG,
                        "Bool.false",
                        self.lower_dest(expr.else_branch, vars_, dest),
                    ),
                ],
                None,
                "Bool",
            ),
        )

    # -- pattern matching ----------------------------------------------------------------------
    def _lower_match(self, expr: ast.Match, vars_: Dict[str, str], dest: Dest) -> ir.FnBody:
        scrutinee_types = [s.inferred_type for s in expr.scrutinees]

        def with_scrutinees(scrut_vars: List[str]) -> ir.FnBody:
            scruts = list(zip(scrut_vars, scrutinee_types))
            return self._compile_arms(scruts, list(expr.arms), vars_, dest)

        return self._lower_args(list(expr.scrutinees), vars_, with_scrutinees)

    def _compile_arms(
        self,
        scruts: List[Tuple[str, Optional[ast.LeanType]]],
        arms: List[ast.MatchArm],
        vars_: Dict[str, str],
        dest: Dest,
    ) -> ir.FnBody:
        if len(arms) == 1:
            return self._compile_arm(scruts, arms[0], vars_, dest, on_fail=None)
        fail_label = self.ctx.fresh("jp_arm")
        rest = self._compile_arms(scruts, arms[1:], vars_, dest)
        first = self._compile_arm(scruts, arms[0], vars_, dest, on_fail=fail_label)
        return ir.JDecl(fail_label, [], rest, first)

    def _compile_arm(
        self,
        scruts: List[Tuple[str, Optional[ast.LeanType]]],
        arm: ast.MatchArm,
        vars_: Dict[str, str],
        dest: Dest,
        on_fail: Optional[str],
    ) -> ir.FnBody:
        worklist: List[Tuple[str, Optional[ast.LeanType], ast.Pattern]] = [
            (svar, stype, pattern)
            for (svar, stype), pattern in zip(scruts, arm.patterns)
        ]
        return self._compile_worklist(worklist, dict(vars_), arm.body, dest, on_fail)

    def _fail_body(self, on_fail: Optional[str]) -> ir.FnBody:
        return ir.Jmp(on_fail, []) if on_fail is not None else ir.Unreachable()

    def _compile_worklist(
        self,
        worklist: List[Tuple[str, Optional[ast.LeanType], ast.Pattern]],
        vars_: Dict[str, str],
        body: ast.Expr,
        dest: Dest,
        on_fail: Optional[str],
    ) -> ir.FnBody:
        if not worklist:
            return self.lower_dest(body, vars_, dest)
        svar, stype, pattern = worklist[0]
        rest = worklist[1:]

        if isinstance(pattern, ast.PWild):
            return self._compile_worklist(rest, vars_, body, dest, on_fail)
        if isinstance(pattern, ast.PVar):
            vars_ = {**vars_, pattern.name: svar}
            return self._compile_worklist(rest, vars_, body, dest, on_fail)
        if isinstance(pattern, ast.PBool):
            ctor = "Bool.true" if pattern.value else "Bool.false"
            pattern = ast.PCtor(ctor, [])
            stype = ast.BoolType()
        if isinstance(pattern, ast.PCtor):
            sig = self.env.constructor(pattern.ctor)
            field_vars = [self.ctx.fresh("f") for _ in range(sig.arity)]
            inner_worklist = [
                (fv, ft, sp)
                for fv, ft, sp in zip(field_vars, sig.fields, pattern.subpatterns)
            ] + rest
            inner = self._compile_worklist(inner_worklist, vars_, body, dest, on_fail)
            # Bind the fields with projections, innermost first.
            for index in reversed(range(sig.arity)):
                inner = ir.Let(field_vars[index], ir.Proj(index, svar), inner)
            n_ctors = len(self.env.constructors_of(sig.type_name))
            default = self._fail_body(on_fail) if n_ctors > 1 else None
            return ir.Case(
                svar,
                [ir.CaseAlt(sig.tag, sig.qualified, inner)],
                default,
                sig.type_name,
            )
        if isinstance(pattern, ast.PLit):
            is_int = isinstance(stype, ast.IntType)
            dec_eq = "lean_int_dec_eq" if is_int else "lean_nat_dec_eq"
            lit_var = self.ctx.fresh("lit")
            eq_var = self.ctx.fresh("eq")
            inner = self._compile_worklist(rest, vars_, body, dest, on_fail)
            case = ir.Case(
                eq_var,
                [ir.CaseAlt(BOOL_TRUE_TAG, "Bool.true", inner)],
                self._fail_body(on_fail),
                "Bool",
            )
            return ir.Let(
                lit_var,
                ir.Lit(pattern.value),
                ir.Let(eq_var, ir.Call(dec_eq, [svar, lit_var]), case),
            )
        raise LoweringError(f"cannot compile pattern {pattern!r}")


def lower_program(surface: ast.Program, env: Optional[GlobalEnv] = None) -> ir.Program:
    """Type-check (if needed) and lower a surface program to λpure."""
    if env is None:
        env = check_program(surface)
    return ProgramLowering(surface, env).lower()
