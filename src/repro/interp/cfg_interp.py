"""Interpreter for the final CFG-form MLIR module (the new backend's output).

After ``λrc → lp → rgn → cf`` lowering, every function consists of basic
blocks holding lp data operations (constructors, projections, closures,
reference counts), ``arith`` operations on machine integers, runtime calls
and ``cf``/``func`` terminators.  This interpreter executes that IR against
the simulated LEAN runtime, charging the shared cost model — it plays the
role LLVM-compiled native code plays in the paper's evaluation.

SSA values carry either *machine* integers (plain Python ints, produced by
``arith.constant``, ``lp.getlabel``, ``arith.cmpi`` ...) or *boxed* runtime
values (``!lp.t``).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..resilience.budgets import ExecutionBudget
from .limits import recursion_limit

from ..dialects import arith, cf, lp
from ..dialects.builtin import ModuleOp
from ..dialects.func import CallOp, FuncOp, GetGlobalOp, ReturnOp, SetGlobalOp
from ..ir.core import Block, Operation, Value
from ..runtime import (
    RuntimeContext,
    RuntimeError_,
    CtorObject,
    Scalar,
    Enum,
    call_builtin,
    extend_closure,
    is_builtin,
    make_closure,
    python_value,
    tag_of,
)
from .metrics import ExecutionMetrics
from .rc_interp import RunResult


class CfgInterpreterError(Exception):
    """Raised when the CFG module cannot be executed."""


class CfgInterpreter:
    """Executes a CFG-form module produced by the lp+rgn backend."""

    def __init__(
        self,
        module: ModuleOp,
        *,
        context: Optional[RuntimeContext] = None,
        metrics: Optional[ExecutionMetrics] = None,
        recursion_limit: int = 200000,
        budget: Optional[ExecutionBudget] = None,
    ):
        self.module = module
        self.ctx = context if context is not None else RuntimeContext()
        self.metrics = metrics if metrics is not None else ExecutionMetrics()
        self.globals: Dict[str, object] = {}
        self.functions: Dict[str, FuncOp] = {
            f.sym_name: f for f in module.functions()
        }
        #: Per-``cf.switch`` dispatch tables (value -> destination block),
        #: built on first execution of each switch.  The tree-walker is the
        #: bytecode VM's differential oracle, so its hot paths still matter.
        self._switch_tables: Dict[Operation, Dict[int, Block]] = {}
        self.recursion_limit = recursion_limit
        self.budget = budget

    # -- public API --------------------------------------------------------------
    def run_main(
        self,
        main: str = "main",
        args: Optional[List[object]] = None,
        *,
        check_heap: bool = True,
    ) -> RunResult:
        if self.budget is not None:
            self.budget.start()
        start = time.perf_counter()
        with recursion_limit(self.recursion_limit):
            result = self.call_function(main, list(args or []))
        self.metrics.wall_time_seconds = time.perf_counter() - start
        snapshot = python_value(result) if result is not None else None
        if result is not None:
            self.ctx.release(result)
        if check_heap:
            self.ctx.heap.check_balanced()
        return RunResult(
            value=snapshot,
            metrics=self.metrics,
            heap_stats=self.ctx.heap.stats.as_dict(),
            output=list(self.ctx.output),
        )

    # -- calls ------------------------------------------------------------------------
    def call_function(self, name: str, args: List[object]) -> object:
        if name in self.functions and not self.functions[name].is_declaration:
            self.metrics.charge("call")
            return self._execute_function(self.functions[name], args)
        if is_builtin(name):
            self.metrics.charge("runtime_call")
            return call_builtin(self.ctx, name, args)
        raise CfgInterpreterError(f"call of unknown function @{name}")

    def _function_arity(self, name: str) -> int:
        func = self.functions.get(name)
        if func is None:
            raise CfgInterpreterError(f"pap of unknown function @{name}")
        return len(func.function_type.inputs)

    def _apply_closure(self, closure: object, args: List[object]) -> object:
        self.metrics.charge("apply")
        outcome = extend_closure(self.ctx.heap, closure, args)
        if not outcome.is_call:
            return outcome.closure
        result = self.call_function(outcome.call_fn, outcome.call_args)
        if outcome.extra_args:
            return self._apply_closure(result, outcome.extra_args)
        return result

    # -- function execution ----------------------------------------------------------------
    def _execute_function(self, func: FuncOp, args: List[object]) -> object:
        entry = func.entry_block
        if entry is None:
            raise CfgInterpreterError(f"function @{func.sym_name} has no body")
        if len(args) != len(entry.arguments):
            raise CfgInterpreterError(
                f"@{func.sym_name} called with {len(args)} arguments, "
                f"expected {len(entry.arguments)}"
            )
        env: Dict[Value, object] = dict(zip(entry.arguments, args))
        block: Block = entry
        budget = self.budget
        while True:
            if budget is not None:
                budget.charge()
            outcome = self._execute_block(block, env)
            kind = outcome[0]
            if kind == "return":
                return outcome[1]
            block, forwarded = outcome[1], outcome[2]
            env_update = dict(zip(block.arguments, forwarded))
            env.update(env_update)

    def _execute_block(self, block: Block, env: Dict[Value, object]):
        for op in block:
            result = self._execute_op(op, env)
            if result is not None:
                return result
        raise CfgInterpreterError("block fell through without a terminator")

    # -- operation execution --------------------------------------------------------------------
    def _execute_op(self, op: Operation, env: Dict[Value, object]):
        # Terminators -------------------------------------------------------
        if isinstance(op, ReturnOp):
            self.metrics.charge("return")
            value = env[op.operands[0]] if op.operands else None
            return ("return", value)
        if isinstance(op, cf.BranchOp):
            self.metrics.charge("jump")
            return ("branch", op.dest, [env[v] for v in op.dest_operands])
        if isinstance(op, cf.CondBranchOp):
            self.metrics.charge("branch")
            condition = env[op.condition]
            if condition:
                return ("branch", op.true_dest, [env[v] for v in op.true_operands])
            return ("branch", op.false_dest, [env[v] for v in op.false_operands])
        if isinstance(op, cf.SwitchOp):
            self.metrics.charge("branch")
            table = self._switch_tables.get(op)
            if table is None:
                # setdefault keeps the FIRST entry per value, preserving the
                # linear scan's semantics even on (unverified) duplicates.
                table = {}
                for value, dest in zip(op.case_values, op.case_dests):
                    table.setdefault(value, dest)
                self._switch_tables[op] = table
            dest = table.get(env[op.flag])
            if dest is None:
                dest = op.default_dest
            return ("branch", dest, [])
        if isinstance(op, cf.UnreachableOp):
            raise CfgInterpreterError("executed cf.unreachable")

        # lp data operations ------------------------------------------------
        if isinstance(op, lp.IntOp):
            self.metrics.charge("move")
            env[op.result()] = self.ctx.heap.alloc_int(op.value)
            return None
        if isinstance(op, lp.BigIntOp):
            self.metrics.charge("runtime_call")
            env[op.result()] = self.ctx.heap.alloc_int(op.value)
            return None
        if isinstance(op, lp.ConstructOp):
            self.metrics.charge("alloc_ctor" if op.operands else "move")
            env[op.result()] = self.ctx.heap.alloc_ctor(
                op.tag, [env[f] for f in op.operands]
            )
            return None
        if isinstance(op, lp.GetLabelOp):
            self.metrics.charge("getlabel")
            env[op.result()] = tag_of(env[op.operands[0]])
            return None
        if isinstance(op, lp.ProjectOp):
            self.metrics.charge("proj")
            value = env[op.operands[0]]
            if not isinstance(value, CtorObject):
                raise CfgInterpreterError(f"lp.project of non-constructor {value!r}")
            field = value.fields[op.index]
            self.ctx.heap.inc(field)
            self.metrics.charge("rc")
            env[op.result()] = field
            return None
        if isinstance(op, lp.PapOp):
            self.metrics.charge("alloc_closure")
            env[op.result()] = make_closure(
                self.ctx.heap,
                op.callee,
                self._function_arity(op.callee),
                [env[a] for a in op.operands],
            )
            return None
        if isinstance(op, lp.PapExtendOp):
            env[op.result()] = self._apply_closure(
                env[op.operands[0]], [env[a] for a in op.operands[1:]]
            )
            return None
        if isinstance(op, lp.IncOp):
            self.metrics.charge("rc")
            self.ctx.heap.inc(env[op.operands[0]], op.count)
            return None
        if isinstance(op, lp.DecOp):
            self.metrics.charge("rc")
            self.ctx.heap.dec(env[op.operands[0]], op.count)
            return None
        if isinstance(op, lp.ResetOp):
            self.metrics.charge("rc")
            env[op.result()] = self.ctx.heap.reset(env[op.operands[0]])
            return None
        if isinstance(op, lp.ReuseOp):
            token = env[op.operands[0]]
            fields = [env[f] for f in op.operands[1:]]
            if isinstance(token, CtorObject):
                self.metrics.charge("reuse")
            else:
                self.metrics.charge("alloc_ctor" if fields else "move")
            env[op.result()] = self.ctx.heap.reuse(token, op.tag, fields)
            return None

        # Calls and globals ---------------------------------------------------
        if isinstance(op, CallOp):
            args = [env[a] for a in op.operands]
            value = self.call_function(op.callee, args)
            if op.results:
                env[op.result()] = value
            return None
        if isinstance(op, GetGlobalOp):
            self.metrics.charge("global")
            env[op.result()] = self.globals.get(op.global_name)
            return None
        if isinstance(op, SetGlobalOp):
            self.metrics.charge("global")
            self.globals[op.global_name] = env[op.operands[0]]
            return None

        # arith ----------------------------------------------------------------
        if isinstance(op, arith.ConstantOp):
            self.metrics.charge("const")
            env[op.result()] = op.value
            return None
        if isinstance(op, arith.CmpIOp):
            self.metrics.charge("arith")
            env[op.result()] = arith.evaluate_cmpi(
                op.predicate, env[op.operands[0]], env[op.operands[1]]
            )
            return None
        if isinstance(op, arith.SelectOp):
            self.metrics.charge("arith")
            condition = env[op.operands[0]]
            env[op.result()] = env[op.operands[1]] if condition else env[op.operands[2]]
            return None
        if op.name in (
            arith.AddIOp.OP_NAME,
            arith.SubIOp.OP_NAME,
            arith.MulIOp.OP_NAME,
            arith.DivSIOp.OP_NAME,
            arith.RemSIOp.OP_NAME,
            arith.AndIOp.OP_NAME,
            arith.OrIOp.OP_NAME,
            arith.XorIOp.OP_NAME,
        ):
            self.metrics.charge("arith")
            env[op.result()] = arith.evaluate_binary(
                op.name, env[op.operands[0]], env[op.operands[1]]
            )
            return None
        if isinstance(op, (arith.TruncIOp, arith.ExtUIOp)):
            self.metrics.charge("arith")
            env[op.result()] = env[op.operands[0]]
            return None

        raise CfgInterpreterError(f"cannot interpret operation {op.name}")


def run_cfg_module(module: ModuleOp, *, main: str = "main", check_heap: bool = True) -> RunResult:
    """Convenience wrapper: execute ``@main`` of a CFG-form module."""
    return CfgInterpreter(module).run_main(main, check_heap=check_heap)
