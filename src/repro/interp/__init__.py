"""Interpreters, the bytecode execution engine and the shared cost model."""

from .bytecode import (
    EXECUTION_ENGINES,
    BytecodeError,
    BytecodeFunction,
    BytecodeProgram,
    VirtualMachine,
    compile_cfg_module,
    compile_rc_program,
    run_cfg_module_vm,
    run_rc_program_vm,
)
from .cfg_interp import CfgInterpreter, CfgInterpreterError, run_cfg_module
from .limits import DEFAULT_RECURSION_LIMIT, recursion_limit
from .metrics import DEFAULT_COSTS, ExecutionMetrics
from .rc_interp import RcInterpreter, RunResult, run_rc_program
from .reference import ReferenceInterpreter, RefClosure, RefCtor, normalize

__all__ = [
    "EXECUTION_ENGINES",
    "BytecodeError",
    "BytecodeFunction",
    "BytecodeProgram",
    "VirtualMachine",
    "compile_cfg_module",
    "compile_rc_program",
    "run_cfg_module_vm",
    "run_rc_program_vm",
    "CfgInterpreter",
    "CfgInterpreterError",
    "run_cfg_module",
    "DEFAULT_RECURSION_LIMIT",
    "recursion_limit",
    "DEFAULT_COSTS",
    "ExecutionMetrics",
    "RcInterpreter",
    "RunResult",
    "run_rc_program",
    "ReferenceInterpreter",
    "RefClosure",
    "RefCtor",
    "normalize",
]
