"""Interpreters and the shared cost model."""

from .cfg_interp import CfgInterpreter, CfgInterpreterError, run_cfg_module
from .metrics import DEFAULT_COSTS, ExecutionMetrics
from .rc_interp import RcInterpreter, RunResult, run_rc_program
from .reference import ReferenceInterpreter, RefClosure, RefCtor, normalize

__all__ = [
    "CfgInterpreter",
    "CfgInterpreterError",
    "run_cfg_module",
    "DEFAULT_COSTS",
    "ExecutionMetrics",
    "RcInterpreter",
    "RunResult",
    "run_rc_program",
    "ReferenceInterpreter",
    "RefClosure",
    "RefCtor",
    "normalize",
]
