"""Reference interpreter for λpure — the golden semantics.

This interpreter is deliberately *independent* of the runtime, the backends
and the cost model: it evaluates λpure with plain Python values (ints,
``(tag, fields)`` tuples, pure lists for arrays) and pure functional array
semantics.  The differential tests compare its answers against both the
baseline λrc interpreter and the full lp+rgn pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..resilience.budgets import ExecutionBudget
from .limits import recursion_limit

from ..lambda_pure.ir import (
    App,
    Call,
    Case,
    Ctor,
    Dec,
    FnBody,
    Function,
    Inc,
    JDecl,
    Jmp,
    Let,
    Lit,
    PAp,
    Program,
    Proj,
    Ret,
    Unreachable,
)


class ReferenceError_(Exception):
    """Raised on a semantic error during reference evaluation."""


@dataclass
class RefCtor:
    """A constructor value."""

    tag: int
    fields: Tuple


@dataclass
class RefClosure:
    """A partial application value."""

    fn: str
    args: Tuple


class _Jump(Exception):
    """Internal control-flow signal for join-point jumps."""

    def __init__(self, label: str, args: List):
        self.label = label
        self.args = args


def normalize(value) -> object:
    """Convert a reference value into a canonical comparable Python object."""
    if isinstance(value, RefCtor):
        return (value.tag, tuple(normalize(f) for f in value.fields))
    if isinstance(value, RefClosure):
        return f"<closure {value.fn}/{len(value.args)}>"
    if isinstance(value, list):
        return [normalize(v) for v in value]
    return value


#: Pure implementations of the runtime builtins.
def _bool(flag: bool) -> RefCtor:
    return RefCtor(1 if flag else 0, ())


_PURE_BUILTINS = {
    "lean_nat_add": lambda a, b: max(a + b, 0),
    "lean_nat_sub": lambda a, b: max(a - b, 0),
    "lean_nat_mul": lambda a, b: a * b,
    "lean_nat_div": lambda a, b: a // b if b else 0,
    "lean_nat_mod": lambda a, b: a % b if b else a,
    "lean_int_add": lambda a, b: a + b,
    "lean_int_sub": lambda a, b: a - b,
    "lean_int_mul": lambda a, b: a * b,
    "lean_int_div": lambda a, b: int(a / b) if b else 0,
    "lean_int_mod": lambda a, b: (a - int(a / b) * b) if b else a,
    "lean_int_neg": lambda a: -a,
    "lean_nat_to_int": lambda a: a,
    "lean_int_to_nat": lambda a: max(a, 0),
}

_PURE_COMPARISONS = {
    "lean_nat_dec_eq": lambda a, b: a == b,
    "lean_nat_dec_ne": lambda a, b: a != b,
    "lean_nat_dec_lt": lambda a, b: a < b,
    "lean_nat_dec_le": lambda a, b: a <= b,
    "lean_nat_dec_gt": lambda a, b: a > b,
    "lean_nat_dec_ge": lambda a, b: a >= b,
    "lean_int_dec_eq": lambda a, b: a == b,
    "lean_int_dec_ne": lambda a, b: a != b,
    "lean_int_dec_lt": lambda a, b: a < b,
    "lean_int_dec_le": lambda a, b: a <= b,
    "lean_int_dec_gt": lambda a, b: a > b,
    "lean_int_dec_ge": lambda a, b: a >= b,
}


class ReferenceInterpreter:
    """Evaluates a λpure program with pure Python values."""

    def __init__(
        self,
        program: Program,
        *,
        recursion_limit: int = 200000,
        budget: Optional[ExecutionBudget] = None,
    ):
        self.program = program
        self.recursion_limit = recursion_limit
        self.budget = budget

    # -- function calls ----------------------------------------------------------
    def run_main(self, args: Optional[List] = None):
        if self.budget is not None:
            self.budget.start()
        with recursion_limit(self.recursion_limit):
            return self.call(self.program.main, list(args or []))

    def call(self, fn_name: str, args: List):
        if fn_name in _PURE_BUILTINS or fn_name in _PURE_COMPARISONS:
            return self._call_builtin(fn_name, args)
        if fn_name.startswith("lean_array_"):
            return self._call_array(fn_name, args)
        fn = self.program.functions.get(fn_name)
        if fn is None:
            raise ReferenceError_(f"unknown function {fn_name}")
        if len(args) != fn.arity:
            raise ReferenceError_(
                f"calling {fn_name} with {len(args)} args, expected {fn.arity}"
            )
        if self.budget is not None:
            self.budget.charge()
        env = dict(zip(fn.params, args))
        return self._eval_body(fn.body, env, {})

    def apply(self, closure: RefClosure, args: List):
        fn = self.program.functions.get(closure.fn)
        arity = fn.arity if fn is not None else len(args) + len(closure.args)
        combined = list(closure.args) + args
        if len(combined) < arity:
            return RefClosure(closure.fn, tuple(combined))
        result = self.call(closure.fn, combined[:arity])
        extra = combined[arity:]
        if extra:
            if not isinstance(result, RefClosure):
                raise ReferenceError_("over-application of a non-closure result")
            return self.apply(result, extra)
        return result

    # -- builtins --------------------------------------------------------------------
    def _call_builtin(self, name: str, args: List):
        ints = [a for a in args]
        if name in _PURE_BUILTINS:
            return _PURE_BUILTINS[name](*ints)
        return _bool(_PURE_COMPARISONS[name](*ints))

    def _call_array(self, name: str, args: List):
        if name == "lean_array_mk":
            return []
        if name == "lean_array_mk_sized":
            size, fill = args
            return [fill] * size
        if name == "lean_array_push":
            array, value = args
            return list(array) + [value]
        if name == "lean_array_get":
            array, index = args
            return array[index]
        if name == "lean_array_set":
            array, index, value = args
            copy = list(array)
            copy[index] = value
            return copy
        if name == "lean_array_size":
            (array,) = args
            return len(array)
        if name == "lean_array_swap":
            array, i, j = args
            copy = list(array)
            copy[i], copy[j] = copy[j], copy[i]
            return copy
        raise ReferenceError_(f"unknown array builtin {name}")

    # -- expression evaluation ------------------------------------------------------------
    def _eval_expr(self, expr, env: Dict[str, object]):
        if isinstance(expr, Lit):
            return expr.value
        if isinstance(expr, Ctor):
            return RefCtor(expr.tag, tuple(env[a] for a in expr.args))
        if isinstance(expr, Proj):
            value = env[expr.var]
            if not isinstance(value, RefCtor):
                raise ReferenceError_(f"projection from non-constructor {value!r}")
            return value.fields[expr.index]
        if isinstance(expr, Call):
            return self.call(expr.fn, [env[a] for a in expr.args])
        if isinstance(expr, PAp):
            return RefClosure(expr.fn, tuple(env[a] for a in expr.args))
        if isinstance(expr, App):
            closure = env[expr.closure]
            if not isinstance(closure, RefClosure):
                raise ReferenceError_(f"applying a non-closure {closure!r}")
            return self.apply(closure, [env[a] for a in expr.args])
        raise ReferenceError_(f"unknown expression {expr!r}")

    # -- body evaluation ----------------------------------------------------------------------
    def _eval_body(self, body: FnBody, env: Dict[str, object], joins: Dict[str, Tuple]):
        while True:
            if isinstance(body, Let):
                env = dict(env)
                env[body.var] = self._eval_expr(body.expr, env)
                body = body.body
                continue
            if isinstance(body, (Inc, Dec)):
                body = body.body
                continue
            if isinstance(body, Ret):
                return env[body.var]
            if isinstance(body, Case):
                scrutinee = env[body.var]
                tag = (
                    scrutinee.tag
                    if isinstance(scrutinee, RefCtor)
                    else int(scrutinee)
                )
                chosen = None
                for alt in body.alts:
                    if alt.tag == tag:
                        chosen = alt.body
                        break
                if chosen is None:
                    chosen = body.default
                if chosen is None:
                    raise ReferenceError_(
                        f"no case alternative for tag {tag} in case {body.var}"
                    )
                body = chosen
                continue
            if isinstance(body, JDecl):
                joins = dict(joins)
                # Capture the environment and join scope at the declaration:
                # the join body may only reference variables in scope here.
                joins[body.label] = (body.params, body.jbody, env, joins)
                body = body.rest
                continue
            if isinstance(body, Jmp):
                if self.budget is not None:
                    self.budget.charge()
                if body.label not in joins:
                    raise ReferenceError_(f"jump to unknown join point {body.label}")
                params, jbody, jenv, jjoins = joins[body.label]
                if len(params) != len(body.args):
                    raise ReferenceError_(
                        f"jump to {body.label} with {len(body.args)} args, "
                        f"expected {len(params)}"
                    )
                arg_values = [env[a] for a in body.args]
                env = dict(jenv)
                for param, value in zip(params, arg_values):
                    env[param] = value
                joins = jjoins
                body = jbody
                continue
            if isinstance(body, Unreachable):
                raise ReferenceError_("reached an unreachable program point")
            raise ReferenceError_(f"unknown body node {body!r}")
