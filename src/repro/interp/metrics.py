"""Deterministic cost model shared by every interpreter.

Native execution is unavailable in this reproduction, so the evaluation
(Figures 9 and 10) compares pipelines by the *cost-weighted number of
executed operations*.  Both backends charge the same costs for the same
dynamic events (an allocation, a runtime call, a branch, ...), which is what
makes the speedup ratios meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Cost charged per dynamic event category.
DEFAULT_COSTS: Dict[str, int] = {
    "arith": 1,          # machine arithmetic / comparison
    "branch": 1,         # conditional or multi-way branch taken
    "jump": 1,           # unconditional jump / join-point jump
    "call": 4,           # direct call of a known function
    "return": 1,
    "runtime_call": 8,   # call into the LEAN runtime (big-int arithmetic, arrays, ...)
    "alloc_ctor": 10,    # heap allocation of a constructor
    "reuse": 3,          # in-place constructor reuse (tag + field stores, no allocator)
    "alloc_closure": 12, # heap allocation of a closure
    "apply": 12,         # closure extension / saturation (lean_apply_n)
    "proj": 2,           # field projection
    "getlabel": 1,       # read a constructor tag
    "rc": 2,             # reference count increment / decrement
    "move": 1,           # register-level move (block-argument passing, literals)
    "const": 0,          # constant materialisation (an immediate in native code)
    "global": 2,         # global slot load/store
}


@dataclass
class ExecutionMetrics:
    """Counters collected while interpreting one program execution."""

    counts: Dict[str, int] = field(default_factory=dict)
    costs: Dict[str, int] = field(default_factory=lambda: dict(DEFAULT_COSTS))
    wall_time_seconds: float = 0.0

    def charge(self, category: str, times: int = 1) -> None:
        self.counts[category] = self.counts.get(category, 0) + times

    def total_operations(self) -> int:
        return sum(self.counts.values())

    def total_cost(self) -> int:
        """Cost-weighted operation count (the quantity the figures compare)."""
        return sum(
            self.costs.get(category, 1) * count
            for category, count in self.counts.items()
        )

    def merged_with(self, other: "ExecutionMetrics") -> "ExecutionMetrics":
        merged = ExecutionMetrics(costs=dict(self.costs))
        for source in (self, other):
            for category, count in source.counts.items():
                merged.counts[category] = merged.counts.get(category, 0) + count
        merged.wall_time_seconds = self.wall_time_seconds + other.wall_time_seconds
        return merged

    def as_dict(self) -> Dict[str, object]:
        return {
            "counts": dict(self.counts),
            "total_operations": self.total_operations(),
            "total_cost": self.total_cost(),
            "wall_time_seconds": self.wall_time_seconds,
        }
