"""Register-based bytecode execution engine for the evaluation interpreters.

The tree-walking interpreters (:class:`~repro.interp.cfg_interp.
CfgInterpreter` and :class:`~repro.interp.rc_interp.RcInterpreter`) re-walk
the IR object graph on every call: each operation is re-dispatched through a
long ``isinstance`` chain, every SSA value / λrc variable is a dictionary
key, and environments are copied per ``let`` / block transfer.  Following
MLIR's split between the IR and its execution engines, this module compiles
a module **once** into flat per-function instruction arrays and executes
them with a compact VM loop:

* *registers* — every SSA value (or λrc variable binding) gets a dense
  integer slot; a frame is a plain Python list, parameters occupy slots
  ``0..n-1``,
* *pre-resolved control flow* — branch targets are instruction indices,
  ``cf.switch`` / λrc ``case`` dispatch through a precomputed value→pc
  dict, block-argument forwarding is a register parallel-copy baked into
  the jump instruction,
* *pre-resolved calls* — a direct call holds the callee's compiled
  function object (no name lookup at run time); runtime builtins and
  unknown symbols are classified at compile time,
* *precomputed cost charges* — every instruction knows its cost-model
  category up front; only genuinely dynamic charges (``lp.reuse`` tokens,
  closure application chains) are decided while running.

Both IR levels compile to the **same instruction set** and share one
:class:`VirtualMachine` loop: :func:`compile_cfg_module` translates the
final CFG-form MLIR module, :func:`compile_rc_program` translates a λrc
program (join points become jump labels, ``case`` becomes the dispatch
instruction).  The VM charges exactly the events the corresponding
tree-walker charges, so results, :class:`~repro.interp.metrics.
ExecutionMetrics` and heap statistics are identical — the tree-walkers
survive as differential oracles (``execution_engine="tree"``).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..dialects import arith, cf, lp
from ..dialects.builtin import ModuleOp
from ..dialects.func import CallOp, FuncOp, GetGlobalOp, ReturnOp, SetGlobalOp
from ..lambda_pure import ir as rc_ir
from ..runtime import (
    CtorObject,
    RuntimeContext,
    RuntimeError_,
    Scalar,
    Enum,
    call_builtin,
    extend_closure,
    is_builtin,
    make_closure,
    python_value,
    tag_of,
)
from ..resilience.budgets import ExecutionBudget
from ..resilience.faults import fault_hit
from ..telemetry import get_metrics, get_tracer
from .cfg_interp import CfgInterpreterError
from .limits import recursion_limit
from .metrics import DEFAULT_COSTS, ExecutionMetrics
from .rc_interp import RunResult

#: The execution engines understood by the pipeline layer.
EXECUTION_ENGINES = ("vm", "tree")


class BytecodeError(Exception):
    """Raised when a module cannot be compiled to bytecode."""


# ---------------------------------------------------------------------------
# Instruction set
# ---------------------------------------------------------------------------
# An instruction is a plain tuple whose first element is one of the opcode
# integers below.  Register operands are indices into the frame list; a
# destination of -1 discards the produced value.  Branch operands are
# absolute instruction indices within the function's code array.

OP_RET = 0          # (op, src)                       charge: return
OP_JMP = 1          # (op, pc, srcs, dsts)            charge: jump
OP_CONDBR = 2       # (op, cond, tpc, tsrcs, tdsts, fpc, fsrcs, fdsts)  branch
OP_SWITCH = 3       # (op, flag, {value: pc}, default_pc)               branch
OP_CASE = 4         # (op, src, {tag: pc}, default_pc|None)  getlabel+arith+branch
OP_UNREACHABLE = 5  # (op, message)
OP_CONST = 6        # (op, dst, value)                charge: const
OP_INT = 7          # (op, dst, value)                charge: move
OP_BIGINT = 8       # (op, dst, value)                charge: runtime_call
OP_CONSTRUCT = 9    # (op, dst, tag, field_regs, category)
OP_GETLABEL = 10    # (op, dst, src)                  charge: getlabel
OP_PROJ = 11        # (op, dst, src, index)           charge: proj + rc
OP_PAP = 12         # (op, dst, callee, arity|None, arg_regs)  alloc_closure
OP_PAPEXTEND = 13   # (op, dst, closure, arg_regs)    charge: apply (dynamic)
OP_INC = 14         # (op, src, count)                charge: rc
OP_DEC = 15         # (op, src, count)                charge: rc
OP_RESET = 16       # (op, dst, src)                  charge: rc
OP_REUSE = 17       # (op, dst, token, tag, field_regs)  dynamic
OP_CALL = 18        # (op, dst, BytecodeFunction, arg_regs)  charge: call
OP_RTCALL = 19      # (op, dst, name, arg_regs)       charge: runtime_call
OP_BADCALL = 20     # (op, name)                      raises
OP_GETGLOBAL = 21   # (op, dst, name)                 charge: global
OP_SETGLOBAL = 22   # (op, name, src)                 charge: global
OP_BINARITH = 23    # (op, dst, fn, lhs, rhs)         charge: arith
OP_CMP = 24         # (op, dst, fn, lhs, rhs)         charge: arith
OP_SELECT = 25      # (op, dst, cond, t, f)           charge: arith
OP_CAST = 26        # (op, dst, src)                  charge: arith

#: Human-readable opcode names (docs/EXECUTION.md and the unit tests).
OPCODE_NAMES = {
    OP_RET: "ret", OP_JMP: "jmp", OP_CONDBR: "cond_br", OP_SWITCH: "switch",
    OP_CASE: "case", OP_UNREACHABLE: "unreachable", OP_CONST: "const",
    OP_INT: "int", OP_BIGINT: "bigint", OP_CONSTRUCT: "construct",
    OP_GETLABEL: "getlabel", OP_PROJ: "proj", OP_PAP: "pap",
    OP_PAPEXTEND: "papextend", OP_INC: "inc", OP_DEC: "dec",
    OP_RESET: "reset", OP_REUSE: "reuse", OP_CALL: "call",
    OP_RTCALL: "rtcall", OP_BADCALL: "badcall", OP_GETGLOBAL: "getglobal",
    OP_SETGLOBAL: "setglobal", OP_BINARITH: "binarith", OP_CMP: "cmp",
    OP_SELECT: "select", OP_CAST: "cast",
}

#: Size of the per-VM opcode frequency table.
NUM_OPCODES = len(OPCODE_NAMES)

def _divsi(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("division by zero in arith.divsi")
    return int(a / b)


def _remsi(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("remainder by zero in arith.remsi")
    return a - int(a / b) * b


#: Binary arithmetic resolved to callables at compile time.  The semantics
#: (including errors) must stay those of :func:`repro.dialects.arith.
#: evaluate_binary` — the resolved tables exist only to skip its per-event
#: name dispatch; a drift test compares every entry against the oracle.
_BINARY_FNS: Dict[str, Callable[[int, int], int]] = {
    arith.AddIOp.OP_NAME: lambda a, b: a + b,
    arith.SubIOp.OP_NAME: lambda a, b: a - b,
    arith.MulIOp.OP_NAME: lambda a, b: a * b,
    arith.DivSIOp.OP_NAME: _divsi,
    arith.RemSIOp.OP_NAME: _remsi,
    arith.AndIOp.OP_NAME: lambda a, b: a & b,
    arith.OrIOp.OP_NAME: lambda a, b: a | b,
    arith.XorIOp.OP_NAME: lambda a, b: a ^ b,
}

#: Comparison predicates resolved to callables (semantics of
#: :func:`repro.dialects.arith.evaluate_cmpi`; drift-tested likewise).
_CMP_FNS: Dict[str, Callable[[int, int], int]] = {
    "eq": lambda a, b: 1 if a == b else 0,
    "ne": lambda a, b: 1 if a != b else 0,
    "slt": lambda a, b: 1 if a < b else 0,
    "sle": lambda a, b: 1 if a <= b else 0,
    "sgt": lambda a, b: 1 if a > b else 0,
    "sge": lambda a, b: 1 if a >= b else 0,
    "ult": lambda a, b: 1 if abs(a) < abs(b) else 0,
    "ule": lambda a, b: 1 if abs(a) <= abs(b) else 0,
    "ugt": lambda a, b: 1 if abs(a) > abs(b) else 0,
    "uge": lambda a, b: 1 if abs(a) >= abs(b) else 0,
}


class BytecodeFunction:
    """One compiled function: a flat instruction array plus frame layout."""

    __slots__ = ("name", "num_params", "num_regs", "code")

    def __init__(self, name: str, num_params: int):
        self.name = name
        self.num_params = num_params
        self.num_regs = num_params
        self.code: List[Tuple] = []

    def __repr__(self):
        return (
            f"BytecodeFunction({self.name!r}, params={self.num_params}, "
            f"regs={self.num_regs}, instructions={len(self.code)})"
        )


class BytecodeProgram:
    """A compiled module: every function plus execution flavour metadata.

    ``flavor`` selects the tree-walker whose observable behaviour the VM
    reproduces: ``"cfg"`` (CFG-form MLIR, :class:`CfgInterpreter` oracle)
    or ``"rc"`` (λrc, :class:`RcInterpreter` oracle).  It decides the error
    type raised on runtime faults and how ``run_main`` releases the final
    value — both tree-walkers differ slightly and the VM matches each
    exactly.
    """

    __slots__ = ("flavor", "functions", "main")

    def __init__(self, flavor: str, main: str = "main"):
        if flavor not in ("cfg", "rc"):
            raise ValueError(f"unknown bytecode flavor {flavor!r}")
        self.flavor = flavor
        self.functions: Dict[str, BytecodeFunction] = {}
        self.main = main

    @property
    def instruction_count(self) -> int:
        return sum(len(f.code) for f in self.functions.values())

    def __repr__(self):
        return (
            f"BytecodeProgram({self.flavor!r}, functions={len(self.functions)}, "
            f"instructions={self.instruction_count})"
        )


class _Label:
    """A forward-referenced instruction index, patched after emission."""

    __slots__ = ("pc",)

    def __init__(self):
        self.pc: Optional[int] = None


def _resolve_labels(code: List[Tuple]) -> List[Tuple]:
    """Replace :class:`_Label` references (including dict values) with pcs."""
    resolved = []
    for ins in code:
        out = []
        for element in ins:
            if isinstance(element, _Label):
                out.append(element.pc)
            elif isinstance(element, dict):
                out.append({
                    key: value.pc if isinstance(value, _Label) else value
                    for key, value in element.items()
                })
            else:
                out.append(element)
        resolved.append(tuple(out))
    return resolved


# ---------------------------------------------------------------------------
# CFG-form MLIR -> bytecode
# ---------------------------------------------------------------------------


class _CfgFunctionCompiler:
    """Compiles one ``func.func`` body into a :class:`BytecodeFunction`."""

    def __init__(self, func: FuncOp, target: BytecodeFunction, program: BytecodeProgram):
        self.func = func
        self.target = target
        self.program = program
        self.regs: Dict[object, int] = {}
        self.code: List[Tuple] = []

    def _reg(self, value) -> int:
        index = self.regs.get(value)
        if index is None:
            index = self.target.num_regs
            self.target.num_regs += 1
            self.regs[value] = index
        return index

    def _operand_regs(self, values) -> Tuple[int, ...]:
        return tuple(self.regs[v] for v in values)

    def run(self) -> None:
        blocks = list(self.func.body.blocks)
        # Parameters occupy registers 0..n-1 (the shell pre-reserved them);
        # then every block argument gets its slot up front so branches can
        # name their destination registers.
        for index, argument in enumerate(blocks[0].arguments):
            self.regs[argument] = index
        labels = {block: _Label() for block in blocks}
        for block in blocks[1:]:
            for argument in block.arguments:
                self._reg(argument)
        for block in blocks:
            labels[block].pc = len(self.code)
            for op in block:
                self._emit(op, labels)
        self.target.code = _resolve_labels(self.code)

    def _branch_args(self, block, values) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        return (
            self._operand_regs(values),
            tuple(self.regs[a] for a in block.arguments),
        )

    def _emit(self, op, labels) -> None:
        code = self.code
        # Terminators ---------------------------------------------------
        if isinstance(op, ReturnOp):
            src = self.regs[op.operands[0]] if op.operands else -1
            code.append((OP_RET, src))
            return
        if isinstance(op, cf.BranchOp):
            srcs, dsts = self._branch_args(op.dest, op.dest_operands)
            code.append((OP_JMP, labels[op.dest], srcs, dsts))
            return
        if isinstance(op, cf.CondBranchOp):
            tsrcs, tdsts = self._branch_args(op.true_dest, op.true_operands)
            fsrcs, fdsts = self._branch_args(op.false_dest, op.false_operands)
            code.append((
                OP_CONDBR, self.regs[op.condition],
                labels[op.true_dest], tsrcs, tdsts,
                labels[op.false_dest], fsrcs, fdsts,
            ))
            return
        if isinstance(op, cf.SwitchOp):
            # setdefault keeps the FIRST entry per value, preserving the
            # tree-walker's linear-scan semantics on (unverified) duplicates.
            table = {}
            for value, dest in zip(op.case_values, op.case_dests):
                table.setdefault(value, labels[dest])
            code.append((
                OP_SWITCH, self.regs[op.flag], table, labels[op.default_dest]
            ))
            return
        if isinstance(op, cf.UnreachableOp):
            code.append((OP_UNREACHABLE, "executed cf.unreachable"))
            return

        # lp data operations --------------------------------------------
        if isinstance(op, lp.IntOp):
            code.append((OP_INT, self._reg(op.result()), op.value))
            return
        if isinstance(op, lp.BigIntOp):
            code.append((OP_BIGINT, self._reg(op.result()), op.value))
            return
        if isinstance(op, lp.ConstructOp):
            fields = self._operand_regs(op.operands)
            category = "alloc_ctor" if fields else "move"
            code.append(
                (OP_CONSTRUCT, self._reg(op.result()), op.tag, fields, category)
            )
            return
        if isinstance(op, lp.GetLabelOp):
            code.append((OP_GETLABEL, self._reg(op.result()), self.regs[op.operands[0]]))
            return
        if isinstance(op, lp.ProjectOp):
            code.append((
                OP_PROJ, self._reg(op.result()), self.regs[op.operands[0]], op.index
            ))
            return
        if isinstance(op, lp.PapOp):
            callee = self.program.functions.get(op.callee)
            arity = callee.num_params if callee is not None else None
            code.append((
                OP_PAP, self._reg(op.result()), op.callee, arity,
                self._operand_regs(op.operands),
            ))
            return
        if isinstance(op, lp.PapExtendOp):
            code.append((
                OP_PAPEXTEND, self._reg(op.result()),
                self.regs[op.operands[0]], self._operand_regs(op.operands[1:]),
            ))
            return
        if isinstance(op, lp.IncOp):
            code.append((OP_INC, self.regs[op.operands[0]], op.count))
            return
        if isinstance(op, lp.DecOp):
            code.append((OP_DEC, self.regs[op.operands[0]], op.count))
            return
        if isinstance(op, lp.ResetOp):
            code.append((OP_RESET, self._reg(op.result()), self.regs[op.operands[0]]))
            return
        if isinstance(op, lp.ReuseOp):
            code.append((
                OP_REUSE, self._reg(op.result()), self.regs[op.operands[0]],
                op.tag, self._operand_regs(op.operands[1:]),
            ))
            return

        # Calls and globals ----------------------------------------------
        if isinstance(op, CallOp):
            dst = self._reg(op.result()) if op.results else -1
            args = self._operand_regs(op.operands)
            callee = self.program.functions.get(op.callee)
            if callee is not None:
                code.append((OP_CALL, dst, callee, args))
            elif is_builtin(op.callee):
                code.append((OP_RTCALL, dst, op.callee, args))
            else:
                code.append((OP_BADCALL, op.callee))
            return
        if isinstance(op, GetGlobalOp):
            code.append((OP_GETGLOBAL, self._reg(op.result()), op.global_name))
            return
        if isinstance(op, SetGlobalOp):
            code.append((OP_SETGLOBAL, op.global_name, self.regs[op.operands[0]]))
            return

        # arith -----------------------------------------------------------
        if isinstance(op, arith.ConstantOp):
            code.append((OP_CONST, self._reg(op.result()), op.value))
            return
        if isinstance(op, arith.CmpIOp):
            code.append((
                OP_CMP, self._reg(op.result()), _CMP_FNS[op.predicate],
                self.regs[op.operands[0]], self.regs[op.operands[1]],
            ))
            return
        if isinstance(op, arith.SelectOp):
            code.append((
                OP_SELECT, self._reg(op.result()), self.regs[op.operands[0]],
                self.regs[op.operands[1]], self.regs[op.operands[2]],
            ))
            return
        binary = _BINARY_FNS.get(op.name)
        if binary is not None:
            code.append((
                OP_BINARITH, self._reg(op.result()), binary,
                self.regs[op.operands[0]], self.regs[op.operands[1]],
            ))
            return
        if isinstance(op, (arith.TruncIOp, arith.ExtUIOp)):
            code.append((OP_CAST, self._reg(op.result()), self.regs[op.operands[0]]))
            return

        raise BytecodeError(f"cannot compile operation {op.name}")


def compile_cfg_module(module: ModuleOp, *, main: str = "main") -> BytecodeProgram:
    """Compile a CFG-form MLIR module to a :class:`BytecodeProgram`.

    Declarations (runtime functions) are left to the builtin dispatcher;
    only bodies are compiled.
    """
    program = BytecodeProgram("cfg", main=main)
    defined = [f for f in module.functions() if not f.is_declaration]
    # Two phases so direct calls can hold the callee's function object even
    # for mutual recursion: allocate every shell first, then fill bodies.
    for func in defined:
        program.functions[func.sym_name] = BytecodeFunction(
            func.sym_name, len(func.function_type.inputs)
        )
    for func in defined:
        _CfgFunctionCompiler(func, program.functions[func.sym_name], program).run()
    return program


# ---------------------------------------------------------------------------
# λrc -> bytecode
# ---------------------------------------------------------------------------


class _RcFunctionCompiler:
    """Compiles one λrc function body into a :class:`BytecodeFunction`.

    Variables are alpha-renamed onto registers while compiling: every
    ``let`` allocates a *fresh* slot (shadowed names keep their old slot
    alive), so a join point's body — compiled against the name→register
    map captured at its declaration — reads exactly the values the
    tree-walker's captured environment would, without any environment
    copying at run time.
    """

    def __init__(self, fn: rc_ir.Function, target: BytecodeFunction, program: BytecodeProgram):
        self.fn = fn
        self.target = target
        self.program = program
        self.code: List[Tuple] = []
        #: Deferred (body, env, joins, label) emissions: join-point bodies
        #: are placed after the flow that declares them.
        self.pending: List[Tuple] = []

    def _new_reg(self) -> int:
        index = self.target.num_regs
        self.target.num_regs += 1
        return index

    def run(self) -> None:
        env = {param: index for index, param in enumerate(self.fn.params)}
        self._emit_body(self.fn.body, env, {})
        while self.pending:
            body, env, joins, label = self.pending.pop(0)
            label.pc = len(self.code)
            self._emit_body(body, env, joins)
        self.target.code = _resolve_labels(self.code)

    # -- bodies -----------------------------------------------------------
    def _emit_body(self, body, env: Dict[str, int], joins: Dict[str, Tuple]) -> None:
        code = self.code
        while True:
            if isinstance(body, rc_ir.Let):
                dst = self._new_reg()
                self._emit_expr(body.expr, env, dst)
                env = dict(env)
                env[body.var] = dst
                body = body.body
                continue
            if isinstance(body, rc_ir.Inc):
                code.append((OP_INC, env[body.var], body.count))
                body = body.body
                continue
            if isinstance(body, rc_ir.Dec):
                code.append((OP_DEC, env[body.var], body.count))
                body = body.body
                continue
            if isinstance(body, rc_ir.Ret):
                code.append((OP_RET, env[body.var]))
                return
            if isinstance(body, rc_ir.Case):
                table: Dict[int, _Label] = {}
                branches = []
                for alt in body.alts:
                    label = _Label()
                    # First alternative wins on duplicate tags, like the
                    # tree-walker's linear alternative scan.
                    table.setdefault(alt.tag, label)
                    branches.append((alt.body, label))
                default_label = None
                if body.default is not None:
                    default_label = _Label()
                    branches.append((body.default, default_label))
                code.append((OP_CASE, env[body.var], table, default_label))
                for branch_body, label in branches:
                    label.pc = len(code)
                    self._emit_body(branch_body, env, joins)
                return
            if isinstance(body, rc_ir.JDecl):
                joins = dict(joins)
                label = _Label()
                param_regs = tuple(self._new_reg() for _ in body.params)
                joins[body.label] = (label, param_regs)
                join_env = dict(env)
                join_env.update(zip(body.params, param_regs))
                # The join body sees the joins map *including itself*, so
                # self-recursive jumps compile to backward jumps.
                self.pending.append((body.jbody, join_env, joins, label))
                body = body.rest
                continue
            if isinstance(body, rc_ir.Jmp):
                label, param_regs = joins[body.label]
                srcs = tuple(env[a] for a in body.args)
                code.append((OP_JMP, label, srcs, param_regs))
                return
            if isinstance(body, rc_ir.Unreachable):
                code.append(
                    (OP_UNREACHABLE, "executed an unreachable program point")
                )
                return
            raise BytecodeError(f"unknown body node {body!r}")

    # -- expressions ------------------------------------------------------
    def _emit_expr(self, expr, env: Dict[str, int], dst: int) -> None:
        code = self.code
        if isinstance(expr, rc_ir.Lit):
            # The λrc tree-walker charges every literal as a register move
            # (big integers included), unlike the lp dialect's lp.bigint.
            code.append((OP_INT, dst, expr.value))
            return
        if isinstance(expr, rc_ir.Ctor):
            fields = tuple(env[a] for a in expr.args)
            category = "alloc_ctor" if fields else "move"
            code.append((OP_CONSTRUCT, dst, expr.tag, fields, category))
            return
        if isinstance(expr, rc_ir.Proj):
            code.append((OP_PROJ, dst, env[expr.var], expr.index))
            return
        if isinstance(expr, rc_ir.Reset):
            code.append((OP_RESET, dst, env[expr.var]))
            return
        if isinstance(expr, rc_ir.Reuse):
            code.append((
                OP_REUSE, dst, env[expr.token], expr.tag,
                tuple(env[a] for a in expr.args),
            ))
            return
        if isinstance(expr, rc_ir.Call):
            args = tuple(env[a] for a in expr.args)
            # The λrc tree-walker tries the runtime builtins *before* the
            # program's own functions; mirror that resolution order.
            if is_builtin(expr.fn):
                code.append((OP_RTCALL, dst, expr.fn, args))
            elif expr.fn in self.program.functions:
                code.append((OP_CALL, dst, self.program.functions[expr.fn], args))
            else:
                code.append((OP_BADCALL, expr.fn))
            return
        if isinstance(expr, rc_ir.PAp):
            callee = self.program.functions.get(expr.fn)
            arity = callee.num_params if callee is not None else None
            code.append((OP_PAP, dst, expr.fn, arity, tuple(env[a] for a in expr.args)))
            return
        if isinstance(expr, rc_ir.App):
            code.append((
                OP_PAPEXTEND, dst, env[expr.closure],
                tuple(env[a] for a in expr.args),
            ))
            return
        raise BytecodeError(f"unknown expression {expr!r}")


def compile_rc_program(program: rc_ir.Program) -> BytecodeProgram:
    """Compile a λrc program to a :class:`BytecodeProgram`."""
    bytecode = BytecodeProgram("rc", main=program.main)
    for name, fn in program.functions.items():
        bytecode.functions[name] = BytecodeFunction(name, fn.arity)
    for name, fn in program.functions.items():
        _RcFunctionCompiler(fn, bytecode.functions[name], bytecode).run()
    return bytecode


# ---------------------------------------------------------------------------
# The VM
# ---------------------------------------------------------------------------


class VirtualMachine:
    """Executes a :class:`BytecodeProgram` against the simulated runtime.

    One VM instance owns one runtime context and one metrics object, like
    the tree-walking interpreters it replaces; ``run_main`` is a drop-in
    for their ``run_main`` (the entry point is the keyword-only ``main``;
    the positional parameter is the argument list, as on
    :class:`RcInterpreter`).

    Charges accumulate in a local counter and fold into
    ``metrics.counts`` when ``run_main`` returns *or raises* — callers
    invoking :meth:`call_function` directly should call ``run_main``
    instead (or read the counters only after a ``run_main``).
    """

    def __init__(
        self,
        program: BytecodeProgram,
        *,
        context: Optional[RuntimeContext] = None,
        metrics: Optional[ExecutionMetrics] = None,
        recursion_limit: int = 200000,
        budget: Optional[ExecutionBudget] = None,
    ):
        self.program = program
        self.ctx = context if context is not None else RuntimeContext()
        self.metrics = metrics if metrics is not None else ExecutionMetrics()
        self.globals: Dict[str, object] = {}
        #: Local charge accumulator, folded into ``metrics.counts`` when a
        #: run finishes (the per-event ``charge`` call is the tree-walkers'
        #: single hottest line).
        self._counts: Dict[str, int] = {category: 0 for category in DEFAULT_COSTS}
        #: Dynamic instruction frequencies, indexed by opcode — the input
        #: the ROADMAP's superinstruction selection reads, surfaced via
        #: :meth:`instruction_frequencies`, ``--exec-stats`` and the
        #: ``vm.instr.freq.<op>`` metrics.
        self.opcode_counts: List[int] = [0] * NUM_OPCODES
        self.recursion_limit = recursion_limit
        self.budget = budget

    # -- error shaping ----------------------------------------------------
    def _error(self, message: str) -> Exception:
        if self.program.flavor == "cfg":
            return CfgInterpreterError(message)
        return RuntimeError_(message)

    # -- public API -------------------------------------------------------
    def run_main(
        self,
        args: Optional[List[object]] = None,
        *,
        main: Optional[str] = None,
        check_heap: bool = True,
    ) -> RunResult:
        if isinstance(args, str):
            raise TypeError(
                "run_main takes the argument list first; pass the entry "
                "point as run_main(main=...)"
            )
        entry = main or self.program.main
        if self.budget is not None:
            self.budget.start()
        start = time.perf_counter()
        try:
            with get_tracer().span(
                "vm:run", category="exec", main=entry,
                flavor=self.program.flavor,
            ), recursion_limit(self.recursion_limit):
                result = self.call_function(entry, list(args or []))
        finally:
            # Fold charges into the metrics even when execution faults, so
            # the counters reflect the work done up to the error — the same
            # observable the incrementally-charging tree-walkers leave.
            self.metrics.wall_time_seconds = time.perf_counter() - start
            self._flush_counts()
            self._publish_telemetry()
        snapshot = python_value(result) if result is not None else None
        if self.program.flavor == "cfg":
            if result is not None:
                self.ctx.release(result)
        elif not isinstance(result, (Scalar, Enum)):
            self.ctx.release(result)
        if check_heap:
            self.ctx.heap.check_balanced()
        return RunResult(
            value=snapshot,
            metrics=self.metrics,
            heap_stats=self.ctx.heap.stats.as_dict(),
            output=list(self.ctx.output),
        )

    def _flush_counts(self) -> None:
        counts = self.metrics.counts
        for category, count in self._counts.items():
            if count:
                counts[category] = counts.get(category, 0) + count
                self._counts[category] = 0

    def instruction_frequencies(self) -> Dict[str, int]:
        """Dynamic instruction frequencies, most-executed first."""
        frequencies = {
            OPCODE_NAMES[opcode]: count
            for opcode, count in enumerate(self.opcode_counts)
            if count
        }
        return dict(
            sorted(frequencies.items(), key=lambda item: (-item[1], item[0]))
        )

    def _publish_telemetry(self) -> None:
        """Publish instruction frequencies and run time into the active
        metrics registry (``vm.instr.freq.<op>`` / ``vm.run.seconds``)."""
        registry = get_metrics()
        if not registry.enabled:
            return
        for name, count in self.instruction_frequencies().items():
            registry.bump("vm.instr.freq." + name, count)
        registry.observe("vm.run.seconds", self.metrics.wall_time_seconds)

    # -- calls ------------------------------------------------------------
    def call_function(self, name: str, args: List[object]) -> object:
        counts = self._counts
        if self.program.flavor == "rc" and is_builtin(name):
            counts["runtime_call"] += 1
            return call_builtin(self.ctx, name, args)
        fn = self.program.functions.get(name)
        if fn is not None:
            counts["call"] += 1
            return self._exec(fn, args)
        if is_builtin(name):
            counts["runtime_call"] += 1
            return call_builtin(self.ctx, name, args)
        if self.program.flavor == "cfg":
            raise self._error(f"call of unknown function @{name}")
        raise self._error(f"unknown function {name}")

    def _apply_closure(self, closure: object, args: List[object]) -> object:
        self._counts["apply"] += 1
        outcome = extend_closure(self.ctx.heap, closure, args)
        if not outcome.is_call:
            return outcome.closure
        result = self.call_function(outcome.call_fn, outcome.call_args)
        if outcome.extra_args:
            return self._apply_closure(result, outcome.extra_args)
        return result

    # -- the interpreter loop ---------------------------------------------
    def _exec(self, fn: BytecodeFunction, args: List[object]) -> object:
        fault_hit("vm.dispatch")
        if len(args) != fn.num_params:
            raise self._error(
                f"calling {fn.name} with {len(args)} arguments, "
                f"expected {fn.num_params}"
            )
        regs = [None] * fn.num_regs
        regs[: fn.num_params] = args
        code = fn.code
        counts = self._counts
        freq = self.opcode_counts
        heap = self.ctx.heap
        budget = self.budget
        if budget is not None:
            budget.charge()
        pc = 0
        while True:
            ins = code[pc]
            opcode = ins[0]
            freq[opcode] += 1
            if opcode == OP_BINARITH:
                counts["arith"] += 1
                regs[ins[1]] = ins[2](regs[ins[3]], regs[ins[4]])
            elif opcode == OP_CMP:
                counts["arith"] += 1
                regs[ins[1]] = ins[2](regs[ins[3]], regs[ins[4]])
            elif opcode == OP_JMP:
                counts["jump"] += 1
                if budget is not None:
                    budget.charge()
                srcs = ins[2]
                if srcs:
                    values = [regs[s] for s in srcs]
                    for dst, value in zip(ins[3], values):
                        regs[dst] = value
                pc = ins[1]
                continue
            elif opcode == OP_CONDBR:
                counts["branch"] += 1
                if budget is not None:
                    budget.charge()
                if regs[ins[1]]:
                    target, srcs, dsts = ins[2], ins[3], ins[4]
                else:
                    target, srcs, dsts = ins[5], ins[6], ins[7]
                if srcs:
                    values = [regs[s] for s in srcs]
                    for dst, value in zip(dsts, values):
                        regs[dst] = value
                pc = target
                continue
            elif opcode == OP_CASE:
                counts["getlabel"] += 1
                counts["arith"] += 1
                counts["branch"] += 1
                tag = tag_of(regs[ins[1]])
                target = ins[2].get(tag, ins[3])
                if target is None:
                    raise self._error(f"no alternative for tag {tag} in case")
                if budget is not None:
                    budget.charge()
                pc = target
                continue
            elif opcode == OP_SWITCH:
                counts["branch"] += 1
                if budget is not None:
                    budget.charge()
                pc = ins[2].get(regs[ins[1]], ins[3])
                continue
            elif opcode == OP_CALL:
                counts["call"] += 1
                value = self._exec(ins[2], [regs[r] for r in ins[3]])
                if ins[1] >= 0:
                    regs[ins[1]] = value
            elif opcode == OP_RET:
                counts["return"] += 1
                return regs[ins[1]] if ins[1] >= 0 else None
            elif opcode == OP_PROJ:
                counts["proj"] += 1
                value = regs[ins[2]]
                if not isinstance(value, CtorObject):
                    raise self._error(f"projection from non-constructor {value!r}")
                field = value.fields[ins[3]]
                heap.inc(field)
                counts["rc"] += 1
                regs[ins[1]] = field
            elif opcode == OP_CONSTRUCT:
                counts[ins[4]] += 1
                regs[ins[1]] = heap.alloc_ctor(ins[2], [regs[r] for r in ins[3]])
            elif opcode == OP_INT:
                counts["move"] += 1
                regs[ins[1]] = heap.alloc_int(ins[2])
            elif opcode == OP_CONST:
                counts["const"] += 1
                regs[ins[1]] = ins[2]
            elif opcode == OP_GETLABEL:
                counts["getlabel"] += 1
                regs[ins[1]] = tag_of(regs[ins[2]])
            elif opcode == OP_INC:
                counts["rc"] += 1
                heap.inc(regs[ins[1]], ins[2])
            elif opcode == OP_DEC:
                counts["rc"] += 1
                heap.dec(regs[ins[1]], ins[2])
            elif opcode == OP_SELECT:
                counts["arith"] += 1
                regs[ins[1]] = regs[ins[3]] if regs[ins[2]] else regs[ins[4]]
            elif opcode == OP_RTCALL:
                counts["runtime_call"] += 1
                value = call_builtin(self.ctx, ins[2], [regs[r] for r in ins[3]])
                if ins[1] >= 0:
                    regs[ins[1]] = value
            elif opcode == OP_PAP:
                counts["alloc_closure"] += 1
                if ins[3] is None:
                    raise self._error(f"pap of unknown function {ins[2]}")
                regs[ins[1]] = make_closure(
                    heap, ins[2], ins[3], [regs[r] for r in ins[4]]
                )
            elif opcode == OP_PAPEXTEND:
                regs[ins[1]] = self._apply_closure(
                    regs[ins[2]], [regs[r] for r in ins[3]]
                )
            elif opcode == OP_REUSE:
                token = regs[ins[2]]
                fields = [regs[r] for r in ins[4]]
                if isinstance(token, CtorObject):
                    counts["reuse"] += 1
                else:
                    counts["alloc_ctor" if fields else "move"] += 1
                regs[ins[1]] = heap.reuse(token, ins[3], fields)
            elif opcode == OP_RESET:
                counts["rc"] += 1
                regs[ins[1]] = heap.reset(regs[ins[2]])
            elif opcode == OP_BIGINT:
                counts["runtime_call"] += 1
                regs[ins[1]] = heap.alloc_int(ins[2])
            elif opcode == OP_CAST:
                counts["arith"] += 1
                regs[ins[1]] = regs[ins[2]]
            elif opcode == OP_GETGLOBAL:
                counts["global"] += 1
                regs[ins[1]] = self.globals.get(ins[2])
            elif opcode == OP_SETGLOBAL:
                counts["global"] += 1
                self.globals[ins[1]] = regs[ins[2]]
            elif opcode == OP_UNREACHABLE:
                raise self._error(ins[1])
            elif opcode == OP_BADCALL:
                if self.program.flavor == "cfg":
                    raise self._error(f"call of unknown function @{ins[1]}")
                raise self._error(f"unknown function {ins[1]}")
            else:
                raise self._error(f"invalid opcode {opcode}")
            pc += 1


# ---------------------------------------------------------------------------
# Convenience wrappers (mirror run_cfg_module / run_rc_program)
# ---------------------------------------------------------------------------


def run_cfg_module_vm(
    module: ModuleOp, *, main: str = "main", check_heap: bool = True
) -> RunResult:
    """Compile ``module`` to bytecode and execute ``@main`` on the VM."""
    return VirtualMachine(compile_cfg_module(module, main=main)).run_main(
        check_heap=check_heap
    )


def run_rc_program_vm(program: rc_ir.Program, *, check_heap: bool = True) -> RunResult:
    """Compile a λrc ``program`` to bytecode and execute its main on the VM."""
    return VirtualMachine(compile_rc_program(program)).run_main(check_heap=check_heap)
