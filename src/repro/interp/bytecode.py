"""Register-based bytecode execution engine for the evaluation interpreters.

The tree-walking interpreters (:class:`~repro.interp.cfg_interp.
CfgInterpreter` and :class:`~repro.interp.rc_interp.RcInterpreter`) re-walk
the IR object graph on every call: each operation is re-dispatched through a
long ``isinstance`` chain, every SSA value / λrc variable is a dictionary
key, and environments are copied per ``let`` / block transfer.  Following
MLIR's split between the IR and its execution engines, this module compiles
a module **once** into flat per-function instruction arrays and executes
them with a compact VM loop:

* *registers* — every SSA value (or λrc variable binding) gets a dense
  integer slot; a frame is a plain Python list, parameters occupy slots
  ``0..n-1``,
* *pre-resolved control flow* — branch targets are instruction indices,
  ``cf.switch`` / λrc ``case`` dispatch through a precomputed value→pc
  dict, block-argument forwarding is a register parallel-copy baked into
  the jump instruction,
* *pre-resolved calls* — a direct call holds the callee's compiled
  function object (no name lookup at run time); runtime builtins and
  unknown symbols are classified at compile time,
* *precomputed cost charges* — every instruction knows its cost-model
  category up front; only genuinely dynamic charges (``lp.reuse`` tokens,
  closure application chains) are decided while running.

Both IR levels compile to the **same instruction set** and share one
:class:`VirtualMachine` loop: :func:`compile_cfg_module` translates the
final CFG-form MLIR module, :func:`compile_rc_program` translates a λrc
program (join points become jump labels, ``case`` becomes the dispatch
instruction).  The VM charges exactly the events the corresponding
tree-walker charges, so results, :class:`~repro.interp.metrics.
ExecutionMetrics` and heap statistics are identical — the tree-walkers
survive as differential oracles (``execution_engine="tree"``).

Three execution-speed levers sit on top of that contract:

* *superinstructions* — :func:`fuse_program` runs a peephole over the
  compiled code arrays that collapses the hot adjacent pairs the
  ``vm.instr.freq.*`` telemetry identified (``cmp``+``cond_br``,
  ``const``+``binarith``/``cmp``, ``getlabel``+``switch``,
  ``proj``+``call``) into single fused opcodes.  Fusion is driven by the
  declarative :data:`FUSION_RULES` table — a new pair is one more table
  entry — and a fused instruction charges *exactly* the cost-model events
  of the unfused sequence, so metrics stay byte-identical.  (λrc ``case``
  is already the pre-fused tag dispatch: the rc frontend never emits a
  separate ``getlabel``, which is why the getlabel fusion pairs with the
  CFG ``switch``.)
* *direct-threaded dispatch* — the default ``dispatch="threaded"`` mode
  precompiles every instruction to a bound closure capturing its operands
  so the run loop is ``pc = ops[pc](regs)``; the tuple-decoding loop
  survives as the ``dispatch="switch"`` oracle.
* *an explicit call stack* — ``call``/``ret`` push and pop VM frames
  inside the run loop instead of recursing in Python, so deep recursion
  no longer rides ``sys.setrecursionlimit`` and
  :class:`~repro.resilience.budgets.ExecutionBudget` counts VM frames,
  not Python depth.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..dialects import arith, cf, lp
from ..dialects.builtin import ModuleOp
from ..dialects.func import CallOp, FuncOp, GetGlobalOp, ReturnOp, SetGlobalOp
from ..lambda_pure import ir as rc_ir
from ..runtime import (
    BUILTINS,
    CtorObject,
    RuntimeContext,
    RuntimeError_,
    Scalar,
    Enum,
    call_builtin,
    extend_closure,
    is_builtin,
    make_closure,
    python_value,
    tag_of,
)
from ..resilience.budgets import ExecutionBudget
from ..resilience.faults import fault_hit
from ..telemetry import get_metrics, get_tracer
from .cfg_interp import CfgInterpreterError
from .metrics import DEFAULT_COSTS, ExecutionMetrics
from .rc_interp import RunResult

#: The execution engines understood by the pipeline layer.
EXECUTION_ENGINES = ("vm", "tree")

#: The VM dispatch modes: ``threaded`` (closure-per-instruction direct
#: threading, the default) and ``switch`` (the tuple-decoding loop, kept
#: as the in-VM oracle).
DISPATCH_MODES = ("threaded", "switch")


class BytecodeError(Exception):
    """Raised when a module cannot be compiled to bytecode."""


# ---------------------------------------------------------------------------
# Instruction set
# ---------------------------------------------------------------------------
# An instruction is a plain tuple whose first element is one of the opcode
# integers below.  Register operands are indices into the frame list; a
# destination of -1 discards the produced value.  Branch operands are
# absolute instruction indices within the function's code array.

OP_RET = 0          # (op, src)                       charge: return
OP_JMP = 1          # (op, pc, srcs, dsts)            charge: jump
OP_CONDBR = 2       # (op, cond, tpc, tsrcs, tdsts, fpc, fsrcs, fdsts)  branch
OP_SWITCH = 3       # (op, flag, {value: pc}, default_pc)               branch
OP_CASE = 4         # (op, src, {tag: pc}, default_pc|None)  getlabel+arith+branch
OP_UNREACHABLE = 5  # (op, message)
OP_CONST = 6        # (op, dst, value)                charge: const
OP_INT = 7          # (op, dst, value)                charge: move
OP_BIGINT = 8       # (op, dst, value)                charge: runtime_call
OP_CONSTRUCT = 9    # (op, dst, tag, field_regs, category)
OP_GETLABEL = 10    # (op, dst, src)                  charge: getlabel
OP_PROJ = 11        # (op, dst, src, index)           charge: proj + rc
OP_PAP = 12         # (op, dst, callee, arity|None, arg_regs)  alloc_closure
OP_PAPEXTEND = 13   # (op, dst, closure, arg_regs)    charge: apply (dynamic)
OP_INC = 14         # (op, src, count)                charge: rc
OP_DEC = 15         # (op, src, count)                charge: rc
OP_RESET = 16       # (op, dst, src)                  charge: rc
OP_REUSE = 17       # (op, dst, token, tag, field_regs)  dynamic
OP_CALL = 18        # (op, dst, BytecodeFunction, arg_regs)  charge: call
OP_RTCALL = 19      # (op, dst, name, arg_regs)       charge: runtime_call
OP_BADCALL = 20     # (op, name)                      raises
OP_GETGLOBAL = 21   # (op, dst, name)                 charge: global
OP_SETGLOBAL = 22   # (op, name, src)                 charge: global
OP_BINARITH = 23    # (op, dst, fn, lhs, rhs)         charge: arith
OP_CMP = 24         # (op, dst, fn, lhs, rhs)         charge: arith
OP_SELECT = 25      # (op, dst, cond, t, f)           charge: arith
OP_CAST = 26        # (op, dst, src)                  charge: arith

# Superinstructions (emitted only by the fusion peephole, never by the
# frontends).  Each charges exactly the events of its unfused pair; the
# first instruction's destination register is still written, so fusion
# needs no liveness analysis.
OP_CMP_CONDBR = 27        # (op, dst, fn, lhs, rhs, tpc, tsrcs, tdsts, fpc, fsrcs, fdsts)
OP_CONST_BINARITH = 28    # (op, cdst, value, dst, fn, lhs, rhs)
OP_CONST_CMP = 29         # (op, cdst, value, dst, fn, lhs, rhs)
OP_GETLABEL_SWITCH = 30   # (op, dst, src, {tag: pc}, default_pc)
OP_PROJ_CALL = 31         # (op, pdst, psrc, pindex, cdst, BytecodeFunction, arg_regs)

# Chain superinstructions — second-pass fusions over already-fused
# opcodes (the peephole runs to fixpoint), covering the hottest dynamic
# sequences of the benchmark suite: constructor-tag dispatch
# (getlabel; const; cmp; cond_br) and RC/projection runs.
OP_CONST_CMP_CONDBR = 32  # (op, cdst, value, dst, fn, lhs, rhs,
                          #  tpc, tsrcs, tdsts, fpc, fsrcs, fdsts)
OP_GETLABEL_CMP_CONDBR = 33  # (op, gdst, gsrc, cdst, value, dst, fn, lhs,
                             #  rhs, tpc, tsrcs, tdsts, fpc, fsrcs, fdsts)
OP_PROJ_PROJ = 34         # (op, d1, s1, i1, d2, s2, i2)
OP_INT_INC = 35           # (op, dst, value, src, count)
OP_DEC_DEC = 36           # (op, s1, c1, s2, c2)
OP_INC_RTCALL = 37        # (op, src, count, dst, name, arg_regs)
OP_DEC_INC = 38           # (op, dsrc, dcount, isrc, icount)
OP_PROJ3 = 39             # (op, d1, s1, i1, d2, s2, i2, d3, s3, i3)
OP_PROJ4 = 40             # (op, d1, s1, i1, ..., d4, s4, i4)

#: Human-readable opcode names (docs/EXECUTION.md and the unit tests).
OPCODE_NAMES = {
    OP_RET: "ret", OP_JMP: "jmp", OP_CONDBR: "cond_br", OP_SWITCH: "switch",
    OP_CASE: "case", OP_UNREACHABLE: "unreachable", OP_CONST: "const",
    OP_INT: "int", OP_BIGINT: "bigint", OP_CONSTRUCT: "construct",
    OP_GETLABEL: "getlabel", OP_PROJ: "proj", OP_PAP: "pap",
    OP_PAPEXTEND: "papextend", OP_INC: "inc", OP_DEC: "dec",
    OP_RESET: "reset", OP_REUSE: "reuse", OP_CALL: "call",
    OP_RTCALL: "rtcall", OP_BADCALL: "badcall", OP_GETGLOBAL: "getglobal",
    OP_SETGLOBAL: "setglobal", OP_BINARITH: "binarith", OP_CMP: "cmp",
    OP_SELECT: "select", OP_CAST: "cast",
    OP_CMP_CONDBR: "cmp_cond_br", OP_CONST_BINARITH: "const_binarith",
    OP_CONST_CMP: "const_cmp", OP_GETLABEL_SWITCH: "getlabel_switch",
    OP_PROJ_CALL: "proj_call", OP_CONST_CMP_CONDBR: "const_cmp_br",
    OP_GETLABEL_CMP_CONDBR: "getlabel_cmp_br", OP_PROJ_PROJ: "proj_proj",
    OP_INT_INC: "int_inc", OP_DEC_DEC: "dec_dec",
    OP_INC_RTCALL: "inc_rtcall", OP_DEC_INC: "dec_inc",
    OP_PROJ3: "proj3", OP_PROJ4: "proj4",
}

#: Size of the per-VM opcode frequency table.
NUM_OPCODES = len(OPCODE_NAMES)

def _divsi(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("division by zero in arith.divsi")
    return int(a / b)


def _remsi(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("remainder by zero in arith.remsi")
    return a - int(a / b) * b


#: Binary arithmetic resolved to callables at compile time.  The semantics
#: (including errors) must stay those of :func:`repro.dialects.arith.
#: evaluate_binary` — the resolved tables exist only to skip its per-event
#: name dispatch; a drift test compares every entry against the oracle.
_BINARY_FNS: Dict[str, Callable[[int, int], int]] = {
    arith.AddIOp.OP_NAME: lambda a, b: a + b,
    arith.SubIOp.OP_NAME: lambda a, b: a - b,
    arith.MulIOp.OP_NAME: lambda a, b: a * b,
    arith.DivSIOp.OP_NAME: _divsi,
    arith.RemSIOp.OP_NAME: _remsi,
    arith.AndIOp.OP_NAME: lambda a, b: a & b,
    arith.OrIOp.OP_NAME: lambda a, b: a | b,
    arith.XorIOp.OP_NAME: lambda a, b: a ^ b,
}

#: Comparison predicates resolved to callables (semantics of
#: :func:`repro.dialects.arith.evaluate_cmpi`; drift-tested likewise).
_CMP_FNS: Dict[str, Callable[[int, int], int]] = {
    "eq": lambda a, b: 1 if a == b else 0,
    "ne": lambda a, b: 1 if a != b else 0,
    "slt": lambda a, b: 1 if a < b else 0,
    "sle": lambda a, b: 1 if a <= b else 0,
    "sgt": lambda a, b: 1 if a > b else 0,
    "sge": lambda a, b: 1 if a >= b else 0,
    "ult": lambda a, b: 1 if abs(a) < abs(b) else 0,
    "ule": lambda a, b: 1 if abs(a) <= abs(b) else 0,
    "ugt": lambda a, b: 1 if abs(a) > abs(b) else 0,
    "uge": lambda a, b: 1 if abs(a) >= abs(b) else 0,
}


class BytecodeFunction:
    """One compiled function: a flat instruction array plus frame layout."""

    __slots__ = ("name", "num_params", "num_regs", "code")

    def __init__(self, name: str, num_params: int):
        self.name = name
        self.num_params = num_params
        self.num_regs = num_params
        self.code: List[Tuple] = []

    def __repr__(self):
        return (
            f"BytecodeFunction({self.name!r}, params={self.num_params}, "
            f"regs={self.num_regs}, instructions={len(self.code)})"
        )


class BytecodeProgram:
    """A compiled module: every function plus execution flavour metadata.

    ``flavor`` selects the tree-walker whose observable behaviour the VM
    reproduces: ``"cfg"`` (CFG-form MLIR, :class:`CfgInterpreter` oracle)
    or ``"rc"`` (λrc, :class:`RcInterpreter` oracle).  It decides the error
    type raised on runtime faults and how ``run_main`` releases the final
    value — both tree-walkers differ slightly and the VM matches each
    exactly.
    """

    __slots__ = ("flavor", "functions", "main", "fused", "fused_sites")

    def __init__(self, flavor: str, main: str = "main"):
        if flavor not in ("cfg", "rc"):
            raise ValueError(f"unknown bytecode flavor {flavor!r}")
        self.flavor = flavor
        self.functions: Dict[str, BytecodeFunction] = {}
        self.main = main
        #: Set by :func:`fuse_program`: whether the superinstruction pass
        #: ran, and how many static pair sites it collapsed.
        self.fused = False
        self.fused_sites = 0

    @property
    def instruction_count(self) -> int:
        return sum(len(f.code) for f in self.functions.values())

    def __repr__(self):
        return (
            f"BytecodeProgram({self.flavor!r}, functions={len(self.functions)}, "
            f"instructions={self.instruction_count})"
        )


class _Label:
    """A forward-referenced instruction index, patched after emission."""

    __slots__ = ("pc",)

    def __init__(self):
        self.pc: Optional[int] = None


def _resolve_labels(code: List[Tuple]) -> List[Tuple]:
    """Replace :class:`_Label` references (including dict values) with pcs."""
    resolved = []
    for ins in code:
        out = []
        for element in ins:
            if isinstance(element, _Label):
                out.append(element.pc)
            elif isinstance(element, dict):
                out.append({
                    key: value.pc if isinstance(value, _Label) else value
                    for key, value in element.items()
                })
            else:
                out.append(element)
        resolved.append(tuple(out))
    return resolved


# ---------------------------------------------------------------------------
# Superinstruction fusion
# ---------------------------------------------------------------------------
# A peephole over resolved code arrays.  A pair (A at pc, B at pc+1) fuses
# when B is not a jump target (a jump landing *on* A still executes both,
# exactly like the unfused sequence) and the pair's rule matcher accepts
# the operands.  Fused instructions keep writing A's destination register,
# so no liveness information is needed, and they charge the exact
# cost-model events of the unfused pair — fusion is invisible to
# ExecutionMetrics, heap statistics and results.


class FusionRule:
    """One declarative peephole entry: adjacent ``first``+``second``
    opcodes fuse into ``opcode`` when ``match`` accepts the pair."""

    __slots__ = ("first", "second", "opcode", "match", "build")

    def __init__(self, first, second, opcode, match, build):
        self.first = first
        self.second = second
        self.opcode = opcode
        self.match = match
        self.build = build


#: The superinstruction table.  Adding a pair is one more entry here —
#: plus its handler in the two dispatch loops and docs/EXECUTION.md.
FUSION_RULES = (
    # cmp dst feeds the branch condition.
    FusionRule(
        OP_CMP, OP_CONDBR, OP_CMP_CONDBR,
        match=lambda a, b: b[1] == a[1],
        build=lambda a, b: (
            OP_CMP_CONDBR, a[1], a[2], a[3], a[4],
            b[2], b[3], b[4], b[5], b[6], b[7],
        ),
    ),
    # const dst feeds a binary arith operand.
    FusionRule(
        OP_CONST, OP_BINARITH, OP_CONST_BINARITH,
        match=lambda a, b: a[1] == b[3] or a[1] == b[4],
        build=lambda a, b: (
            OP_CONST_BINARITH, a[1], a[2], b[1], b[2], b[3], b[4]
        ),
    ),
    # const dst feeds a comparison operand.
    FusionRule(
        OP_CONST, OP_CMP, OP_CONST_CMP,
        match=lambda a, b: a[1] == b[3] or a[1] == b[4],
        build=lambda a, b: (
            OP_CONST_CMP, a[1], a[2], b[1], b[2], b[3], b[4]
        ),
    ),
    # getlabel dst feeds the switch flag (λrc's case is pre-fused).
    FusionRule(
        OP_GETLABEL, OP_SWITCH, OP_GETLABEL_SWITCH,
        match=lambda a, b: b[1] == a[1],
        build=lambda a, b: (OP_GETLABEL_SWITCH, a[1], a[2], b[2], b[3]),
    ),
    # proj dst feeds a direct-call argument.
    FusionRule(
        OP_PROJ, OP_CALL, OP_PROJ_CALL,
        match=lambda a, b: a[1] in b[3],
        build=lambda a, b: (
            OP_PROJ_CALL, a[1], a[2], a[3], b[1], b[2], b[3]
        ),
    ),
    # Chain rules (picked up by the peephole's later passes): a fused
    # const_cmp whose result feeds the branch condition, and the full
    # constructor-tag dispatch where getlabel feeds the comparison.
    FusionRule(
        OP_CONST_CMP, OP_CONDBR, OP_CONST_CMP_CONDBR,
        match=lambda a, b: b[1] == a[3],
        build=lambda a, b: (
            OP_CONST_CMP_CONDBR, a[1], a[2], a[3], a[4], a[5], a[6],
            b[2], b[3], b[4], b[5], b[6], b[7],
        ),
    ),
    FusionRule(
        OP_GETLABEL, OP_CONST_CMP_CONDBR, OP_GETLABEL_CMP_CONDBR,
        match=lambda a, b: a[1] == b[5] or a[1] == b[6],
        build=lambda a, b: (OP_GETLABEL_CMP_CONDBR, a[1], a[2]) + b[1:],
    ),
    # Straight-line runs with no dataflow condition: executing the pair
    # inside one closure is always equivalent to executing it in sequence.
    FusionRule(
        OP_PROJ, OP_PROJ, OP_PROJ_PROJ,
        match=lambda a, b: True,
        build=lambda a, b: (
            OP_PROJ_PROJ, a[1], a[2], a[3], b[1], b[2], b[3]
        ),
    ),
    FusionRule(
        OP_INT, OP_INC, OP_INT_INC,
        match=lambda a, b: True,
        build=lambda a, b: (OP_INT_INC, a[1], a[2], b[1], b[2]),
    ),
    FusionRule(
        OP_DEC, OP_DEC, OP_DEC_DEC,
        match=lambda a, b: True,
        build=lambda a, b: (OP_DEC_DEC, a[1], a[2], b[1], b[2]),
    ),
    FusionRule(
        OP_INC, OP_RTCALL, OP_INC_RTCALL,
        match=lambda a, b: b[1] >= 0,
        build=lambda a, b: (
            OP_INC_RTCALL, a[1], a[2], b[1], b[2], b[3]
        ),
    ),
    FusionRule(
        OP_DEC, OP_INC, OP_DEC_INC,
        match=lambda a, b: True,
        build=lambda a, b: (OP_DEC_INC, a[1], a[2], b[1], b[2]),
    ),
    # Projection runs of three and four (λrc field extraction over wide
    # constructors): the fixpoint pass extends an already-fused proj_proj.
    FusionRule(
        OP_PROJ_PROJ, OP_PROJ, OP_PROJ3,
        match=lambda a, b: True,
        build=lambda a, b: (OP_PROJ3,) + a[1:] + b[1:],
    ),
    FusionRule(
        OP_PROJ_PROJ, OP_PROJ_PROJ, OP_PROJ4,
        match=lambda a, b: True,
        build=lambda a, b: (OP_PROJ4,) + a[1:] + b[1:],
    ),
)

_RULES_BY_PAIR = {(rule.first, rule.second): rule for rule in FUSION_RULES}

#: The fused opcode integers (telemetry and ``--exec-stats``).
FUSED_OPCODES = tuple(rule.opcode for rule in FUSION_RULES)


def _base_opcodes(opcode: int) -> Tuple[int, ...]:
    """Transitively decompose a (possibly chain-)fused opcode into the
    base opcodes the frontends emit."""
    for rule in FUSION_RULES:
        if rule.opcode == opcode:
            return _base_opcodes(rule.first) + _base_opcodes(rule.second)
    return (opcode,)


#: fused name -> base-opcode names; the ``--exec-stats --unfused``
#: decomposition back to base-opcode counts (chain fusions decompose all
#: the way down: ``getlabel_cmp_br`` -> getlabel, const, cmp, cond_br).
FUSED_OPCODE_BASES = {
    OPCODE_NAMES[rule.opcode]: tuple(
        OPCODE_NAMES[base] for base in _base_opcodes(rule.opcode)
    )
    for rule in FUSION_RULES
}


def _jump_targets(code: List[Tuple]) -> set:
    """Every pc some instruction can transfer control to.

    Handles the fused branch opcodes too: the peephole runs to fixpoint,
    so later passes scan code that already contains superinstructions.
    """
    targets = set()
    for ins in code:
        opcode = ins[0]
        if opcode == OP_JMP:
            targets.add(ins[1])
        elif opcode == OP_CONDBR:
            targets.add(ins[2])
            targets.add(ins[5])
        elif opcode == OP_CMP_CONDBR:
            targets.add(ins[5])
            targets.add(ins[8])
        elif opcode == OP_CONST_CMP_CONDBR:
            targets.add(ins[7])
            targets.add(ins[10])
        elif opcode == OP_GETLABEL_CMP_CONDBR:
            targets.add(ins[9])
            targets.add(ins[12])
        elif opcode == OP_SWITCH:
            targets.update(ins[2].values())
            targets.add(ins[3])
        elif opcode == OP_GETLABEL_SWITCH:
            targets.update(ins[3].values())
            targets.add(ins[4])
        elif opcode == OP_CASE:
            targets.update(ins[2].values())
            if ins[3] is not None:
                targets.add(ins[3])
    return targets


def _remap_targets(ins: Tuple, mapping: Dict[int, int]) -> Tuple:
    """Rewrite an instruction's branch targets through ``mapping``."""
    opcode = ins[0]
    if opcode == OP_JMP:
        return (opcode, mapping[ins[1]], ins[2], ins[3])
    if opcode == OP_CONDBR:
        return (
            opcode, ins[1], mapping[ins[2]], ins[3], ins[4],
            mapping[ins[5]], ins[6], ins[7],
        )
    if opcode == OP_CMP_CONDBR:
        return ins[:5] + (
            mapping[ins[5]], ins[6], ins[7],
            mapping[ins[8]], ins[9], ins[10],
        )
    if opcode == OP_CONST_CMP_CONDBR:
        return ins[:7] + (
            mapping[ins[7]], ins[8], ins[9],
            mapping[ins[10]], ins[11], ins[12],
        )
    if opcode == OP_GETLABEL_CMP_CONDBR:
        return ins[:9] + (
            mapping[ins[9]], ins[10], ins[11],
            mapping[ins[12]], ins[13], ins[14],
        )
    if opcode == OP_SWITCH:
        return (
            opcode, ins[1],
            {key: mapping[pc] for key, pc in ins[2].items()},
            mapping[ins[3]],
        )
    if opcode == OP_GETLABEL_SWITCH:
        return (
            opcode, ins[1], ins[2],
            {key: mapping[pc] for key, pc in ins[3].items()},
            mapping[ins[4]],
        )
    if opcode == OP_CASE:
        return (
            opcode, ins[1],
            {key: mapping[pc] for key, pc in ins[2].items()},
            mapping[ins[3]] if ins[3] is not None else None,
        )
    return ins


def fuse_code(code: List[Tuple]) -> Tuple[List[Tuple], int]:
    """One fusion pass over a code array; returns (fused code, #sites)."""
    targets = _jump_targets(code)
    fused: List[Tuple] = []
    mapping: Dict[int, int] = {}
    sites = 0
    index = 0
    length = len(code)
    while index < length:
        ins = code[index]
        mapping[index] = len(fused)
        if index + 1 < length and (index + 1) not in targets:
            follower = code[index + 1]
            rule = _RULES_BY_PAIR.get((ins[0], follower[0]))
            if rule is not None and rule.match(ins, follower):
                # The follower can't be a target, so mapping it to the
                # fused pc is only for completeness.
                mapping[index + 1] = len(fused)
                fused.append(rule.build(ins, follower))
                sites += 1
                index += 2
                continue
        fused.append(ins)
        index += 1
    return [_remap_targets(ins, mapping) for ins in fused], sites


def fuse_program(program: "BytecodeProgram") -> "BytecodeProgram":
    """Apply superinstruction fusion to every function (idempotent).

    The peephole runs to fixpoint so chain rules fire: pass one turns
    ``const; cmp`` into ``const_cmp``, pass two fuses the branch into
    ``const_cmp_br``, pass three folds a feeding ``getlabel`` in.
    ``fused_sites`` counts fusion events, so a fully-fused tag dispatch
    contributes three.
    """
    if program.fused:
        return program
    total = 0
    for fn in program.functions.values():
        while True:
            fn.code, sites = fuse_code(fn.code)
            total += sites
            if not sites:
                break
    program.fused = True
    program.fused_sites = total
    return program


# ---------------------------------------------------------------------------
# CFG-form MLIR -> bytecode
# ---------------------------------------------------------------------------


class _CfgFunctionCompiler:
    """Compiles one ``func.func`` body into a :class:`BytecodeFunction`."""

    def __init__(self, func: FuncOp, target: BytecodeFunction, program: BytecodeProgram):
        self.func = func
        self.target = target
        self.program = program
        self.regs: Dict[object, int] = {}
        self.code: List[Tuple] = []

    def _reg(self, value) -> int:
        index = self.regs.get(value)
        if index is None:
            index = self.target.num_regs
            self.target.num_regs += 1
            self.regs[value] = index
        return index

    def _operand_regs(self, values) -> Tuple[int, ...]:
        return tuple(self.regs[v] for v in values)

    def run(self) -> None:
        blocks = list(self.func.body.blocks)
        # Parameters occupy registers 0..n-1 (the shell pre-reserved them);
        # then every block argument gets its slot up front so branches can
        # name their destination registers.
        for index, argument in enumerate(blocks[0].arguments):
            self.regs[argument] = index
        labels = {block: _Label() for block in blocks}
        for block in blocks[1:]:
            for argument in block.arguments:
                self._reg(argument)
        for block in blocks:
            labels[block].pc = len(self.code)
            for op in block:
                self._emit(op, labels)
        self.target.code = _resolve_labels(self.code)

    def _branch_args(self, block, values) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        return (
            self._operand_regs(values),
            tuple(self.regs[a] for a in block.arguments),
        )

    def _emit(self, op, labels) -> None:
        code = self.code
        # Terminators ---------------------------------------------------
        if isinstance(op, ReturnOp):
            src = self.regs[op.operands[0]] if op.operands else -1
            code.append((OP_RET, src))
            return
        if isinstance(op, cf.BranchOp):
            srcs, dsts = self._branch_args(op.dest, op.dest_operands)
            code.append((OP_JMP, labels[op.dest], srcs, dsts))
            return
        if isinstance(op, cf.CondBranchOp):
            tsrcs, tdsts = self._branch_args(op.true_dest, op.true_operands)
            fsrcs, fdsts = self._branch_args(op.false_dest, op.false_operands)
            code.append((
                OP_CONDBR, self.regs[op.condition],
                labels[op.true_dest], tsrcs, tdsts,
                labels[op.false_dest], fsrcs, fdsts,
            ))
            return
        if isinstance(op, cf.SwitchOp):
            # setdefault keeps the FIRST entry per value, preserving the
            # tree-walker's linear-scan semantics on (unverified) duplicates.
            table = {}
            for value, dest in zip(op.case_values, op.case_dests):
                table.setdefault(value, labels[dest])
            code.append((
                OP_SWITCH, self.regs[op.flag], table, labels[op.default_dest]
            ))
            return
        if isinstance(op, cf.UnreachableOp):
            code.append((OP_UNREACHABLE, "executed cf.unreachable"))
            return

        # lp data operations --------------------------------------------
        if isinstance(op, lp.IntOp):
            code.append((OP_INT, self._reg(op.result()), op.value))
            return
        if isinstance(op, lp.BigIntOp):
            code.append((OP_BIGINT, self._reg(op.result()), op.value))
            return
        if isinstance(op, lp.ConstructOp):
            fields = self._operand_regs(op.operands)
            category = "alloc_ctor" if fields else "move"
            code.append(
                (OP_CONSTRUCT, self._reg(op.result()), op.tag, fields, category)
            )
            return
        if isinstance(op, lp.GetLabelOp):
            code.append((OP_GETLABEL, self._reg(op.result()), self.regs[op.operands[0]]))
            return
        if isinstance(op, lp.ProjectOp):
            code.append((
                OP_PROJ, self._reg(op.result()), self.regs[op.operands[0]], op.index
            ))
            return
        if isinstance(op, lp.PapOp):
            callee = self.program.functions.get(op.callee)
            arity = callee.num_params if callee is not None else None
            code.append((
                OP_PAP, self._reg(op.result()), op.callee, arity,
                self._operand_regs(op.operands),
            ))
            return
        if isinstance(op, lp.PapExtendOp):
            code.append((
                OP_PAPEXTEND, self._reg(op.result()),
                self.regs[op.operands[0]], self._operand_regs(op.operands[1:]),
            ))
            return
        if isinstance(op, lp.IncOp):
            code.append((OP_INC, self.regs[op.operands[0]], op.count))
            return
        if isinstance(op, lp.DecOp):
            code.append((OP_DEC, self.regs[op.operands[0]], op.count))
            return
        if isinstance(op, lp.ResetOp):
            code.append((OP_RESET, self._reg(op.result()), self.regs[op.operands[0]]))
            return
        if isinstance(op, lp.ReuseOp):
            code.append((
                OP_REUSE, self._reg(op.result()), self.regs[op.operands[0]],
                op.tag, self._operand_regs(op.operands[1:]),
            ))
            return

        # Calls and globals ----------------------------------------------
        if isinstance(op, CallOp):
            dst = self._reg(op.result()) if op.results else -1
            args = self._operand_regs(op.operands)
            callee = self.program.functions.get(op.callee)
            if callee is not None:
                code.append((OP_CALL, dst, callee, args))
            elif is_builtin(op.callee):
                code.append((OP_RTCALL, dst, op.callee, args))
            else:
                code.append((OP_BADCALL, op.callee))
            return
        if isinstance(op, GetGlobalOp):
            code.append((OP_GETGLOBAL, self._reg(op.result()), op.global_name))
            return
        if isinstance(op, SetGlobalOp):
            code.append((OP_SETGLOBAL, op.global_name, self.regs[op.operands[0]]))
            return

        # arith -----------------------------------------------------------
        if isinstance(op, arith.ConstantOp):
            code.append((OP_CONST, self._reg(op.result()), op.value))
            return
        if isinstance(op, arith.CmpIOp):
            code.append((
                OP_CMP, self._reg(op.result()), _CMP_FNS[op.predicate],
                self.regs[op.operands[0]], self.regs[op.operands[1]],
            ))
            return
        if isinstance(op, arith.SelectOp):
            code.append((
                OP_SELECT, self._reg(op.result()), self.regs[op.operands[0]],
                self.regs[op.operands[1]], self.regs[op.operands[2]],
            ))
            return
        binary = _BINARY_FNS.get(op.name)
        if binary is not None:
            code.append((
                OP_BINARITH, self._reg(op.result()), binary,
                self.regs[op.operands[0]], self.regs[op.operands[1]],
            ))
            return
        if isinstance(op, (arith.TruncIOp, arith.ExtUIOp)):
            code.append((OP_CAST, self._reg(op.result()), self.regs[op.operands[0]]))
            return

        raise BytecodeError(f"cannot compile operation {op.name}")


def compile_cfg_module(
    module: ModuleOp, *, main: str = "main", fuse: bool = False
) -> BytecodeProgram:
    """Compile a CFG-form MLIR module to a :class:`BytecodeProgram`.

    Declarations (runtime functions) are left to the builtin dispatcher;
    only bodies are compiled.  ``fuse=True`` runs the superinstruction
    peephole (:func:`fuse_program`) over the result.
    """
    program = BytecodeProgram("cfg", main=main)
    defined = [f for f in module.functions() if not f.is_declaration]
    # Two phases so direct calls can hold the callee's function object even
    # for mutual recursion: allocate every shell first, then fill bodies.
    for func in defined:
        program.functions[func.sym_name] = BytecodeFunction(
            func.sym_name, len(func.function_type.inputs)
        )
    for func in defined:
        _CfgFunctionCompiler(func, program.functions[func.sym_name], program).run()
    if fuse:
        fuse_program(program)
    return program


# ---------------------------------------------------------------------------
# λrc -> bytecode
# ---------------------------------------------------------------------------


class _RcFunctionCompiler:
    """Compiles one λrc function body into a :class:`BytecodeFunction`.

    Variables are alpha-renamed onto registers while compiling: every
    ``let`` allocates a *fresh* slot (shadowed names keep their old slot
    alive), so a join point's body — compiled against the name→register
    map captured at its declaration — reads exactly the values the
    tree-walker's captured environment would, without any environment
    copying at run time.
    """

    def __init__(self, fn: rc_ir.Function, target: BytecodeFunction, program: BytecodeProgram):
        self.fn = fn
        self.target = target
        self.program = program
        self.code: List[Tuple] = []
        #: Deferred (body, env, joins, label) emissions: join-point bodies
        #: are placed after the flow that declares them.
        self.pending: List[Tuple] = []

    def _new_reg(self) -> int:
        index = self.target.num_regs
        self.target.num_regs += 1
        return index

    def run(self) -> None:
        env = {param: index for index, param in enumerate(self.fn.params)}
        self._emit_body(self.fn.body, env, {})
        while self.pending:
            body, env, joins, label = self.pending.pop(0)
            label.pc = len(self.code)
            self._emit_body(body, env, joins)
        self.target.code = _resolve_labels(self.code)

    # -- bodies -----------------------------------------------------------
    def _emit_body(self, body, env: Dict[str, int], joins: Dict[str, Tuple]) -> None:
        code = self.code
        while True:
            if isinstance(body, rc_ir.Let):
                dst = self._new_reg()
                self._emit_expr(body.expr, env, dst)
                env = dict(env)
                env[body.var] = dst
                body = body.body
                continue
            if isinstance(body, rc_ir.Inc):
                code.append((OP_INC, env[body.var], body.count))
                body = body.body
                continue
            if isinstance(body, rc_ir.Dec):
                code.append((OP_DEC, env[body.var], body.count))
                body = body.body
                continue
            if isinstance(body, rc_ir.Ret):
                code.append((OP_RET, env[body.var]))
                return
            if isinstance(body, rc_ir.Case):
                table: Dict[int, _Label] = {}
                branches = []
                for alt in body.alts:
                    label = _Label()
                    # First alternative wins on duplicate tags, like the
                    # tree-walker's linear alternative scan.
                    table.setdefault(alt.tag, label)
                    branches.append((alt.body, label))
                default_label = None
                if body.default is not None:
                    default_label = _Label()
                    branches.append((body.default, default_label))
                code.append((OP_CASE, env[body.var], table, default_label))
                for branch_body, label in branches:
                    label.pc = len(code)
                    self._emit_body(branch_body, env, joins)
                return
            if isinstance(body, rc_ir.JDecl):
                joins = dict(joins)
                label = _Label()
                param_regs = tuple(self._new_reg() for _ in body.params)
                joins[body.label] = (label, param_regs)
                join_env = dict(env)
                join_env.update(zip(body.params, param_regs))
                # The join body sees the joins map *including itself*, so
                # self-recursive jumps compile to backward jumps.
                self.pending.append((body.jbody, join_env, joins, label))
                body = body.rest
                continue
            if isinstance(body, rc_ir.Jmp):
                label, param_regs = joins[body.label]
                srcs = tuple(env[a] for a in body.args)
                code.append((OP_JMP, label, srcs, param_regs))
                return
            if isinstance(body, rc_ir.Unreachable):
                code.append(
                    (OP_UNREACHABLE, "executed an unreachable program point")
                )
                return
            raise BytecodeError(f"unknown body node {body!r}")

    # -- expressions ------------------------------------------------------
    def _emit_expr(self, expr, env: Dict[str, int], dst: int) -> None:
        code = self.code
        if isinstance(expr, rc_ir.Lit):
            # The λrc tree-walker charges every literal as a register move
            # (big integers included), unlike the lp dialect's lp.bigint.
            code.append((OP_INT, dst, expr.value))
            return
        if isinstance(expr, rc_ir.Ctor):
            fields = tuple(env[a] for a in expr.args)
            category = "alloc_ctor" if fields else "move"
            code.append((OP_CONSTRUCT, dst, expr.tag, fields, category))
            return
        if isinstance(expr, rc_ir.Proj):
            code.append((OP_PROJ, dst, env[expr.var], expr.index))
            return
        if isinstance(expr, rc_ir.Reset):
            code.append((OP_RESET, dst, env[expr.var]))
            return
        if isinstance(expr, rc_ir.Reuse):
            code.append((
                OP_REUSE, dst, env[expr.token], expr.tag,
                tuple(env[a] for a in expr.args),
            ))
            return
        if isinstance(expr, rc_ir.Call):
            args = tuple(env[a] for a in expr.args)
            # The λrc tree-walker tries the runtime builtins *before* the
            # program's own functions; mirror that resolution order.
            if is_builtin(expr.fn):
                code.append((OP_RTCALL, dst, expr.fn, args))
            elif expr.fn in self.program.functions:
                code.append((OP_CALL, dst, self.program.functions[expr.fn], args))
            else:
                code.append((OP_BADCALL, expr.fn))
            return
        if isinstance(expr, rc_ir.PAp):
            callee = self.program.functions.get(expr.fn)
            arity = callee.num_params if callee is not None else None
            code.append((OP_PAP, dst, expr.fn, arity, tuple(env[a] for a in expr.args)))
            return
        if isinstance(expr, rc_ir.App):
            code.append((
                OP_PAPEXTEND, dst, env[expr.closure],
                tuple(env[a] for a in expr.args),
            ))
            return
        raise BytecodeError(f"unknown expression {expr!r}")


def compile_rc_program(
    program: rc_ir.Program, *, fuse: bool = False
) -> BytecodeProgram:
    """Compile a λrc program to a :class:`BytecodeProgram`."""
    bytecode = BytecodeProgram("rc", main=program.main)
    for name, fn in program.functions.items():
        bytecode.functions[name] = BytecodeFunction(name, fn.arity)
    for name, fn in program.functions.items():
        _RcFunctionCompiler(fn, bytecode.functions[name], bytecode).run()
    if fuse:
        fuse_program(bytecode)
    return bytecode


# ---------------------------------------------------------------------------
# The VM
# ---------------------------------------------------------------------------

#: Per-opcode cost-model events that are fixed at compile time.  The
#: threaded dispatcher counts executions per instruction *site* and
#: derives charge counts (and opcode frequencies) from this table when a
#: run flushes — one list increment per instruction instead of dict
#: updates in the hot loop.  ``None`` marks ``construct``, whose category
#: is per-site (``ins[4]``); empty tuples mark the dynamically-charged
#: opcodes (``reuse``, ``papextend``) whose closures charge inline.
#: Partial-charge error paths (``proj`` raising before its ``rc`` charge,
#: ``getlabel_switch`` raising before its ``branch`` charge) apply
#: negative corrections to the dynamic counters before propagating.
_STATIC_CHARGES = {
    OP_RET: ("return",),
    OP_JMP: ("jump",),
    OP_CONDBR: ("branch",),
    OP_SWITCH: ("branch",),
    OP_CASE: ("getlabel", "arith", "branch"),
    OP_UNREACHABLE: (),
    OP_CONST: ("const",),
    OP_INT: ("move",),
    OP_BIGINT: ("runtime_call",),
    OP_CONSTRUCT: None,
    OP_GETLABEL: ("getlabel",),
    OP_PROJ: ("proj", "rc"),
    OP_PAP: ("alloc_closure",),
    OP_PAPEXTEND: (),
    OP_INC: ("rc",),
    OP_DEC: ("rc",),
    OP_RESET: ("rc",),
    OP_REUSE: (),
    OP_CALL: ("call",),
    OP_RTCALL: ("runtime_call",),
    OP_BADCALL: (),
    OP_GETGLOBAL: ("global",),
    OP_SETGLOBAL: ("global",),
    OP_BINARITH: ("arith",),
    OP_CMP: ("arith",),
    OP_SELECT: ("arith",),
    OP_CAST: ("arith",),
    OP_CMP_CONDBR: ("arith", "branch"),
    OP_CONST_BINARITH: ("const", "arith"),
    OP_CONST_CMP: ("const", "arith"),
    OP_GETLABEL_SWITCH: ("getlabel", "branch"),
    OP_PROJ_CALL: ("proj", "rc", "call"),
    OP_CONST_CMP_CONDBR: ("const", "arith", "branch"),
    OP_GETLABEL_CMP_CONDBR: ("getlabel", "const", "arith", "branch"),
    OP_PROJ_PROJ: ("proj", "rc", "proj", "rc"),
    OP_INT_INC: ("move", "rc"),
    OP_DEC_DEC: ("rc", "rc"),
    OP_INC_RTCALL: ("rc", "runtime_call"),
    OP_DEC_INC: ("rc", "rc"),
    OP_PROJ3: ("proj", "rc", "proj", "rc", "proj", "rc"),
    OP_PROJ4: ("proj", "rc", "proj", "rc", "proj", "rc", "proj", "rc"),
}


class VirtualMachine:
    """Executes a :class:`BytecodeProgram` against the simulated runtime.

    One VM instance owns one runtime context and one metrics object, like
    the tree-walking interpreters it replaces; ``run_main`` is a drop-in
    for their ``run_main`` (the entry point is the keyword-only ``main``;
    the positional parameter is the argument list, as on
    :class:`RcInterpreter`).

    Charges accumulate in a local counter and fold into
    ``metrics.counts`` when ``run_main`` returns *or raises* — callers
    invoking :meth:`call_function` directly should call ``run_main``
    instead (or read the counters only after a ``run_main``).
    """

    def __init__(
        self,
        program: BytecodeProgram,
        *,
        context: Optional[RuntimeContext] = None,
        metrics: Optional[ExecutionMetrics] = None,
        dispatch: str = "threaded",
        budget: Optional[ExecutionBudget] = None,
    ):
        if dispatch not in DISPATCH_MODES:
            raise ValueError(f"unknown dispatch mode {dispatch!r}")
        self.program = program
        self.ctx = context if context is not None else RuntimeContext()
        self.metrics = metrics if metrics is not None else ExecutionMetrics()
        self.globals: Dict[str, object] = {}
        self.dispatch = dispatch
        #: Local charge accumulator, folded into ``metrics.counts`` when a
        #: run finishes (the per-event ``charge`` call is the tree-walkers'
        #: single hottest line).
        self._counts: Dict[str, int] = {category: 0 for category in DEFAULT_COSTS}
        #: Dynamic instruction frequencies, indexed by opcode — the input
        #: the superinstruction table was selected from, surfaced via
        #: :meth:`instruction_frequencies`, ``--exec-stats`` and the
        #: ``vm.instr.freq.<op>`` metrics.
        self.opcode_counts: List[int] = [0] * NUM_OPCODES
        self.budget = budget
        #: Threaded-dispatch state: per-function closure arrays, the
        #: per-site execution counters they bump, and the two cells the
        #: call/ret closures use to talk to the frame loop.
        self._threaded: Dict[BytecodeFunction, List[Callable]] = {}
        self._site_tables: Dict[BytecodeFunction, List[int]] = {}
        self._pending: List[object] = [None, None, None]
        self._retslot: List[object] = [None]

    # -- error shaping ----------------------------------------------------
    def _error(self, message: str) -> Exception:
        if self.program.flavor == "cfg":
            return CfgInterpreterError(message)
        return RuntimeError_(message)

    # -- public API -------------------------------------------------------
    def run_main(
        self,
        args: Optional[List[object]] = None,
        *,
        main: Optional[str] = None,
        check_heap: bool = True,
    ) -> RunResult:
        if isinstance(args, str):
            raise TypeError(
                "run_main takes the argument list first; pass the entry "
                "point as run_main(main=...)"
            )
        entry = main or self.program.main
        if self.budget is not None:
            self.budget.start()
        start = time.perf_counter()
        try:
            # The explicit call stack makes arbitrarily deep bytecode
            # recursion safe under the default sys recursion limit; only
            # the tree-walkers still need interp/limits.py.
            with get_tracer().span(
                "vm:run", category="exec", main=entry,
                flavor=self.program.flavor,
            ):
                result = self.call_function(entry, list(args or []))
        finally:
            # Fold charges into the metrics even when execution faults, so
            # the counters reflect the work done up to the error — the same
            # observable the incrementally-charging tree-walkers leave.
            self.metrics.wall_time_seconds = time.perf_counter() - start
            self._flush_counts()
            self._publish_telemetry()
        snapshot = python_value(result) if result is not None else None
        if self.program.flavor == "cfg":
            if result is not None:
                self.ctx.release(result)
        elif not isinstance(result, (Scalar, Enum)):
            self.ctx.release(result)
        if check_heap:
            self.ctx.heap.check_balanced()
        return RunResult(
            value=snapshot,
            metrics=self.metrics,
            heap_stats=self.ctx.heap.stats.as_dict(),
            output=list(self.ctx.output),
        )

    def _flush_counts(self) -> None:
        if self._site_tables:
            self._drain_sites()
        counts = self.metrics.counts
        for category, count in self._counts.items():
            if count:
                counts[category] = counts.get(category, 0) + count
                self._counts[category] = 0

    def _drain_sites(self) -> None:
        """Fold the threaded dispatcher's per-site execution counters into
        the charge accumulator and the opcode frequency table."""
        counts = self._counts
        freq = self.opcode_counts
        for fn, sites in self._site_tables.items():
            code = fn.code
            for pc, executed in enumerate(sites):
                if not executed:
                    continue
                ins = code[pc]
                opcode = ins[0]
                freq[opcode] += executed
                charges = _STATIC_CHARGES[opcode]
                if charges is None:
                    counts[ins[4]] += executed
                else:
                    for category in charges:
                        counts[category] += executed
                sites[pc] = 0

    def instruction_frequencies(self) -> Dict[str, int]:
        """Dynamic instruction frequencies, most-executed first."""
        frequencies = {
            OPCODE_NAMES[opcode]: count
            for opcode, count in enumerate(self.opcode_counts)
            if count
        }
        return dict(
            sorted(frequencies.items(), key=lambda item: (-item[1], item[0]))
        )

    def _publish_telemetry(self) -> None:
        """Publish instruction frequencies and run time into the active
        metrics registry (``vm.instr.freq.<op>`` / ``vm.run.seconds``)."""
        registry = get_metrics()
        if not registry.enabled:
            return
        for name, count in self.instruction_frequencies().items():
            registry.bump("vm.instr.freq." + name, count)
        if self.program.fused:
            registry.bump("vm.fusion.sites", self.program.fused_sites)
            executed = sum(self.opcode_counts[op] for op in FUSED_OPCODES)
            registry.bump("vm.fusion.executed", executed)
        registry.observe("vm.run.seconds", self.metrics.wall_time_seconds)

    # -- calls ------------------------------------------------------------
    def call_function(self, name: str, args: List[object]) -> object:
        counts = self._counts
        if self.program.flavor == "rc" and is_builtin(name):
            counts["runtime_call"] += 1
            return call_builtin(self.ctx, name, args)
        fn = self.program.functions.get(name)
        if fn is not None:
            counts["call"] += 1
            return self._exec(fn, args)
        if is_builtin(name):
            counts["runtime_call"] += 1
            return call_builtin(self.ctx, name, args)
        if self.program.flavor == "cfg":
            raise self._error(f"call of unknown function @{name}")
        raise self._error(f"unknown function {name}")

    def _apply_closure(self, closure: object, args: List[object]) -> object:
        self._counts["apply"] += 1
        outcome = extend_closure(self.ctx.heap, closure, args)
        if not outcome.is_call:
            return outcome.closure
        result = self.call_function(outcome.call_fn, outcome.call_args)
        if outcome.extra_args:
            return self._apply_closure(result, outcome.extra_args)
        return result

    # -- the interpreter loops --------------------------------------------
    def _exec(self, fn: BytecodeFunction, args: List[object]) -> object:
        """Dispatch-mode router; both loops share the calling convention
        (and hence this entry point) with the old recursive executor."""
        if self.dispatch == "threaded":
            return self._run_threaded(fn, args)
        return self._run_switch(fn, args)

    def _run_switch(self, fn: BytecodeFunction, args: List[object]) -> object:
        """The tuple-decoding oracle loop.  ``call``/``ret`` push and pop
        explicit ``(code, regs, return pc, return register)`` frames."""
        fault_hit("vm.dispatch")
        if len(args) != fn.num_params:
            raise self._error(
                f"calling {fn.name} with {len(args)} arguments, "
                f"expected {fn.num_params}"
            )
        regs = [None] * fn.num_regs
        regs[: fn.num_params] = args
        code = fn.code
        counts = self._counts
        freq = self.opcode_counts
        heap = self.ctx.heap
        budget = self.budget
        if budget is not None:
            budget.charge()
        stack: List[Tuple] = []
        pc = 0
        while True:
            ins = code[pc]
            opcode = ins[0]
            freq[opcode] += 1
            if opcode == OP_BINARITH:
                counts["arith"] += 1
                regs[ins[1]] = ins[2](regs[ins[3]], regs[ins[4]])
            elif opcode == OP_CMP:
                counts["arith"] += 1
                regs[ins[1]] = ins[2](regs[ins[3]], regs[ins[4]])
            elif opcode == OP_CMP_CONDBR:
                counts["arith"] += 1
                value = ins[2](regs[ins[3]], regs[ins[4]])
                regs[ins[1]] = value
                counts["branch"] += 1
                if budget is not None:
                    budget.charge()
                if value:
                    target, srcs, dsts = ins[5], ins[6], ins[7]
                else:
                    target, srcs, dsts = ins[8], ins[9], ins[10]
                if srcs:
                    values = [regs[s] for s in srcs]
                    for dst, value in zip(dsts, values):
                        regs[dst] = value
                pc = target
                continue
            elif opcode == OP_JMP:
                counts["jump"] += 1
                if budget is not None:
                    budget.charge()
                srcs = ins[2]
                if srcs:
                    values = [regs[s] for s in srcs]
                    for dst, value in zip(ins[3], values):
                        regs[dst] = value
                pc = ins[1]
                continue
            elif opcode == OP_CONDBR:
                counts["branch"] += 1
                if budget is not None:
                    budget.charge()
                if regs[ins[1]]:
                    target, srcs, dsts = ins[2], ins[3], ins[4]
                else:
                    target, srcs, dsts = ins[5], ins[6], ins[7]
                if srcs:
                    values = [regs[s] for s in srcs]
                    for dst, value in zip(dsts, values):
                        regs[dst] = value
                pc = target
                continue
            elif opcode == OP_CASE:
                counts["getlabel"] += 1
                counts["arith"] += 1
                counts["branch"] += 1
                tag = tag_of(regs[ins[1]])
                target = ins[2].get(tag, ins[3])
                if target is None:
                    raise self._error(f"no alternative for tag {tag} in case")
                if budget is not None:
                    budget.charge()
                pc = target
                continue
            elif opcode == OP_SWITCH:
                counts["branch"] += 1
                if budget is not None:
                    budget.charge()
                pc = ins[2].get(regs[ins[1]], ins[3])
                continue
            elif opcode == OP_GETLABEL_SWITCH:
                counts["getlabel"] += 1
                tag = tag_of(regs[ins[2]])
                regs[ins[1]] = tag
                counts["branch"] += 1
                if budget is not None:
                    budget.charge()
                pc = ins[3].get(tag, ins[4])
                continue
            elif opcode == OP_CONST_CMP_CONDBR:
                counts["const"] += 1
                regs[ins[1]] = ins[2]
                counts["arith"] += 1
                value = ins[4](regs[ins[5]], regs[ins[6]])
                regs[ins[3]] = value
                counts["branch"] += 1
                if budget is not None:
                    budget.charge()
                if value:
                    target, srcs, dsts = ins[7], ins[8], ins[9]
                else:
                    target, srcs, dsts = ins[10], ins[11], ins[12]
                if srcs:
                    values = [regs[s] for s in srcs]
                    for dst, value in zip(dsts, values):
                        regs[dst] = value
                pc = target
                continue
            elif opcode == OP_GETLABEL_CMP_CONDBR:
                counts["getlabel"] += 1
                tag = tag_of(regs[ins[2]])
                regs[ins[1]] = tag
                counts["const"] += 1
                regs[ins[3]] = ins[4]
                counts["arith"] += 1
                value = ins[6](regs[ins[7]], regs[ins[8]])
                regs[ins[5]] = value
                counts["branch"] += 1
                if budget is not None:
                    budget.charge()
                if value:
                    target, srcs, dsts = ins[9], ins[10], ins[11]
                else:
                    target, srcs, dsts = ins[12], ins[13], ins[14]
                if srcs:
                    values = [regs[s] for s in srcs]
                    for dst, value in zip(dsts, values):
                        regs[dst] = value
                pc = target
                continue
            elif opcode == OP_CALL:
                counts["call"] += 1
                callee = ins[2]
                cargs = [regs[r] for r in ins[3]]
                fault_hit("vm.dispatch")
                if len(cargs) != callee.num_params:
                    raise self._error(
                        f"calling {callee.name} with {len(cargs)} arguments, "
                        f"expected {callee.num_params}"
                    )
                if budget is not None:
                    budget.charge()
                stack.append((code, regs, pc + 1, ins[1]))
                code = callee.code
                regs = [None] * callee.num_regs
                regs[: callee.num_params] = cargs
                pc = 0
                continue
            elif opcode == OP_RET:
                counts["return"] += 1
                value = regs[ins[1]] if ins[1] >= 0 else None
                if not stack:
                    return value
                code, regs, pc, dst = stack.pop()
                if dst >= 0:
                    regs[dst] = value
                continue
            elif opcode == OP_PROJ:
                counts["proj"] += 1
                value = regs[ins[2]]
                if not isinstance(value, CtorObject):
                    raise self._error(f"projection from non-constructor {value!r}")
                field = value.fields[ins[3]]
                heap.inc(field)
                counts["rc"] += 1
                regs[ins[1]] = field
            elif opcode == OP_PROJ_CALL:
                counts["proj"] += 1
                value = regs[ins[2]]
                if not isinstance(value, CtorObject):
                    raise self._error(f"projection from non-constructor {value!r}")
                field = value.fields[ins[3]]
                heap.inc(field)
                counts["rc"] += 1
                regs[ins[1]] = field
                counts["call"] += 1
                callee = ins[5]
                cargs = [regs[r] for r in ins[6]]
                fault_hit("vm.dispatch")
                if len(cargs) != callee.num_params:
                    raise self._error(
                        f"calling {callee.name} with {len(cargs)} arguments, "
                        f"expected {callee.num_params}"
                    )
                if budget is not None:
                    budget.charge()
                stack.append((code, regs, pc + 1, ins[4]))
                code = callee.code
                regs = [None] * callee.num_regs
                regs[: callee.num_params] = cargs
                pc = 0
                continue
            elif opcode == OP_CONSTRUCT:
                counts[ins[4]] += 1
                regs[ins[1]] = heap.alloc_ctor(ins[2], [regs[r] for r in ins[3]])
            elif opcode == OP_INT:
                counts["move"] += 1
                regs[ins[1]] = heap.alloc_int(ins[2])
            elif opcode == OP_CONST:
                counts["const"] += 1
                regs[ins[1]] = ins[2]
            elif opcode == OP_CONST_BINARITH or opcode == OP_CONST_CMP:
                counts["const"] += 1
                regs[ins[1]] = ins[2]
                counts["arith"] += 1
                regs[ins[3]] = ins[4](regs[ins[5]], regs[ins[6]])
            elif opcode == OP_GETLABEL:
                counts["getlabel"] += 1
                regs[ins[1]] = tag_of(regs[ins[2]])
            elif opcode == OP_INC:
                counts["rc"] += 1
                heap.inc(regs[ins[1]], ins[2])
            elif opcode == OP_DEC:
                counts["rc"] += 1
                heap.dec(regs[ins[1]], ins[2])
            elif opcode == OP_PROJ_PROJ:
                counts["proj"] += 1
                value = regs[ins[2]]
                if not isinstance(value, CtorObject):
                    raise self._error(f"projection from non-constructor {value!r}")
                field = value.fields[ins[3]]
                heap.inc(field)
                counts["rc"] += 1
                regs[ins[1]] = field
                counts["proj"] += 1
                value = regs[ins[5]]
                if not isinstance(value, CtorObject):
                    raise self._error(f"projection from non-constructor {value!r}")
                field = value.fields[ins[6]]
                heap.inc(field)
                counts["rc"] += 1
                regs[ins[4]] = field
            elif opcode == OP_INT_INC:
                counts["move"] += 1
                regs[ins[1]] = heap.alloc_int(ins[2])
                counts["rc"] += 1
                heap.inc(regs[ins[3]], ins[4])
            elif opcode == OP_DEC_DEC:
                counts["rc"] += 1
                heap.dec(regs[ins[1]], ins[2])
                counts["rc"] += 1
                heap.dec(regs[ins[3]], ins[4])
            elif opcode == OP_DEC_INC:
                counts["rc"] += 1
                heap.dec(regs[ins[1]], ins[2])
                counts["rc"] += 1
                heap.inc(regs[ins[3]], ins[4])
            elif opcode == OP_PROJ3 or opcode == OP_PROJ4:
                base = 1
                while base < len(ins):
                    counts["proj"] += 1
                    value = regs[ins[base + 1]]
                    if not isinstance(value, CtorObject):
                        raise self._error(
                            f"projection from non-constructor {value!r}"
                        )
                    field = value.fields[ins[base + 2]]
                    heap.inc(field)
                    counts["rc"] += 1
                    regs[ins[base]] = field
                    base += 3
            elif opcode == OP_INC_RTCALL:
                counts["rc"] += 1
                heap.inc(regs[ins[1]], ins[2])
                counts["runtime_call"] += 1
                regs[ins[3]] = call_builtin(
                    self.ctx, ins[4], [regs[r] for r in ins[5]]
                )
            elif opcode == OP_SELECT:
                counts["arith"] += 1
                regs[ins[1]] = regs[ins[3]] if regs[ins[2]] else regs[ins[4]]
            elif opcode == OP_RTCALL:
                counts["runtime_call"] += 1
                value = call_builtin(self.ctx, ins[2], [regs[r] for r in ins[3]])
                if ins[1] >= 0:
                    regs[ins[1]] = value
            elif opcode == OP_PAP:
                counts["alloc_closure"] += 1
                if ins[3] is None:
                    raise self._error(f"pap of unknown function {ins[2]}")
                regs[ins[1]] = make_closure(
                    heap, ins[2], ins[3], [regs[r] for r in ins[4]]
                )
            elif opcode == OP_PAPEXTEND:
                regs[ins[1]] = self._apply_closure(
                    regs[ins[2]], [regs[r] for r in ins[3]]
                )
            elif opcode == OP_REUSE:
                token = regs[ins[2]]
                fields = [regs[r] for r in ins[4]]
                if isinstance(token, CtorObject):
                    counts["reuse"] += 1
                else:
                    counts["alloc_ctor" if fields else "move"] += 1
                regs[ins[1]] = heap.reuse(token, ins[3], fields)
            elif opcode == OP_RESET:
                counts["rc"] += 1
                regs[ins[1]] = heap.reset(regs[ins[2]])
            elif opcode == OP_BIGINT:
                counts["runtime_call"] += 1
                regs[ins[1]] = heap.alloc_int(ins[2])
            elif opcode == OP_CAST:
                counts["arith"] += 1
                regs[ins[1]] = regs[ins[2]]
            elif opcode == OP_GETGLOBAL:
                counts["global"] += 1
                regs[ins[1]] = self.globals.get(ins[2])
            elif opcode == OP_SETGLOBAL:
                counts["global"] += 1
                self.globals[ins[1]] = regs[ins[2]]
            elif opcode == OP_UNREACHABLE:
                raise self._error(ins[1])
            elif opcode == OP_BADCALL:
                if self.program.flavor == "cfg":
                    raise self._error(f"call of unknown function @{ins[1]}")
                raise self._error(f"unknown function {ins[1]}")
            else:
                raise self._error(f"invalid opcode {opcode}")
            pc += 1

    def _run_threaded(self, fn: BytecodeFunction, args: List[object]) -> object:
        """The direct-threaded loop: ``pc = ops[pc](regs)``.

        Every instruction is a closure built by :meth:`_compile_threaded`
        with its operands bound as defaults; it bumps its site counter and
        returns the next pc.  Two negative sentinels thread control back:
        ``-1`` returns (value in ``self._retslot``), ``-2`` calls (callee,
        args and destination in ``self._pending``), and the loop pushes /
        pops explicit ``(ops, regs, return pc, return register)`` frames.
        """
        fault_hit("vm.dispatch")
        if len(args) != fn.num_params:
            raise self._error(
                f"calling {fn.name} with {len(args)} arguments, "
                f"expected {fn.num_params}"
            )
        threaded = self._threaded
        ops = threaded.get(fn)
        if ops is None:
            ops = self._compile_threaded(fn)
        regs = [None] * fn.num_regs
        regs[: fn.num_params] = args
        budget = self.budget
        if budget is not None:
            budget.charge()
        pending = self._pending
        retslot = self._retslot
        stack: List[Tuple] = []
        pc = 0
        while True:
            next_pc = ops[pc](regs)
            if next_pc >= 0:
                pc = next_pc
                continue
            if next_pc == -2:
                # Arity was checked when the call site's closure was
                # built (it is static per site); mismatched sites compile
                # to closures that raise instead of returning -2.
                callee = pending[0]
                fault_hit("vm.dispatch")
                cargs = pending[1]
                if budget is not None:
                    budget.charge()
                stack.append((ops, regs, pc + 1, pending[2]))
                ops = threaded.get(callee)
                if ops is None:
                    ops = self._compile_threaded(callee)
                regs = [None] * callee.num_regs
                regs[: callee.num_params] = cargs
                pc = 0
                continue
            value = retslot[0]
            retslot[0] = None
            if not stack:
                return value
            ops, regs, pc, dst = stack.pop()
            if dst >= 0:
                regs[dst] = value

    def _compile_threaded(self, fn: BytecodeFunction) -> List[Callable]:
        """Translate ``fn.code`` into the closure array the threaded loop
        runs, registering its per-site execution counters.

        Closures bind everything through default arguments (locals, not
        cell lookups) and do no cost accounting beyond one list increment:
        charges and frequencies are derived from :data:`_STATIC_CHARGES`
        at flush time.  Only the genuinely dynamic charges (``reuse``
        tokens, closure application) and the partial-charge error
        corrections touch the counter dict while running.
        """
        code = fn.code
        sites = [0] * len(code)
        ops: List[Callable] = [None] * len(code)
        counts = self._counts
        ctx = self.ctx
        heap = ctx.heap
        charge = self.budget.charge if self.budget is not None else None
        pending = self._pending
        retslot = self._retslot
        error = self._error
        globals_ = self.globals
        flavor = self.program.flavor
        for pc, ins in enumerate(code):
            opcode = ins[0]
            nxt = pc + 1
            if opcode == OP_BINARITH or opcode == OP_CMP:
                def op(regs, s=sites, i=pc, d=ins[1], f=ins[2], a=ins[3],
                       b=ins[4], n=nxt):
                    s[i] += 1
                    regs[d] = f(regs[a], regs[b])
                    return n
            elif opcode == OP_CMP_CONDBR:
                if not ins[6] and not ins[9]:
                    def op(regs, s=sites, i=pc, d=ins[1], f=ins[2], a=ins[3],
                           b=ins[4], tpc=ins[5], fpc=ins[8], ch=charge):
                        s[i] += 1
                        value = f(regs[a], regs[b])
                        regs[d] = value
                        if ch is not None:
                            ch()
                        return tpc if value else fpc
                else:
                    def op(regs, s=sites, i=pc, d=ins[1], f=ins[2], a=ins[3],
                           b=ins[4], tpc=ins[5], ts=ins[6], td=ins[7],
                           fpc=ins[8], fs=ins[9], fd=ins[10], ch=charge):
                        s[i] += 1
                        value = f(regs[a], regs[b])
                        regs[d] = value
                        if ch is not None:
                            ch()
                        if value:
                            target, srcs, dsts = tpc, ts, td
                        else:
                            target, srcs, dsts = fpc, fs, fd
                        if srcs:
                            values = [regs[x] for x in srcs]
                            for dst, moved in zip(dsts, values):
                                regs[dst] = moved
                        return target
            elif opcode == OP_JMP:
                if not ins[2]:
                    def op(regs, s=sites, i=pc, t=ins[1], ch=charge):
                        s[i] += 1
                        if ch is not None:
                            ch()
                        return t
                elif len(ins[2]) == 1:
                    def op(regs, s=sites, i=pc, t=ins[1], a=ins[2][0],
                           d=ins[3][0], ch=charge):
                        s[i] += 1
                        if ch is not None:
                            ch()
                        regs[d] = regs[a]
                        return t
                else:
                    def op(regs, s=sites, i=pc, t=ins[1], srcs=ins[2],
                           dsts=ins[3], ch=charge):
                        s[i] += 1
                        if ch is not None:
                            ch()
                        values = [regs[x] for x in srcs]
                        for dst, moved in zip(dsts, values):
                            regs[dst] = moved
                        return t
            elif opcode == OP_CONDBR:
                if not ins[3] and not ins[6]:
                    def op(regs, s=sites, i=pc, c=ins[1], tpc=ins[2],
                           fpc=ins[5], ch=charge):
                        s[i] += 1
                        if ch is not None:
                            ch()
                        return tpc if regs[c] else fpc
                else:
                    def op(regs, s=sites, i=pc, c=ins[1], tpc=ins[2],
                           ts=ins[3], td=ins[4], fpc=ins[5], fs=ins[6],
                           fd=ins[7], ch=charge):
                        s[i] += 1
                        if ch is not None:
                            ch()
                        if regs[c]:
                            target, srcs, dsts = tpc, ts, td
                        else:
                            target, srcs, dsts = fpc, fs, fd
                        if srcs:
                            values = [regs[x] for x in srcs]
                            for dst, moved in zip(dsts, values):
                                regs[dst] = moved
                        return target
            elif opcode == OP_CASE:
                def op(regs, s=sites, i=pc, src=ins[1], table=ins[2],
                       default=ins[3], ch=charge, err=error, tg=tag_of):
                    s[i] += 1
                    tag = tg(regs[src])
                    target = table.get(tag, default)
                    if target is None:
                        raise err(f"no alternative for tag {tag} in case")
                    if ch is not None:
                        ch()
                    return target
            elif opcode == OP_SWITCH:
                def op(regs, s=sites, i=pc, flag=ins[1], table=ins[2],
                       default=ins[3], ch=charge):
                    s[i] += 1
                    if ch is not None:
                        ch()
                    return table.get(regs[flag], default)
            elif opcode == OP_GETLABEL_SWITCH:
                def op(regs, s=sites, i=pc, d=ins[1], src=ins[2],
                       table=ins[3], default=ins[4], ch=charge, cnt=counts,
                       tg=tag_of):
                    s[i] += 1
                    try:
                        tag = tg(regs[src])
                    except RuntimeError_:
                        # The unfused sequence charges getlabel but never
                        # reaches the switch's branch charge.
                        cnt["branch"] -= 1
                        raise
                    regs[d] = tag
                    if ch is not None:
                        ch()
                    return table.get(tag, default)
            elif opcode == OP_CONST_CMP_CONDBR:
                if not ins[8] and not ins[11]:
                    def op(regs, s=sites, i=pc, cd=ins[1], v=ins[2],
                           d=ins[3], f=ins[4], a=ins[5], b=ins[6],
                           tpc=ins[7], fpc=ins[10], ch=charge):
                        s[i] += 1
                        regs[cd] = v
                        value = f(regs[a], regs[b])
                        regs[d] = value
                        if ch is not None:
                            ch()
                        return tpc if value else fpc
                else:
                    def op(regs, s=sites, i=pc, cd=ins[1], v=ins[2],
                           d=ins[3], f=ins[4], a=ins[5], b=ins[6],
                           tpc=ins[7], ts=ins[8], td=ins[9], fpc=ins[10],
                           fs=ins[11], fd=ins[12], ch=charge):
                        s[i] += 1
                        regs[cd] = v
                        value = f(regs[a], regs[b])
                        regs[d] = value
                        if ch is not None:
                            ch()
                        if value:
                            target, srcs, dsts = tpc, ts, td
                        else:
                            target, srcs, dsts = fpc, fs, fd
                        if srcs:
                            values = [regs[x] for x in srcs]
                            for dst, moved in zip(dsts, values):
                                regs[dst] = moved
                        return target
            elif opcode == OP_GETLABEL_CMP_CONDBR:
                if not ins[10] and not ins[13]:
                    def op(regs, s=sites, i=pc, gd=ins[1], gsrc=ins[2],
                           cd=ins[3], v=ins[4], d=ins[5], f=ins[6],
                           a=ins[7], b=ins[8], tpc=ins[9], fpc=ins[12],
                           ch=charge, cnt=counts, tg=tag_of):
                        s[i] += 1
                        try:
                            tag = tg(regs[gsrc])
                        except RuntimeError_:
                            # The unfused sequence stops after getlabel.
                            cnt["const"] -= 1
                            cnt["arith"] -= 1
                            cnt["branch"] -= 1
                            raise
                        regs[gd] = tag
                        regs[cd] = v
                        value = f(regs[a], regs[b])
                        regs[d] = value
                        if ch is not None:
                            ch()
                        return tpc if value else fpc
                else:
                    def op(regs, s=sites, i=pc, gd=ins[1], gsrc=ins[2],
                           cd=ins[3], v=ins[4], d=ins[5], f=ins[6],
                           a=ins[7], b=ins[8], tpc=ins[9], ts=ins[10],
                           td=ins[11], fpc=ins[12], fs=ins[13], fd=ins[14],
                           ch=charge, cnt=counts, tg=tag_of):
                        s[i] += 1
                        try:
                            tag = tg(regs[gsrc])
                        except RuntimeError_:
                            cnt["const"] -= 1
                            cnt["arith"] -= 1
                            cnt["branch"] -= 1
                            raise
                        regs[gd] = tag
                        regs[cd] = v
                        value = f(regs[a], regs[b])
                        regs[d] = value
                        if ch is not None:
                            ch()
                        if value:
                            target, srcs, dsts = tpc, ts, td
                        else:
                            target, srcs, dsts = fpc, fs, fd
                        if srcs:
                            values = [regs[x] for x in srcs]
                            for dst, moved in zip(dsts, values):
                                regs[dst] = moved
                        return target
            elif opcode == OP_PROJ_PROJ:
                def op(regs, s=sites, i=pc, d1=ins[1], s1=ins[2], i1=ins[3],
                       d2=ins[4], s2=ins[5], i2=ins[6], heap=heap,
                       cnt=counts, err=error, ctor=CtorObject, n=nxt):
                    s[i] += 1
                    value = regs[s1]
                    if not isinstance(value, ctor):
                        # Unfused charge stops at the first proj.
                        cnt["rc"] -= 2
                        cnt["proj"] -= 1
                        raise err(f"projection from non-constructor {value!r}")
                    field = value.fields[i1]
                    heap.inc(field)
                    regs[d1] = field
                    value = regs[s2]
                    if not isinstance(value, ctor):
                        cnt["rc"] -= 1
                        raise err(f"projection from non-constructor {value!r}")
                    field = value.fields[i2]
                    heap.inc(field)
                    regs[d2] = field
                    return n
            elif opcode == OP_INT_INC:
                def op(regs, s=sites, i=pc, d=ins[1], v=ins[2], src=ins[3],
                       k=ins[4], alloc=heap.alloc_int, inc=heap.inc, n=nxt):
                    s[i] += 1
                    regs[d] = alloc(v)
                    inc(regs[src], k)
                    return n
            elif opcode == OP_DEC_DEC:
                def op(regs, s=sites, i=pc, s1=ins[1], c1=ins[2], s2=ins[3],
                       c2=ins[4], dec=heap.dec, cnt=counts, n=nxt):
                    s[i] += 1
                    try:
                        dec(regs[s1], c1)
                    except RuntimeError_:
                        # Unfused charge stops at the first dec.
                        cnt["rc"] -= 1
                        raise
                    dec(regs[s2], c2)
                    return n
            elif opcode == OP_DEC_INC:
                def op(regs, s=sites, i=pc, s1=ins[1], c1=ins[2], s2=ins[3],
                       c2=ins[4], dec=heap.dec, inc=heap.inc, cnt=counts,
                       n=nxt):
                    s[i] += 1
                    try:
                        dec(regs[s1], c1)
                    except RuntimeError_:
                        # Unfused charge stops at the dec.
                        cnt["rc"] -= 1
                        raise
                    inc(regs[s2], c2)
                    return n
            elif opcode == OP_PROJ3:
                def op(regs, s=sites, i=pc, d1=ins[1], s1=ins[2], i1=ins[3],
                       d2=ins[4], s2=ins[5], i2=ins[6], d3=ins[7], s3=ins[8],
                       i3=ins[9], heap=heap, cnt=counts, err=error,
                       ctor=CtorObject, n=nxt):
                    s[i] += 1
                    value = regs[s1]
                    if not isinstance(value, ctor):
                        # Unfused charge stops at the failing proj.
                        cnt["proj"] -= 2
                        cnt["rc"] -= 3
                        raise err(f"projection from non-constructor {value!r}")
                    field = value.fields[i1]
                    heap.inc(field)
                    regs[d1] = field
                    value = regs[s2]
                    if not isinstance(value, ctor):
                        cnt["proj"] -= 1
                        cnt["rc"] -= 2
                        raise err(f"projection from non-constructor {value!r}")
                    field = value.fields[i2]
                    heap.inc(field)
                    regs[d2] = field
                    value = regs[s3]
                    if not isinstance(value, ctor):
                        cnt["rc"] -= 1
                        raise err(f"projection from non-constructor {value!r}")
                    field = value.fields[i3]
                    heap.inc(field)
                    regs[d3] = field
                    return n
            elif opcode == OP_PROJ4:
                def op(regs, s=sites, i=pc, d1=ins[1], s1=ins[2], i1=ins[3],
                       d2=ins[4], s2=ins[5], i2=ins[6], d3=ins[7], s3=ins[8],
                       i3=ins[9], d4=ins[10], s4=ins[11], i4=ins[12],
                       heap=heap, cnt=counts, err=error, ctor=CtorObject,
                       n=nxt):
                    s[i] += 1
                    value = regs[s1]
                    if not isinstance(value, ctor):
                        # Unfused charge stops at the failing proj.
                        cnt["proj"] -= 3
                        cnt["rc"] -= 4
                        raise err(f"projection from non-constructor {value!r}")
                    field = value.fields[i1]
                    heap.inc(field)
                    regs[d1] = field
                    value = regs[s2]
                    if not isinstance(value, ctor):
                        cnt["proj"] -= 2
                        cnt["rc"] -= 3
                        raise err(f"projection from non-constructor {value!r}")
                    field = value.fields[i2]
                    heap.inc(field)
                    regs[d2] = field
                    value = regs[s3]
                    if not isinstance(value, ctor):
                        cnt["proj"] -= 1
                        cnt["rc"] -= 2
                        raise err(f"projection from non-constructor {value!r}")
                    field = value.fields[i3]
                    heap.inc(field)
                    regs[d3] = field
                    value = regs[s4]
                    if not isinstance(value, ctor):
                        cnt["rc"] -= 1
                        raise err(f"projection from non-constructor {value!r}")
                    field = value.fields[i4]
                    heap.inc(field)
                    regs[d4] = field
                    return n
            elif opcode == OP_INC_RTCALL:
                impl = BUILTINS.get(ins[4])
                if impl is not None:
                    def op(regs, s=sites, i=pc, src=ins[1], k=ins[2],
                           d=ins[3], fn_=impl, argr=ins[5], inc=heap.inc,
                           ctx=ctx, cnt=counts, n=nxt):
                        s[i] += 1
                        try:
                            inc(regs[src], k)
                        except RuntimeError_:
                            # Unfused charge stops at the inc.
                            cnt["runtime_call"] -= 1
                            raise
                        regs[d] = fn_(ctx, [regs[r] for r in argr])
                        return n
                else:
                    def op(regs, s=sites, i=pc, src=ins[1], k=ins[2],
                           d=ins[3], name=ins[4], argr=ins[5], inc=heap.inc,
                           ctx=ctx, cb=call_builtin, cnt=counts, n=nxt):
                        s[i] += 1
                        try:
                            inc(regs[src], k)
                        except RuntimeError_:
                            cnt["runtime_call"] -= 1
                            raise
                        regs[d] = cb(ctx, name, [regs[r] for r in argr])
                        return n
            elif opcode == OP_RET:
                if ins[1] >= 0:
                    def op(regs, s=sites, i=pc, src=ins[1], ret=retslot):
                        s[i] += 1
                        ret[0] = regs[src]
                        return -1
                else:
                    def op(regs, s=sites, i=pc, ret=retslot):
                        s[i] += 1
                        ret[0] = None
                        return -1
            elif opcode == OP_CALL:
                if len(ins[3]) != ins[2].num_params:
                    # Static arity mismatch: raise at execution time with
                    # the loop's exact fault/error ordering.
                    def op(regs, s=sites, i=pc, callee=ins[2],
                           argc=len(ins[3]), err=error, fh=fault_hit):
                        s[i] += 1
                        fh("vm.dispatch")
                        raise err(
                            f"calling {callee.name} with {argc} arguments, "
                            f"expected {callee.num_params}"
                        )
                else:
                    def op(regs, s=sites, i=pc, d=ins[1], callee=ins[2],
                           argr=ins[3], pend=pending):
                        s[i] += 1
                        pend[0] = callee
                        pend[1] = [regs[r] for r in argr]
                        pend[2] = d
                        return -2
            elif opcode == OP_PROJ:
                def op(regs, s=sites, i=pc, d=ins[1], src=ins[2], idx=ins[3],
                       heap=heap, cnt=counts, err=error, ctor=CtorObject,
                       n=nxt):
                    s[i] += 1
                    value = regs[src]
                    if not isinstance(value, ctor):
                        # The unfused charge stops at proj on this error.
                        cnt["rc"] -= 1
                        raise err(f"projection from non-constructor {value!r}")
                    field = value.fields[idx]
                    heap.inc(field)
                    regs[d] = field
                    return n
            elif opcode == OP_PROJ_CALL:
                if len(ins[6]) != ins[5].num_params:
                    def op(regs, s=sites, i=pc, pd=ins[1], src=ins[2],
                           idx=ins[3], callee=ins[5], argc=len(ins[6]),
                           heap=heap, cnt=counts, err=error,
                           ctor=CtorObject, fh=fault_hit):
                        s[i] += 1
                        value = regs[src]
                        if not isinstance(value, ctor):
                            cnt["rc"] -= 1
                            cnt["call"] -= 1
                            raise err(
                                f"projection from non-constructor {value!r}"
                            )
                        field = value.fields[idx]
                        heap.inc(field)
                        regs[pd] = field
                        fh("vm.dispatch")
                        raise err(
                            f"calling {callee.name} with {argc} arguments, "
                            f"expected {callee.num_params}"
                        )
                else:
                    def op(regs, s=sites, i=pc, pd=ins[1], src=ins[2],
                           idx=ins[3], cd=ins[4], callee=ins[5], argr=ins[6],
                           heap=heap, cnt=counts, err=error, ctor=CtorObject,
                           pend=pending):
                        s[i] += 1
                        value = regs[src]
                        if not isinstance(value, ctor):
                            cnt["rc"] -= 1
                            cnt["call"] -= 1
                            raise err(f"projection from non-constructor {value!r}")
                        field = value.fields[idx]
                        heap.inc(field)
                        regs[pd] = field
                        pend[0] = callee
                        pend[1] = [regs[r] for r in argr]
                        pend[2] = cd
                        return -2
            elif opcode == OP_CONSTRUCT:
                def op(regs, s=sites, i=pc, d=ins[1], tag=ins[2], fr=ins[3],
                       alloc=heap.alloc_ctor, n=nxt):
                    s[i] += 1
                    regs[d] = alloc(tag, [regs[r] for r in fr])
                    return n
            elif opcode == OP_INT or opcode == OP_BIGINT:
                def op(regs, s=sites, i=pc, d=ins[1], v=ins[2],
                       alloc=heap.alloc_int, n=nxt):
                    s[i] += 1
                    regs[d] = alloc(v)
                    return n
            elif opcode == OP_CONST:
                def op(regs, s=sites, i=pc, d=ins[1], v=ins[2], n=nxt):
                    s[i] += 1
                    regs[d] = v
                    return n
            elif opcode == OP_CONST_BINARITH or opcode == OP_CONST_CMP:
                def op(regs, s=sites, i=pc, cd=ins[1], v=ins[2], d=ins[3],
                       f=ins[4], a=ins[5], b=ins[6], n=nxt):
                    s[i] += 1
                    regs[cd] = v
                    regs[d] = f(regs[a], regs[b])
                    return n
            elif opcode == OP_GETLABEL:
                def op(regs, s=sites, i=pc, d=ins[1], src=ins[2], tg=tag_of,
                       n=nxt):
                    s[i] += 1
                    regs[d] = tg(regs[src])
                    return n
            elif opcode == OP_INC:
                def op(regs, s=sites, i=pc, src=ins[1], k=ins[2],
                       inc=heap.inc, n=nxt):
                    s[i] += 1
                    inc(regs[src], k)
                    return n
            elif opcode == OP_DEC:
                def op(regs, s=sites, i=pc, src=ins[1], k=ins[2],
                       dec=heap.dec, n=nxt):
                    s[i] += 1
                    dec(regs[src], k)
                    return n
            elif opcode == OP_SELECT:
                def op(regs, s=sites, i=pc, d=ins[1], c=ins[2], a=ins[3],
                       b=ins[4], n=nxt):
                    s[i] += 1
                    regs[d] = regs[a] if regs[c] else regs[b]
                    return n
            elif opcode == OP_RTCALL:
                # Pre-resolve the builtin: BUILTINS is sealed at import
                # time, so the per-call name lookup in call_builtin is
                # dead weight on the hot path.  Unknown names keep the
                # lazy call_builtin error.
                impl = BUILTINS.get(ins[2])
                if impl is not None and ins[1] >= 0:
                    def op(regs, s=sites, i=pc, d=ins[1], fn_=impl,
                           argr=ins[3], ctx=ctx, n=nxt):
                        s[i] += 1
                        regs[d] = fn_(ctx, [regs[r] for r in argr])
                        return n
                elif impl is not None:
                    def op(regs, s=sites, i=pc, fn_=impl, argr=ins[3],
                           ctx=ctx, n=nxt):
                        s[i] += 1
                        fn_(ctx, [regs[r] for r in argr])
                        return n
                elif ins[1] >= 0:
                    def op(regs, s=sites, i=pc, d=ins[1], name=ins[2],
                           argr=ins[3], ctx=ctx, cb=call_builtin, n=nxt):
                        s[i] += 1
                        regs[d] = cb(ctx, name, [regs[r] for r in argr])
                        return n
                else:
                    def op(regs, s=sites, i=pc, name=ins[2], argr=ins[3],
                           ctx=ctx, cb=call_builtin, n=nxt):
                        s[i] += 1
                        cb(ctx, name, [regs[r] for r in argr])
                        return n
            elif opcode == OP_PAP:
                if ins[3] is None:
                    def op(regs, s=sites, i=pc, name=ins[2], err=error):
                        s[i] += 1
                        raise err(f"pap of unknown function {name}")
                else:
                    def op(regs, s=sites, i=pc, d=ins[1], name=ins[2],
                           arity=ins[3], argr=ins[4], heap=heap,
                           mk=make_closure, n=nxt):
                        s[i] += 1
                        regs[d] = mk(heap, name, arity, [regs[r] for r in argr])
                        return n
            elif opcode == OP_PAPEXTEND:
                def op(regs, s=sites, i=pc, d=ins[1], c=ins[2], argr=ins[3],
                       apply=self._apply_closure, n=nxt):
                    s[i] += 1
                    regs[d] = apply(regs[c], [regs[r] for r in argr])
                    return n
            elif opcode == OP_REUSE:
                category = "alloc_ctor" if ins[4] else "move"
                def op(regs, s=sites, i=pc, d=ins[1], tok=ins[2], tag=ins[3],
                       fr=ins[4], heap=heap, cnt=counts, cat=category,
                       ctor=CtorObject, n=nxt):
                    s[i] += 1
                    token = regs[tok]
                    fields = [regs[r] for r in fr]
                    if isinstance(token, ctor):
                        cnt["reuse"] += 1
                    else:
                        cnt[cat] += 1
                    regs[d] = heap.reuse(token, tag, fields)
                    return n
            elif opcode == OP_RESET:
                def op(regs, s=sites, i=pc, d=ins[1], src=ins[2],
                       reset=heap.reset, n=nxt):
                    s[i] += 1
                    regs[d] = reset(regs[src])
                    return n
            elif opcode == OP_CAST:
                def op(regs, s=sites, i=pc, d=ins[1], src=ins[2], n=nxt):
                    s[i] += 1
                    regs[d] = regs[src]
                    return n
            elif opcode == OP_GETGLOBAL:
                def op(regs, s=sites, i=pc, d=ins[1], name=ins[2],
                       g=globals_, n=nxt):
                    s[i] += 1
                    regs[d] = g.get(name)
                    return n
            elif opcode == OP_SETGLOBAL:
                def op(regs, s=sites, i=pc, name=ins[1], src=ins[2],
                       g=globals_, n=nxt):
                    s[i] += 1
                    g[name] = regs[src]
                    return n
            elif opcode == OP_UNREACHABLE:
                def op(regs, s=sites, i=pc, err=error, msg=ins[1]):
                    s[i] += 1
                    raise err(msg)
            elif opcode == OP_BADCALL:
                if flavor == "cfg":
                    message = f"call of unknown function @{ins[1]}"
                else:
                    message = f"unknown function {ins[1]}"
                def op(regs, s=sites, i=pc, err=error, msg=message):
                    s[i] += 1
                    raise err(msg)
            else:
                def op(regs, s=sites, i=pc, err=error, bad=opcode):
                    s[i] += 1
                    raise err(f"invalid opcode {bad}")
            ops[pc] = op
        self._threaded[fn] = ops
        self._site_tables[fn] = sites
        return ops


# ---------------------------------------------------------------------------
# Convenience wrappers (mirror run_cfg_module / run_rc_program)
# ---------------------------------------------------------------------------


def run_cfg_module_vm(
    module: ModuleOp,
    *,
    main: str = "main",
    check_heap: bool = True,
    dispatch: str = "threaded",
    fuse: bool = True,
) -> RunResult:
    """Compile ``module`` to bytecode and execute ``@main`` on the VM."""
    program = compile_cfg_module(module, main=main, fuse=fuse)
    return VirtualMachine(program, dispatch=dispatch).run_main(
        check_heap=check_heap
    )


def run_rc_program_vm(
    program: rc_ir.Program,
    *,
    check_heap: bool = True,
    dispatch: str = "threaded",
    fuse: bool = True,
) -> RunResult:
    """Compile a λrc ``program`` to bytecode and execute its main on the VM."""
    bytecode = compile_rc_program(program, fuse=fuse)
    return VirtualMachine(bytecode, dispatch=dispatch).run_main(
        check_heap=check_heap
    )
