"""λrc interpreter — executes the *baseline* backend's output.

The current LEAN compiler lowers λrc to C with a thin, direct mapping
(constructors become runtime allocations, cases become ``switch`` statements,
join points become labels/gotos, ``inc``/``dec`` become runtime calls).  We
model the execution of that generated C by interpreting λrc itself against
the simulated runtime, charging the shared cost model for every dynamic
event.  The C source the baseline would emit is produced separately by
:mod:`repro.backend.c_backend` (as an artifact); its execution semantics are
exactly this interpreter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..resilience.budgets import ExecutionBudget
from .limits import recursion_limit

from ..lambda_pure.ir import (
    App,
    Call,
    Case,
    Ctor,
    Dec,
    FnBody,
    Function,
    Inc,
    JDecl,
    Jmp,
    Let,
    Lit,
    PAp,
    Program,
    Proj,
    Reset,
    Ret,
    Reuse,
    Unreachable,
)
from ..runtime import (
    ClosureObject,
    CtorObject,
    Enum,
    RuntimeContext,
    RuntimeError_,
    Scalar,
    Value,
    call_builtin,
    extend_closure,
    is_builtin,
    make_closure,
    python_value,
    tag_of,
)
from .metrics import ExecutionMetrics


@dataclass
class RunResult:
    """Result of executing a program: final value + metrics + heap report."""

    value: object
    metrics: ExecutionMetrics
    heap_stats: Dict[str, int]
    output: List[str]


class RcInterpreter:
    """Executes a λrc program (with inserted reference counts)."""

    def __init__(
        self,
        program: Program,
        *,
        context: Optional[RuntimeContext] = None,
        metrics: Optional[ExecutionMetrics] = None,
        recursion_limit: int = 200000,
        budget: Optional[ExecutionBudget] = None,
    ):
        self.program = program
        self.ctx = context if context is not None else RuntimeContext()
        self.metrics = metrics if metrics is not None else ExecutionMetrics()
        self.recursion_limit = recursion_limit
        self.budget = budget

    # -- public API ------------------------------------------------------------
    def run_main(self, args: Optional[List[Value]] = None, *, check_heap: bool = True) -> RunResult:
        if self.budget is not None:
            self.budget.start()
        start = time.perf_counter()
        with recursion_limit(self.recursion_limit):
            result = self.call(self.program.main, list(args or []))
        self.metrics.wall_time_seconds = time.perf_counter() - start
        snapshot = python_value(result)
        # The driver owns the returned value; release it and check balance.
        if isinstance(result, (CtorObject, ClosureObject)) or (
            not isinstance(result, (Scalar, Enum))
        ):
            self.ctx.release(result)
        if check_heap:
            self.ctx.heap.check_balanced()
        return RunResult(
            value=snapshot,
            metrics=self.metrics,
            heap_stats=self.ctx.heap.stats.as_dict(),
            output=list(self.ctx.output),
        )

    # -- calls -----------------------------------------------------------------------
    def call(self, fn_name: str, args: List[Value]) -> Value:
        if is_builtin(fn_name):
            self.metrics.charge("runtime_call")
            return call_builtin(self.ctx, fn_name, args)
        fn = self.program.functions.get(fn_name)
        if fn is None:
            raise RuntimeError_(f"unknown function {fn_name}")
        if len(args) != fn.arity:
            raise RuntimeError_(
                f"calling {fn_name} with {len(args)} arguments, expected {fn.arity}"
            )
        self.metrics.charge("call")
        if self.budget is not None:
            self.budget.charge()
        env: Dict[str, Value] = dict(zip(fn.params, args))
        return self._eval_body(fn.body, env, {})

    def _apply_closure(self, closure: Value, args: List[Value]) -> Value:
        self.metrics.charge("apply")
        outcome = extend_closure(self.ctx.heap, closure, args)
        if not outcome.is_call:
            return outcome.closure
        result = self.call(outcome.call_fn, outcome.call_args)
        if outcome.extra_args:
            return self._apply_closure(result, outcome.extra_args)
        return result

    # -- expressions --------------------------------------------------------------------
    def _eval_expr(self, expr, env: Dict[str, Value]) -> Value:
        if isinstance(expr, Lit):
            self.metrics.charge("move")
            return self.ctx.heap.alloc_int(expr.value)
        if isinstance(expr, Ctor):
            if expr.args:
                self.metrics.charge("alloc_ctor")
            else:
                self.metrics.charge("move")
            return self.ctx.heap.alloc_ctor(expr.tag, [env[a] for a in expr.args])
        if isinstance(expr, Proj):
            self.metrics.charge("proj")
            value = env[expr.var]
            if isinstance(value, CtorObject):
                field = value.fields[expr.index]
            else:
                raise RuntimeError_(f"projection from non-constructor {value!r}")
            self.ctx.heap.inc(field)
            self.metrics.charge("rc")
            return field
        if isinstance(expr, Reset):
            # One RC event: either releases the fields of a unique cell or
            # performs the decrement the replaced ``dec`` would have.
            self.metrics.charge("rc")
            return self.ctx.heap.reset(env[expr.var])
        if isinstance(expr, Reuse):
            token = env[expr.token]
            fields = [env[a] for a in expr.args]
            if isinstance(token, CtorObject):
                self.metrics.charge("reuse")
            else:
                self.metrics.charge("alloc_ctor" if fields else "move")
            return self.ctx.heap.reuse(token, expr.tag, fields)
        if isinstance(expr, Call):
            return self.call(expr.fn, [env[a] for a in expr.args])
        if isinstance(expr, PAp):
            self.metrics.charge("alloc_closure")
            arity = self._arity_of(expr.fn)
            return make_closure(self.ctx.heap, expr.fn, arity, [env[a] for a in expr.args])
        if isinstance(expr, App):
            return self._apply_closure(env[expr.closure], [env[a] for a in expr.args])
        raise RuntimeError_(f"unknown expression {expr!r}")

    def _arity_of(self, fn_name: str) -> int:
        fn = self.program.functions.get(fn_name)
        if fn is not None:
            return fn.arity
        raise RuntimeError_(f"pap of unknown function {fn_name}")

    # -- bodies ------------------------------------------------------------------------------
    def _eval_body(
        self,
        body: FnBody,
        env: Dict[str, Value],
        joins: Dict[str, Tuple],
    ) -> Value:
        while True:
            if isinstance(body, Let):
                env = dict(env)
                env[body.var] = self._eval_expr(body.expr, env)
                body = body.body
                continue
            if isinstance(body, Inc):
                self.metrics.charge("rc")
                self.ctx.heap.inc(env[body.var], body.count)
                body = body.body
                continue
            if isinstance(body, Dec):
                self.metrics.charge("rc")
                self.ctx.heap.dec(env[body.var], body.count)
                body = body.body
                continue
            if isinstance(body, Ret):
                self.metrics.charge("return")
                return env[body.var]
            if isinstance(body, Case):
                self.metrics.charge("getlabel")
                # A compiled switch performs a tag comparison (or jump-table
                # index check) before branching; charge it like the cmpi the
                # MLIR pipeline makes explicit.
                self.metrics.charge("arith")
                self.metrics.charge("branch")
                tag = tag_of(env[body.var])
                chosen = None
                for alt in body.alts:
                    if alt.tag == tag:
                        chosen = alt.body
                        break
                if chosen is None:
                    chosen = body.default
                if chosen is None:
                    raise RuntimeError_(
                        f"no alternative for tag {tag} in case {body.var}"
                    )
                body = chosen
                continue
            if isinstance(body, JDecl):
                joins = dict(joins)
                joins[body.label] = (body.params, body.jbody, env, joins)
                body = body.rest
                continue
            if isinstance(body, Jmp):
                self.metrics.charge("jump")
                if self.budget is not None:
                    self.budget.charge()
                params, jbody, jenv, jjoins = joins[body.label]
                arg_values = [env[a] for a in body.args]
                env = dict(jenv)
                for param, value in zip(params, arg_values):
                    env[param] = value
                joins = jjoins
                body = jbody
                continue
            if isinstance(body, Unreachable):
                raise RuntimeError_("executed an unreachable program point")
            raise RuntimeError_(f"unknown body node {body!r}")


def run_rc_program(program: Program, *, check_heap: bool = True) -> RunResult:
    """Convenience wrapper: execute ``program.main`` and return the result."""
    return RcInterpreter(program).run_main(check_heap=check_heap)
