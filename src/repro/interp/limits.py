"""Scoped recursion-limit management for the tree-walking interpreters.

Deeply recursive generated programs need more Python stack than the
default ``sys.getrecursionlimit()`` allows.  The engines historically
raised the limit in their constructors and never restored it, so one
interpreter instantiation silently changed process-global state for
everything that ran afterwards (including tests asserting on recursion
behaviour).  :func:`recursion_limit` scopes the raise to one ``run_main``
and restores the previous limit on exit — including when execution
raises.

Only the tree-walkers (``cfg_interp``, ``rc_interp``, ``reference``)
use this module:
the bytecode VM maintains an explicit call stack in both dispatch modes,
so VM call depth is independent of the Python recursion limit and
``interp/bytecode.py`` deliberately has no import of this helper.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Iterator

#: Stack headroom the engines request by default; chosen for the deepest
#: benchmark programs (the red-black tree workloads).
DEFAULT_RECURSION_LIMIT = 200000


@contextmanager
def recursion_limit(limit: int) -> Iterator[None]:
    """Raise ``sys.setrecursionlimit`` to at least ``limit`` for the scope.

    A limit at or below the current one leaves the process untouched; the
    prior limit is restored on exit either way, so nesting and exceptions
    are safe.
    """
    previous = sys.getrecursionlimit()
    if limit > previous:
        sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)
