"""IR dialects.

* :mod:`repro.dialects.builtin` — ``builtin.module``.
* :mod:`repro.dialects.func` — functions, calls, returns and globals.
* :mod:`repro.dialects.arith` — integer arithmetic, comparisons, ``select``.
* :mod:`repro.dialects.cf` — flat CFG terminators (``br``/``cond_br``/``switch``).
* :mod:`repro.dialects.scf` — structured control flow (``if``/``yield``).
* :mod:`repro.dialects.lp` — the paper's λpure/λrc SSA encoding (Figure 2).
* :mod:`repro.dialects.rgn` — first-class region values (``rgn.val``/``rgn.run``).
"""

from . import arith, builtin, cf, func, lp, rgn, scf  # noqa: F401

__all__ = ["arith", "builtin", "cf", "func", "lp", "rgn", "scf"]
