"""The lp dialect — the paper's SSA encoding of λpure/λrc (Figure 2).

Operations:

* ``lp.int`` / ``lp.bigint`` — machine-word and GMP-style integers,
* ``lp.construct`` / ``lp.getlabel`` / ``lp.project`` — algebraic data types,
* ``lp.switch`` — pattern matching on an integer tag (region per arm),
* ``lp.joinpoint`` / ``lp.jump`` — join points for deduplicated control flow,
* ``lp.pap`` / ``lp.papextend`` — closure creation and extension,
* ``lp.inc`` / ``lp.dec`` — reference counting (the λrc extension),
* ``lp.return`` — return a value from lp control flow,
* ``lp.unreachable`` — statically impossible arm.

Every boxed value has the single type ``!lp.t`` (λrc is type erased).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir.attributes import ArrayAttr, BoolAttr, IntegerAttr, StringAttr, SymbolRefAttr
from ..ir.core import Block, Operation, Region, Value
from ..ir.dialect import Dialect
from ..ir.traits import Allocates, IsTerminator, Pure
from ..ir.types import BoxType, IntegerType, Type, box, i8

lp_dialect = Dialect("lp")


# ---------------------------------------------------------------------------
# Value-producing operations
# ---------------------------------------------------------------------------


@lp_dialect.register_op
class IntOp(Operation):
    """``lp.int`` — construct a machine-word-sized (boxed) integer."""

    OP_NAME = "lp.int"
    TRAITS = frozenset({Pure})

    def __init__(self, value: int):
        super().__init__(
            result_types=[box], attributes={"value": IntegerAttr(value)}
        )

    @property
    def value(self) -> int:
        return self.attributes["value"].value


@lp_dialect.register_op
class BigIntOp(Operation):
    """``lp.bigint`` — construct an arbitrary-precision integer from a decimal
    string constant (lowered to runtime big-integer calls)."""

    OP_NAME = "lp.bigint"
    TRAITS = frozenset({Pure, Allocates})

    def __init__(self, value: str):
        super().__init__(
            result_types=[box], attributes={"value": StringAttr(str(value))}
        )

    @property
    def value(self) -> int:
        return int(self.attributes["value"].value)


@lp_dialect.register_op
class ConstructOp(Operation):
    """``lp.construct`` — build a data constructor (tagged union) value."""

    OP_NAME = "lp.construct"
    TRAITS = frozenset({Pure, Allocates})

    def __init__(self, tag: int, fields: Sequence[Value] = ()):
        super().__init__(
            operands=fields,
            result_types=[box],
            attributes={"tag": IntegerAttr(tag)},
        )

    @property
    def tag(self) -> int:
        return self.attributes["tag"].value

    @property
    def fields(self) -> List[Value]:
        return list(self.operands)

    def verify_(self) -> None:
        for i, f in enumerate(self.operands):
            if not isinstance(f.type, BoxType):
                raise ValueError(f"lp.construct field {i} must be !lp.t")


@lp_dialect.register_op
class GetLabelOp(Operation):
    """``lp.getlabel`` — read the constructor tag of a boxed value as ``i8``."""

    OP_NAME = "lp.getlabel"
    TRAITS = frozenset({Pure})

    def __init__(self, value: Value):
        super().__init__(operands=[value], result_types=[i8])

    @property
    def value(self) -> Value:
        return self.operands[0]


@lp_dialect.register_op
class ProjectOp(Operation):
    """``lp.project`` — extract the ``index``-th field of a constructor value."""

    OP_NAME = "lp.project"
    TRAITS = frozenset({Pure})

    def __init__(self, value: Value, index: int):
        super().__init__(
            operands=[value],
            result_types=[box],
            attributes={"index": IntegerAttr(index)},
        )

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> int:
        return self.attributes["index"].value


@lp_dialect.register_op
class PapOp(Operation):
    """``lp.pap`` — build a closure by partially applying a top-level function."""

    OP_NAME = "lp.pap"
    TRAITS = frozenset({Pure, Allocates})

    def __init__(self, callee: str, args: Sequence[Value] = ()):
        super().__init__(
            operands=args,
            result_types=[box],
            attributes={"callee": SymbolRefAttr(callee)},
        )

    @property
    def callee(self) -> str:
        return self.attributes["callee"].name

    @property
    def args(self) -> List[Value]:
        return list(self.operands)


@lp_dialect.register_op
class PapExtendOp(Operation):
    """``lp.papextend`` — extend a closure with more arguments; if the closure
    becomes saturated, the held function is invoked."""

    OP_NAME = "lp.papextend"

    def __init__(self, closure: Value, args: Sequence[Value]):
        super().__init__(operands=[closure, *args], result_types=[box])

    @property
    def closure(self) -> Value:
        return self.operands[0]

    @property
    def args(self) -> List[Value]:
        return list(self.operands[1:])


# ---------------------------------------------------------------------------
# Reference counting (λrc)
# ---------------------------------------------------------------------------


@lp_dialect.register_op
class IncOp(Operation):
    """``lp.inc`` — increment the reference count of a boxed value."""

    OP_NAME = "lp.inc"

    def __init__(self, value: Value, count: int = 1):
        super().__init__(
            operands=[value], attributes={"count": IntegerAttr(count)}
        )

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def count(self) -> int:
        return self.attributes["count"].value


@lp_dialect.register_op
class DecOp(Operation):
    """``lp.dec`` — decrement the reference count of a boxed value, freeing it
    (and recursively its fields) when the count reaches zero."""

    OP_NAME = "lp.dec"

    def __init__(self, value: Value, count: int = 1):
        super().__init__(
            operands=[value], attributes={"count": IntegerAttr(count)}
        )

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def count(self) -> int:
        return self.attributes["count"].value


@lp_dialect.register_op
class ResetOp(Operation):
    """``lp.reset`` — consume a reference to a constructor value and yield a
    reuse token (λrc reuse analysis).

    A uniquely-referenced cell releases its fields and becomes a live token;
    a shared cell is decremented and the token is null.
    """

    OP_NAME = "lp.reset"

    def __init__(self, value: Value):
        super().__init__(operands=[value], result_types=[box])

    @property
    def value(self) -> Value:
        return self.operands[0]


@lp_dialect.register_op
class ReuseOp(Operation):
    """``lp.reuse`` — construct a tagged value through a reuse token,
    recycling the token's memory cell in place when it is live and falling
    back to a fresh allocation when it is null."""

    OP_NAME = "lp.reuse"

    def __init__(self, token: Value, tag: int, fields: Sequence[Value] = ()):
        super().__init__(
            operands=[token, *fields],
            result_types=[box],
            attributes={"tag": IntegerAttr(tag)},
        )

    @property
    def token(self) -> Value:
        return self.operands[0]

    @property
    def tag(self) -> int:
        return self.attributes["tag"].value

    @property
    def fields(self) -> List[Value]:
        return list(self.operands[1:])

    def verify_(self) -> None:
        for i, f in enumerate(self.operands):
            if not isinstance(f.type, BoxType):
                raise ValueError(f"lp.reuse operand {i} must be !lp.t")


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------


@lp_dialect.register_op
class ReturnOp(Operation):
    """``lp.return`` — return a value from the enclosing lp function body,
    regardless of how deeply the return is nested in lp control flow."""

    OP_NAME = "lp.return"
    TRAITS = frozenset({IsTerminator})

    def __init__(self, value: Optional[Value] = None):
        super().__init__(operands=[value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None


@lp_dialect.register_op
class UnreachableOp(Operation):
    """``lp.unreachable`` — marks a statically impossible pattern-match arm."""

    OP_NAME = "lp.unreachable"
    TRAITS = frozenset({IsTerminator})

    def __init__(self):
        super().__init__()


@lp_dialect.register_op
class SwitchOp(Operation):
    """``lp.switch`` — dispatch on an integer tag.

    One single-block region per listed case value, plus (optionally) a final
    default region.  Each region ends with an lp terminator (``lp.return``,
    ``lp.jump``, ``lp.unreachable`` or a nested ``lp.switch`` /
    ``lp.joinpoint``).
    """

    OP_NAME = "lp.switch"
    TRAITS = frozenset({IsTerminator})

    def __init__(
        self,
        tag: Value,
        case_values: Sequence[int],
        *,
        with_default: bool = True,
    ):
        num_regions = len(case_values) + (1 if with_default else 0)
        super().__init__(
            operands=[tag],
            regions=num_regions,
            attributes={
                "case_values": ArrayAttr([IntegerAttr(v) for v in case_values]),
                "has_default": BoolAttr(with_default),
            },
        )
        for region in self.regions:
            region.add_block(Block())

    @property
    def tag(self) -> Value:
        return self.operands[0]

    @property
    def case_values(self) -> List[int]:
        return [a.value for a in self.attributes["case_values"]]

    @property
    def has_default(self) -> bool:
        return self.attributes["has_default"].value

    @property
    def case_regions(self) -> List[Region]:
        n = len(self.attributes["case_values"].elements)
        return list(self.regions[:n])

    def case_block(self, i: int) -> Block:
        return self.case_regions[i].blocks[0]

    @property
    def default_region(self) -> Optional[Region]:
        if self.has_default:
            return self.regions[-1]
        return None

    @property
    def default_block(self) -> Optional[Block]:
        region = self.default_region
        return region.blocks[0] if region is not None else None

    def verify_(self) -> None:
        tag = self.operands[0]
        if not isinstance(tag.type, IntegerType):
            raise ValueError("lp.switch tag must be an integer")
        n_cases = len(self.attributes["case_values"].elements)
        expected = n_cases + (1 if self.has_default else 0)
        if len(self.regions) != expected:
            raise ValueError(
                f"lp.switch expects {expected} regions, found {len(self.regions)}"
            )
        if len(set(self.case_values)) != n_cases:
            raise ValueError("lp.switch case values must be distinct")


@lp_dialect.register_op
class JoinPointOp(Operation):
    """``lp.joinpoint`` — declare a local join point (a non-escaping, named
    local closure) and run a body that may jump to it.

    Region 0 ("after-jump"): the join point's body; its entry block arguments
    are the join parameters.  Region 1 ("pre-jump"): executed first; it
    reaches the join point via ``lp.jump``.
    """

    OP_NAME = "lp.joinpoint"
    TRAITS = frozenset({IsTerminator})

    def __init__(self, label: str, arg_types: Sequence[Type] = ()):
        super().__init__(
            regions=2, attributes={"label": StringAttr(label)}
        )
        body = Block(arg_types)
        self.regions[0].add_block(body)
        self.regions[1].add_block(Block())

    @property
    def label(self) -> str:
        return self.attributes["label"].value

    @property
    def body_region(self) -> Region:
        return self.regions[0]

    @property
    def body_block(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def pre_region(self) -> Region:
        return self.regions[1]

    @property
    def pre_block(self) -> Block:
        return self.regions[1].blocks[0]

    @property
    def arg_types(self) -> List[Type]:
        return [a.type for a in self.body_block.arguments]

    def verify_(self) -> None:
        if len(self.regions) != 2:
            raise ValueError("lp.joinpoint expects exactly two regions")
        if not self.regions[0].blocks or not self.regions[1].blocks:
            raise ValueError("lp.joinpoint regions must not be empty")


@lp_dialect.register_op
class JumpOp(Operation):
    """``lp.jump`` — transfer control to an enclosing ``lp.joinpoint`` by
    label, passing the join arguments."""

    OP_NAME = "lp.jump"
    TRAITS = frozenset({IsTerminator})

    def __init__(self, label: str, args: Sequence[Value] = ()):
        super().__init__(operands=args, attributes={"label": StringAttr(label)})

    @property
    def label(self) -> str:
        return self.attributes["label"].value

    @property
    def args(self) -> List[Value]:
        return list(self.operands)

    def find_joinpoint(self) -> Optional[JoinPointOp]:
        """Locate the enclosing ``lp.joinpoint`` this jump targets."""
        op = self.parent_op()
        while op is not None:
            if isinstance(op, JoinPointOp) and op.label == self.label:
                return op
            op = op.parent_op()
        return None

    def verify_(self) -> None:
        target = self.find_joinpoint()
        if target is None:
            raise ValueError(f"lp.jump to unknown join point @{self.label}")
        expected = target.arg_types
        actual = [v.type for v in self.operands]
        if expected != actual:
            raise ValueError(
                f"lp.jump argument types {actual} do not match join point "
                f"parameters {expected}"
            )


#: Runtime functions the lp dialect lowers arithmetic and comparisons to.
RUNTIME_FUNCTIONS = (
    "lean_nat_add",
    "lean_nat_sub",
    "lean_nat_mul",
    "lean_nat_div",
    "lean_nat_mod",
    "lean_nat_dec_eq",
    "lean_nat_dec_lt",
    "lean_nat_dec_le",
    "lean_int_add",
    "lean_int_sub",
    "lean_int_mul",
    "lean_int_div",
    "lean_int_mod",
    "lean_int_dec_eq",
    "lean_int_dec_lt",
    "lean_int_dec_le",
    "lean_int_neg",
    "lean_unbox",
    "lean_box",
    "lean_array_mk",
    "lean_array_get",
    "lean_array_set",
    "lean_array_size",
    "lean_array_push",
    "lean_array_swap",
    "lean_string_mk",
    "lean_string_append",
    "lean_io_println",
)
