"""The scf dialect: structured control flow (``scf.if`` / ``scf.yield``).

The paper mentions ``scf`` as one of the pre-existing MLIR dialects its
pipeline can interoperate with; we provide ``scf.if`` both for completeness
and as an extra lowering target exercised by the tests.
"""

from __future__ import annotations

from typing import Sequence

from ..ir.core import Block, Operation, Value
from ..ir.dialect import Dialect
from ..ir.traits import IsTerminator, Pure, SingleBlock
from ..ir.types import IntegerType, Type

scf_dialect = Dialect("scf")


@scf_dialect.register_op
class IfOp(Operation):
    """``scf.if`` — structured if/else yielding values from its regions."""

    OP_NAME = "scf.if"
    TRAITS = frozenset({SingleBlock})

    def __init__(
        self,
        condition: Value,
        result_types: Sequence[Type] = (),
        *,
        with_else: bool = True,
    ):
        super().__init__(
            operands=[condition],
            result_types=result_types,
            regions=2 if with_else else 1,
        )
        self.regions[0].add_block(Block())
        if with_else:
            self.regions[1].add_block(Block())

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def then_block(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def else_block(self) -> Block:
        if len(self.regions) < 2 or not self.regions[1].blocks:
            raise ValueError("scf.if has no else region")
        return self.regions[1].blocks[0]

    def verify_(self) -> None:
        cond = self.operands[0]
        if not (isinstance(cond.type, IntegerType) and cond.type.width == 1):
            raise ValueError("scf.if condition must be i1")


@scf_dialect.register_op
class YieldOp(Operation):
    """``scf.yield`` — terminator yielding values from an scf region."""

    OP_NAME = "scf.yield"
    TRAITS = frozenset({IsTerminator, Pure})

    def __init__(self, operands: Sequence[Value] = ()):
        super().__init__(operands=operands)
