"""The cf dialect: flat control-flow-graph terminators.

The final lowering stage of the new backend (rgn → CFG, §IV-C) produces
blocks terminated by these operations.  Block arguments of the successor
blocks play the role of phi nodes; the terminators forward values to them.
"""

from __future__ import annotations

from typing import List, Sequence

from ..ir.attributes import ArrayAttr, IntegerAttr
from ..ir.core import Block, Operation, Value
from ..ir.dialect import Dialect
from ..ir.traits import IsTerminator

cf_dialect = Dialect("cf")


@cf_dialect.register_op
class BranchOp(Operation):
    """``cf.br`` — unconditional branch, forwarding operands to the target."""

    OP_NAME = "cf.br"
    TRAITS = frozenset({IsTerminator})

    def __init__(self, dest: Block, operands: Sequence[Value] = ()):
        super().__init__(operands=operands, successors=[dest])

    @property
    def dest(self) -> Block:
        return self.successors[0]

    @property
    def dest_operands(self) -> List[Value]:
        return list(self.operands)


@cf_dialect.register_op
class CondBranchOp(Operation):
    """``cf.cond_br`` — two-way conditional branch.

    Operand layout: ``[condition, true_operands..., false_operands...]`` with
    the split recorded in the ``true_operand_count`` attribute.
    """

    OP_NAME = "cf.cond_br"
    TRAITS = frozenset({IsTerminator})

    def __init__(
        self,
        condition: Value,
        true_dest: Block,
        false_dest: Block,
        true_operands: Sequence[Value] = (),
        false_operands: Sequence[Value] = (),
    ):
        super().__init__(
            operands=[condition, *true_operands, *false_operands],
            successors=[true_dest, false_dest],
            attributes={"true_operand_count": IntegerAttr(len(true_operands))},
        )

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_dest(self) -> Block:
        return self.successors[0]

    @property
    def false_dest(self) -> Block:
        return self.successors[1]

    @property
    def true_operands(self) -> List[Value]:
        n = self.attributes["true_operand_count"].value
        return list(self.operands[1 : 1 + n])

    @property
    def false_operands(self) -> List[Value]:
        n = self.attributes["true_operand_count"].value
        return list(self.operands[1 + n :])


@cf_dialect.register_op
class SwitchOp(Operation):
    """``cf.switch`` — multi-way branch on an integer flag.

    Successors: ``[default, case_0, case_1, ...]``.  The matched case values
    are stored in the ``case_values`` array attribute.  Operand forwarding to
    successor blocks is not needed by our lowering (the forwarded values of
    join points are passed through ``cf.br``), so the flag is the only
    operand.
    """

    OP_NAME = "cf.switch"
    TRAITS = frozenset({IsTerminator})

    def __init__(
        self,
        flag: Value,
        default_dest: Block,
        case_values: Sequence[int],
        case_dests: Sequence[Block],
    ):
        if len(case_values) != len(case_dests):
            raise ValueError("case_values and case_dests must have equal length")
        super().__init__(
            operands=[flag],
            successors=[default_dest, *case_dests],
            attributes={
                "case_values": ArrayAttr([IntegerAttr(v) for v in case_values])
            },
        )

    @property
    def flag(self) -> Value:
        return self.operands[0]

    @property
    def default_dest(self) -> Block:
        return self.successors[0]

    @property
    def case_values(self) -> List[int]:
        return [a.value for a in self.attributes["case_values"]]

    @property
    def case_dests(self) -> List[Block]:
        return list(self.successors[1:])

    def verify_(self) -> None:
        n_cases = len(self.attributes["case_values"].elements)
        if len(self.successors) != n_cases + 1:
            raise ValueError(
                "cf.switch successor count does not match case_values"
            )


@cf_dialect.register_op
class UnreachableOp(Operation):
    """``cf.unreachable`` — marks statically impossible control flow."""

    OP_NAME = "cf.unreachable"
    TRAITS = frozenset({IsTerminator})

    def __init__(self):
        super().__init__()
