"""The builtin dialect: the top-level ``builtin.module`` operation."""

from __future__ import annotations

from typing import Iterator, Optional

from ..ir.attributes import StringAttr
from ..ir.core import Block, Operation, Region
from ..ir.dialect import Dialect
from ..ir.traits import NoTerminatorRequired, SingleBlock, SymbolTable

builtin_dialect = Dialect("builtin")


@builtin_dialect.register_op
class ModuleOp(Operation):
    """Top-level container holding global functions and globals.

    The single region has one block whose operations are symbol definitions
    (``func.func``, ``func.global``).
    """

    OP_NAME = "builtin.module"
    TRAITS = frozenset({NoTerminatorRequired, SingleBlock, SymbolTable})

    def __init__(self, name: Optional[str] = None):
        attributes = {}
        if name is not None:
            attributes["sym_name"] = StringAttr(name)
        super().__init__(attributes=attributes, regions=1)
        self.regions[0].add_block(Block())

    @property
    def body(self) -> Block:
        return self.regions[0].blocks[0]

    def append(self, op: Operation) -> Operation:
        """Append a symbol-defining operation to the module body."""
        return self.body.append(op)

    def symbols(self) -> Iterator[Operation]:
        """Iterate over the operations defining symbols in this module."""
        for op in self.body:
            if "sym_name" in op.attributes:
                yield op

    def lookup_symbol(self, name: str) -> Optional[Operation]:
        """Find the operation defining symbol ``name`` (function or global)."""
        for op in self.symbols():
            sym = op.attributes.get("sym_name")
            if isinstance(sym, StringAttr) and sym.value == name:
                return op
        return None

    def functions(self):
        """All ``func.func`` operations in the module, in definition order."""
        from .func import FuncOp

        return [op for op in self.body if isinstance(op, FuncOp)]

    def verify_(self) -> None:
        if len(self.regions) != 1:
            raise ValueError("module must have exactly one region")
