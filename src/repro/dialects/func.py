"""The func dialect: functions, calls, returns and module-level globals.

``func.global`` / ``func.get_global`` / ``func.set_global`` model the
closure-slot pattern of the paper (Figure 7): top-level closures such as
``@kslot`` are initialised once by ``@init`` and then loaded wherever a
top-level function is used as a first-class value.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import StringAttr, SymbolRefAttr, TypeAttr
from ..ir.core import Block, Operation, Value
from ..ir.dialect import Dialect
from ..ir.traits import IsolatedFromAbove, IsTerminator, Symbol
from ..ir.types import FunctionType, Type

func_dialect = Dialect("func")


@func_dialect.register_op
class FuncOp(Operation):
    """A global function.

    Attributes:
        ``sym_name``: the function's symbol name.
        ``function_type``: its :class:`FunctionType`.
    The single region's entry block arguments are the function parameters.
    """

    OP_NAME = "func.func"
    TRAITS = frozenset({Symbol, IsolatedFromAbove})

    def __init__(
        self,
        name: str,
        function_type: FunctionType,
        *,
        visibility: str = "public",
        create_entry_block: bool = True,
        arg_names: Optional[Sequence[str]] = None,
    ):
        super().__init__(
            attributes={
                "sym_name": StringAttr(name),
                "function_type": TypeAttr(function_type),
                "sym_visibility": StringAttr(visibility),
            },
            regions=1,
        )
        if create_entry_block:
            self.add_entry_block(arg_names)

    # -- accessors ------------------------------------------------------------
    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"].value

    @property
    def function_type(self) -> FunctionType:
        attr = self.attributes["function_type"]
        if isinstance(attr, TypeAttr):
            return attr.type
        raise TypeError("function_type attribute is not a TypeAttr")

    @property
    def body(self):
        return self.regions[0]

    @property
    def entry_block(self) -> Optional[Block]:
        return self.body.entry_block

    @property
    def is_declaration(self) -> bool:
        return self.body.empty

    def add_entry_block(self, arg_names: Optional[Sequence[str]] = None) -> Block:
        block = Block()
        for i, t in enumerate(self.function_type.inputs):
            hint = arg_names[i] if arg_names and i < len(arg_names) else f"arg{i}"
            block.add_argument(t, hint)
        self.body.add_block(block)
        return block

    @property
    def arguments(self):
        entry = self.entry_block
        return list(entry.arguments) if entry is not None else []

    def verify_(self) -> None:
        if "sym_name" not in self.attributes:
            raise ValueError("func.func requires a sym_name attribute")
        if "function_type" not in self.attributes:
            raise ValueError("func.func requires a function_type attribute")
        entry = self.entry_block
        if entry is not None:
            expected = list(self.function_type.inputs)
            actual = [a.type for a in entry.arguments]
            if expected != actual:
                raise ValueError(
                    f"entry block argument types {actual} do not match the "
                    f"function signature {expected}"
                )


@func_dialect.register_op
class ReturnOp(Operation):
    """``func.return`` — return zero or more values from the enclosing function."""

    OP_NAME = "func.return"
    TRAITS = frozenset({IsTerminator})

    def __init__(self, operands: Sequence[Value] = ()):
        super().__init__(operands=operands)


@func_dialect.register_op
class CallOp(Operation):
    """``func.call`` — direct (saturated) call of a module-level function.

    The paper lowers both calls to LEAN functions and calls to runtime
    routines (``@lean_nat_add``, ``@lean_nat_dec_eq``, …) to this operation.
    A ``musttail`` unit attribute marks guaranteed tail calls (§III-E).
    """

    OP_NAME = "func.call"

    def __init__(
        self,
        callee: str,
        operands: Sequence[Value],
        result_types: Sequence[Type],
        *,
        musttail: bool = False,
    ):
        attributes = {"callee": SymbolRefAttr(callee)}
        if musttail:
            from ..ir.attributes import UnitAttr

            attributes["musttail"] = UnitAttr()
        super().__init__(
            operands=operands, result_types=result_types, attributes=attributes
        )

    @property
    def callee(self) -> str:
        return self.attributes["callee"].name

    @property
    def is_musttail(self) -> bool:
        return "musttail" in self.attributes

    def verify_(self) -> None:
        if "callee" not in self.attributes:
            raise ValueError("func.call requires a callee attribute")


@func_dialect.register_op
class GlobalOp(Operation):
    """``func.global`` — a module-level mutable slot (e.g. ``@kslot``)."""

    OP_NAME = "func.global"
    TRAITS = frozenset({Symbol})

    def __init__(self, name: str, type: Type):
        super().__init__(
            attributes={"sym_name": StringAttr(name), "type": TypeAttr(type)}
        )

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"].value

    @property
    def global_type(self) -> Type:
        return self.attributes["type"].type


@func_dialect.register_op
class GetGlobalOp(Operation):
    """``func.get_global`` — load the current value of a global slot."""

    OP_NAME = "func.get_global"

    def __init__(self, name: str, result_type: Type):
        super().__init__(
            result_types=[result_type], attributes={"name": SymbolRefAttr(name)}
        )

    @property
    def global_name(self) -> str:
        return self.attributes["name"].name


@func_dialect.register_op
class SetGlobalOp(Operation):
    """``func.set_global`` — store a value into a global slot."""

    OP_NAME = "func.set_global"

    def __init__(self, name: str, value: Value):
        super().__init__(operands=[value], attributes={"name": SymbolRefAttr(name)})

    @property
    def global_name(self) -> str:
        return self.attributes["name"].name
