"""The rgn dialect — regions as first-class SSA values (§IV of the paper).

Two core operations:

* ``rgn.val`` names a region: it packages a nested region as an SSA value of
  type ``!rgn.region``.  Conceptually it is a continuation — a computation to
  be performed when invoked.
* ``rgn.run`` is a terminator that transfers control to a region value with
  the supplied arguments (conceptually: invoking the continuation).

Region values may only flow into ``arith.select`` (two-way choice),
``rgn.switch`` (the N-way value switch of Figure 8 B) and ``rgn.run``; they
may not be passed to functions or returned.  This restriction keeps every use
statically analysable, which is what lets classical SSA optimisations apply.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir.attributes import ArrayAttr, IntegerAttr
from ..ir.core import Block, Operation, Region, Value
from ..ir.dialect import Dialect
from ..ir.traits import IsTerminator, Pure
from ..ir.types import IntegerType, RegionType, Type, region as region_type

rgn_dialect = Dialect("rgn")


@rgn_dialect.register_op
class ValOp(Operation):
    """``rgn.val`` — declare a region as an SSA value of type ``!rgn.region``.

    The single nested region holds the computation; its entry block arguments
    (if any) are the values passed by ``rgn.run``.
    """

    OP_NAME = "rgn.val"
    TRAITS = frozenset({Pure})

    def __init__(self, arg_types: Sequence[Type] = ()):
        super().__init__(result_types=[region_type], regions=1)
        self.regions[0].add_block(Block(arg_types))

    @property
    def body_region(self) -> Region:
        return self.regions[0]

    @property
    def body_block(self) -> Block:
        return self.regions[0].blocks[0]

    @property
    def arg_types(self) -> List[Type]:
        return [a.type for a in self.body_block.arguments]

    def verify_(self) -> None:
        if len(self.regions) != 1:
            raise ValueError("rgn.val expects exactly one region")
        if not self.regions[0].blocks:
            raise ValueError("rgn.val region must not be empty")


@rgn_dialect.register_op
class RunOp(Operation):
    """``rgn.run`` — execute a region value, passing ``args`` to its entry
    block arguments.  This is a terminator: control does not return."""

    OP_NAME = "rgn.run"
    TRAITS = frozenset({IsTerminator})

    def __init__(self, region_value: Value, args: Sequence[Value] = ()):
        super().__init__(operands=[region_value, *args])

    @property
    def region_value(self) -> Value:
        return self.operands[0]

    @property
    def args(self) -> List[Value]:
        return list(self.operands[1:])

    def verify_(self) -> None:
        if not self.operands:
            raise ValueError("rgn.run requires a region operand")
        if not isinstance(self.operands[0].type, RegionType):
            raise ValueError("rgn.run operand #0 must be of type !rgn.region")


@rgn_dialect.register_op
class SwitchOp(Operation):
    """``rgn.switch`` — N-way *value* selection between region values.

    Mirrors the paper's use of MLIR's ``switch`` over region operands
    (Figure 8 B): based on the integer flag the op yields one of the case
    regions (or the default region).  It is pure — the chosen region is not
    executed until it reaches a ``rgn.run``.
    """

    OP_NAME = "rgn.switch"
    TRAITS = frozenset({Pure})

    def __init__(
        self,
        flag: Value,
        default_region: Value,
        case_values: Sequence[int],
        case_regions: Sequence[Value],
    ):
        if len(case_values) != len(case_regions):
            raise ValueError("case_values and case_regions must have equal length")
        super().__init__(
            operands=[flag, default_region, *case_regions],
            result_types=[region_type],
            attributes={
                "case_values": ArrayAttr([IntegerAttr(v) for v in case_values])
            },
        )

    @property
    def flag(self) -> Value:
        return self.operands[0]

    @property
    def default_region(self) -> Value:
        return self.operands[1]

    @property
    def case_values(self) -> List[int]:
        return [a.value for a in self.attributes["case_values"]]

    @property
    def case_regions(self) -> List[Value]:
        return list(self.operands[2:])

    def region_for_value(self, value: int) -> Value:
        """The region operand selected for ``value`` (default if unmatched)."""
        for cv, reg in zip(self.case_values, self.case_regions):
            if cv == value:
                return reg
        return self.default_region

    def verify_(self) -> None:
        if not isinstance(self.operands[0].type, IntegerType):
            raise ValueError("rgn.switch flag must be an integer")
        for v in self.operands[1:]:
            if not isinstance(v.type, RegionType):
                raise ValueError("rgn.switch case operands must be !rgn.region")
        if len(set(self.case_values)) != len(self.case_values):
            raise ValueError("rgn.switch case values must be distinct")


def is_region_value(value: Value) -> bool:
    """True if ``value`` has the first-class region type."""
    return isinstance(value.type, RegionType)


def allowed_region_user(op: Operation) -> bool:
    """True if ``op`` is one of the operations permitted to consume region
    values (select, rgn.switch, rgn.run) — used by the rgn verifier pass."""
    from .arith import SelectOp

    return isinstance(op, (SelectOp, SwitchOp, RunOp))


def verify_region_value_uses(root: Operation) -> List[str]:
    """Enforce the paper's restriction on region values: they may only be
    used by select / rgn.switch / rgn.run, never passed to calls or returned."""
    errors: List[str] = []
    for op in root.walk():
        for i, operand in enumerate(op.operands):
            if is_region_value(operand) and not allowed_region_user(op):
                errors.append(
                    f"{op.name}: operand {i} is a region value but the "
                    "operation is not select/rgn.switch/rgn.run"
                )
    return errors
