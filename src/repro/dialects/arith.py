"""The arith dialect: integer constants, arithmetic, comparison and select.

``arith.select`` is deliberately type-generic: as the paper proposes, region
values (``!rgn.region``) may flow through ``select`` so that classical select
folds become functional case-elimination optimisations.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.attributes import IntegerAttr, StringAttr
from ..ir.core import Operation, Value
from ..ir.dialect import Dialect
from ..ir.traits import ConstantLike, Pure
from ..ir.types import IntegerType, Type, i1, i64

arith_dialect = Dialect("arith")

#: Comparison predicates accepted by :class:`CmpIOp`.
CMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")


@arith_dialect.register_op
class ConstantOp(Operation):
    """``arith.constant`` — materialise an integer constant."""

    OP_NAME = "arith.constant"
    TRAITS = frozenset({Pure, ConstantLike})

    def __init__(self, value: int, type: Optional[Type] = None):
        type = type if type is not None else i64
        super().__init__(
            result_types=[type], attributes={"value": IntegerAttr(value, type)}
        )

    @property
    def value(self) -> int:
        return self.attributes["value"].value


class _BinaryOp(Operation):
    """Common base for binary integer arithmetic."""

    TRAITS = frozenset({Pure})

    def __init__(self, lhs: Value, rhs: Value):
        super().__init__(operands=[lhs, rhs], result_types=[lhs.type])

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def verify_(self) -> None:
        if len(self.operands) == 2 and self.operands[0].type != self.operands[1].type:
            raise ValueError(
                f"operand types differ: {self.operands[0].type} vs "
                f"{self.operands[1].type}"
            )


@arith_dialect.register_op
class AddIOp(_BinaryOp):
    """``arith.addi`` — integer addition."""

    OP_NAME = "arith.addi"


@arith_dialect.register_op
class SubIOp(_BinaryOp):
    """``arith.subi`` — integer subtraction."""

    OP_NAME = "arith.subi"


@arith_dialect.register_op
class MulIOp(_BinaryOp):
    """``arith.muli`` — integer multiplication."""

    OP_NAME = "arith.muli"


@arith_dialect.register_op
class DivSIOp(_BinaryOp):
    """``arith.divsi`` — signed integer division."""

    OP_NAME = "arith.divsi"


@arith_dialect.register_op
class RemSIOp(_BinaryOp):
    """``arith.remsi`` — signed integer remainder."""

    OP_NAME = "arith.remsi"


@arith_dialect.register_op
class AndIOp(_BinaryOp):
    """``arith.andi`` — bitwise and."""

    OP_NAME = "arith.andi"


@arith_dialect.register_op
class OrIOp(_BinaryOp):
    """``arith.ori`` — bitwise or."""

    OP_NAME = "arith.ori"


@arith_dialect.register_op
class XorIOp(_BinaryOp):
    """``arith.xori`` — bitwise xor."""

    OP_NAME = "arith.xori"


@arith_dialect.register_op
class CmpIOp(Operation):
    """``arith.cmpi`` — integer comparison producing an ``i1``."""

    OP_NAME = "arith.cmpi"
    TRAITS = frozenset({Pure})

    def __init__(self, predicate: str, lhs: Value, rhs: Value):
        if predicate not in CMP_PREDICATES:
            raise ValueError(f"unknown cmpi predicate {predicate!r}")
        super().__init__(
            operands=[lhs, rhs],
            result_types=[i1],
            attributes={"predicate": StringAttr(predicate)},
        )

    @property
    def predicate(self) -> str:
        return self.attributes["predicate"].value

    def verify_(self) -> None:
        if self.attributes["predicate"].value not in CMP_PREDICATES:
            raise ValueError("invalid cmpi predicate")


@arith_dialect.register_op
class SelectOp(Operation):
    """``arith.select`` — choose between two values of the same type.

    The condition is an ``i1``.  The chosen values may be of any type,
    including ``!rgn.region`` — this is the hook the paper uses to express
    two-way case statements over first-class regions (Figure 8 A).
    """

    OP_NAME = "arith.select"
    TRAITS = frozenset({Pure})

    def __init__(self, condition: Value, true_value: Value, false_value: Value):
        super().__init__(
            operands=[condition, true_value, false_value],
            result_types=[true_value.type],
        )

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_value(self) -> Value:
        return self.operands[1]

    @property
    def false_value(self) -> Value:
        return self.operands[2]

    def verify_(self) -> None:
        if len(self.operands) != 3:
            raise ValueError("arith.select expects exactly three operands")
        cond, tv, fv = self.operands
        if not (isinstance(cond.type, IntegerType) and cond.type.width == 1):
            raise ValueError("arith.select condition must be i1")
        if tv.type != fv.type:
            raise ValueError("arith.select branches must have the same type")


@arith_dialect.register_op
class TruncIOp(Operation):
    """``arith.trunci`` — truncate an integer to a narrower width."""

    OP_NAME = "arith.trunci"
    TRAITS = frozenset({Pure})

    def __init__(self, value: Value, result_type: Type):
        super().__init__(operands=[value], result_types=[result_type])


@arith_dialect.register_op
class ExtUIOp(Operation):
    """``arith.extui`` — zero-extend an integer to a wider width."""

    OP_NAME = "arith.extui"
    TRAITS = frozenset({Pure})

    def __init__(self, value: Value, result_type: Type):
        super().__init__(operands=[value], result_types=[result_type])


def evaluate_binary(op_name: str, lhs: int, rhs: int) -> int:
    """Constant-fold helper shared by the folder and the interpreters."""
    if op_name == AddIOp.OP_NAME:
        return lhs + rhs
    if op_name == SubIOp.OP_NAME:
        return lhs - rhs
    if op_name == MulIOp.OP_NAME:
        return lhs * rhs
    if op_name == DivSIOp.OP_NAME:
        if rhs == 0:
            raise ZeroDivisionError("division by zero in arith.divsi")
        return int(lhs / rhs)
    if op_name == RemSIOp.OP_NAME:
        if rhs == 0:
            raise ZeroDivisionError("remainder by zero in arith.remsi")
        return lhs - int(lhs / rhs) * rhs
    if op_name == AndIOp.OP_NAME:
        return lhs & rhs
    if op_name == OrIOp.OP_NAME:
        return lhs | rhs
    if op_name == XorIOp.OP_NAME:
        return lhs ^ rhs
    raise KeyError(f"not a foldable binary op: {op_name}")


def evaluate_cmpi(predicate: str, lhs: int, rhs: int) -> int:
    """Evaluate an ``arith.cmpi`` predicate on Python integers."""
    table = {
        "eq": lhs == rhs,
        "ne": lhs != rhs,
        "slt": lhs < rhs,
        "sle": lhs <= rhs,
        "sgt": lhs > rhs,
        "sge": lhs >= rhs,
        "ult": abs(lhs) < abs(rhs),
        "ule": abs(lhs) <= abs(rhs),
        "ugt": abs(lhs) > abs(rhs),
        "uge": abs(lhs) >= abs(rhs),
    }
    return 1 if table[predicate] else 0
