"""Well-typed mini-LEAN program generator (hypothesis strategies).

:func:`typed_programs` draws a complete surface
:class:`~repro.lean.ast.Program` — inductive declarations, recursive and
higher-order functions, partial applications, join-point-heavy nested
matches, let/if towers — that is **guaranteed to type-check** and
**guaranteed to terminate** under every execution engine:

* generation is type-directed: every expression is built against a goal
  type with an explicit environment, so the printed source re-checks by
  construction (``tests/test_fuzz.py`` meta-tests this over hundreds of
  examples);
* recursion only appears through two structurally decreasing schemas —
  a Nat countdown (``if n == 0 then base else ... f (n - 1) ...``) whose
  entry argument is always bounded with ``% k`` at every call site, and
  folds/maps over generated ADTs that only recurse on constructor fields
  of the same type, over values whose construction depth is bounded;
* numeric literals stay small and division by zero is total in the
  runtime, so no generated program can trap.

Every expression's type is independent of the checker's bidirectional
expected-type threading: ``Int`` literals are spelled as negative
``IntLit`` or ``Nat.toInt n``, never as a coerced ``NatLit``.  That makes
print → parse → check stable (the round-trip returns the identical typed
AST), which is what lets shrunk counterexamples live on as plain
``.lean`` corpus files.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from hypothesis import strategies as st

from ..lean import ast

#: Scalar goal types the generator draws from.
_SCALARS: Tuple[ast.LeanType, ...] = (ast.NatType(), ast.IntType(), ast.BoolType())

_NAT = ast.NatType()
_INT = ast.IntType()
_BOOL = ast.BoolType()

#: Builtins the generator may call (total, scalar-only).  Array builtins
#: are excluded: ``Array.get`` can trap on out-of-range indices.
_SAFE_BUILTINS: Tuple[Tuple[str, Tuple[ast.LeanType, ...], ast.LeanType], ...] = (
    ("Nat.add", (_NAT, _NAT), _NAT),
    ("Nat.sub", (_NAT, _NAT), _NAT),
    ("Nat.mul", (_NAT, _NAT), _NAT),
    ("Nat.div", (_NAT, _NAT), _NAT),
    ("Nat.mod", (_NAT, _NAT), _NAT),
    ("Nat.decEq", (_NAT, _NAT), _BOOL),
    ("Nat.decLt", (_NAT, _NAT), _BOOL),
    ("Nat.decLe", (_NAT, _NAT), _BOOL),
    ("Nat.toInt", (_NAT,), _INT),
    ("Int.add", (_INT, _INT), _INT),
    ("Int.sub", (_INT, _INT), _INT),
    ("Int.mul", (_INT, _INT), _INT),
    ("Int.neg", (_INT,), _INT),
    ("Int.toNat", (_INT,), _NAT),
)

_NAT_OPS = ("+", "-", "*", "/", "%")
_INT_OPS = ("+", "-", "*")
_COMPARISONS = ("==", "!=", "<", "<=", ">", ">=")


class FuncInfo:
    """A callable the generator may reference: a def or a safe builtin."""

    __slots__ = ("name", "params", "result", "decreasing", "builtin")

    def __init__(self, name, params, result, decreasing=False, builtin=False):
        self.name = name
        self.params: Tuple[ast.LeanType, ...] = tuple(params)
        self.result = result
        #: True for Nat-countdown recursions: every call site must bound
        #: the first argument (the termination measure) with ``% k``.
        self.decreasing = decreasing
        #: Builtins (like constructors) must be fully applied — the λpure
        #: lowering has no ``pap`` for them, mirroring LEAN's eta-expansion.
        self.builtin = builtin

    @property
    def type(self) -> ast.LeanType:
        return ast.fun_type(list(self.params), self.result)


class _Gen:
    """One program generation: draws from hypothesis, tracks the environment."""

    def __init__(self, draw):
        self.draw = draw
        self.program = ast.Program()
        #: ADT name -> [(qualified ctor name, field types)].
        self.ctors: Dict[str, List[Tuple[str, List[ast.LeanType]]]] = {}
        #: ADT name -> name of its canonical ``T -> Nat`` size fold.
        self.size_folds: Dict[str, str] = {}
        self.funcs: List[FuncInfo] = [
            FuncInfo(name, params, result, builtin=True)
            for name, params, result in _SAFE_BUILTINS
        ]
        self.counter = 0
        self.pap_depth = 0

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    # -- types ---------------------------------------------------------------
    def adt_names(self) -> List[str]:
        return list(self.ctors)

    def draw_type(self, *, allow_adt: bool = True, allow_fun: bool = False):
        pool: List[ast.LeanType] = list(_SCALARS)
        if allow_adt:
            pool.extend(ast.DataType(name) for name in self.adt_names())
        if allow_fun:
            pool.append(ast.FunType(_NAT, _NAT))
            pool.append(ast.FunType(_NAT, _BOOL))
        return self.draw(st.sampled_from(pool))

    # -- inductives ----------------------------------------------------------
    def gen_inductive(self) -> ast.InductiveDecl:
        name = self.fresh("T")
        field_pool: List[ast.LeanType] = [_NAT, _BOOL, _INT]
        field_pool.extend(ast.DataType(n) for n in self.adt_names())
        recursive = ast.DataType(name)

        constructors: List[ast.ConstructorDecl] = []
        signatures: List[Tuple[str, List[ast.LeanType]]] = []
        n_ctors = self.draw(st.integers(2, 3))
        for index in range(n_ctors):
            fields: List[Tuple[str, ast.LeanType]] = []
            n_fields = self.draw(st.integers(0, 2 if index == 0 else 3))
            for _ in range(n_fields):
                # The first constructor is the base case: no recursive
                # fields, so every ADT has finite values.
                if index == 0:
                    t = self.draw(st.sampled_from(field_pool))
                else:
                    t = self.draw(st.sampled_from(field_pool + [recursive]))
                fields.append((self.fresh("fld"), t))
            ctor = ast.ConstructorDecl(f"C{index}", fields)
            constructors.append(ctor)
            signatures.append((f"{name}.{ctor.name}", [t for _, t in fields]))

        self.ctors[name] = signatures
        self.program.inductives.append(ast.InductiveDecl(name, constructors))
        self.gen_size_fold(name)
        return self.program.inductives[-1]

    def gen_size_fold(self, adt: str) -> None:
        """The canonical ``size : T -> Nat`` fold — every ADT is observable.

        Deterministic schema: ``1`` plus the size of every recursive field,
        plus each scalar field reduced to Nat.  Fields of *earlier* ADTs go
        through their own size folds (generated before this one).
        """
        fold_name = f"size{adt}"
        param = self.fresh("x")
        arms: List[ast.MatchArm] = []
        for qualified, field_types in self.ctors[adt]:
            names = [self.fresh("f") for _ in field_types]
            patterns: List[ast.Pattern] = [
                ast.PCtor(qualified, [ast.PVar(n) for n in names])
                if names
                else ast.PCtor(qualified)
            ]
            body: ast.Expr = ast.NatLit(1)
            for field_name, field_type in zip(names, field_types):
                term = self._measure_term(field_name, field_type, adt, fold_name)
                if term is not None:
                    body = ast.BinOp("+", body, term)
            arms.append(ast.MatchArm(patterns, body))
        decl = ast.DefDecl(
            fold_name,
            [(param, ast.DataType(adt))],
            _NAT,
            ast.Match([ast.Var(param)], arms),
        )
        self.program.defs.append(decl)
        self.size_folds[adt] = fold_name
        self.funcs.append(FuncInfo(fold_name, [ast.DataType(adt)], _NAT))

    def _measure_term(self, name, field_type, adt, fold_name) -> Optional[ast.Expr]:
        var = ast.Var(name)
        if isinstance(field_type, ast.NatType):
            return var
        if isinstance(field_type, ast.IntType):
            return ast.App(ast.Var("Int.toNat"), [var])
        if isinstance(field_type, ast.BoolType):
            return ast.If(var, ast.NatLit(1), ast.NatLit(0))
        if isinstance(field_type, ast.DataType):
            fold = fold_name if field_type.name == adt else self.size_folds[field_type.name]
            return ast.App(ast.Var(fold), [var])
        return None

    # -- expressions -----------------------------------------------------------
    def gen_expr(self, goal: ast.LeanType, env: Dict[str, ast.LeanType], depth: int) -> ast.Expr:
        if depth <= 0:
            return self.leaf(goal, env)
        choices = ["leaf", "let", "if", "call"]
        if isinstance(goal, (ast.NatType, ast.IntType)):
            choices += ["binop", "binop"]
        if isinstance(goal, ast.BoolType):
            choices += ["compare", "boolop"]
        if isinstance(goal, ast.DataType):
            choices += ["construct", "construct"]
        if isinstance(goal, ast.FunType):
            choices += ["lambda", "lambda"]
        if self.ctors or not isinstance(goal, ast.FunType):
            choices.append("match")
        kind = self.draw(st.sampled_from(choices))
        if kind == "leaf":
            return self.leaf(goal, env)
        if kind == "let":
            return self.gen_let(goal, env, depth)
        if kind == "if":
            return ast.If(
                self.gen_expr(_BOOL, env, depth - 1),
                self.gen_expr(goal, env, depth - 1),
                self.gen_expr(goal, env, depth - 1),
            )
        if kind == "binop":
            ops = _NAT_OPS if isinstance(goal, ast.NatType) else _INT_OPS
            return ast.BinOp(
                self.draw(st.sampled_from(ops)),
                self.gen_expr(goal, env, depth - 1),
                self.gen_expr(goal, env, depth - 1),
            )
        if kind == "compare":
            operand = self.draw(st.sampled_from((_NAT, _INT)))
            return ast.BinOp(
                self.draw(st.sampled_from(_COMPARISONS)),
                self.gen_expr(operand, env, depth - 1),
                self.gen_expr(operand, env, depth - 1),
            )
        if kind == "boolop":
            return ast.BinOp(
                self.draw(st.sampled_from(("&&", "||"))),
                self.gen_expr(_BOOL, env, depth - 1),
                self.gen_expr(_BOOL, env, depth - 1),
            )
        if kind == "construct":
            return self.construct(goal.name, env, depth - 1)
        if kind == "lambda":
            return self.gen_lambda(goal, env, depth)
        if kind == "call":
            call = self.gen_call(goal, env, depth)
            if call is not None:
                return call
            return self.leaf(goal, env)
        return self.gen_match(goal, env, depth)

    def gen_let(self, goal, env, depth) -> ast.Expr:
        value_type = self.draw_type(allow_fun=True)
        value = self.gen_expr(value_type, env, depth - 1)
        # Fresh name usually; occasionally shadow an existing binding (the
        # frontend supports it — see the testsuite's "shadowing" case).
        if env and self.draw(st.booleans()) and self.draw(st.booleans()):
            name = self.draw(st.sampled_from(sorted(env)))
        else:
            name = self.fresh("v")
        annotation = value_type if self.draw(st.booleans()) else None
        inner = dict(env)
        inner[name] = value_type
        return ast.Let(name, value, self.gen_expr(goal, inner, depth - 1), annotation)

    def gen_lambda(self, goal: ast.FunType, env, depth) -> ast.Expr:
        params, result = ast.uncurry(goal)
        names = [self.fresh("a") for _ in params]
        inner = dict(env)
        inner.update(zip(names, params))
        body = self.gen_expr(result, inner, depth - 1)
        return ast.Lambda(list(zip(names, params)), body)

    def leaf(self, goal: ast.LeanType, env: Dict[str, ast.LeanType]) -> ast.Expr:
        matching = sorted(name for name, t in env.items() if t == goal)
        if matching and self.draw(st.booleans()):
            return ast.Var(self.draw(st.sampled_from(matching)))
        if isinstance(goal, ast.NatType):
            return ast.NatLit(self.draw(st.integers(0, 7)))
        if isinstance(goal, ast.IntType):
            # Negative literal or Nat.toInt n — never a coerced NatLit, so
            # the expression is Int whether or not an expected type is
            # threaded at re-check time.
            if self.draw(st.booleans()):
                return ast.IntLit(self.draw(st.integers(-7, -1)))
            return ast.App(ast.Var("Nat.toInt"), [ast.NatLit(self.draw(st.integers(0, 7)))])
        if isinstance(goal, ast.BoolType):
            return ast.BoolLit(self.draw(st.booleans()))
        if isinstance(goal, ast.DataType):
            return self.construct(goal.name, env, 0)
        if isinstance(goal, ast.FunType):
            partial = self.gen_partial_application(goal, env)
            if partial is not None and self.draw(st.booleans()):
                return partial
            return self.gen_lambda(goal, env, 1)
        raise AssertionError(f"no leaf for goal type {goal}")

    def construct(self, adt: str, env, depth) -> ast.Expr:
        """Build a value of ``adt``; ``depth == 0`` forces the base case."""
        signatures = self.ctors[adt]
        pool = signatures if depth > 0 else [signatures[0]]
        qualified, field_types = self.draw(st.sampled_from(pool))
        if not field_types:
            return ast.Var(qualified)
        args = [self.gen_expr(t, env, min(depth - 1, 1)) for t in field_types]
        return ast.App(ast.Var(qualified), args)

    def gen_call(self, goal, env, depth) -> Optional[ast.Expr]:
        """Fully apply a def, builtin or function-typed variable yielding ``goal``."""
        candidates: List[Tuple[ast.Expr, FuncInfo]] = [
            (ast.Var(info.name), info)
            for info in self.funcs
            if info.result == goal and info.params
        ]
        for name, t in env.items():
            params, result = ast.uncurry(t)
            if params and result == goal:
                candidates.append((ast.Var(name), FuncInfo(name, params, result)))
        if not candidates:
            return None
        fn, info = self.draw(st.sampled_from(candidates))
        args = [
            self.gen_argument(t, env, depth - 1, bounded=(info.decreasing and i == 0))
            for i, t in enumerate(info.params)
        ]
        return ast.App(fn, args)

    def gen_argument(self, t, env, depth, *, bounded: bool) -> ast.Expr:
        expr = self.gen_expr(t, env, depth)
        if bounded:
            # Termination measure of a Nat-countdown recursion: cap it with
            # ``% k`` so the recursion depth never exceeds k - 1.
            return ast.BinOp("%", expr, ast.NatLit(self.draw(st.integers(2, 9))))
        return expr

    def gen_partial_application(self, goal: ast.FunType, env) -> Optional[ast.Expr]:
        # A partially applied higher-order def needs its own function-typed
        # arguments, which may be partial applications in turn — cap the
        # nesting or generation recurses forever when no function-typed
        # variable is in scope to break the cycle.
        if self.pap_depth >= 2:
            return None
        wanted, result = ast.uncurry(goal)
        candidates: List[FuncInfo] = [
            info
            for info in self.funcs
            if not info.builtin
            and info.result == result
            and len(info.params) > len(wanted)
            and list(info.params[len(info.params) - len(wanted):]) == wanted
        ]
        if not candidates:
            return None
        info = self.draw(st.sampled_from(candidates))
        applied = len(info.params) - len(wanted)
        self.pap_depth += 1
        try:
            args = [
                self.gen_argument(t, env, 0, bounded=(info.decreasing and i == 0))
                for i, t in enumerate(info.params[:applied])
            ]
        finally:
            self.pap_depth -= 1
        return ast.App(ast.Var(info.name), args)

    # -- matches ---------------------------------------------------------------
    def gen_match(self, goal, env, depth) -> ast.Expr:
        scrutinee_pool: List[ast.LeanType] = [_NAT, _BOOL]
        scrutinee_pool.extend(ast.DataType(n) for n in self.adt_names())
        scrutinee_type = self.draw(st.sampled_from(scrutinee_pool))
        if isinstance(scrutinee_type, ast.DataType):
            return self.gen_adt_match(scrutinee_type.name, goal, env, depth)
        # Nat/Bool matches may take a second scrutinee — multi-column
        # matches lower into join-point towers.
        scrutinees = [self.gen_expr(scrutinee_type, env, depth - 1)]
        columns = [scrutinee_type]
        if self.draw(st.booleans()):
            second = self.draw(st.sampled_from([_NAT, _BOOL]))
            scrutinees.append(self.gen_expr(second, env, depth - 1))
            columns.append(second)
        arms: List[ast.MatchArm] = []
        n_specific = self.draw(st.integers(1, 2))
        for _ in range(n_specific):
            patterns = [self._scalar_pattern(t) for t in columns]
            arms.append(ast.MatchArm(patterns, self.gen_expr(goal, env, depth - 1)))
        # Exhaustiveness: the last arm binds every column.
        names = [self.fresh("m") for _ in columns]
        inner = dict(env)
        inner.update(zip(names, columns))
        arms.append(
            ast.MatchArm(
                [ast.PVar(n) for n in names], self.gen_expr(goal, inner, depth - 1)
            )
        )
        return ast.Match(scrutinees, arms)

    def _scalar_pattern(self, t: ast.LeanType) -> ast.Pattern:
        if isinstance(t, ast.BoolType):
            return ast.PBool(self.draw(st.booleans()))
        if self.draw(st.booleans()):
            return ast.PWild()
        return ast.PLit(self.draw(st.integers(0, 4)))

    def gen_adt_match(self, adt: str, goal, env, depth) -> ast.Expr:
        signatures = self.ctors[adt]
        scrutinee = self.gen_expr(ast.DataType(adt), env, depth - 1)
        arms: List[ast.MatchArm] = []
        # Optional leading arm with one level of nested constructor
        # patterns — deeper join-point nesting; exhaustiveness is unharmed
        # because the per-constructor arms below still cover everything.
        if self.draw(st.booleans()):
            nested = self._nested_arm(adt, goal, env, depth)
            if nested is not None:
                arms.append(nested)
        for qualified, field_types in signatures:
            names: List[Optional[str]] = []
            subpatterns: List[ast.Pattern] = []
            for t in field_types:
                if self.draw(st.booleans()):
                    name = self.fresh("b")
                    names.append(name)
                    subpatterns.append(ast.PVar(name))
                else:
                    names.append(None)
                    subpatterns.append(ast.PWild())
            inner = dict(env)
            inner.update(
                (name, t)
                for name, t in zip(names, field_types)
                if name is not None
            )
            pattern = ast.PCtor(qualified, subpatterns) if subpatterns else ast.PCtor(qualified)
            arms.append(ast.MatchArm([pattern], self.gen_expr(goal, inner, depth - 1)))
        return ast.Match([scrutinee], arms)

    def _nested_arm(self, adt: str, goal, env, depth) -> Optional[ast.MatchArm]:
        signatures = self.ctors[adt]
        nestable = [
            (qualified, field_types)
            for qualified, field_types in signatures
            if any(isinstance(t, ast.DataType) for t in field_types)
        ]
        if not nestable:
            return None
        qualified, field_types = self.draw(st.sampled_from(nestable))
        inner = dict(env)
        subpatterns: List[ast.Pattern] = []
        nested_done = False
        for t in field_types:
            if isinstance(t, ast.DataType) and not nested_done:
                nested_done = True
                inner_sigs = self.ctors[t.name]
                sub_qualified, sub_fields = self.draw(st.sampled_from(inner_sigs))
                sub_subs: List[ast.Pattern] = []
                for sub_t in sub_fields:
                    name = self.fresh("n")
                    inner[name] = sub_t
                    sub_subs.append(ast.PVar(name))
                subpatterns.append(
                    ast.PCtor(sub_qualified, sub_subs)
                    if sub_subs
                    else ast.PCtor(sub_qualified)
                )
            else:
                name = self.fresh("n")
                inner[name] = t
                subpatterns.append(ast.PVar(name))
        pattern = ast.PCtor(qualified, subpatterns)
        return ast.MatchArm([pattern], self.gen_expr(goal, inner, depth - 1))

    # -- function declarations ---------------------------------------------------
    def gen_def(self, depth: int) -> None:
        kinds = ["plain", "nat_rec", "higher_order"]
        if self.ctors:
            kinds += ["adt_fold", "adt_map"]
        kind = self.draw(st.sampled_from(kinds))
        if kind == "plain":
            self._def_plain(depth, higher_order=False)
        elif kind == "higher_order":
            self._def_plain(depth, higher_order=True)
        elif kind == "nat_rec":
            self._def_nat_rec(depth)
        elif kind == "adt_fold":
            self._def_adt_fold(depth)
        else:
            self._def_adt_map(depth)

    def _draw_params(self, first: Optional[ast.LeanType], *, higher_order: bool):
        params: List[Tuple[str, ast.LeanType]] = []
        if first is not None:
            params.append((self.fresh("p"), first))
        if higher_order:
            fn_type = self.draw(
                st.sampled_from(
                    [
                        ast.FunType(_NAT, _NAT),
                        ast.FunType(_NAT, _BOOL),
                        ast.FunType(_NAT, ast.FunType(_NAT, _NAT)),
                    ]
                )
            )
            params.append((self.fresh("g"), fn_type))
        for _ in range(self.draw(st.integers(0 if params else 1, 2))):
            params.append((self.fresh("p"), self.draw_type()))
        return params

    def _finish_def(self, name, params, ret, body, *, decreasing=False) -> None:
        self.program.defs.append(ast.DefDecl(name, params, ret, body))
        self.funcs.append(
            FuncInfo(name, [t for _, t in params], ret, decreasing=decreasing)
        )

    def _def_plain(self, depth, *, higher_order: bool) -> None:
        name = self.fresh("fn")
        params = self._draw_params(None, higher_order=higher_order)
        ret = self.draw_type()
        env = dict(params)
        self._finish_def(name, params, ret, self.gen_expr(ret, env, depth))

    def _def_nat_rec(self, depth) -> None:
        """``f n extras := if n == 0 then base else ... f (n - 1) ...``."""
        name = self.fresh("fn")
        n = self.fresh("n")
        params = [(n, _NAT)] + self._draw_params(None, higher_order=False)[:2]
        ret = self.draw_type()
        env = dict(params)
        base = self.gen_expr(ret, env, depth - 1)
        rec_args: List[ast.Expr] = [ast.BinOp("-", ast.Var(n), ast.NatLit(1))]
        rec_args.extend(self.gen_expr(t, env, 1) for _, t in params[1:])
        r = self.fresh("r")
        step_env = dict(env)
        step_env[r] = ret
        use = self.gen_expr(ret, step_env, depth - 1)
        if isinstance(ret, ast.NatType) and self.draw(st.booleans()):
            use = ast.BinOp("+", ast.Var(r), use)
        step = ast.Let(r, ast.App(ast.Var(name), rec_args), use)
        body = ast.If(ast.BinOp("==", ast.Var(n), ast.NatLit(0)), base, step)
        self._finish_def(name, params, ret, body, decreasing=True)

    def _def_adt_fold(self, depth) -> None:
        """Structural recursion over an ADT to a scalar."""
        adt = self.draw(st.sampled_from(self.adt_names()))
        name = self.fresh("fn")
        x = self.fresh("x")
        params = [(x, ast.DataType(adt))] + self._draw_params(None, higher_order=False)[:1]
        ret = self.draw(st.sampled_from(list(_SCALARS)))
        env = dict(params)
        extras = [ast.Var(p) for p, _ in params[1:]]
        arms: List[ast.MatchArm] = []
        for qualified, field_types in self.ctors[adt]:
            field_names = [self.fresh("f") for _ in field_types]
            inner = dict(env)
            inner.update(zip(field_names, field_types))
            pattern = ast.PCtor(qualified, [ast.PVar(f) for f in field_names]) \
                if field_names else ast.PCtor(qualified)
            # Let-bind one recursive call per same-ADT field (fields are
            # strictly smaller, so this always terminates), then draw the
            # arm body with those results in scope.
            rec_pairs = [
                (field_name, self.fresh("r"))
                for field_name, t in zip(field_names, field_types)
                if isinstance(t, ast.DataType) and t.name == adt
            ]
            body_env = dict(inner)
            body_env.update((r, ret) for _, r in rec_pairs)
            use = self.gen_expr(ret, body_env, depth - 1)
            for field_name, r in reversed(rec_pairs):
                use = ast.Let(
                    r, ast.App(ast.Var(name), [ast.Var(field_name)] + extras), use
                )
            arms.append(ast.MatchArm([pattern], use))
        body = ast.Match([ast.Var(x)], arms)
        self._finish_def(name, params, ret, body)

    def _def_adt_map(self, depth) -> None:
        """Structural rebuild of an ADT — the constructor-reuse hot path."""
        adt = self.draw(st.sampled_from(self.adt_names()))
        name = self.fresh("fn")
        x = self.fresh("x")
        params = [(x, ast.DataType(adt))] + self._draw_params(None, higher_order=False)[:1]
        ret = ast.DataType(adt)
        env = dict(params)
        extras = [ast.Var(p) for p, _ in params[1:]]
        arms: List[ast.MatchArm] = []
        for qualified, field_types in self.ctors[adt]:
            field_names = [self.fresh("f") for _ in field_types]
            inner = dict(env)
            inner.update(zip(field_names, field_types))
            pattern = ast.PCtor(qualified, [ast.PVar(f) for f in field_names]) \
                if field_names else ast.PCtor(qualified)
            rebuilt_args: List[ast.Expr] = []
            for field_name, t in zip(field_names, field_types):
                if isinstance(t, ast.DataType) and t.name == adt:
                    rebuilt_args.append(
                        ast.App(ast.Var(name), [ast.Var(field_name)] + extras)
                    )
                elif self.draw(st.booleans()):
                    rebuilt_args.append(ast.Var(field_name))
                else:
                    rebuilt_args.append(self.gen_expr(t, inner, 1))
            body = (
                ast.App(ast.Var(qualified), rebuilt_args)
                if rebuilt_args
                else ast.Var(qualified)
            )
            arms.append(ast.MatchArm([pattern], body))
        body = ast.Match([ast.Var(x)], arms)
        self._finish_def(name, params, ret, body)

    # -- main ----------------------------------------------------------------------
    def observe(self, call: ast.Expr, result: ast.LeanType) -> Optional[ast.Expr]:
        """Reduce a call result to Nat so ``main`` can consume it."""
        if isinstance(result, ast.NatType):
            return call
        if isinstance(result, ast.IntType):
            return ast.App(ast.Var("Int.toNat"), [call])
        if isinstance(result, ast.BoolType):
            return ast.If(call, ast.NatLit(1), ast.NatLit(0))
        if isinstance(result, ast.DataType):
            return ast.App(ast.Var(self.size_folds[result.name]), [call])
        return None

    def gen_main(self, depth: int) -> None:
        terms: List[ast.Expr] = []
        generated = [info for info in self.funcs if info.name.startswith(("fn", "size"))]
        for info in generated:
            if not info.params:
                continue
            args = [
                self.gen_argument(t, {}, 1, bounded=(info.decreasing and i == 0))
                for i, t in enumerate(info.params)
            ]
            observed = self.observe(ast.App(ast.Var(info.name), args), info.result)
            if observed is not None:
                terms.append(observed)
        terms.append(self.gen_expr(_NAT, {}, depth))
        body = terms[0]
        for term in terms[1:]:
            body = ast.BinOp("+", body, term)
        self.program.defs.append(ast.DefDecl("main", [], _NAT, body))


@st.composite
def typed_programs(draw, max_inductives: int = 2, max_defs: int = 3, depth: int = 3):
    """Hypothesis strategy: a well-typed, terminating surface ``Program``."""
    gen = _Gen(draw)
    for _ in range(draw(st.integers(0, max_inductives))):
        gen.gen_inductive()
    for _ in range(draw(st.integers(0, max_defs))):
        gen.gen_def(draw(st.integers(1, depth)))
    gen.gen_main(draw(st.integers(1, depth)))
    return gen.program
