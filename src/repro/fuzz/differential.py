"""Full-matrix differential executor for generated (and corpus) programs.

One program goes through **every** configuration the compiler exposes:

* rc mode: ``rc-naive`` / ``rc-opt`` / ``rc-opt+reuse``,
* rewrite engine: ``worklist`` / ``rescan``,
* execution engine: ``vm`` (register bytecode) / ``tree`` (walker oracles),
  with the VM measured under both dispatch modes (``threaded`` /
  ``switch``),
* incremental rgn-opt recompilation: off / on,

plus the baseline ("leanc") pipeline at every rc mode and the λpure
reference interpreter as the golden value.  The contract asserted for
every run (:func:`run_matrix`):

* **values** — every configuration returns the reference value,
* **heap balance** — allocations equal frees in every configuration (the
  zero-leak invariant of *Counting Immutable Beans*),
* **metric identity** — within one rc mode, the lp+rgn pipeline must
  produce identical execution metrics (cost, op counts, heap traffic)
  across rewrite engines, execution engines and incremental on/off: those
  axes may change *how fast the compiler runs*, never *what it compiles
  to*.  Across rc modes only values must agree — changing RC traffic is
  the point of the rc-opt subsystem.

Any violation (or any crash anywhere in a pipeline) raises
:class:`DifferentialFailure` carrying the pretty-printed source, so
hypothesis shrinks the *program*, and the shrunk source is what lands in
``tests/corpus/``.

Every execution runs under a per-program step budget
(:data:`DEFAULT_BUDGET_STEPS`, overridable per call), so a generated
program that diverges — or an optimisation that breaks termination —
trips :class:`~repro.resilience.budgets.ExecutionBudgetExceeded` and
becomes a :class:`DifferentialFailure` finding instead of hanging the
nightly fuzz run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..backend.pipeline import (
    RC_VARIANTS,
    CompilationSession,
    run_baseline,
    run_mlir,
    run_reference,
)
from ..eval.harness import measurement_options

#: The matrix axes (rc mode × rewrite engine × execution engine [× VM
#: dispatch mode] × incremental recompilation).
REWRITE_ENGINES = ("worklist", "rescan")
EXECUTION_ENGINES = ("vm", "tree")
DISPATCH_MODES = ("threaded", "switch")
INCREMENTAL_MODES = (False, True)

#: Default per-program execution step budget (calls and branches).  Fuel-
#: bounded generated programs finish in a few thousand steps; a run that
#: charges two million of them is diverging and should surface as a
#: finding, not hang the fuzzer.  Steps (not wall-clock) keep the trip
#: deterministic across machines and engines.
DEFAULT_BUDGET_STEPS = 2_000_000


@dataclass(frozen=True)
class MatrixConfig:
    """One lp+rgn pipeline configuration of the differential matrix."""

    rc_variant: str
    rewrite_engine: str
    execution_engine: str
    incremental: bool
    #: VM dispatch mode; irrelevant (but harmless) for the tree engine.
    dispatch: str = "threaded"

    @property
    def label(self) -> str:
        inc = "inc" if self.incremental else "noinc"
        engine = self.execution_engine
        if engine == "vm":
            engine = f"vm-{self.dispatch}"
        return f"{self.rc_variant}/{self.rewrite_engine}/{engine}/{inc}"


def full_matrix() -> Tuple[MatrixConfig, ...]:
    """Every lp+rgn configuration: 3 rc modes × 2 rewrite engines ×
    3 executions (tree, vm-threaded, vm-switch) × 2 incremental modes =
    36 compiles per program."""
    executions = [("tree", "threaded")] + [
        ("vm", dispatch) for dispatch in DISPATCH_MODES
    ]
    return tuple(
        MatrixConfig(rc, engine, execution, incremental, dispatch)
        for rc, engine, (execution, dispatch), incremental in itertools.product(
            RC_VARIANTS, REWRITE_ENGINES, executions, INCREMENTAL_MODES
        )
    )


def smoke_matrix() -> Tuple[MatrixConfig, ...]:
    """A cheaper diagonal used by the CI smoke budget: every rc mode, every
    engine, every dispatch mode and the incremental path each appear at
    least once."""
    return (
        MatrixConfig("rc-naive", "worklist", "vm", False),
        MatrixConfig("rc-naive", "rescan", "tree", False),
        MatrixConfig("rc-opt", "worklist", "tree", True),
        MatrixConfig("rc-opt", "rescan", "vm", False, "switch"),
        MatrixConfig("rc-opt+reuse", "worklist", "vm", True),
        MatrixConfig("rc-opt+reuse", "rescan", "vm", False),
    )


class DifferentialFailure(AssertionError):
    """A matrix disagreement (or crash), carrying the offending source."""

    def __init__(self, source: str, reason: str):
        super().__init__(f"{reason}\n--- program ---\n{source}")
        self.source = source
        self.reason = reason


@dataclass
class MatrixReport:
    """Everything observed while running one program through the matrix."""

    source: str
    reference_value: object = None
    #: config label -> (value, metric fingerprint).
    runs: Dict[str, Tuple[object, Tuple]] = field(default_factory=dict)

    @property
    def configurations(self) -> int:
        return len(self.runs)


def _metric_fingerprint(result) -> Tuple:
    """The executed-semantics fingerprint that must be identical across the
    compile-strategy axes (engines, incremental) within one rc mode."""
    counts = result.metrics.counts
    return (
        result.metrics.total_cost(),
        tuple(sorted(counts.items())),
        tuple(sorted(result.heap_stats.items())),
        tuple(result.output),
    )


def _mlir_options(config: MatrixConfig, budget_steps: Optional[int] = None):
    options = measurement_options(
        config.rc_variant,
        rewrite_engine=config.rewrite_engine,
        execution_engine=config.execution_engine,
        dispatch=config.dispatch,
    )
    options.incremental_rgn_opt = config.incremental
    options.execution_budget_steps = budget_steps
    return options


def run_matrix(
    source: str,
    *,
    session: Optional[CompilationSession] = None,
    configs: Optional[Tuple[MatrixConfig, ...]] = None,
    baselines: bool = True,
    budget_steps: Optional[int] = DEFAULT_BUDGET_STEPS,
) -> MatrixReport:
    """Run ``source`` through the configured matrix; raise on any violation.

    ``session`` shares frontend work across the whole matrix (and is what
    the incremental configurations exercise); the caller may reuse one
    session across many programs — the cache is content-keyed.

    ``budget_steps`` bounds every execution (reference, baselines and the
    lp+rgn matrix alike); a trip surfaces as a :class:`DifferentialFailure`
    naming the configuration.  Pass ``None`` to run unbounded.
    """
    report = MatrixReport(source=source)
    session = session if session is not None else CompilationSession()
    configs = configs if configs is not None else full_matrix()

    def guarded(label, run):
        try:
            return run()
        except DifferentialFailure:
            raise
        except Exception as error:  # noqa: BLE001 - every crash is a finding
            raise DifferentialFailure(
                source, f"{label}: {type(error).__name__}: {error}"
            ) from error

    report.reference_value = guarded(
        "reference",
        lambda: run_reference(
            source, session=session, budget_steps=budget_steps
        ),
    )

    if baselines:
        for rc_variant in RC_VARIANTS:
            for execution_engine in EXECUTION_ENGINES:
                label = f"baseline/{rc_variant}/{execution_engine}"
                result = guarded(
                    label,
                    lambda rc=rc_variant, ee=execution_engine: run_baseline(
                        source,
                        rc_mode=rc[len("rc-"):],
                        session=session,
                        execution_engine=ee,
                        budget_steps=budget_steps,
                    ),
                )
                _check_run(report, label, result)

    fingerprints: Dict[str, Tuple[str, Tuple]] = {}
    for config in configs:
        label = config.label
        result = guarded(
            label,
            lambda c=config: run_mlir(
                source, _mlir_options(c, budget_steps), session=session
            ),
        )
        _check_run(report, label, result)
        fingerprint = _metric_fingerprint(result)
        report.runs[label] = (result.value, fingerprint)
        seen = fingerprints.get(config.rc_variant)
        if seen is None:
            fingerprints[config.rc_variant] = (label, fingerprint)
        elif seen[1] != fingerprint:
            raise DifferentialFailure(
                source,
                f"metric fingerprints diverge within {config.rc_variant}: "
                f"{seen[0]} vs {label}:\n  {seen[1]}\n  {fingerprint}",
            )
    return report


def _check_run(report: MatrixReport, label: str, result) -> None:
    if result.value != report.reference_value:
        raise DifferentialFailure(
            report.source,
            f"{label}: value {result.value!r} != reference "
            f"{report.reference_value!r}",
        )
    stats = result.heap_stats
    if stats.get("allocations") != stats.get("frees"):
        raise DifferentialFailure(
            report.source,
            f"{label}: heap imbalance — {stats.get('allocations')} "
            f"allocations vs {stats.get('frees')} frees",
        )
    if label not in report.runs:
        report.runs[label] = (result.value, _metric_fingerprint(result))
