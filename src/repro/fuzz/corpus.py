"""The checked-in counterexample corpus (``tests/corpus/``).

Every minimised counterexample the fuzzer finds is pretty-printed back to
surface syntax and saved as an ordinary ``.lean`` file with a provenance
header.  The corpus is replayed through the full differential matrix by a
fast regression test on every run (``tests/test_fuzz.py``), so a bug found
once by fuzzing becomes a permanent named test — the way "digits" became
a benchmark.

File format::

    -- fuzz counterexample
    -- reason: <first line of the failure reason>
    <mini-LEAN source>

The name is content-addressed (``fuzz_<sha256[:12]>.lean``), so saving the
same shrunk program twice is idempotent.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import List, Optional, Tuple

#: Default corpus location when running from a repo checkout.
DEFAULT_CORPUS_DIR = Path(__file__).resolve().parents[3] / "tests" / "corpus"

_HEADER = "-- fuzz counterexample"


def corpus_name(source: str) -> str:
    """Content-addressed file name for a counterexample program."""
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()[:12]
    return f"fuzz_{digest}.lean"


def save_counterexample(
    source: str, directory: Path, *, reason: Optional[str] = None
) -> Path:
    """Save ``source`` into the corpus; returns the (possibly existing) path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / corpus_name(source)
    if path.exists():
        return path
    lines = [_HEADER]
    if reason:
        first_line = reason.strip().splitlines()[0]
        lines.append(f"-- reason: {first_line}")
    text = "\n".join(lines) + "\n" + source
    if not text.endswith("\n"):
        text += "\n"
    path.write_text(text, encoding="utf-8")
    return path


def load_corpus(directory: Optional[Path] = None) -> List[Tuple[str, str]]:
    """``(name, source)`` for every corpus program, sorted by name.

    The provenance header is ordinary mini-LEAN comment syntax, so the
    file content replays unmodified.
    """
    directory = Path(directory) if directory is not None else DEFAULT_CORPUS_DIR
    if not directory.is_dir():
        return []
    return [
        (path.name, path.read_text(encoding="utf-8"))
        for path in sorted(directory.glob("*.lean"))
    ]
