"""Typed program generation + full-matrix differential fuzzing.

Three pieces (see ``docs/FUZZING.md``):

* :mod:`repro.fuzz.generator` — hypothesis strategies drawing well-typed,
  terminating mini-LEAN programs over the surface AST,
* :mod:`repro.fuzz.differential` — the matrix executor asserting value,
  heap-balance and metric-identity contracts across every pipeline
  configuration,
* :mod:`repro.fuzz.corpus` — the checked-in shrunk-counterexample corpus
  replayed by the regression tests.

``python -m repro.fuzz`` runs a seeded, budgeted fuzz session (the CI
smoke / deep-fuzz entry point).
"""

from .corpus import (
    DEFAULT_CORPUS_DIR,
    corpus_name,
    load_corpus,
    save_counterexample,
)
from .differential import (
    DifferentialFailure,
    MatrixConfig,
    MatrixReport,
    full_matrix,
    run_matrix,
    smoke_matrix,
)
from .generator import typed_programs

__all__ = [
    "DEFAULT_CORPUS_DIR",
    "corpus_name",
    "load_corpus",
    "save_counterexample",
    "DifferentialFailure",
    "MatrixConfig",
    "MatrixReport",
    "full_matrix",
    "run_matrix",
    "smoke_matrix",
    "typed_programs",
]
