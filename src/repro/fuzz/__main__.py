"""``python -m repro.fuzz`` — seeded, budgeted differential fuzzing.

Usage::

    python -m repro.fuzz --seed 2022 --max-examples 60 --budget-seconds 30
    python -m repro.fuzz --matrix full --max-examples 500 --budget-seconds 600 \\
        --save --corpus-dir tests/corpus

The run is deterministic for a given ``--seed``: examples are drawn in
fixed-size batches, each batch seeded with ``seed + batch_index``, and the
wall-clock budget is checked *between* batches — so a budgeted run stops
early but never changes which programs a batch generates.

On a failure hypothesis shrinks the program; the minimal counterexample is
pretty-printed and (with ``--save``) written into the corpus directory,
where the regression replay test (``tests/test_fuzz.py``) picks it up
forever after.  Exit code 1 when any counterexample was found.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from hypothesis import HealthCheck, given, seed as hypothesis_seed, settings

from ..backend.pipeline import CompilationSession
from ..lean.printer import print_program
from ..resilience import FaultPlan, fault_plan
from .corpus import DEFAULT_CORPUS_DIR, save_counterexample
from .differential import DifferentialFailure, full_matrix, run_matrix, smoke_matrix
from .generator import typed_programs


def _run_batch(
    batch_seed: int, examples: int, configs, counter: List[int]
) -> Optional[DifferentialFailure]:
    """Run one seeded batch; returns the shrunk failure, if any."""
    session = CompilationSession()

    @hypothesis_seed(batch_seed)
    @settings(
        max_examples=examples,
        database=None,
        deadline=None,
        suppress_health_check=list(HealthCheck),
        print_blob=False,
    )
    @given(program=typed_programs())
    def batch(program):
        counter[0] += 1
        source = print_program(program)
        run_matrix(source, session=session, configs=configs)

    try:
        batch()
    except DifferentialFailure as failure:
        return failure
    return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base PRNG seed (default 0)"
    )
    parser.add_argument(
        "--max-examples", type=int, default=100,
        help="total generated programs across all batches (default 100)",
    )
    parser.add_argument(
        "--budget-seconds", type=float, default=60.0,
        help="soft wall-clock budget, checked between batches (default 60)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=20,
        help="examples per seeded batch (default 20)",
    )
    parser.add_argument(
        "--matrix", choices=("smoke", "full"), default="full",
        help="configuration matrix per program: 'full' is every rc-mode × "
        "rewrite-engine × execution-engine × incremental combination, "
        "'smoke' a cheap covering diagonal (default full)",
    )
    parser.add_argument(
        "--corpus-dir", type=Path, default=DEFAULT_CORPUS_DIR,
        help=f"where --save writes counterexamples (default {DEFAULT_CORPUS_DIR})",
    )
    parser.add_argument(
        "--save", action="store_true",
        help="save shrunk counterexamples into --corpus-dir",
    )
    parser.add_argument(
        "--stop-on-failure", action="store_true",
        help="stop at the first counterexample instead of finishing the budget",
    )
    parser.add_argument(
        "--inject-fault", metavar="SITE[:N]", action="append", default=[],
        help="arm deterministic fault injection for the whole run — every "
        "resulting crash surfaces as a counterexample (repeatable; "
        "python -m repro.opt --list-fault-sites lists the sites)",
    )
    args = parser.parse_args(argv)

    try:
        plan = FaultPlan.parse(args.inject_fault) if args.inject_fault else None
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    configs = full_matrix() if args.matrix == "full" else smoke_matrix()
    start = time.monotonic()
    counter = [0]
    failures: List[DifferentialFailure] = []
    batch_index = 0
    while counter[0] < args.max_examples:
        if time.monotonic() - start > args.budget_seconds:
            print(f"budget exhausted after {counter[0]} examples")
            break
        examples = min(args.batch_size, args.max_examples - counter[0])
        with fault_plan(plan):
            failure = _run_batch(
                args.seed + batch_index, examples, configs, counter
            )
        batch_index += 1
        if failure is not None:
            failures.append(failure)
            print("=" * 60)
            print(f"counterexample (batch seed {args.seed + batch_index - 1}):")
            print(failure.reason)
            print(failure.source)
            if args.save:
                path = save_counterexample(
                    failure.source, args.corpus_dir, reason=failure.reason
                )
                print(f"saved: {path}")
            if args.stop_on_failure:
                break

    elapsed = time.monotonic() - start
    per_program = len(configs) + 7  # + reference + 6 baseline runs
    print(
        f"fuzz: {counter[0]} programs x {per_program} configurations "
        f"in {elapsed:.1f}s ({batch_index} batches, seed {args.seed}), "
        f"{len(failures)} counterexample(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
