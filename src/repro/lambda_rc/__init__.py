"""λrc: λpure extended with reference counting (``inc``/``dec``).

The IR node classes are shared with :mod:`repro.lambda_pure`; a program is
"in λrc" once :func:`insert_rc` has run over it.
"""

from ..lambda_pure.ir import Dec, Inc
from .refcount import BorrowSignatures, RCInserter, insert_rc, insert_rc_function

__all__ = [
    "BorrowSignatures",
    "Dec",
    "Inc",
    "RCInserter",
    "insert_rc",
    "insert_rc_function",
]
