"""Reference-count insertion: λpure → λrc.

LEAN manages memory with reference counting; λrc extends λpure with explicit
``inc``/``dec`` instructions which the backend lowers to runtime calls
(``lp.inc`` / ``lp.dec`` in the lp dialect).

We implement a simplified *owned-arguments* discipline (a subset of the
Perceus/"Counting Immutable Beans" scheme):

* every function owns one reference to each of its parameters,
* every let binding owns one reference to its bound value,
* expression operands are **consumed** (``ctor``/``call``/``pap``/``app``
  arguments, the returned variable, jump arguments) or **borrowed**
  (``case`` scrutinees, ``proj`` operands — our runtime's projection returns
  the field with its own fresh reference),
* before a consuming use of a variable that is still needed afterwards an
  ``inc`` is inserted; when a variable dies without being consumed a ``dec``
  is inserted,
* join points: the free variables of a join body are treated as live at each
  ``jmp`` to it (they are consumed by the join body, not at the jump site),
  which keeps every control-flow path balanced.

The naive scheme is deliberately not optimal — the paper's evaluation does
not depend on RC optimisation — but it is *balanced*: the runtime's heap
checker verifies that every program ends with zero live objects and never
double-frees.

Optionally, insertion can consume *borrow signatures* computed by
:mod:`repro.rc_opt.borrow` (a fixpoint over the call graph).  A borrowed
parameter is not owned by the callee: the callee neither releases it nor
counts it among its held references, and callers do not transfer ownership
when passing arguments in borrowed positions — eliminating inc/dec traffic
for parameters that are only inspected (cased / projected).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..lambda_pure.ir import (
    App,
    Call,
    Case,
    CaseAlt,
    Ctor,
    Dec,
    Expr,
    FnBody,
    Function,
    Inc,
    JDecl,
    Jmp,
    Let,
    Lit,
    PAp,
    Program,
    Proj,
    Ret,
    Unreachable,
    free_vars,
)

#: join label -> (params, free variables of the join body)
JoinEnv = Dict[str, Tuple[List[str], Set[str]]]

#: function name -> indices of its borrowed parameters
BorrowSignatures = Dict[str, frozenset]


class RCInserter:
    """Inserts ``inc``/``dec`` instructions into one function."""

    def __init__(
        self,
        borrow_signatures: Optional[BorrowSignatures] = None,
        borrowed_vars: Optional[Set[str]] = None,
    ):
        self.incs_inserted = 0
        self.decs_inserted = 0
        self.borrow_signatures = borrow_signatures or {}
        #: names of the current function's borrowed parameters; these are
        #: never owned anywhere in the body (join bodies included).
        self.borrowed_vars = borrowed_vars or set()

    # -- helpers --------------------------------------------------------------
    def _wrap_incs(self, body: FnBody, variables: List[str]) -> FnBody:
        for var in reversed(variables):
            body = Inc(var, body)
            self.incs_inserted += 1
        return body

    def _wrap_decs(self, body: FnBody, variables: List[str]) -> FnBody:
        for var in sorted(variables, reverse=True):
            body = Dec(var, body)
            self.decs_inserted += 1
        return body

    def _consume(
        self,
        args: List[str],
        live_after: Set[str],
        held: Set[str],
    ) -> List[str]:
        """Handle a sequence of consuming operand occurrences.

        Returns the list of variables to ``inc`` immediately before the
        consuming instruction; updates ``held`` by removing the variables
        whose last reference is handed over.
        """
        incs: List[str] = []
        for index, var in enumerate(args):
            needed_later = var in args[index + 1 :] or var in live_after
            if needed_later or var not in held:
                incs.append(var)
            else:
                held.discard(var)
        return incs

    # -- the insertion walk -------------------------------------------------------
    def visit(self, body: FnBody, held: Set[str], joins: JoinEnv) -> FnBody:
        if isinstance(body, Ret):
            held = set(held)
            incs = self._consume([body.var], set(), held)
            dead = [v for v in held]
            return self._wrap_incs(self._wrap_decs(Ret(body.var), dead), incs)

        if isinstance(body, Let):
            return self._visit_let(body, held, joins)

        if isinstance(body, Case):
            new_alts = []
            for alt in body.alts:
                branch_held = set(held)
                branch_live = free_vars(alt.body, joins)
                dead = [v for v in branch_held if v not in branch_live]
                for v in dead:
                    branch_held.discard(v)
                new_body = self.visit(alt.body, branch_held, joins)
                new_alts.append(
                    CaseAlt(alt.tag, alt.ctor_name, self._wrap_decs(new_body, dead))
                )
            new_default = None
            if body.default is not None:
                branch_held = set(held)
                branch_live = free_vars(body.default, joins)
                dead = [v for v in branch_held if v not in branch_live]
                for v in dead:
                    branch_held.discard(v)
                new_default = self._wrap_decs(
                    self.visit(body.default, branch_held, joins), dead
                )
            return Case(body.var, new_alts, new_default, body.type_name)

        if isinstance(body, JDecl):
            jfree = free_vars(body.jbody, joins) - set(body.params)
            new_joins = dict(joins)
            new_joins[body.label] = (body.params, jfree)
            # The join body owns its parameters plus the captured free
            # variables; every jmp arrives holding exactly that set.
            # Borrowed function parameters are excluded: the caller keeps
            # them alive for the whole activation, so neither the jump sites
            # nor the join body ever own (or release) them.
            jbody_held = set(body.params) | (set(jfree) - self.borrowed_vars)
            new_jbody = self.visit(body.jbody, jbody_held, new_joins)
            new_rest = self.visit(body.rest, set(held), new_joins)
            return JDecl(body.label, body.params, new_jbody, new_rest)

        if isinstance(body, Jmp):
            params, jfree = joins.get(body.label, ([], set()))
            held = set(held)
            incs = self._consume(list(body.args), set(jfree), held)
            dead = [v for v in held if v not in jfree and v not in body.args]
            return self._wrap_incs(
                self._wrap_decs(Jmp(body.label, list(body.args)), dead), incs
            )

        if isinstance(body, Unreachable):
            return body

        if isinstance(body, (Inc, Dec)):
            raise ValueError("reference counts already inserted")

        raise TypeError(f"unknown FnBody node {body!r}")

    def _visit_let(self, body: Let, held: Set[str], joins: JoinEnv) -> FnBody:
        expr = body.expr
        continuation_live = free_vars(body.body, joins)
        held = set(held)

        incs: List[str] = []
        if isinstance(expr, Call):
            borrowed_positions = self.borrow_signatures.get(expr.fn, frozenset())
            consumed = [
                a for i, a in enumerate(expr.args) if i not in borrowed_positions
            ]
            borrowed_here = {
                a for i, a in enumerate(expr.args) if i in borrowed_positions
            }
            # A variable passed both owned and borrowed in the same call must
            # survive the ownership transfer (the callee may release the
            # owned reference before its last borrowed use), so treat the
            # borrowed occurrences as live across the call.
            incs = self._consume(consumed, continuation_live | borrowed_here, held)
        elif isinstance(expr, (Ctor, PAp, App)):
            consumed = expr.arg_vars()
            incs = self._consume(consumed, continuation_live, held)
        # Proj and Lit borrow/consume nothing.

        held.add(body.var)
        # Variables (including possibly the new one) that are dead in the
        # continuation are released right after the binding.
        dead = [v for v in held if v not in continuation_live]
        for v in dead:
            held.discard(v)
        inner = self.visit(body.body, held, joins)
        inner = self._wrap_decs(inner, dead)
        return self._wrap_incs(Let(body.var, expr, inner), incs)


def insert_rc_function(
    fn: Function, borrow_signatures: Optional[BorrowSignatures] = None
) -> Function:
    """Insert reference counting into a single λpure function."""
    borrowed = (borrow_signatures or {}).get(fn.name, frozenset())
    borrowed_names = {p for i, p in enumerate(fn.params) if i in borrowed}
    inserter = RCInserter(borrow_signatures, borrowed_names)
    owned_params = [p for i, p in enumerate(fn.params) if i not in borrowed]
    held = set(owned_params)
    live = free_vars(fn.body)
    # Owned parameters never used at all must still be released (borrowed
    # parameters stay owned by the caller and are never released here).
    dead_params = [p for p in owned_params if p not in live]
    for p in dead_params:
        held.discard(p)
    body = inserter.visit(fn.body, held, {})
    body = inserter._wrap_decs(body, dead_params)
    return Function(
        fn.name,
        fn.params,
        body,
        fn.borrowed,
        borrowed_params=tuple(sorted(borrowed)),
    )


def insert_rc(
    program: Program, borrow_signatures: Optional[BorrowSignatures] = None
) -> Program:
    """λpure → λrc: insert ``inc``/``dec`` into every function.

    ``borrow_signatures`` (function name → indices of borrowed parameters)
    switches insertion from the naive all-owned discipline to the borrow
    discipline; see :mod:`repro.rc_opt.borrow`.

    Returns a new :class:`Program`; the input is not modified.
    """
    result = Program(constructors=dict(program.constructors), main=program.main)
    for name, fn in program.functions.items():
        result.functions[name] = insert_rc_function(fn, borrow_signatures)
    return result
