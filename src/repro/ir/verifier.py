"""Structural and dialect verification of IR.

The verifier enforces the invariants that the rewrite infrastructure and the
lowering passes rely on:

* every operand's defining value dominates its use (SSA dominance, extended
  to nested regions),
* every non-empty block inside an op that requires terminators ends with a
  terminator operation, and terminators appear only in the final position,
* successor counts of terminators refer to blocks of the same region,
* op-specific invariants via :meth:`Operation.verify_`.
"""

from __future__ import annotations

from typing import List

from .core import Operation
from .dominance import verify_dominance
from .traits import IsTerminator, NoTerminatorRequired, SingleBlock, has_trait


class VerificationError(Exception):
    """Raised when :func:`verify` finds invalid IR."""

    def __init__(self, errors: List[str]):
        self.errors = list(errors)
        super().__init__("\n".join(self.errors))


def collect_errors(root: Operation) -> List[str]:
    """Verify ``root`` and everything nested in it; return error strings."""
    errors: List[str] = []

    for op in root.walk():
        # Op-specific verification.
        try:
            op.verify_()
        except Exception as exc:  # noqa: BLE001 - surface as verifier error
            errors.append(f"{op.name}: {exc}")

        # Structural checks for nested regions.
        requires_terminator = not has_trait(op, NoTerminatorRequired)
        for region_index, region in enumerate(op.regions):
            if has_trait(op, SingleBlock) and len(region.blocks) > 1:
                errors.append(
                    f"{op.name}: region #{region_index} must have a single "
                    f"block, found {len(region.blocks)}"
                )
            for block in region.blocks:
                for inner in block:
                    is_last = inner.next_op is None
                    if inner.has_trait(IsTerminator) and not is_last:
                        errors.append(
                            f"{inner.name}: terminator is not the last "
                            f"operation in its block (inside {op.name})"
                        )
                    if is_last and requires_terminator and not inner.has_trait(
                        IsTerminator
                    ):
                        errors.append(
                            f"{op.name}: block does not end with a terminator "
                            f"(last op is {inner.name})"
                        )
                if block.is_empty and requires_terminator:
                    errors.append(f"{op.name}: empty block requires a terminator")

        # Successors must live in the same region as the terminator.
        if op.successors:
            parent_region = op.parent_region()
            for succ in op.successors:
                if succ.parent is not parent_region:
                    errors.append(
                        f"{op.name}: successor block is not in the same region"
                    )

    errors.extend(verify_dominance(root))
    return errors


def verify(root: Operation, *, raise_on_error: bool = True) -> List[str]:
    """Verify ``root``; raise :class:`VerificationError` on failure."""
    errors = collect_errors(root)
    if errors and raise_on_error:
        raise VerificationError(errors)
    return errors
