"""IR builder with an insertion point, mirroring MLIR's ``OpBuilder``."""

from __future__ import annotations

from typing import Optional

from .core import Block, Operation, Region


class InsertionPoint:
    """A position inside a block where new operations are inserted."""

    def __init__(self, block: Block, index: Optional[int] = None):
        self.block = block
        self.index = index if index is not None else len(block.operations)

    @classmethod
    def at_end(cls, block: Block) -> "InsertionPoint":
        return cls(block, len(block.operations))

    @classmethod
    def at_start(cls, block: Block) -> "InsertionPoint":
        return cls(block, 0)

    @classmethod
    def before(cls, op: Operation) -> "InsertionPoint":
        return cls(op.parent, op.parent.operations.index(op))

    @classmethod
    def after(cls, op: Operation) -> "InsertionPoint":
        return cls(op.parent, op.parent.operations.index(op) + 1)


class Builder:
    """Creates operations at a movable insertion point."""

    def __init__(self, insertion_point: Optional[InsertionPoint] = None):
        self._ip = insertion_point

    # -- insertion point management ------------------------------------------
    @property
    def insertion_point(self) -> Optional[InsertionPoint]:
        return self._ip

    def set_insertion_point(self, ip: InsertionPoint) -> None:
        self._ip = ip

    def set_insertion_point_to_end(self, block: Block) -> None:
        self._ip = InsertionPoint.at_end(block)

    def set_insertion_point_to_start(self, block: Block) -> None:
        self._ip = InsertionPoint.at_start(block)

    def set_insertion_point_before(self, op: Operation) -> None:
        self._ip = InsertionPoint.before(op)

    def set_insertion_point_after(self, op: Operation) -> None:
        self._ip = InsertionPoint.after(op)

    # -- insertion --------------------------------------------------------------
    def insert(self, op: Operation) -> Operation:
        """Insert ``op`` at the current insertion point and advance past it."""
        if self._ip is None:
            raise ValueError("builder has no insertion point")
        self._ip.block.insert(self._ip.index, op)
        self._ip.index += 1
        return op

    def create(self, op_class, *args, **kwargs) -> Operation:
        """Construct ``op_class(*args, **kwargs)`` and insert it."""
        return self.insert(op_class(*args, **kwargs))

    # -- block creation -----------------------------------------------------------
    def create_block(self, region: Region, arg_types=()) -> Block:
        """Append a new block to ``region`` and move the insertion point to it."""
        block = Block(arg_types)
        region.add_block(block)
        self.set_insertion_point_to_end(block)
        return block

    def create_block_before(self, anchor: Block, arg_types=()) -> Block:
        region = anchor.parent
        block = Block(arg_types)
        region.insert_block(anchor.index_in_region(), block)
        self.set_insertion_point_to_end(block)
        return block
