"""IR builder with an insertion point, mirroring MLIR's ``OpBuilder``.

Insertion points are *anchor-based*: a point is "immediately before
``anchor``" (or "at the end of ``block``" when the anchor is None), so every
insertion is an O(1) splice on the intrusive block list — no index arithmetic
and no O(block size) shifting, which matters on the rewrite driver's hot
path.
"""

from __future__ import annotations

from typing import Optional

from .core import Block, Operation, Region


class InsertionPoint:
    """A position inside a block where new operations are inserted.

    Operations are inserted immediately before :attr:`anchor`; a None anchor
    means "at the end of :attr:`block`".  Inserting never moves the anchor,
    so consecutive insertions appear in program order.
    """

    def __init__(self, block: Block, anchor: Optional[Operation] = None):
        if anchor is not None and anchor.parent is not block:
            raise ValueError("insertion anchor is not in the given block")
        self.block = block
        self.anchor = anchor

    @classmethod
    def at_end(cls, block: Block) -> "InsertionPoint":
        return cls(block, None)

    @classmethod
    def at_start(cls, block: Block) -> "InsertionPoint":
        return cls(block, block.first_op)

    @classmethod
    def before(cls, op: Operation) -> "InsertionPoint":
        if op.parent is None:
            raise ValueError(f"cannot insert before detached op {op.name}")
        return cls(op.parent, op)

    @classmethod
    def after(cls, op: Operation) -> "InsertionPoint":
        if op.parent is None:
            raise ValueError(f"cannot insert after detached op {op.name}")
        return cls(op.parent, op.next_op)

    def insert(self, op: Operation) -> Operation:
        """Insert ``op`` at this point (O(1))."""
        if self.anchor is None:
            self.block.append(op)
        else:
            self.block.insert_before(op, self.anchor)
        return op


class Builder:
    """Creates operations at a movable insertion point."""

    def __init__(self, insertion_point: Optional[InsertionPoint] = None):
        self._ip = insertion_point

    # -- insertion point management ------------------------------------------
    @property
    def insertion_point(self) -> Optional[InsertionPoint]:
        return self._ip

    def set_insertion_point(self, ip: InsertionPoint) -> None:
        self._ip = ip

    def set_insertion_point_to_end(self, block: Block) -> None:
        self._ip = InsertionPoint.at_end(block)

    def set_insertion_point_to_start(self, block: Block) -> None:
        self._ip = InsertionPoint.at_start(block)

    def set_insertion_point_before(self, op: Operation) -> None:
        self._ip = InsertionPoint.before(op)

    def set_insertion_point_after(self, op: Operation) -> None:
        self._ip = InsertionPoint.after(op)

    # -- insertion --------------------------------------------------------------
    def insert(self, op: Operation) -> Operation:
        """Insert ``op`` at the current insertion point."""
        if self._ip is None:
            raise ValueError("builder has no insertion point")
        return self._ip.insert(op)

    def create(self, op_class, *args, **kwargs) -> Operation:
        """Construct ``op_class(*args, **kwargs)`` and insert it."""
        return self.insert(op_class(*args, **kwargs))

    # -- block creation -----------------------------------------------------------
    def create_block(self, region: Region, arg_types=()) -> Block:
        """Append a new block to ``region`` and move the insertion point to it."""
        block = Block(arg_types)
        region.add_block(block)
        self.set_insertion_point_to_end(block)
        return block

    def create_block_before(self, anchor: Block, arg_types=()) -> Block:
        region = anchor.parent
        block = Block(arg_types)
        region.insert_block(anchor.index_in_region(), block)
        self.set_insertion_point_to_end(block)
        return block
