"""Operation traits.

Traits declare structural/semantic properties of operations that generic
passes and the verifier rely on, mirroring MLIR's op traits.
"""

from __future__ import annotations


class Trait:
    """Marker base class; traits are compared by identity of their class."""


class IsTerminator(Trait):
    """The operation must appear last in its block and ends control flow."""


class Pure(Trait):
    """The operation has no side effects; it may be CSE'd and dead-code
    eliminated when its results are unused."""


class ConstantLike(Trait):
    """The operation materialises a compile-time constant."""


class Allocates(Trait):
    """The operation allocates a fresh reference-counted heap object.

    Such operations may be dead-code eliminated (the paired ``dec`` keeps the
    counts balanced) but must not be CSE'd: merging two allocations would
    alias two owned references onto one object and unbalance the reference
    counts."""


class HasParent(Trait):
    """The operation may only appear nested inside specific parent ops."""

    parent_op_names = ()


class IsolatedFromAbove(Trait):
    """Regions of this op may not reference SSA values defined outside it."""


class NoTerminatorRequired(Trait):
    """Blocks in this op's regions need not end with a terminator
    (e.g. module-level regions)."""


class SingleBlock(Trait):
    """Every region of this op holds exactly one block."""


class SymbolTable(Trait):
    """The op's region defines a symbol table (e.g. ``builtin.module``)."""


class Symbol(Trait):
    """The op defines a symbol via its ``sym_name`` attribute."""


def has_trait(op_or_class, trait) -> bool:
    """Return True if the operation (or operation class) carries ``trait``."""
    traits = getattr(op_or_class, "TRAITS", frozenset())
    return trait in traits
