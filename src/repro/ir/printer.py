"""Textual printer for the IR (MLIR-like generic operation form).

The printed form round-trips through :mod:`repro.ir.parser`:

.. code-block:: text

    %2 = "arith.addi"(%0, %1) : (i64, i64) -> i64
    "cf.cond_br"(%c)[^bb1, ^bb2] : (i1) -> ()
    %r = "rgn.val"() ({
    ^bb0:
      "lp.return"(%x) : (!lp.t) -> ()
    }) : () -> !rgn.region
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .core import Block, Operation, Region, Value


class _NameManager:
    """Assigns stable, unique textual names to SSA values and blocks."""

    def __init__(self):
        self.value_names: Dict[Value, str] = {}
        self.block_names: Dict[Block, str] = {}
        self._used: set = set()
        self._next_value = 0
        self._next_block = 0

    def name_value(self, value: Value) -> str:
        if value in self.value_names:
            return self.value_names[value]
        hint = value.name_hint
        if hint:
            # Colliding hints disambiguate with a ``$`` suffix: ``$`` is
            # legal in ``%`` tokens but never appears in codegen hints, so
            # the parser can strip it back off when recovering the hint —
            # which is what keeps parse→print roundtrips byte-identical
            # even after passes erase one of the colliding values.
            name = hint
            suffix = 0
            while name in self._used:
                suffix += 1
                name = f"{hint}${suffix}"
        else:
            name = str(self._next_value)
            self._next_value += 1
            while name in self._used:
                name = str(self._next_value)
                self._next_value += 1
        self._used.add(name)
        self.value_names[value] = name
        return name

    def name_block(self, block: Block) -> str:
        if block not in self.block_names:
            self.block_names[block] = f"bb{self._next_block}"
            self._next_block += 1
        return self.block_names[block]


class Printer:
    """Prints operations, blocks and regions in generic form."""

    def __init__(self, indent_width: int = 2):
        self.indent_width = indent_width
        self.names = _NameManager()

    # -- entry points ----------------------------------------------------------
    def print_op(self, op: Operation, indent: int = 0) -> str:
        lines = self._op_lines(op, indent)
        return "\n".join(lines)

    # -- helpers -----------------------------------------------------------------
    def _ind(self, level: int) -> str:
        return " " * (self.indent_width * level)

    def _op_lines(self, op: Operation, indent: int) -> List[str]:
        prefix = self._ind(indent)
        parts: List[str] = []

        result_names = [f"%{self.names.name_value(r)}" for r in op.results]
        head = ""
        if result_names:
            head += ", ".join(result_names) + " = "
        head += f'"{op.name}"'

        operand_names = [f"%{self.names.name_value(v)}" for v in op.operands]
        head += "(" + ", ".join(operand_names) + ")"

        if op.successors:
            succ_names = [f"^{self.names.name_block(b)}" for b in op.successors]
            head += "[" + ", ".join(succ_names) + "]"

        lines = [prefix + head]
        if op.regions:
            lines[-1] += " ("
            for i, region in enumerate(op.regions):
                region_lines = self._region_lines(region, indent + 1)
                lines[-1] += "{"
                lines.extend(region_lines)
                closer = self._ind(indent) + "}"
                if i + 1 < len(op.regions):
                    closer += ", "
                    lines.append(closer)
                else:
                    lines.append(closer + ")")
        if op.attributes:
            attr_text = ", ".join(
                f"{k} = {v}" for k, v in sorted(op.attributes.items())
            )
            lines[-1] += " {" + attr_text + "}"

        in_types = ", ".join(str(v.type) for v in op.operands)
        if len(op.results) == 1:
            out_types = str(op.results[0].type)
        else:
            out_types = "(" + ", ".join(str(r.type) for r in op.results) + ")"
        lines[-1] += f" : ({in_types}) -> {out_types}"
        parts.extend(lines)
        return parts

    def _region_lines(self, region: Region, indent: int) -> List[str]:
        lines: List[str] = []
        for block in region.blocks:
            label = f"^{self.names.name_block(block)}"
            if block.arguments:
                args = ", ".join(
                    f"%{self.names.name_value(a)}: {a.type}" for a in block.arguments
                )
                label += f"({args})"
            lines.append(self._ind(indent - 1) + label + ":")
            for op in block:
                lines.extend(self._op_lines(op, indent))
        return lines


def print_op(op: Operation) -> str:
    """Print a single operation (and everything nested in it)."""
    return Printer().print_op(op)


def print_module(module: Operation) -> str:
    """Print a module operation followed by a trailing newline."""
    return print_op(module) + "\n"
