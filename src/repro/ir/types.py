"""Type system for the mini-MLIR IR.

Types are immutable value objects: two types compare equal iff they print the
same.  Dialects may define their own types (e.g. ``!lp.t``) by subclassing
:class:`DialectType`.
"""

from __future__ import annotations

from typing import Tuple


class Type:
    """Base class of all IR types.

    Subclasses implement :meth:`_key` (a hashable tuple uniquely identifying
    the type) and :meth:`__str__` (the textual form used by the printer and
    parser).
    """

    def _key(self) -> Tuple:
        return (type(self).__name__,)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Type) and self._key() == other._key()

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self})"


class IntegerType(Type):
    """Fixed-width signless integer type, printed ``i<width>``."""

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError(f"integer width must be positive, got {width}")
        self.width = int(width)

    def _key(self):
        return ("int", self.width)

    def __str__(self):
        return f"i{self.width}"


class IndexType(Type):
    """Platform-sized index type, printed ``index``."""

    def _key(self):
        return ("index",)

    def __str__(self):
        return "index"


class FloatType(Type):
    """IEEE float type, printed ``f<width>``."""

    def __init__(self, width: int = 64):
        if width not in (16, 32, 64):
            raise ValueError(f"unsupported float width {width}")
        self.width = width

    def _key(self):
        return ("float", self.width)

    def __str__(self):
        return f"f{self.width}"


class NoneType(Type):
    """Unit type for operations producing no meaningful value."""

    def _key(self):
        return ("none",)

    def __str__(self):
        return "none"


class FunctionType(Type):
    """Function type ``(inputs) -> (results)``."""

    def __init__(self, inputs, results):
        self.inputs: Tuple[Type, ...] = tuple(inputs)
        self.results: Tuple[Type, ...] = tuple(results)

    def _key(self):
        return ("func", self.inputs, self.results)

    def __str__(self):
        ins = ", ".join(str(t) for t in self.inputs)
        if len(self.results) == 1:
            outs = str(self.results[0])
        else:
            outs = "(" + ", ".join(str(t) for t in self.results) + ")"
        return f"({ins}) -> {outs}"


class DialectType(Type):
    """Base class for dialect-defined types, printed ``!<dialect>.<name>``."""

    dialect = "unknown"
    type_name = "unknown"

    def _key(self):
        return ("dialect", self.dialect, self.type_name)

    def __str__(self):
        return f"!{self.dialect}.{self.type_name}"


class BoxType(DialectType):
    """``!lp.t`` — the single boxed/heap value type of the lp dialect.

    λrc is type erased: every heap value (constructor, closure, big integer,
    array, boxed scalar) has this type.
    """

    dialect = "lp"
    type_name = "t"


class RegionType(DialectType):
    """``!rgn.region`` — the type of first-class region values (``rgn.val``)."""

    dialect = "rgn"
    type_name = "region"


# Commonly used singletons.
i1 = IntegerType(1)
i8 = IntegerType(8)
i16 = IntegerType(16)
i32 = IntegerType(32)
i64 = IntegerType(64)
f64 = FloatType(64)
index = IndexType()
none = NoneType()
box = BoxType()
region = RegionType()


def parse_type(text: str) -> Type:
    """Parse the textual form of a type.

    Supports ``iN``, ``fN``, ``index``, ``none``, ``!dialect.name`` and
    function types ``(a, b) -> c`` / ``(a) -> (b, c)``.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty type")
    if text == "index":
        return index
    if text == "none":
        return none
    if text.startswith("i") and text[1:].isdigit():
        return IntegerType(int(text[1:]))
    if text.startswith("f") and text[1:].isdigit():
        return FloatType(int(text[1:]))
    if text.startswith("!"):
        body = text[1:]
        if "." not in body:
            raise ValueError(f"malformed dialect type: {text!r}")
        dialect, name = body.split(".", 1)
        if (dialect, name) == ("lp", "t"):
            return box
        if (dialect, name) == ("rgn", "region"):
            return region
        t = DialectType()
        t.dialect = dialect
        t.type_name = name
        return t
    if text.startswith("("):
        depth = 0
        for i, ch in enumerate(text):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    inputs_text = text[1:i]
                    rest = text[i + 1:].strip()
                    break
        else:
            raise ValueError(f"unbalanced parentheses in type: {text!r}")
        if not rest.startswith("->"):
            raise ValueError(f"expected '->' in function type: {text!r}")
        results_text = rest[2:].strip()
        inputs = _split_type_list(inputs_text)
        if results_text.startswith("(") and results_text.endswith(")"):
            results = _split_type_list(results_text[1:-1])
        else:
            results = [results_text] if results_text else []
        return FunctionType(
            [parse_type(t) for t in inputs], [parse_type(t) for t in results]
        )
    raise ValueError(f"cannot parse type: {text!r}")


def _split_type_list(text: str):
    """Split a comma-separated type list, respecting nested parentheses."""
    parts = []
    depth = 0
    current = ""
    for ch in text:
        if ch in "(<[":
            depth += 1
        elif ch in ")>]":
            depth -= 1
        if ch == "," and depth == 0:
            if current.strip():
                parts.append(current.strip())
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current.strip())
    return parts
