"""Dialect and operation registration.

A *dialect* is a named collection of operations (and types).  The registry
maps fully-qualified operation names (``"lp.construct"``) to their Python
classes so that the parser and generic passes can materialise registered
operations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type as PyType

from .core import Operation

_OP_REGISTRY: Dict[str, PyType[Operation]] = {}
_DIALECT_REGISTRY: Dict[str, "Dialect"] = {}


class Dialect:
    """A named namespace of operations."""

    def __init__(self, name: str):
        self.name = name
        self.operations: List[PyType[Operation]] = []
        _DIALECT_REGISTRY[name] = self

    def register_op(self, op_class: PyType[Operation]) -> PyType[Operation]:
        """Register an operation class (usable as a decorator)."""
        op_name = op_class.OP_NAME
        if not op_name.startswith(self.name + ".") and op_name != self.name:
            raise ValueError(
                f"operation {op_name!r} does not belong to dialect {self.name!r}"
            )
        register_op(op_class)
        self.operations.append(op_class)
        return op_class


def register_op(op_class: PyType[Operation]) -> PyType[Operation]:
    """Register ``op_class`` under its ``OP_NAME`` (usable as a decorator)."""
    _OP_REGISTRY[op_class.OP_NAME] = op_class
    return op_class


def lookup_op(name: str) -> Optional[PyType[Operation]]:
    """Return the registered class for ``name``, or None if unregistered."""
    return _OP_REGISTRY.get(name)


def registered_ops() -> Dict[str, PyType[Operation]]:
    return dict(_OP_REGISTRY)


def registered_dialects() -> Dict[str, "Dialect"]:
    return dict(_DIALECT_REGISTRY)


def ensure_dialects_loaded() -> None:
    """Import every dialect module so all operations are registered."""
    from ..dialects import arith, cf, func, lp, rgn, scf  # noqa: F401
