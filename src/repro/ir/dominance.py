"""Dominance analysis for CFG regions.

Used by the verifier (operands must dominate their uses) and by the
value-numbering passes.  The algorithm is the classic iterative dominator
data-flow computation; our regions are small so simplicity wins over the
Lengauer-Tarjan algorithm.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .core import Block, Operation, Region, Value


class DominanceInfo:
    """Dominator sets for the blocks of a single region."""

    def __init__(self, region: Region):
        self.region = region
        self.dominators: Dict[Block, Set[Block]] = {}
        self._compute()

    def _compute(self) -> None:
        blocks = self.region.blocks
        if not blocks:
            return
        entry = blocks[0]
        all_blocks = set(blocks)
        self.dominators[entry] = {entry}
        for block in blocks[1:]:
            self.dominators[block] = set(all_blocks)
        changed = True
        while changed:
            changed = False
            for block in blocks[1:]:
                preds = block.predecessors()
                if preds:
                    new_doms = set(all_blocks)
                    for pred in preds:
                        new_doms &= self.dominators[pred]
                else:
                    # Unreachable block: only dominated by itself.
                    new_doms = set()
                new_doms |= {block}
                if new_doms != self.dominators[block]:
                    self.dominators[block] = new_doms
                    changed = True

    def dominates_block(self, a: Block, b: Block) -> bool:
        """True if block ``a`` dominates block ``b`` (both in this region)."""
        return a in self.dominators.get(b, set())

    def properly_dominates_block(self, a: Block, b: Block) -> bool:
        return a is not b and self.dominates_block(a, b)


class DominanceAnalysis:
    """Lazy per-region dominance info plus value/op level queries that
    understand nested regions (a value defined in an enclosing region is
    visible in all nested regions, as in MLIR)."""

    def __init__(self):
        self._per_region: Dict[int, DominanceInfo] = {}

    def info(self, region: Region) -> DominanceInfo:
        key = id(region)
        if key not in self._per_region:
            self._per_region[key] = DominanceInfo(region)
        return self._per_region[key]

    def invalidate(self) -> None:
        self._per_region.clear()

    # -- queries -------------------------------------------------------------
    def value_dominates_op(self, value: Value, op: Operation) -> bool:
        """True if ``value`` is available at (i.e. dominates) ``op``."""
        def_block = value.owner_block()
        if def_block is None:
            return False
        # Hoist the use up until it lives in the same region as the definition.
        use_op: Optional[Operation] = op
        while use_op is not None and use_op.parent is not None:
            if use_op.parent.parent is def_block.parent:
                break
            use_op = use_op.parent_op()
        if use_op is None or use_op.parent is None:
            return False
        use_block = use_op.parent

        def_op = value.owner_op()
        if def_block is use_block:
            if def_op is None:
                return True  # block argument dominates everything in the block
            if def_op is use_op:
                return False
            return def_op.is_before_in_block(use_op)
        region = def_block.parent
        if region is None:
            return False
        return self.info(region).properly_dominates_block(def_block, use_block)


def verify_dominance(op: Operation) -> List[str]:
    """Check SSA dominance for every operand use nested under ``op``.

    Returns a list of human-readable error strings (empty when valid).
    """
    errors: List[str] = []
    analysis = DominanceAnalysis()
    for nested in op.walk():
        for i, operand in enumerate(nested.operands):
            if operand.owner_block() is None:
                errors.append(
                    f"{nested.name}: operand {i} has no defining block"
                )
                continue
            if not analysis.value_dominates_op(operand, nested):
                errors.append(
                    f"{nested.name}: operand {i} does not dominate its use"
                )
    return errors
