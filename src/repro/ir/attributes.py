"""Attributes: compile-time constant data attached to operations.

Like MLIR attributes, these are immutable value objects.  The printer emits
them inside the ``{...}`` attribute dictionary of the generic operation form
and the parser reads them back.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from .types import IntegerType, Type, i64


class Attribute:
    """Base class of all attributes."""

    def _key(self) -> Tuple:
        return (type(self).__name__,)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Attribute) and self._key() == other._key()

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self})"


class IntegerAttr(Attribute):
    """Integer constant with an associated integer type, e.g. ``42 : i64``."""

    def __init__(self, value: int, type: Optional[Type] = None):
        self.value = int(value)
        self.type = type if type is not None else i64

    def _key(self):
        return ("int", self.value, self.type)

    def __str__(self):
        return f"{self.value} : {self.type}"


class BoolAttr(Attribute):
    """Boolean constant, printed ``true`` / ``false``."""

    def __init__(self, value: bool):
        self.value = bool(value)

    def _key(self):
        return ("bool", self.value)

    def __str__(self):
        return "true" if self.value else "false"


class FloatAttr(Attribute):
    """Floating point constant, e.g. ``90.0 : f64``."""

    def __init__(self, value: float, type: Optional[Type] = None):
        from .types import f64

        self.value = float(value)
        self.type = type if type is not None else f64

    def _key(self):
        return ("float", self.value, self.type)

    def __str__(self):
        return f"{self.value} : {self.type}"


class StringAttr(Attribute):
    """String constant, printed with double quotes."""

    def __init__(self, value: str):
        self.value = str(value)

    def _key(self):
        return ("str", self.value)

    def __str__(self):
        escaped = self.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'


class SymbolRefAttr(Attribute):
    """Reference to a symbol (function or global), printed ``@name``."""

    def __init__(self, name: str):
        self.name = str(name)

    def _key(self):
        return ("symref", self.name)

    def __str__(self):
        return f"@{self.name}"


class TypeAttr(Attribute):
    """A type used as an attribute (e.g. the function type of ``func.func``)."""

    def __init__(self, type: Type):
        self.type = type

    def _key(self):
        return ("type", self.type)

    def __str__(self):
        return str(self.type)


class ArrayAttr(Attribute):
    """An ordered list of attributes, printed ``[a, b, c]``."""

    def __init__(self, elements: Sequence[Attribute]):
        self.elements: Tuple[Attribute, ...] = tuple(elements)

    def _key(self):
        return ("array", self.elements)

    def __len__(self):
        return len(self.elements)

    def __iter__(self):
        return iter(self.elements)

    def __getitem__(self, i):
        return self.elements[i]

    def __str__(self):
        return "[" + ", ".join(str(e) for e in self.elements) + "]"


class UnitAttr(Attribute):
    """A unit attribute whose presence alone carries meaning."""

    def _key(self):
        return ("unit",)

    def __str__(self):
        return "unit"


class DictAttr(Attribute):
    """A dictionary of named attributes, printed ``{a = ..., b = ...}``."""

    def __init__(self, entries: Dict[str, Attribute]):
        self.entries = dict(entries)

    def _key(self):
        return ("dict", tuple(sorted(self.entries.items())))

    def __getitem__(self, key):
        return self.entries[key]

    def __contains__(self, key):
        return key in self.entries

    def __str__(self):
        inner = ", ".join(f"{k} = {v}" for k, v in sorted(self.entries.items()))
        return "{" + inner + "}"


def int_attr(value: int, width: int = 64) -> IntegerAttr:
    """Convenience constructor for an :class:`IntegerAttr` of width ``width``."""
    return IntegerAttr(value, IntegerType(width))
