"""Parser for the generic textual form emitted by :mod:`repro.ir.printer`.

The parser materialises registered operation classes (via the dialect
registry) when possible and falls back to generic :class:`Operation`
instances otherwise, mirroring MLIR's generic-form parsing.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from . import types as ir_types
from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DictAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
)
from .core import Block, Operation, Region, Value, _build_like
from .dialect import lookup_op


class ParseError(Exception):
    """Raised when the input text is not valid generic IR."""


#: Collision suffix the printer appends to duplicate name hints
#: (``x`` → ``x$1``); stripped when recovering the hint so a reprint
#: regenerates the same names the original printer chose.
_HINT_SUFFIX_RE = re.compile(r"\$\d+$")


def _hint_from_name(name: str) -> Optional[str]:
    """The name hint a printed SSA name encodes, if any.

    Purely numeric names are printer-assigned (anonymous values); a
    ``$N`` suffix is printer-added collision disambiguation, not part of
    the hint.
    """
    if name.isdigit():
        return None
    hint = _HINT_SUFFIX_RE.sub("", name)
    return hint or None


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<STRING>"(?:[^"\\]|\\.)*")
  | (?P<PERCENT>%[A-Za-z0-9_$.\-]+)
  | (?P<CARET>\^[A-Za-z0-9_$.\-]+)
  | (?P<AT>@[A-Za-z0-9_$.\-]+)
  | (?P<EXCLAIM>![A-Za-z0-9_$.\-]+)
  | (?P<ARROW>->)
  | (?P<FLOAT>-?\d+\.\d+(e[+-]?\d+)?)
  | (?P<INT>-?\d+)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_$.\-]*)
  | (?P<PUNCT>[()\[\]{},=:])
    """,
    re.VERBOSE,
)


class Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int):
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self):  # pragma: no cover
        return f"Token({self.kind}, {self.text!r})"


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        kind = m.lastgroup
        if kind != "WS":
            tokens.append(Token(kind, m.group(), pos))
        pos = m.end()
    tokens.append(Token("EOF", "", pos))
    return tokens


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.index = 0
        self.value_scope: List[Dict[str, Value]] = [{}]

    # -- token helpers ----------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.index]
        self.index += 1
        return tok

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            raise ParseError(
                f"expected {text or kind}, got {tok.text!r} at offset {tok.pos}"
            )
        return tok

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.next()
        return None

    # -- value scoping ------------------------------------------------------------
    def define_value(self, name: str, value: Value) -> None:
        self.value_scope[-1][name] = value

    def lookup_value(self, name: str) -> Value:
        for scope in reversed(self.value_scope):
            if name in scope:
                return scope[name]
        raise ParseError(f"use of undefined value %{name}")

    # -- types ----------------------------------------------------------------------
    def parse_type(self) -> ir_types.Type:
        tok = self.peek()
        if tok.kind == "EXCLAIM":
            self.next()
            return ir_types.parse_type(tok.text)
        if tok.kind == "IDENT":
            self.next()
            return ir_types.parse_type(tok.text)
        if tok.kind == "PUNCT" and tok.text == "(":
            inputs = self.parse_type_list_parens()
            self.expect("ARROW")
            if self.peek().kind == "PUNCT" and self.peek().text == "(":
                results = self.parse_type_list_parens()
            else:
                results = [self.parse_type()]
            return ir_types.FunctionType(inputs, results)
        raise ParseError(f"expected a type, got {tok.text!r} at offset {tok.pos}")

    def parse_type_list_parens(self) -> List[ir_types.Type]:
        self.expect("PUNCT", "(")
        result: List[ir_types.Type] = []
        if not (self.peek().kind == "PUNCT" and self.peek().text == ")"):
            result.append(self.parse_type())
            while self.accept("PUNCT", ","):
                result.append(self.parse_type())
        self.expect("PUNCT", ")")
        return result

    def parse_function_signature(self) -> Tuple[List[ir_types.Type], List[ir_types.Type]]:
        inputs = self.parse_type_list_parens()
        self.expect("ARROW")
        if self.peek().kind == "PUNCT" and self.peek().text == "(":
            results = self.parse_type_list_parens()
        else:
            results = [self.parse_type()]
        return inputs, results

    # -- attributes ---------------------------------------------------------------------
    def parse_attribute(self) -> Attribute:
        tok = self.peek()
        if tok.kind == "AT":
            self.next()
            return SymbolRefAttr(tok.text[1:])
        if tok.kind == "STRING":
            self.next()
            return StringAttr(_unescape(tok.text))
        if tok.kind == "IDENT" and tok.text in ("true", "false"):
            self.next()
            return BoolAttr(tok.text == "true")
        if tok.kind == "IDENT" and tok.text == "unit":
            self.next()
            return UnitAttr()
        if tok.kind == "FLOAT":
            self.next()
            type_ = ir_types.f64
            if self.accept("PUNCT", ":"):
                type_ = self.parse_type()
            return FloatAttr(float(tok.text), type_)
        if tok.kind == "INT":
            self.next()
            type_ = ir_types.i64
            if self.accept("PUNCT", ":"):
                type_ = self.parse_type()
            return IntegerAttr(int(tok.text), type_)
        if tok.kind == "PUNCT" and tok.text == "[":
            self.next()
            elements = []
            if not (self.peek().kind == "PUNCT" and self.peek().text == "]"):
                elements.append(self.parse_attribute())
                while self.accept("PUNCT", ","):
                    elements.append(self.parse_attribute())
            self.expect("PUNCT", "]")
            return ArrayAttr(elements)
        if tok.kind == "PUNCT" and tok.text == "{":
            return DictAttr(self.parse_attr_dict())
        # Fall back to a type attribute.
        return TypeAttr(self.parse_type())

    def parse_attr_dict(self) -> Dict[str, Attribute]:
        self.expect("PUNCT", "{")
        entries: Dict[str, Attribute] = {}
        if not (self.peek().kind == "PUNCT" and self.peek().text == "}"):
            while True:
                name_tok = self.next()
                if name_tok.kind not in ("IDENT", "STRING"):
                    raise ParseError(
                        f"expected attribute name, got {name_tok.text!r}"
                    )
                name = (
                    _unescape(name_tok.text)
                    if name_tok.kind == "STRING"
                    else name_tok.text
                )
                self.expect("PUNCT", "=")
                entries[name] = self.parse_attribute()
                if not self.accept("PUNCT", ","):
                    break
        self.expect("PUNCT", "}")
        return entries

    # -- operations -----------------------------------------------------------------------
    def parse_operation(self) -> Operation:
        result_names: List[str] = []
        if self.peek().kind == "PERCENT":
            result_names.append(self.next().text[1:])
            while self.accept("PUNCT", ","):
                result_names.append(self.expect("PERCENT").text[1:])
            self.expect("PUNCT", "=")

        name_tok = self.expect("STRING")
        op_name = _unescape(name_tok.text)

        self.expect("PUNCT", "(")
        operand_names: List[str] = []
        if not (self.peek().kind == "PUNCT" and self.peek().text == ")"):
            operand_names.append(self.expect("PERCENT").text[1:])
            while self.accept("PUNCT", ","):
                operand_names.append(self.expect("PERCENT").text[1:])
        self.expect("PUNCT", ")")

        successor_names: List[str] = []
        if self.peek().kind == "PUNCT" and self.peek().text == "[":
            self.next()
            successor_names.append(self.expect("CARET").text[1:])
            while self.accept("PUNCT", ","):
                successor_names.append(self.expect("CARET").text[1:])
            self.expect("PUNCT", "]")

        regions: List[Region] = []
        if self.peek().kind == "PUNCT" and self.peek().text == "(":
            # A region list only follows when a '{' opens right after '('.
            if self.peek(1).kind == "PUNCT" and self.peek(1).text == "{":
                self.next()
                regions.append(self.parse_region())
                while self.accept("PUNCT", ","):
                    regions.append(self.parse_region())
                self.expect("PUNCT", ")")

        attributes: Dict[str, Attribute] = {}
        if self.peek().kind == "PUNCT" and self.peek().text == "{":
            attributes = self.parse_attr_dict()

        self.expect("PUNCT", ":")
        input_types, result_types = self.parse_function_signature()
        if len(result_types) == 1 and result_types[0] == ir_types.none and not result_names:
            result_types = []
        if len(input_types) != len(operand_names):
            raise ParseError(
                f"operand count mismatch for {op_name}: "
                f"{len(operand_names)} operands, {len(input_types)} types"
            )

        operands = [self.lookup_value(n) for n in operand_names]
        successors = [self._block_for(n) for n in successor_names]
        op_class = lookup_op(op_name) or Operation
        op = _build_like(
            op_class,
            name=op_name if op_class is Operation else None,
            operands=operands,
            result_types=result_types,
            attributes=attributes,
            successors=successors,
            num_regions=0,
        )
        for region in regions:
            region.parent = op
            op.regions.append(region)
        if result_names and len(result_names) != len(op.results):
            raise ParseError(
                f"result count mismatch for {op_name}: "
                f"{len(result_names)} names, {len(op.results)} results"
            )
        for name, result in zip(result_names, op.results):
            self.define_value(name, result)
            hint = _hint_from_name(name)
            if hint is not None:
                result.name_hint = hint
        return op

    # -- regions and blocks -------------------------------------------------------------------
    def parse_region(self) -> Region:
        self.expect("PUNCT", "{")
        region = Region()
        self.value_scope.append({})
        self._pending_blocks: Dict[str, Block]
        pending_blocks: Dict[str, Block] = {}
        self._block_maps.append(pending_blocks)

        current_block: Optional[Block] = None
        while not (self.peek().kind == "PUNCT" and self.peek().text == "}"):
            if self.peek().kind == "CARET":
                label_tok = self.next()
                label = label_tok.text[1:]
                block = pending_blocks.get(label)
                if block is None:
                    block = Block()
                    pending_blocks[label] = block
                region.add_block(block)
                if self.peek().kind == "PUNCT" and self.peek().text == "(":
                    self.next()
                    while True:
                        arg_name = self.expect("PERCENT").text[1:]
                        self.expect("PUNCT", ":")
                        arg_type = self.parse_type()
                        arg = block.add_argument(arg_type)
                        hint = _hint_from_name(arg_name)
                        if hint is not None:
                            arg.name_hint = hint
                        self.define_value(arg_name, arg)
                        if not self.accept("PUNCT", ","):
                            break
                    self.expect("PUNCT", ")")
                self.expect("PUNCT", ":")
                current_block = block
            else:
                if current_block is None:
                    current_block = Block()
                    region.add_block(current_block)
                current_block.append(self.parse_operation())
        self.expect("PUNCT", "}")
        self.value_scope.pop()
        self._block_maps.pop()
        return region

    def _block_for(self, label: str) -> Block:
        if not self._block_maps:
            raise ParseError(f"successor ^{label} outside of a region")
        blocks = self._block_maps[-1]
        if label not in blocks:
            blocks[label] = Block()
        return blocks[label]

    # -- entry point ---------------------------------------------------------------------------
    def parse_module(self) -> Operation:
        self._block_maps: List[Dict[str, Block]] = []
        op = self.parse_operation()
        self.expect("EOF")
        return op


def _unescape(quoted: str) -> str:
    body = quoted[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


def parse_module(text: str) -> Operation:
    """Parse a top-level operation (usually a ``builtin.module``)."""
    from .dialect import ensure_dialects_loaded

    ensure_dialects_loaded()
    parser = Parser(text)
    parser._block_maps = []
    return parser.parse_module()
