"""Mini-MLIR: the SSA+regions IR infrastructure used by the reproduction.

Public surface::

    from repro.ir import (
        Operation, Block, Region, Value, Builder, InsertionPoint,
        IntegerType, FunctionType, BoxType, RegionType,
        IntegerAttr, StringAttr, SymbolRefAttr,
        verify, print_op, parse_module,
    )
"""

from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DictAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
    int_attr,
)
from .builder import Builder, InsertionPoint
from .core import (
    Block,
    BlockArgument,
    IRMapping,
    Operation,
    OpResult,
    Region,
    Use,
    Value,
)
from .dialect import (
    Dialect,
    ensure_dialects_loaded,
    lookup_op,
    register_op,
    registered_dialects,
    registered_ops,
)
from .dominance import DominanceAnalysis, DominanceInfo, verify_dominance
from .parser import ParseError, parse_module
from .printer import Printer, print_module, print_op
from .traits import (
    Allocates,
    ConstantLike,
    IsolatedFromAbove,
    IsTerminator,
    NoTerminatorRequired,
    Pure,
    SingleBlock,
    Symbol,
    SymbolTable,
    Trait,
    has_trait,
)
from .types import (
    BoxType,
    DialectType,
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    NoneType,
    RegionType,
    Type,
    box,
    f64,
    i1,
    i8,
    i16,
    i32,
    i64,
    index,
    none,
    parse_type,
    region,
)
from .verifier import VerificationError, collect_errors, verify

__all__ = [
    # attributes
    "ArrayAttr",
    "Attribute",
    "BoolAttr",
    "DictAttr",
    "FloatAttr",
    "IntegerAttr",
    "StringAttr",
    "SymbolRefAttr",
    "TypeAttr",
    "UnitAttr",
    "int_attr",
    # builder
    "Builder",
    "InsertionPoint",
    # core
    "Block",
    "BlockArgument",
    "IRMapping",
    "Operation",
    "OpResult",
    "Region",
    "Use",
    "Value",
    # dialect registry
    "Dialect",
    "ensure_dialects_loaded",
    "lookup_op",
    "register_op",
    "registered_dialects",
    "registered_ops",
    # dominance
    "DominanceAnalysis",
    "DominanceInfo",
    "verify_dominance",
    # parser / printer
    "ParseError",
    "parse_module",
    "Printer",
    "print_module",
    "print_op",
    # traits
    "Allocates",
    "ConstantLike",
    "IsolatedFromAbove",
    "IsTerminator",
    "NoTerminatorRequired",
    "Pure",
    "SingleBlock",
    "Symbol",
    "SymbolTable",
    "Trait",
    "has_trait",
    # types
    "BoxType",
    "DialectType",
    "FloatType",
    "FunctionType",
    "IndexType",
    "IntegerType",
    "NoneType",
    "RegionType",
    "Type",
    "box",
    "f64",
    "i1",
    "i8",
    "i16",
    "i32",
    "i64",
    "index",
    "none",
    "parse_type",
    "region",
    # verifier
    "VerificationError",
    "collect_errors",
    "verify",
]
