"""Core IR data structures: values, operations, blocks and regions.

This is a compact re-implementation of the structural part of MLIR that the
paper relies on:

* SSA :class:`Value`\\ s produced either by operations (:class:`OpResult`) or
  as block arguments (:class:`BlockArgument`), with explicit def-use chains.
* :class:`Operation`\\ s carrying operands, results, attributes, successor
  blocks (for CFG terminators) and *nested regions* — the central construct
  the paper exploits to give functional sub-expressions first-class SSA
  names.
* :class:`Block`\\ s (sequences of operations with block arguments acting as
  phi nodes) and :class:`Region`\\ s (single-entry lists of blocks).

Block storage is an *intrusive doubly-linked list*, as in MLIR: every
operation carries ``prev_op``/``next_op`` links and the block holds
``first_op``/``last_op``.  This makes the mutations on the rewrite driver's
hot path — :meth:`Block.insert_before`, :meth:`Block.insert_after`,
:meth:`Operation.detach`, :meth:`Operation.erase` — O(1) splices instead of
O(block size) list shifts, and lets walks iterate without copying block
contents.

The linked-list invariants (checked by :meth:`Block.check_invariants`):

* for every op in a block, ``op.parent is block`` and ``op.erased`` is False;
* ``first_op.prev_op is None`` and ``last_op.next_op is None``;
* ``a.next_op.prev_op is a`` for every interior link;
* a detached op has ``parent is prev_op is next_op is None``;
* an erased op additionally has ``erased`` set (permanently), which is what
  lets worklist drivers discard stale queue entries in O(1) via
  :attr:`Operation.attached`.

Ordering queries (``is_before_in_block``, used by dominance on every operand
check) are O(1) amortised through lazily maintained order keys: insertions
assign a key midway between the neighbours' keys and fall back to a full
O(n) renumbering only when the gap is exhausted.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .attributes import Attribute
from .types import Type

#: Gap left between consecutive order keys on (re)numbering; insertions in
#: the middle bisect the gap and only force a renumber after ~log2(stride)
#: consecutive inserts at the same spot.
_ORDER_STRIDE = 16


class Use:
    """A single use of a :class:`Value`: ``owner.operands[index] is value``."""

    __slots__ = ("owner", "index")

    def __init__(self, owner: "Operation", index: int):
        self.owner = owner
        self.index = index

    def __repr__(self):  # pragma: no cover - debugging helper
        return f"Use({self.owner.name}, {self.index})"


class Value:
    """Base class of SSA values."""

    def __init__(self, type: Type):
        self.type = type
        self.uses: List[Use] = []
        self.name_hint: Optional[str] = None

    # -- use management -------------------------------------------------
    def add_use(self, use: Use) -> None:
        self.uses.append(use)

    def remove_use(self, owner: "Operation", index: int) -> None:
        for i, use in enumerate(self.uses):
            if use.owner is owner and use.index == index:
                del self.uses[i]
                return

    @property
    def has_uses(self) -> bool:
        return bool(self.uses)

    @property
    def num_uses(self) -> int:
        return len(self.uses)

    def users(self) -> List["Operation"]:
        """Distinct operations using this value, in use order."""
        seen = []
        for use in self.uses:
            if use.owner not in seen:
                seen.append(use.owner)
        return seen

    def replace_all_uses_with(self, new_value: "Value") -> None:
        """Rewrite every use of ``self`` to use ``new_value`` instead."""
        if new_value is self:
            return
        for use in list(self.uses):
            use.owner.set_operand(use.index, new_value)

    def owner_op(self) -> Optional["Operation"]:
        """The defining operation, or None for block arguments."""
        return None

    def owner_block(self) -> Optional["Block"]:
        """The block in which this value becomes available."""
        return None


class OpResult(Value):
    """A result produced by an operation."""

    def __init__(self, type: Type, op: "Operation", index: int):
        super().__init__(type)
        self.op = op
        self.index = index

    def owner_op(self) -> Optional["Operation"]:
        return self.op

    def owner_block(self) -> Optional["Block"]:
        return self.op.parent

    def __repr__(self):  # pragma: no cover - debugging helper
        return f"<result {self.index} of {self.op.name}>"


class BlockArgument(Value):
    """An argument of a block (serves the role of a phi node)."""

    def __init__(self, type: Type, block: "Block", index: int):
        super().__init__(type)
        self.block = block
        self.index = index

    def owner_block(self) -> Optional["Block"]:
        return self.block

    def __repr__(self):  # pragma: no cover - debugging helper
        return f"<blockarg {self.index}>"


class IRMapping:
    """Value/block remapping used while cloning or inlining IR."""

    def __init__(self):
        self.value_map: Dict[Value, Value] = {}
        self.block_map: Dict["Block", "Block"] = {}

    def map_value(self, old: Value, new: Value) -> None:
        self.value_map[old] = new

    def map_block(self, old: "Block", new: "Block") -> None:
        self.block_map[old] = new

    def lookup(self, value: Value) -> Value:
        return self.value_map.get(value, value)

    def lookup_block(self, block: "Block") -> "Block":
        return self.block_map.get(block, block)


class Operation:
    """A generic IR operation.

    Registered operations subclass :class:`Operation`, set ``OP_NAME`` and
    ``TRAITS`` and usually provide a convenience constructor plus named
    accessors.  All structural manipulation happens through the base class so
    that generic passes work on any operation.

    Operations are intrusive list nodes: :attr:`prev_op`/:attr:`next_op` link
    them into their parent :class:`Block`.  Both are None while detached.
    """

    OP_NAME: str = "builtin.unregistered"
    TRAITS: frozenset = frozenset()

    def __init__(
        self,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attributes: Optional[Dict[str, Attribute]] = None,
        regions=None,
        successors: Sequence["Block"] = (),
        name: Optional[str] = None,
    ):
        self._name = name
        self._operands: List[Value] = []
        self.results: List[OpResult] = []
        self.attributes: Dict[str, Attribute] = dict(attributes or {})
        self.regions: List[Region] = []
        self.successors: List[Block] = list(successors)
        self.parent: Optional[Block] = None
        #: Intrusive links into the parent block's operation list.
        self.prev_op: Optional["Operation"] = None
        self.next_op: Optional["Operation"] = None
        #: Lazily maintained ordering key within the parent block (see
        #: :meth:`Block._ensure_order`); meaningless while detached.
        self._order: int = 0
        #: Set (permanently) by :meth:`erase` and by bulk region teardown so
        #: that worklist-style drivers can discard stale queue entries in O(1)
        #: instead of chasing the ancestor chain.
        self.erased: bool = False

        for value in operands:
            self._append_operand(value)
        for i, rtype in enumerate(result_types):
            self.results.append(OpResult(rtype, self, i))
        if regions is None:
            regions = 0
        if isinstance(regions, int):
            for _ in range(regions):
                self.regions.append(Region(parent=self))
        else:
            for r in regions:
                r.parent = self
                self.regions.append(r)

    # -- identity --------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name if self._name is not None else type(self).OP_NAME

    def has_trait(self, trait) -> bool:
        return trait in type(self).TRAITS

    # -- operands ---------------------------------------------------------
    @property
    def operands(self) -> Tuple[Value, ...]:
        return tuple(self._operands)

    def _append_operand(self, value: Value) -> None:
        index = len(self._operands)
        self._operands.append(value)
        value.add_use(Use(self, index))

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        old.remove_use(self, index)
        self._operands[index] = value
        value.add_use(Use(self, index))

    def set_operands(self, values: Sequence[Value]) -> None:
        self.drop_operand_uses()
        self._operands = []
        for v in values:
            self._append_operand(v)

    def insert_operand(self, index: int, value: Value) -> None:
        values = list(self._operands)
        values.insert(index, value)
        self.set_operands(values)

    def erase_operand(self, index: int) -> None:
        values = list(self._operands)
        del values[index]
        self.set_operands(values)

    def drop_operand_uses(self) -> None:
        for i, v in enumerate(self._operands):
            v.remove_use(self, i)

    # -- results ----------------------------------------------------------
    def result(self, index: int = 0) -> OpResult:
        return self.results[index]

    @property
    def num_results(self) -> int:
        return len(self.results)

    def replace_all_uses_with(self, replacements) -> None:
        """Replace all uses of this op's results.

        ``replacements`` is either another :class:`Operation` with the same
        number of results or a sequence of values.
        """
        if isinstance(replacements, Operation):
            replacements = replacements.results
        if isinstance(replacements, Value):
            replacements = [replacements]
        if len(replacements) != len(self.results):
            raise ValueError(
                f"replacement count mismatch: {len(replacements)} vs "
                f"{len(self.results)} for {self.name}"
            )
        for old, new in zip(self.results, replacements):
            old.replace_all_uses_with(new)

    def results_used(self) -> bool:
        return any(r.has_uses for r in self.results)

    # -- attributes --------------------------------------------------------
    def get_attr(self, name: str) -> Optional[Attribute]:
        return self.attributes.get(name)

    def set_attr(self, name: str, attr: Attribute) -> None:
        self.attributes[name] = attr

    def remove_attr(self, name: str) -> None:
        self.attributes.pop(name, None)

    # -- structure ---------------------------------------------------------
    @property
    def attached(self) -> bool:
        """True while this operation sits in a block and has not been erased.

        This is the O(1) replacement for walking the ancestor chain: erasure
        marks the whole nested subtree via :meth:`erase` /
        :meth:`Block.drop_all_ops`, and plain :meth:`detach` (a transient
        state during moves) clears ``parent``.
        """
        return self.parent is not None and not self.erased

    def parent_op(self) -> Optional["Operation"]:
        if self.parent is not None and self.parent.parent is not None:
            return self.parent.parent.parent
        return None

    def parent_region(self) -> Optional["Region"]:
        return self.parent.parent if self.parent is not None else None

    def ancestors(self) -> Iterator["Operation"]:
        op = self.parent_op()
        while op is not None:
            yield op
            op = op.parent_op()

    def is_ancestor_of(self, other: "Operation") -> bool:
        if other is self:
            return True
        return any(a is self for a in other.ancestors())

    def block_index(self) -> int:
        """Index of this operation inside its parent block (O(index))."""
        if self.parent is None:
            raise ValueError("operation has no parent block")
        index = 0
        current = self.parent.first_op
        while current is not None:
            if current is self:
                return index
            index += 1
            current = current.next_op
        raise ValueError("operation not linked into its parent block")

    def is_before_in_block(self, other: "Operation") -> bool:
        """True if ``self`` precedes ``other`` in their shared block.

        O(1) amortised: compares the lazily maintained block order keys
        (renumbered only when insertions exhaust the key gap).
        """
        if self.parent is not other.parent or self.parent is None:
            raise ValueError("operations are not in the same block")
        self.parent._ensure_order()
        return self._order < other._order

    def move_before(self, other: "Operation") -> None:
        self.detach()
        other.parent.insert_before(self, other)

    def move_after(self, other: "Operation") -> None:
        self.detach()
        other.parent.insert_after(self, other)

    def detach(self) -> None:
        """Remove from the parent block without touching uses (O(1))."""
        if self.parent is not None:
            self.parent._unlink(self)

    def erase(self, *, allow_uses: bool = False) -> None:
        """Erase this operation (and, recursively, its regions).

        The results must be unused unless ``allow_uses`` is set (used when a
        whole enclosing structure is being discarded).
        """
        if not allow_uses and self.results_used():
            raise ValueError(f"erasing {self.name} whose results still have uses")
        for region in self.regions:
            region.drop_all_ops()
        self.drop_operand_uses()
        self.detach()
        self.erased = True

    # -- cloning -------------------------------------------------------------
    def clone(self, mapper: Optional[IRMapping] = None) -> "Operation":
        """Deep-clone this operation (including nested regions).

        Operand values and successor blocks are remapped through ``mapper``;
        values absent from the mapping are reused as-is (they are defined
        outside the cloned IR).
        """
        mapper = mapper if mapper is not None else IRMapping()
        new_op = _build_like(
            type(self),
            name=self._name,
            operands=[mapper.lookup(v) for v in self._operands],
            result_types=[r.type for r in self.results],
            attributes=dict(self.attributes),
            successors=[mapper.lookup_block(b) for b in self.successors],
            num_regions=0,
        )
        for old_res, new_res in zip(self.results, new_op.results):
            mapper.map_value(old_res, new_res)
            new_res.name_hint = old_res.name_hint
        for region in self.regions:
            new_region = Region(parent=new_op)
            new_op.regions.append(new_region)
            region.clone_into(new_region, mapper)
        return new_op

    # -- traversal -------------------------------------------------------------
    def walk(self) -> Iterator["Operation"]:
        """Pre-order walk of this op and every op nested in its regions.

        Robust against erasure of the op just yielded (the next link is
        captured before descending), without copying block contents.
        """
        yield self
        for region in self.regions:
            for block in region.blocks:
                op = block.first_op
                while op is not None:
                    next_op = op.next_op
                    yield from op.walk()
                    op = next_op

    def walk_postorder(self) -> Iterator["Operation"]:
        """Post-order walk: every nested op is yielded before its parent."""
        for region in self.regions:
            for block in region.blocks:
                op = block.first_op
                while op is not None:
                    next_op = op.next_op
                    yield from op.walk_postorder()
                    op = next_op
        yield self

    # -- verification -----------------------------------------------------------
    def verify_(self) -> None:
        """Op-specific verification hook; subclasses override."""

    def __str__(self):
        from .printer import print_op

        return print_op(self)

    def __repr__(self):  # pragma: no cover - debugging helper
        return f"<{self.name} at {hex(id(self))}>"


def _build_like(
    cls,
    name,
    operands,
    result_types,
    attributes,
    successors,
    num_regions,
) -> Operation:
    """Construct an operation of class ``cls`` bypassing its custom
    ``__init__`` (used by cloning and the generic parser)."""
    op = object.__new__(cls)
    Operation.__init__(
        op,
        operands=operands,
        result_types=result_types,
        attributes=attributes,
        regions=num_regions,
        successors=successors,
        name=name,
    )
    return op


class Block:
    """A straight-line sequence of operations with block arguments.

    Operations are stored as an intrusive doubly-linked list rooted at
    :attr:`first_op`/:attr:`last_op`; see the module docstring for the
    invariants.  Iterating a block (``for op in block``) captures each next
    link before yielding, so erasing or detaching the *current* op while
    iterating is safe.
    """

    def __init__(self, arg_types: Sequence[Type] = ()):
        self.arguments: List[BlockArgument] = []
        self.parent: Optional[Region] = None
        self._first_op: Optional[Operation] = None
        self._last_op: Optional[Operation] = None
        self._num_ops: int = 0
        #: False once an insertion exhausted the order-key gap between two
        #: neighbours; :meth:`_ensure_order` renumbers lazily.
        self._order_valid: bool = True
        for t in arg_types:
            self.add_argument(t)

    # -- arguments ----------------------------------------------------------
    def add_argument(self, type: Type, name_hint: Optional[str] = None) -> BlockArgument:
        arg = BlockArgument(type, self, len(self.arguments))
        arg.name_hint = name_hint
        self.arguments.append(arg)
        return arg

    def erase_argument(self, index: int) -> None:
        arg = self.arguments[index]
        if arg.has_uses:
            raise ValueError("erasing block argument that still has uses")
        del self.arguments[index]
        for i, a in enumerate(self.arguments):
            a.index = i

    # -- intrusive list plumbing ---------------------------------------------
    def _link(
        self,
        op: Operation,
        prev: Optional[Operation],
        next: Optional[Operation],
    ) -> None:
        """Splice ``op`` between ``prev`` and ``next`` (either may be None)."""
        if op.parent is not None:
            raise ValueError(
                f"inserting {op.name} which is still attached to a block "
                "(detach it first)"
            )
        if op.erased:
            raise ValueError(f"inserting erased operation {op.name}")
        op.parent = self
        op.prev_op = prev
        op.next_op = next
        if prev is not None:
            prev.next_op = op
        else:
            self._first_op = op
        if next is not None:
            next.prev_op = op
        else:
            self._last_op = op
        self._num_ops += 1
        # Order-key maintenance: bisect the neighbour gap; renumber lazily
        # once a gap is exhausted.
        if prev is None and next is None:
            op._order = 0
        elif prev is None:
            op._order = next._order - _ORDER_STRIDE
        elif next is None:
            op._order = prev._order + _ORDER_STRIDE
        else:
            op._order = (prev._order + next._order) // 2
            if op._order == prev._order:
                self._order_valid = False

    def _unlink(self, op: Operation) -> None:
        """Remove ``op`` from the list (O(1)); clears its links and parent."""
        if op.prev_op is not None:
            op.prev_op.next_op = op.next_op
        else:
            self._first_op = op.next_op
        if op.next_op is not None:
            op.next_op.prev_op = op.prev_op
        else:
            self._last_op = op.prev_op
        op.prev_op = None
        op.next_op = None
        op.parent = None
        self._num_ops -= 1

    def _ensure_order(self) -> None:
        """Renumber order keys if an insertion invalidated them (O(n), but
        amortised away: each renumber buys ~log2 stride local insertions)."""
        if self._order_valid:
            return
        order = 0
        op = self._first_op
        while op is not None:
            op._order = order
            order += _ORDER_STRIDE
            op = op.next_op
        self._order_valid = True

    # -- operations ----------------------------------------------------------
    @property
    def first_op(self) -> Optional[Operation]:
        return self._first_op

    @property
    def last_op(self) -> Optional[Operation]:
        return self._last_op

    @property
    def is_empty(self) -> bool:
        return self._first_op is None

    def __len__(self) -> int:
        return self._num_ops

    def __iter__(self) -> Iterator[Operation]:
        op = self._first_op
        while op is not None:
            next_op = op.next_op
            yield op
            op = next_op

    def __reversed__(self) -> Iterator[Operation]:
        op = self._last_op
        while op is not None:
            prev_op = op.prev_op
            yield op
            op = prev_op

    @property
    def operations(self) -> List[Operation]:
        """List snapshot of the block's operations (O(n)).

        Compatibility/debugging surface over the intrusive list; mutations on
        the returned list do **not** affect the block.  Hot paths should use
        iteration, :attr:`first_op`/:attr:`last_op` or the O(1) insertion
        methods instead.
        """
        return list(self)

    def append(self, op: Operation) -> Operation:
        self._link(op, self._last_op, None)
        return op

    def prepend(self, op: Operation) -> Operation:
        self._link(op, None, self._first_op)
        return op

    def insert(self, index: int, op: Operation) -> Operation:
        """Insert ``op`` at position ``index`` (O(index); compatibility
        shim — prefer the anchor-based O(1) methods)."""
        if index >= self._num_ops:
            return self.append(op)
        anchor = self._first_op
        for _ in range(index):
            anchor = anchor.next_op
        return self.insert_before(op, anchor)

    def insert_before(self, op: Operation, anchor: Operation) -> Operation:
        """Insert ``op`` immediately before ``anchor`` (O(1))."""
        if anchor.parent is not self:
            raise ValueError("insertion anchor is not in this block")
        self._link(op, anchor.prev_op, anchor)
        return op

    def insert_after(self, op: Operation, anchor: Operation) -> Operation:
        """Insert ``op`` immediately after ``anchor`` (O(1))."""
        if anchor.parent is not self:
            raise ValueError("insertion anchor is not in this block")
        self._link(op, anchor, anchor.next_op)
        return op

    def take_ops_from(self, source: "Block") -> None:
        """Move every operation of ``source`` to the end of this block,
        preserving order (single pass, no list copies)."""
        op = source._first_op
        while op is not None:
            next_op = op.next_op
            source._unlink(op)
            self.append(op)
            op = next_op

    @property
    def terminator(self) -> Optional[Operation]:
        from .traits import IsTerminator

        if self._last_op is not None and self._last_op.has_trait(IsTerminator):
            return self._last_op
        return None

    def successors(self) -> List["Block"]:
        term = self.terminator
        return list(term.successors) if term is not None else []

    def predecessors(self) -> List["Block"]:
        """Blocks in the same region whose terminator targets this block."""
        if self.parent is None:
            return []
        preds = []
        for block in self.parent.blocks:
            if self in block.successors():
                preds.append(block)
        return preds

    def parent_op(self) -> Optional[Operation]:
        return self.parent.parent if self.parent is not None else None

    def index_in_region(self) -> int:
        return self.parent.blocks.index(self)

    def split_before(self, op: Operation) -> "Block":
        """Split this block into two: ``op`` and everything after it move to a
        new block appended right after this one in the region."""
        if op.parent is not self:
            raise ValueError("split point is not in this block")
        new_block = Block()
        self.parent.insert_block(self.index_in_region() + 1, new_block)
        current = op
        while current is not None:
            next_op = current.next_op
            self._unlink(current)
            new_block.append(current)
            current = next_op
        return new_block

    def drop_all_ops(self) -> None:
        op = self._first_op
        while op is not None:
            next_op = op.next_op
            for region in op.regions:
                region.drop_all_ops()
            op.drop_operand_uses()
            op.parent = None
            op.prev_op = None
            op.next_op = None
            op.erased = True
            op = next_op
        self._first_op = None
        self._last_op = None
        self._num_ops = 0
        self._order_valid = True

    def erase(self) -> None:
        """Erase this block and all its operations from the parent region."""
        self.drop_all_ops()
        if self.parent is not None:
            self.parent.blocks.remove(self)
            self.parent = None

    def walk(self) -> Iterator[Operation]:
        op = self._first_op
        while op is not None:
            next_op = op.next_op
            yield from op.walk()
            op = next_op

    # -- invariant checking -----------------------------------------------------
    def check_invariants(self) -> None:
        """Assert the intrusive-list invariants (used by tests; O(n)).

        Raises ValueError describing the first violated invariant.
        """
        count = 0
        prev: Optional[Operation] = None
        op = self._first_op
        if op is not None and op.prev_op is not None:
            raise ValueError("first_op has a dangling prev_op link")
        while op is not None:
            if op.parent is not self:
                raise ValueError(f"{op.name}: parent does not point at block")
            if op.erased:
                raise ValueError(f"{op.name}: erased op is still linked")
            if op.prev_op is not prev:
                raise ValueError(f"{op.name}: prev_op link is inconsistent")
            if prev is not None and prev.next_op is not op:
                raise ValueError(f"{op.name}: next_op link is inconsistent")
            count += 1
            prev = op
            op = op.next_op
        if prev is not self._last_op:
            raise ValueError("last_op does not terminate the chain")
        if count != self._num_ops:
            raise ValueError(
                f"cached op count {self._num_ops} != actual {count}"
            )
        if self._order_valid:
            previous_order: Optional[int] = None
            for linked in self:
                if previous_order is not None and linked._order <= previous_order:
                    raise ValueError("order keys are not strictly increasing")
                previous_order = linked._order

    def __repr__(self):  # pragma: no cover - debugging helper
        return f"<block with {self._num_ops} ops>"


class Region:
    """A single-entry list of blocks nested inside an operation."""

    def __init__(self, parent: Optional[Operation] = None):
        self.blocks: List[Block] = []
        self.parent: Optional[Operation] = parent

    # -- blocks ----------------------------------------------------------------
    def add_block(self, block: Optional[Block] = None) -> Block:
        block = block if block is not None else Block()
        block.parent = self
        self.blocks.append(block)
        return block

    def insert_block(self, index: int, block: Block) -> Block:
        block.parent = self
        self.blocks.insert(index, block)
        return block

    @property
    def entry_block(self) -> Optional[Block]:
        return self.blocks[0] if self.blocks else None

    @property
    def empty(self) -> bool:
        return not self.blocks

    def single_block(self) -> Block:
        if len(self.blocks) != 1:
            raise ValueError(f"expected a single-block region, got {len(self.blocks)}")
        return self.blocks[0]

    # -- bulk operations ----------------------------------------------------------
    def drop_all_ops(self) -> None:
        for block in self.blocks:
            block.drop_all_ops()
            block.parent = None
        self.blocks = []

    def clone_into(self, dest: "Region", mapper: Optional[IRMapping] = None) -> None:
        """Clone the blocks of this region into ``dest`` (appending)."""
        mapper = mapper if mapper is not None else IRMapping()
        # Create the destination blocks (and argument values) first so that
        # forward branches and region-internal references remap correctly.
        new_blocks = []
        for block in self.blocks:
            new_block = Block()
            for arg in block.arguments:
                new_arg = new_block.add_argument(arg.type, arg.name_hint)
                mapper.map_value(arg, new_arg)
            mapper.map_block(block, new_block)
            new_blocks.append(new_block)
        for block, new_block in zip(self.blocks, new_blocks):
            dest.add_block(new_block)
            for op in block:
                new_block.append(op.clone(mapper))

    def take_blocks_from(self, other: "Region") -> None:
        """Move all blocks of ``other`` to the end of this region."""
        for block in list(other.blocks):
            other.blocks.remove(block)
            self.add_block(block)

    def walk(self) -> Iterator[Operation]:
        for block in list(self.blocks):
            yield from block.walk()

    def op_count(self) -> int:
        return sum(1 for _ in self.walk())

    def __repr__(self):  # pragma: no cover - debugging helper
        return f"<region with {len(self.blocks)} blocks>"
