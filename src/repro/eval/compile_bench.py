"""Compile-time benchmarking: how fast does the compiler itself run?

The paper's evaluation (Figures 9/10) measures the *runtime* of compiled
programs; the ROADMAP's north star also demands the compiler run as fast as
the hardware allows.  This module makes compiler speed a first-class,
regression-guarded quantity:

* per-phase wall time (frontend / simplify / rc-insert / lp-codegen /
  lp-fusion / lp-to-rgn / rgn-opt / rgn-to-cf) for every benchmark of the
  suite, as recorded by :class:`~repro.backend.pipeline.MlirCompiler`,
* rewrite-driver work counters (pattern match attempts, applications,
  worklist pushes) surfaced through the pass manager,
* a differential check that the worklist engine reaches the exact same
  final IR as the rescan baseline, with far fewer match attempts,
* a ``rewrite-stress`` entry — a tower of transitively dead join points
  (nested ``rgn.val``\\ s, each run twice from the next level's body) that is
  the suite's largest module and the worst case for the rescan driver: every
  nesting level costs it one full extra sweep.

Usage::

    python -m repro.eval.compile_bench                  # text report
    python -m repro.eval.compile_bench --json BENCH_compile.new.json
    python -m repro.eval.compile_bench --differential   # engine comparison
    python -m repro.eval.compile_bench --baseline BENCH_compile.json
    python -m repro.eval.compile_bench --jobs 4         # shard across processes
    python -m repro.eval.compile_bench --exec-table     # VM vs tree execution
    python -m repro.eval.compile_bench --exec-table --sizes xlarge  # VM-only tier
"""

from __future__ import annotations

import argparse
import json
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..backend.pipeline import CompilationSession, MlirCompiler
from ..dialects import lp, rgn
from ..dialects.builtin import ModuleOp
from ..dialects.func import FuncOp
from ..interp.bytecode import EXECUTION_ENGINES, VirtualMachine, compile_cfg_module
from ..interp.cfg_interp import CfgInterpreter
from ..ir.builder import Builder, InsertionPoint
from ..ir.printer import print_module
from ..ir.types import FunctionType, i1
from ..rewrite import GreedyRewriteResult, apply_patterns_greedily
from ..telemetry import (
    MetricsRegistry,
    Tracer,
    get_metrics,
    get_tracer,
    measured_metrics,
    telemetry_session,
)
from ..transforms.canonicalize import canonicalization_patterns
from .benchmarks import DEFAULT_SIZES, SIZE_TIERS, benchmark_sources
from .harness import measurement_options, run_sharded

#: Compilation phases reported per benchmark (in pipeline order).
PHASES = (
    "frontend",
    "simplify",
    "rc-insert",
    "lp-codegen",
    "lp-fusion",
    "lp-to-rgn",
    "rgn-opt",
    "rgn-to-cf",
)

#: Name of the synthetic rewrite-engine stress entry.
STRESS_BENCHMARK = "rewrite-stress"

#: Default size of the stress tower: ``layers`` nested join points with
#: ``filler`` payload ops each — sized to be the suite's largest module
#: (bigger than rbmap_checkpoint's ~560-op rgn module).
STRESS_LAYERS = 24
STRESS_FILLER = 30


@dataclass
class CompileMeasurement:
    """One (benchmark, engine) compile-time measurement."""

    benchmark: str
    engine: str
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    total_seconds: float = 0.0
    #: Module size entering the rewrite-heavy part of the pipeline — the
    #: benchmark's "size" for compile-work purposes.
    initial_op_count: int = 0
    #: Op count of the final module after the full pipeline ran.
    final_op_count: int = 0
    match_attempts: int = 0
    applications: int = 0
    worklist_pushes: int = 0
    driver_iterations: int = 0
    #: Printed final IR, used by the differential check (not serialised).
    ir_text: str = ""
    #: Unified-telemetry metrics delta recorded while compiling (empty
    #: unless a telemetry session was active; in-memory only — the
    #: BENCH_compile.json payload stays schema-stable).
    metrics: Dict[str, object] = field(default_factory=dict)

    def as_json(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "engine": self.engine,
            "phase_seconds": {
                phase: self.phase_seconds[phase]
                for phase in PHASES
                if phase in self.phase_seconds
            },
            "total_seconds": self.total_seconds,
            "initial_op_count": self.initial_op_count,
            "final_op_count": self.final_op_count,
            "match_attempts": self.match_attempts,
            "applications": self.applications,
            "worklist_pushes": self.worklist_pushes,
        }


def build_stress_module(
    layers: int = STRESS_LAYERS, filler: int = STRESS_FILLER
) -> ModuleOp:
    """A tower of transitively dead join points.

    Each level is a ``rgn.val`` whose body runs the previous level's region
    from *two* sites (so the inliner's single-use gate never fires) plus
    ``filler`` payload ops; the topmost value is unused.  Dead region
    elimination must therefore cascade strictly backwards — erasing level
    ``i`` is what makes level ``i-1`` dead — which the worklist engine
    discovers through erase notifications in a single drain while the rescan
    engine pays one full module sweep per level.
    """
    module = ModuleOp()
    func = FuncOp("stress", FunctionType([i1], []))
    module.append(func)
    builder = Builder(InsertionPoint.at_end(func.entry_block))
    previous = None
    for _ in range(layers):
        val = builder.create(rgn.ValOp)
        inner = Builder(InsertionPoint.at_end(val.body_block))
        for payload in range(filler):
            inner.create(lp.IntOp, payload)
        if previous is not None:
            inner.create(rgn.RunOp, previous.result())
            inner.create(rgn.RunOp, previous.result())
        previous = val
    return module


def measure_stress(
    engine: str,
    *,
    layers: int = STRESS_LAYERS,
    filler: int = STRESS_FILLER,
) -> CompileMeasurement:
    """Canonicalise the stress module with ``engine`` and record driver work."""
    import time

    module = build_stress_module(layers, filler)
    func = next(op for op in module.walk() if isinstance(op, FuncOp))
    initial_ops = sum(1 for _ in module.walk())
    start = time.perf_counter()
    result: GreedyRewriteResult = apply_patterns_greedily(
        func,
        canonicalization_patterns(),
        engine=engine,
        max_iterations=max(64, 4 * layers),
    )
    elapsed = time.perf_counter() - start
    return CompileMeasurement(
        benchmark=STRESS_BENCHMARK,
        engine=engine,
        phase_seconds={"rgn-opt": elapsed},
        total_seconds=elapsed,
        initial_op_count=initial_ops,
        final_op_count=sum(1 for _ in module.walk()),
        match_attempts=result.match_attempts,
        applications=result.applications,
        worklist_pushes=result.worklist_pushes,
        driver_iterations=result.iterations,
        ir_text=print_module(module),
    )


def measure_benchmark(
    name: str,
    source: str,
    *,
    engine: str = "worklist",
    variant: str = "rgn",
    session: Optional[CompilationSession] = None,
    execution_engine: Optional[str] = None,
) -> CompileMeasurement:
    """Compile one benchmark and record phase timings plus driver work.

    The default variant is ``rgn`` (λpure simplifier off, rgn optimisations
    on) — the configuration where the rewrite engine does the most work.
    """
    import time

    options = measurement_options(
        variant, rewrite_engine=engine, execution_engine=execution_engine
    )
    with get_tracer().span(
        "bench:" + name, category="harness", engine=engine, variant=variant
    ):
        if get_metrics().enabled:
            with measured_metrics() as metrics_delta:
                start = time.perf_counter()
                artifacts = MlirCompiler(options, session=session).compile(source)
                total = time.perf_counter() - start
        else:
            metrics_delta = {}
            start = time.perf_counter()
            artifacts = MlirCompiler(options, session=session).compile(source)
            total = time.perf_counter() - start

    def counter_total(key: str) -> int:
        return sum(
            counters.get(key, 0) for counters in artifacts.pass_statistics.values()
        )

    return CompileMeasurement(
        benchmark=name,
        engine=engine,
        phase_seconds=dict(artifacts.phase_timings),
        total_seconds=total,
        # The rgn module is what the rewrite engine processes; its size is
        # what pattern-matching work scales with.
        initial_op_count=artifacts.module_op_counts.get("rgn", 0),
        final_op_count=sum(1 for _ in artifacts.cfg_module.walk()) - 1,
        match_attempts=counter_total("match-attempts"),
        applications=counter_total("applications"),
        worklist_pushes=counter_total("worklist-pushes"),
        ir_text=print_module(artifacts.cfg_module),
        metrics=dict(metrics_delta),
    )


def _suite_worker(task) -> CompileMeasurement:
    """One shard of :func:`run_suite`:
    (name, source, engine, variant, execution_engine)."""
    name, source, engine, variant, execution_engine = task
    return measure_benchmark(
        name,
        source,
        engine=engine,
        variant=variant,
        session=CompilationSession(),
        execution_engine=execution_engine,
    )


def run_suite(
    sizes: Optional[Dict[str, Dict[str, int]]] = None,
    *,
    engines: tuple = ("worklist",),
    variant: str = "rgn",
    include_stress: bool = True,
    jobs: int = 1,
    execution_engine: Optional[str] = None,
) -> List[CompileMeasurement]:
    """Measure every benchmark (plus the stress module) per engine.

    ``jobs > 1`` shards the (benchmark, engine) pairs across processes —
    one worker per benchmark — and merges in suite order.  Every task gets
    its own fresh :class:`CompilationSession` whichever way it is
    scheduled, so sharding changes nothing but wall time: a shared session
    would turn the second engine's ``frontend`` timings into cache-hit
    deep copies and make jobs=1 and jobs=N payloads diverge.
    """
    sources = benchmark_sources(sizes or DEFAULT_SIZES)
    tasks = [
        (name, source, engine, variant, execution_engine)
        for engine in engines
        for name, source in sources.items()
    ]
    sharded = run_sharded(tasks, _suite_worker, jobs)
    if sharded is None:
        sharded = [_suite_worker(task) for task in tasks]
    by_engine: Dict[str, List[CompileMeasurement]] = {}
    for measurement in sharded:
        by_engine.setdefault(measurement.engine, []).append(measurement)
    measurements: List[CompileMeasurement] = []
    for engine in engines:
        measurements.extend(by_engine.get(engine, []))
        if include_stress:
            # The stress tower is synthetic and cheap; measure it in-process
            # so its position in the payload is stable.
            measurements.append(measure_stress(engine))
    return measurements


@dataclass
class DifferentialRow:
    """Worklist-vs-rescan comparison for one benchmark."""

    benchmark: str
    ir_equal: bool
    worklist_attempts: int
    rescan_attempts: int
    #: Size of the module the rewrite engine processed (pre-optimisation).
    initial_op_count: int

    @property
    def attempt_ratio(self) -> float:
        if self.worklist_attempts == 0:
            return float("inf") if self.rescan_attempts else 1.0
        return self.rescan_attempts / self.worklist_attempts


def rows_from_measurements(
    measurements: List[CompileMeasurement],
) -> List[DifferentialRow]:
    """Pair up worklist/rescan measurements into differential rows."""
    by_benchmark: Dict[str, Dict[str, CompileMeasurement]] = {}
    for m in measurements:
        by_benchmark.setdefault(m.benchmark, {})[m.engine] = m
    rows = []
    for name, engines in by_benchmark.items():
        worklist, rescan = engines["worklist"], engines["rescan"]
        rows.append(
            DifferentialRow(
                benchmark=name,
                ir_equal=worklist.ir_text == rescan.ir_text,
                worklist_attempts=worklist.match_attempts,
                rescan_attempts=rescan.match_attempts,
                initial_op_count=max(
                    worklist.initial_op_count, rescan.initial_op_count
                ),
            )
        )
    return rows


def differential_rows(
    sizes: Optional[Dict[str, Dict[str, int]]] = None,
    *,
    variant: str = "rgn",
    jobs: int = 1,
) -> List[DifferentialRow]:
    """Compile the suite with both engines and compare IR and driver work."""
    return rows_from_measurements(
        run_suite(sizes, engines=("worklist", "rescan"), variant=variant, jobs=jobs)
    )


def bench_payload(
    measurements: List[CompileMeasurement],
    *,
    variant: str = "rgn",
) -> Dict[str, object]:
    """The JSON document written to ``BENCH_compile.json``."""
    return {
        "schema": "repro/compile-bench/v1",
        "variant": variant,
        "phases": list(PHASES),
        "engines": sorted({m.engine for m in measurements}),
        "benchmarks": [m.as_json() for m in measurements],
        "totals": {
            engine: {
                "total_seconds": sum(
                    m.total_seconds for m in measurements if m.engine == engine
                ),
                "match_attempts": sum(
                    m.match_attempts for m in measurements if m.engine == engine
                ),
                "applications": sum(
                    m.applications for m in measurements if m.engine == engine
                ),
            }
            for engine in sorted({m.engine for m in measurements})
        },
    }


def emit_json(
    path: str,
    sizes: Optional[Dict[str, Dict[str, int]]] = None,
    *,
    engines: tuple = ("worklist", "rescan"),
    variant: str = "rgn",
    jobs: int = 1,
    measurements: Optional[List[CompileMeasurement]] = None,
) -> Dict[str, object]:
    """Measure the suite and write ``BENCH_compile.json`` to ``path``.

    Pass precomputed ``measurements`` to serialise an existing run instead
    of re-measuring (the CLI does this when both ``--json`` and
    ``--baseline`` are requested, so the suite is compiled once).
    """
    if measurements is None:
        measurements = run_suite(sizes, engines=engines, variant=variant, jobs=jobs)
    payload = bench_payload(measurements, variant=variant)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return payload


def load_baseline(path: str) -> Dict[str, Dict[str, object]]:
    """Load a previously emitted ``BENCH_compile.json`` as a baseline table.

    Returns worklist-engine entries keyed by benchmark name; raises on a
    payload with an unknown schema so stale files fail loudly.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema != "repro/compile-bench/v1":
        raise ValueError(f"unsupported BENCH_compile schema {schema!r} in {path}")
    return {
        entry["benchmark"]: entry
        for entry in payload.get("benchmarks", ())
        if entry.get("engine") == "worklist"
    }


def compile_report(
    sizes: Optional[Dict[str, Dict[str, int]]] = None,
    *,
    variant: str = "rgn",
    baseline: Optional[Dict[str, Dict[str, object]]] = None,
    jobs: int = 1,
    measurements: Optional[List[CompileMeasurement]] = None,
) -> str:
    """Text report: per-phase timings plus the engine differential.

    With ``baseline`` (a table from :func:`load_baseline`), the phase table
    becomes a before/after comparison: each row shows the baseline run's
    rgn-opt time and match attempts next to the current ones, so a phase
    regression or improvement is visible benchmark by benchmark.  Pass
    precomputed ``measurements`` to report on an existing run.
    """
    if measurements is None:
        measurements = run_suite(
            sizes, engines=("worklist", "rescan"), variant=variant, jobs=jobs
        )
    rows = rows_from_measurements(measurements)
    worklist_by_name = {
        m.benchmark: m for m in measurements if m.engine == "worklist"
    }
    title = "Compile time: per-phase wall time and rewrite-engine work"
    lines = [title, "=" * len(title)]
    header = (
        f"{'benchmark':18s} {'ops':>5s} {'total ms':>9s} {'rgn-opt ms':>11s}"
        f" {'attempts':>9s} {'rescan':>9s} {'ratio':>6s} {'ir':>3s}"
    )
    if baseline is not None:
        header += f" {'base rgn-opt':>13s} {'Δ%':>7s} {'base att':>9s}"
    lines.append(header)
    for row in rows:
        m = worklist_by_name[row.benchmark]
        rgn_opt_ms = m.phase_seconds.get("rgn-opt", 0.0) * 1e3
        line = (
            f"{row.benchmark:18s} {row.initial_op_count:5d}"
            f" {m.total_seconds * 1e3:9.2f} {rgn_opt_ms:11.2f}"
            f" {row.worklist_attempts:9d} {row.rescan_attempts:9d}"
            f" {row.attempt_ratio:6.2f} {'ok' if row.ir_equal else 'DIFF':>4s}"
        )
        if baseline is not None:
            base = baseline.get(row.benchmark)
            if base is None:
                line += f" {'—':>13s} {'—':>7s} {'—':>9s}"
            else:
                base_rgn_ms = base.get("phase_seconds", {}).get("rgn-opt", 0.0) * 1e3
                delta = (
                    (rgn_opt_ms - base_rgn_ms) / base_rgn_ms * 100.0
                    if base_rgn_ms
                    else 0.0
                )
                line += (
                    f" {base_rgn_ms:13.2f} {delta:+6.1f}%"
                    f" {base.get('match_attempts', 0):9d}"
                )
        lines.append(line)
    total_wl = sum(r.worklist_attempts for r in rows)
    total_rs = sum(r.rescan_attempts for r in rows)
    lines.append("-" * len(header))
    lines.append(
        f"{'total':18s} {'':5s} {'':9s} {'':11s} {total_wl:9d} {total_rs:9d}"
        f" {total_rs / total_wl if total_wl else 1.0:6.2f}"
    )
    lines.append(
        "phases: " + ", ".join(PHASES) + f" (variant={variant}, sizes=default)"
    )
    return "\n".join(lines)


def execution_table(
    sizes: Optional[Dict[str, Dict[str, int]]] = None,
    *,
    variant: str = "default",
    repeats: int = 2,
    tier: str = "default",
    include_tree: Optional[bool] = None,
) -> str:
    """Execution wall-time table across the execution-strategy ladder.

    Each benchmark is compiled once; the same CFG module is then executed
    by the tree-walking oracle, the unfused switch VM (the engine before the fusion work) and
    the fused direct-threaded VM (best of ``repeats`` runs each), so the
    table isolates pure execution time.  CI appends this to the uploaded
    timings artifact — it is the regression surface for the execution-
    engine work, the way the phase table is for compile time.

    ``tier`` names the :data:`~repro.eval.benchmarks.SIZE_TIERS` entry to
    run (ignored when explicit ``sizes`` are passed).  The tree column is
    skipped on the ``xlarge`` tier by default — that tier exists precisely
    because the walkers cannot sustain it; pass ``include_tree`` to
    override either way.
    """
    if sizes is None:
        sizes = SIZE_TIERS[tier]
    else:
        tier = "custom"
    if include_tree is None:
        include_tree = tier != "xlarge"
    sources = benchmark_sources(sizes)
    session = CompilationSession()
    options = measurement_options(variant)
    title = (
        "Execution time: tree oracle vs switch VM vs fused threaded VM"
        if include_tree
        else "Execution time: switch VM vs fused threaded VM (tree skipped)"
    )
    lines = [title, "=" * len(title)]
    header = (
        f"{'benchmark':18s} {'tree ms':>9s} {'switch ms':>10s}"
        f" {'threaded ms':>12s} {'vs tree':>8s} {'vs switch':>10s}"
    )
    lines.append(header)
    total_tree = 0.0
    total_switch = 0.0
    total_threaded = 0.0
    for name, source in sources.items():
        module = MlirCompiler(options, session=session).compile(source).cfg_module
        if include_tree:
            tree_seconds = min(
                CfgInterpreter(module).run_main().metrics.wall_time_seconds
                for _ in range(repeats)
            )
            total_tree += tree_seconds
            tree_cell = f"{tree_seconds * 1e3:9.2f}"
        else:
            tree_cell = f"{'-':>9s}"
        switch_code = session.bytecode_for(
            module, dispatch="switch", superinstructions=False
        )
        switch_seconds = min(
            VirtualMachine(switch_code, dispatch="switch")
            .run_main().metrics.wall_time_seconds
            for _ in range(repeats)
        )
        threaded_code = session.bytecode_for(module)
        threaded_seconds = min(
            VirtualMachine(threaded_code).run_main().metrics.wall_time_seconds
            for _ in range(repeats)
        )
        total_switch += switch_seconds
        total_threaded += threaded_seconds
        vs_tree = (
            f"{tree_seconds / threaded_seconds:7.2f}x"
            if include_tree and threaded_seconds
            else f"{'-':>8s}"
        )
        vs_switch = (
            switch_seconds / threaded_seconds if threaded_seconds else float("inf")
        )
        lines.append(
            f"{name:18s} {tree_cell} {switch_seconds * 1e3:10.2f}"
            f" {threaded_seconds * 1e3:12.2f} {vs_tree} {vs_switch:9.2f}x"
        )
    lines.append("-" * len(header))
    total_tree_cell = (
        f"{total_tree * 1e3:9.2f}" if include_tree else f"{'-':>9s}"
    )
    total_vs_tree = (
        f"{total_tree / total_threaded:7.2f}x"
        if include_tree and total_threaded
        else f"{'-':>8s}"
    )
    total_vs_switch = (
        total_switch / total_threaded if total_threaded else float("inf")
    )
    lines.append(
        f"{'total':18s} {total_tree_cell} {total_switch * 1e3:10.2f}"
        f" {total_threaded * 1e3:12.2f} {total_vs_tree} {total_vs_switch:9.2f}x"
    )
    lines.append(
        f"(variant={variant}, sizes={tier}, best of {repeats} runs; "
        "switch column runs unfused bytecode — the pre-fusion engine)"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write BENCH_compile.json-style output to PATH",
    )
    parser.add_argument(
        "--variant", default=None,
        help="pipeline variant to compile with (default: rgn for the "
        "compile report, default for --exec-table — the configuration "
        "the figure suite executes)",
    )
    parser.add_argument(
        "--differential", action="store_true",
        help="print only the worklist-vs-rescan differential",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="compare the phase table against a previously written "
        "BENCH_compile.json (before/after per benchmark)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard the suite across N worker processes "
        "(one benchmark per worker; default: sequential)",
    )
    parser.add_argument(
        "--exec-table", action="store_true",
        help="print the execution wall-time table (tree oracle vs switch "
        "VM vs fused threaded VM) instead of the compile-time report",
    )
    parser.add_argument(
        "--sizes", choices=sorted(SIZE_TIERS), default="default",
        help="problem-size tier for --exec-table (the tree column is "
        "skipped on xlarge — that tier is VM-only)",
    )
    parser.add_argument(
        "--execution-engine", choices=EXECUTION_ENGINES, default=None,
        help="execution engine configured on the compile options (compile "
        "benchmarks never execute; with --exec-table, both engines are "
        "always compared)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a Chrome trace-event JSON of the whole run "
        "(forces --jobs 1: spans from forked workers stay worker-local)",
    )
    parser.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="write a JSON snapshot of the unified metrics registry",
    )
    args = parser.parse_args(argv)

    telemetry_on = bool(args.trace_out or args.metrics_json)
    if args.trace_out and args.jobs > 1:
        print("note: --trace-out forces --jobs 1 (spans are per-process)")
        args.jobs = 1
    tracer = Tracer() if telemetry_on else None
    registry = MetricsRegistry() if telemetry_on else None
    scope = (
        telemetry_session(tracer=tracer, metrics=registry)
        if telemetry_on
        else nullcontext()
    )
    try:
        with scope:
            return _run_reports(args)
    finally:
        if args.trace_out:
            tracer.write_chrome_trace(args.trace_out)
        if args.metrics_json:
            registry.write_json(args.metrics_json)


def _run_reports(args) -> int:
    if args.exec_table:
        print(execution_table(variant=args.variant or "default", tier=args.sizes))
        return 0
    if args.variant is None:
        args.variant = "rgn"

    if args.json:
        # Measure once; --baseline additionally reports on the same run.
        measurements = run_suite(
            engines=("worklist", "rescan"),
            variant=args.variant,
            jobs=args.jobs,
            execution_engine=args.execution_engine,
        )
        payload = emit_json(
            args.json, variant=args.variant, measurements=measurements
        )
        suites = len(payload["benchmarks"])
        print(f"wrote {args.json} ({suites} measurements)")
        if args.baseline:
            baseline = load_baseline(args.baseline)
            print(
                compile_report(
                    variant=args.variant,
                    baseline=baseline,
                    measurements=measurements,
                )
            )
        return 0
    if args.differential:
        for row in differential_rows(variant=args.variant, jobs=args.jobs):
            print(
                f"{row.benchmark:18s} worklist={row.worklist_attempts:6d} "
                f"rescan={row.rescan_attempts:6d} ratio={row.attempt_ratio:5.2f} "
                f"ir_equal={row.ir_equal}"
            )
        return 0
    baseline = load_baseline(args.baseline) if args.baseline else None
    print(compile_report(variant=args.variant, baseline=baseline, jobs=args.jobs))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
